"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
synth-rz       Synthesize one Rz(theta) rotation with gridsynth.
synth-u3       Synthesize an arbitrary unitary (three Euler angles) with trasyn.
compile        Compile an OpenQASM 2.0 file through a synthesis workflow.
compile-batch  Compile many OpenQASM files in parallel with a shared cache.
warm-cache     Precompile a dense Rz catalog into a cross-process store.
verify         Check a circuit's structural/basis/connectivity invariants.
schedule       ASAP/ALAP timed schedule, idle accounting, and predicted ESP.
simulate       Noisy fidelity evaluation through a simulation backend.
catalog        Print the Clifford+T enumeration summary for a T budget.
estimate       Surface-code resource estimate for an OpenQASM file.
bench          Run the standing perf harness (writes BENCH_<area>.json).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_synth_rz(args: argparse.Namespace) -> int:
    from repro.synthesis.gridsynth import gridsynth_rz

    seq = gridsynth_rz(args.theta, args.eps)
    print(f"error    : {seq.error:.3e}")
    print(f"T count  : {seq.t_count}")
    print(f"Clifford : {seq.clifford_count}")
    print("gates    :", " ".join(seq.gates))
    return 0


def _cmd_synth_u3(args: argparse.Namespace) -> int:
    from repro.linalg import u3
    from repro.synthesis import trasyn

    target = u3(args.theta, args.phi, args.lam)
    seq = trasyn(target, error_threshold=args.eps,
                 rng=np.random.default_rng(args.seed))
    print(f"error    : {seq.error:.3e}")
    print(f"T count  : {seq.t_count}")
    print(f"Clifford : {seq.clifford_count}")
    print("gates    :", " ".join(seq.gates))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.__main__ import main as bench_main

    argv = ["--area", args.area, "--out-dir", args.out_dir]
    if args.quick:
        argv.append("--quick")
    if args.no_write:
        argv.append("--no-write")
    if args.warmup is not None:
        argv.extend(["--warmup", str(args.warmup)])
    if args.repeats is not None:
        argv.extend(["--repeats", str(args.repeats)])
    for report in args.compare or ():
        argv.extend(["--compare", report])
    if args.compare_tolerance is not None:
        argv.extend(["--compare-tolerance", str(args.compare_tolerance)])
    return bench_main(argv)


def _load_cache(path: str | None, cache_dir: str | None = None):
    """Open (or create) the synthesis cache backing a compile command.

    ``path`` is the legacy single-file JSON persistence; ``cache_dir``
    attaches the cross-process segment store as the L2 tier.
    """
    import os

    from repro.pipeline import SynthesisCache

    cache = None
    if path and os.path.exists(path):
        try:
            cache = SynthesisCache.load(path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # A corrupt or incompatible cache only costs recomputation.
            print(f"warning: ignoring unreadable cache {path}: {exc}",
                  file=sys.stderr)
    if cache is None:
        cache = SynthesisCache()
    if cache_dir:
        from repro.pipeline import DiskSynthesisStore

        cache.attach_store(DiskSynthesisStore(cache_dir))
    return cache


def _report_store(cache) -> None:
    """Print the L2 tier's contribution after a compile command."""
    if cache.store is None:
        return
    stats = cache.stats()
    print(f"disk store            : {stats.l2_hits} exact + "
          f"{stats.l2_fallback_hits} stricter-band hits, "
          f"{stats.l2_misses} misses")
    cache.store.flush()


def _parse_level(value: str) -> int | str:
    """CLI optimization level: 0-4 or the grid-searching 'best'."""
    return value if value == "best" else int(value)


def _parse_target_arg(spec: str | None):
    """Resolve a ``--target`` spec (or None) to a Target."""
    if spec is None:
        return None
    from repro.target import parse_target

    return parse_target(spec)


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.circuits import clifford_count, depth, t_count, t_depth
    from repro.circuits.qasm import from_qasm, to_qasm
    from repro.pipeline import compile_circuit

    with open(args.input) as f:
        circuit = from_qasm(f.read())
    cache = _load_cache(args.cache_file, args.cache_dir)
    target = _parse_target_arg(args.target)
    result = compile_circuit(
        circuit, workflow=args.workflow, eps=args.eps, cache=cache,
        seed=args.seed, optimization_level=args.optimization_level,
        target=target, layout=args.layout, objective=args.objective,
        eps_budget=args.eps_budget, validate=args.validate,
    )
    out = result.circuit
    if result.routing is not None:
        m = result.routing.metrics
        print(f"target                : {target.name or args.target}")
        print(f"swaps inserted        : {m.swaps_inserted}")
        print(f"direction fixes       : {m.direction_fixes}")
        print(f"routed depth          : {m.depth_before} -> {m.depth_after}")
        print(f"output permutation    : {result.routing.permutation}")
    if result.objective != "count":
        print(f"objective             : {result.objective}")
    if result.schedule is not None:
        print(f"schedule makespan     : {result.makespan:g}")
    if result.esp_estimate is not None:
        print(f"predicted ESP         : {result.esp:.6f}")
    if result.eps_allocation:
        lo, hi = min(result.eps_allocation), max(result.eps_allocation)
        print(f"eps budget allocation : {len(result.eps_allocation)} slices "
              f"in [{lo:.2e}, {hi:.2e}]")
    print(f"rotations synthesized : {result.n_rotations}")
    print(f"T count               : {t_count(out)}")
    print(f"T depth               : {t_depth(out)}")
    print(f"circuit depth         : {depth(out)}")
    print(f"Clifford count        : {clifford_count(out)}")
    print(f"synthesis error bound : {result.total_synthesis_error:.3e}")
    _report_store(cache)
    if args.output:
        from repro.analysis.atomic_io import atomic_write_text

        atomic_write_text(args.output, to_qasm(out))
        print(f"wrote {args.output}")
    if args.cache_file:
        cache.save(args.cache_file)
    return 0


def _cmd_compile_batch(args: argparse.Namespace) -> int:
    from repro.analysis.atomic_io import atomic_write_text
    from repro.circuits.qasm import from_qasm, to_qasm
    from repro.pipeline import compile_batch

    circuits = []
    for path in args.inputs:
        with open(path) as f:
            circuit = from_qasm(f.read())
        if not circuit.name:
            circuit.name = path
        circuits.append(circuit)
    from repro.pipeline.warm import parse_workers_arg

    cache = _load_cache(args.cache_file, args.cache_dir)
    target = _parse_target_arg(args.target)
    workers = (
        parse_workers_arg(args.workers) if args.workers is not None else None
    )
    batch = compile_batch(
        circuits, workflow=args.workflow, eps=args.eps, cache=cache,
        seed=args.seed, max_workers=args.jobs, workers=workers,
        optimization_level=args.optimization_level,
        target=target, layout=args.layout, objective=args.objective,
        eps_budget=args.eps_budget, validate=args.validate,
    )
    stats = cache.stats()
    for path, result in zip(args.inputs, batch.results):
        extra = ""
        if result.routing is not None:
            extra = f" swaps={result.routing.swaps_inserted}"
        if result.esp_estimate is not None:
            extra += f" esp={result.esp:.4f}"
        print(f"{path}: rotations={result.n_rotations} "
              f"T={result.t_count} Clifford={result.clifford_count} "
              f"error<={result.total_synthesis_error:.3e}{extra}")
    print(f"circuits compiled : {len(batch)}")
    if target is not None:
        total_swaps = sum(
            r.routing.swaps_inserted for r in batch if r.routing is not None
        )
        print(f"total swaps       : {total_swaps}")
    print(f"total T count     : {sum(r.t_count for r in batch)}")
    print(f"cache hits/misses : {stats.hits}/{stats.misses}")
    if cache.store is not None:
        print(f"disk store        : {stats.l2_hits} exact + "
              f"{stats.l2_fallback_hits} stricter-band hits, "
              f"{stats.l2_misses} misses")
        cache.store.flush()
    print(f"wall time         : {batch.wall_time:.3f}s")
    if args.output_dir:
        import os

        os.makedirs(args.output_dir, exist_ok=True)
        used: dict[str, int] = {}
        for path, result in zip(args.inputs, batch.results):
            base = os.path.splitext(os.path.basename(path))[0]
            # Inputs from different directories may share a basename;
            # suffix repeats so no compiled circuit is overwritten.
            n = used.get(base, 0)
            used[base] = n + 1
            if n:
                base = f"{base}-{n + 1}"
            dest = os.path.join(args.output_dir, f"{base}_compiled.qasm")
            atomic_write_text(dest, to_qasm(result.circuit))
            print(f"wrote {dest}")
    if args.cache_file:
        cache.save(args.cache_file)
    return 0


def _cmd_warm_cache(args: argparse.Namespace) -> int:
    from repro.pipeline.warm import main as warm_main

    argv = ["--cache-dir", args.cache_dir]
    if args.angles is not None:
        argv.extend(["--angles", str(args.angles)])
    for eps in args.eps or ():
        argv.extend(["--eps", str(eps)])
    if args.workers is not None:
        argv.extend(["--workers", args.workers])
    return warm_main(argv)


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis import (
        VerificationError,
        check_basis,
        check_connectivity,
        verify_circuit,
    )
    from repro.circuits.qasm import from_qasm

    with open(args.input) as f:
        circuit = from_qasm(f.read())
    target = _parse_target_arg(args.target)
    checks = []
    try:
        verify_circuit(circuit)
        checks.append("structural")
        if args.level == "full":
            if args.basis:
                check_basis(circuit, args.basis)
                checks.append(f"basis[{args.basis}]")
            if target is not None:
                check_connectivity(circuit, target)
                checks.append("connectivity")
    except VerificationError as exc:
        print(f"FAIL {args.input}: {exc}", file=sys.stderr)
        return 1
    print(f"OK {args.input}: {circuit.n_qubits} qubits, "
          f"{len(circuit.gates)} gates ({', '.join(checks)})")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.circuits.qasm import from_qasm
    from repro.schedule import schedule_circuit
    from repro.target.cost import estimate_esp

    with open(args.input) as f:
        circuit = from_qasm(f.read())
    target = _parse_target_arg(args.target)
    work = circuit
    if target is not None and args.route:
        from repro.target import fix_gate_directions, route_circuit

        routed = route_circuit(circuit, target, layout=args.layout)
        work, _ = fix_gate_directions(routed.circuit, target)
        print(f"routed onto           : {target.name or args.target} "
              f"({routed.swaps_inserted} swaps)")
    sched = schedule_circuit(work, target, method=args.method)
    print(sched.summary())
    slack = sched.idle_slack()
    busy = {q: sched.busy_time(q) for q in slack}
    for q in sorted(slack):
        print(f"  q{q:<3d} busy {busy[q]:>8g}   idle {slack[q]:>8g}")
    if target is not None and target.is_calibrated:
        est = estimate_esp(work, target, schedule=sched)
        print(est.summary())
    if args.timeline:
        print()
        print(sched.render(width=args.width))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.circuits.qasm import from_qasm
    from repro.sim import NoiseModel, evaluate_fidelity

    with open(args.input) as f:
        circuit = from_qasm(f.read())
    noise = None
    if args.noise_rate > 0:
        if args.noise_model == "t":
            noise = NoiseModel.t_gates_only(args.noise_rate)
        else:
            noise = NoiseModel.non_pauli_gates(args.noise_rate)
    elif args.target:
        # Derive heterogeneous noise from the target's calibration.
        target = _parse_target_arg(args.target)
        try:
            noise = NoiseModel.from_target(target)
        except ValueError as exc:
            # Built-in topology specs carry no calibration; only a
            # saved Target JSON can hold gate_errors.
            print(f"error: {exc} (save a Target JSON with gate_errors, "
                  "or pass --noise-rate)", file=sys.stderr)
            return 2
        print(f"noise from target: {target.name or args.target} "
              f"(max rate {noise.rate:g})")
    fusion = args.fusion
    ev = evaluate_fidelity(
        circuit,
        noise=noise,
        backend=args.sim_backend,
        trajectories=args.trajectories,
        max_bond=args.max_bond,
        seed=args.seed,
        compiled=not args.uncompiled,
        fuse=fusion != "none",
        fuse2q=fusion == "2q",
    )
    print(f"qubits           : {ev.n_qubits}")
    print(f"backend          : {ev.backend}")
    print(f"trajectories     : {ev.n_trajectories}")
    print(f"fidelity         : {ev.fidelity:.6f}")
    if ev.std_error is not None:
        print(f"std error        : {ev.std_error:.2e}")
    if ev.truncation_error > 0:
        print(f"truncated weight : {ev.truncation_error:.2e}")
    print(f"wall time        : {ev.wall_time:.3f}s")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.enumeration import expected_unique_count, get_table

    table = get_table(args.budget)
    print(f"unique Clifford+T matrices with T <= {args.budget}: {len(table)}")
    print(f"theoretical 24*(3*2^t-2): {expected_unique_count(args.budget)}")
    for t, size in enumerate(table.level_sizes()):
        print(f"  T={t}: {size}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.circuits.qasm import from_qasm
    from repro.resources import estimate_resources

    with open(args.input) as f:
        circuit = from_qasm(f.read())
    est = estimate_resources(circuit, args.budget)
    print(est.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth-rz", help="gridsynth one Rz rotation")
    p.add_argument("--theta", type=float, required=True)
    p.add_argument("--eps", type=float, default=1e-3)
    p.set_defaults(func=_cmd_synth_rz)

    p = sub.add_parser("synth-u3", help="trasyn an arbitrary unitary")
    p.add_argument("--theta", type=float, required=True)
    p.add_argument("--phi", type=float, default=0.0)
    p.add_argument("--lam", type=float, default=0.0)
    p.add_argument("--eps", type=float, default=1e-2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_synth_u3)

    p = sub.add_parser("compile", help="compile an OpenQASM 2.0 circuit")
    p.add_argument("input")
    p.add_argument("--workflow", choices=("trasyn", "gridsynth"),
                   default="trasyn")
    p.add_argument("--eps", type=float, default=0.007)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-O", "--optimization-level", type=_parse_level,
                   choices=(0, 1, 2, 3, 4, "best"), default="best",
                   help="transpile preset 0-4 (4 = DAG passes) or the "
                        "fewest-rotations grid search (default)")
    p.add_argument("--target", default=None,
                   help="hardware target: line:8, ring:12, grid:3x3, "
                        "heavy_hex:3, all_to_all:5, or a target .json")
    p.add_argument("--layout", choices=("trivial", "dense"), default="dense",
                   help="initial placement strategy for --target")
    p.add_argument("--objective", choices=("count", "depth", "esp"),
                   default="count",
                   help="variant-selection objective: fewest rotations "
                        "(default), shortest timed schedule, or highest "
                        "predicted success probability")
    p.add_argument("--eps-budget", type=float, default=None,
                   help="circuit-level accuracy budget split across "
                        "rotations by schedule criticality (replaces the "
                        "flat per-rotation --eps)")
    p.add_argument("--validate", choices=("off", "structural", "full"),
                   default="off",
                   help="verify IR invariants and pass contracts at every "
                        "compilation stage (see repro.analysis)")
    p.add_argument("--output", default=None)
    p.add_argument("--cache-file", default=None,
                   help="JSON synthesis cache to reuse and update")
    p.add_argument("--cache-dir", default=None,
                   help="cross-process synthesis store directory to attach "
                        "as the L2 tier (created if missing)")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser(
        "compile-batch",
        help="compile many OpenQASM circuits in parallel with a shared cache",
    )
    p.add_argument("inputs", nargs="+")
    p.add_argument("--workflow", choices=("trasyn", "gridsynth"),
                   default="trasyn")
    p.add_argument("--eps", type=float, default=0.007)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-O", "--optimization-level", type=_parse_level,
                   choices=(0, 1, 2, 3, 4, "best"), default="best",
                   help="transpile preset 0-4 (4 = DAG passes) or the "
                        "fewest-rotations grid search (default)")
    p.add_argument("--target", default=None,
                   help="hardware target: line:8, ring:12, grid:3x3, "
                        "heavy_hex:3, all_to_all:5, or a target .json")
    p.add_argument("--layout", choices=("trivial", "dense"), default="dense",
                   help="initial placement strategy for --target")
    p.add_argument("--objective", choices=("count", "depth", "esp"),
                   default="count",
                   help="variant-selection objective (see compile)")
    p.add_argument("--eps-budget", type=float, default=None,
                   help="circuit-level accuracy budget split across "
                        "rotations by schedule criticality")
    p.add_argument("--validate", choices=("off", "structural", "full"),
                   default="off",
                   help="verify IR invariants and pass contracts at every "
                        "compilation stage (see repro.analysis)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker threads (default: one per circuit, "
                        "capped at CPU count)")
    p.add_argument("--workers", default=None, metavar="N|auto",
                   help="compile on a true process pool instead of threads: "
                        "a process count or 'auto' (scheduler-affinity CPU "
                        "count); results are byte-identical to serial")
    p.add_argument("--cache-file", default=None,
                   help="JSON synthesis cache to reuse and update")
    p.add_argument("--cache-dir", default=None,
                   help="cross-process synthesis store directory shared by "
                        "all workers as the L2 tier (created if missing)")
    p.add_argument("--output-dir", default=None,
                   help="write each compiled circuit as QASM here")
    p.set_defaults(func=_cmd_compile_batch)

    p = sub.add_parser(
        "warm-cache",
        help="precompile a dense Rz catalog into a cross-process store",
    )
    p.add_argument("--cache-dir", required=True,
                   help="store directory to create or extend")
    p.add_argument("--angles", type=int, default=None,
                   help="angle-grid density over one turn (default 64; "
                        "pi/4 multiples are dropped)")
    p.add_argument("--eps", type=float, action="append", default=None,
                   help="epsilon grid point, repeatable (default 1e-2 and "
                        "1e-3; each is snapped to its band floor)")
    p.add_argument("--workers", default=None, metavar="N|auto",
                   help="precompiler processes (default: auto)")
    p.set_defaults(func=_cmd_warm_cache)

    p = sub.add_parser(
        "verify",
        help="check an OpenQASM circuit's structural invariants and, at "
             "--level full, basis and coupling-map compliance",
    )
    p.add_argument("input")
    p.add_argument("--target", default=None,
                   help="coupling map the circuit must comply with "
                        "(line:8, grid:3x3, ..., or a target .json)")
    p.add_argument("--level", choices=("structural", "full"),
                   default="structural",
                   help="structural only (default) or also basis/"
                        "connectivity compliance")
    p.add_argument("--basis", choices=("u3", "rz", "clifford_t"),
                   default=None,
                   help="gate vocabulary the circuit must stay within "
                        "at --level full")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "schedule",
        help="ASAP/ALAP timed schedule with idle accounting and, on "
             "calibrated targets, the predicted success probability",
    )
    p.add_argument("input")
    p.add_argument("--target", default=None,
                   help="hardware target supplying gate durations (and "
                        "calibration for the ESP estimate)")
    p.add_argument("--method", choices=("asap", "alap"), default="asap",
                   help="scheduling discipline (default asap)")
    p.add_argument("--route", action="store_true",
                   help="lay out and route onto --target before scheduling")
    p.add_argument("--layout", choices=("trivial", "dense"), default="dense",
                   help="initial placement strategy for --route")
    p.add_argument("--timeline", action="store_true",
                   help="render the ASCII per-qubit timeline")
    p.add_argument("--width", type=int, default=72,
                   help="timeline width in columns (default 72)")
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser(
        "simulate",
        help="simulate an OpenQASM circuit under logical noise and report "
             "the fidelity against its noiseless state",
    )
    p.add_argument("input")
    p.add_argument("--sim-backend",
                   choices=("auto", "density", "statevector", "mps"),
                   default="auto",
                   help="simulation engine (default: size-based auto-dispatch)")
    p.add_argument("--trajectories", type=int, default=None,
                   help="Monte-Carlo trajectory count for the stochastic "
                        "backends (default: 200 statevector / 50 mps)")
    p.add_argument("--noise-rate", type=float, default=0.0,
                   help="depolarizing logical error rate (0 = noiseless)")
    p.add_argument("--noise-model", choices=("t", "non-pauli"),
                   default="non-pauli",
                   help="which gates the noise follows (RQ2 vs RQ4 model)")
    p.add_argument("--max-bond", type=int, default=None,
                   help="MPS bond-dimension cap (default 64)")
    p.add_argument("--target", default=None,
                   help="derive a heterogeneous noise model from this "
                        "target's gate error table when --noise-rate is 0 "
                        "(needs a saved Target .json with gate_errors; "
                        "bare topology specs carry no calibration)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--uncompiled", action="store_true",
                   help="bypass the JIT-compiled simulation program and "
                        "run the interpreting reference path (bit-identical "
                        "states, mainly for debugging and benchmarks)")
    p.add_argument("--fusion", choices=("2q", "1q", "none"), default="2q",
                   help="gate fusion level for the dense engine: same-pair "
                        "2q blocks + 1q runs (default), 1q runs only, or "
                        "off")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("catalog", help="Clifford+T enumeration summary")
    p.add_argument("--budget", type=int, default=6)
    p.set_defaults(func=_cmd_catalog)

    p = sub.add_parser("estimate", help="surface-code resource estimate")
    p.add_argument("input")
    p.add_argument("--budget", type=float, default=1e-2,
                   help="logical error budget")
    p.set_defaults(func=_cmd_estimate)

    p = sub.add_parser(
        "bench",
        help="run the standing perf harness (writes BENCH_<area>.json)",
    )
    p.add_argument("--area",
                   choices=("routing", "synthesis", "sim", "passes",
                            "cache", "all"),
                   default="all")
    p.add_argument("--quick", action="store_true",
                   help="smoke mode: small sizes, one unwarmed repeat")
    p.add_argument("--warmup", type=int, default=None)
    p.add_argument("--repeats", type=int, default=None)
    p.add_argument("--out-dir", default=".",
                   help="directory for BENCH_<area>.json (default: cwd)")
    p.add_argument("--no-write", action="store_true",
                   help="print medians without writing report files")
    p.add_argument("--compare", action="append", default=None,
                   metavar="REPORT",
                   help="diff a fresh run against this committed "
                        "BENCH_<area>.json (repeatable; exits 2 on "
                        "regression beyond the recorded spread)")
    p.add_argument("--compare-tolerance", type=float, default=None,
                   help="fraction a fresh median may exceed the committed "
                        "max before flagging (default 0.25)")
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
