"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
synth-rz     Synthesize one Rz(theta) rotation with gridsynth.
synth-u3     Synthesize an arbitrary unitary (three Euler angles) with trasyn.
compile      Compile an OpenQASM 2.0 file through a synthesis workflow.
catalog      Print the Clifford+T enumeration summary for a T budget.
estimate     Surface-code resource estimate for an OpenQASM file.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_synth_rz(args: argparse.Namespace) -> int:
    from repro.synthesis.gridsynth import gridsynth_rz

    seq = gridsynth_rz(args.theta, args.eps)
    print(f"error    : {seq.error:.3e}")
    print(f"T count  : {seq.t_count}")
    print(f"Clifford : {seq.clifford_count}")
    print("gates    :", " ".join(seq.gates))
    return 0


def _cmd_synth_u3(args: argparse.Namespace) -> int:
    from repro.linalg import u3
    from repro.synthesis import trasyn

    target = u3(args.theta, args.phi, args.lam)
    seq = trasyn(target, error_threshold=args.eps,
                 rng=np.random.default_rng(args.seed))
    print(f"error    : {seq.error:.3e}")
    print(f"T count  : {seq.t_count}")
    print(f"Clifford : {seq.clifford_count}")
    print("gates    :", " ".join(seq.gates))
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.circuits import t_count, t_depth, clifford_count
    from repro.circuits.qasm import from_qasm, to_qasm
    from repro.experiments.workflows import (
        synthesize_circuit_gridsynth,
        synthesize_circuit_trasyn,
    )

    with open(args.input) as f:
        circuit = from_qasm(f.read())
    rng = np.random.default_rng(args.seed)
    if args.workflow == "trasyn":
        result = synthesize_circuit_trasyn(circuit, args.eps, rng)
    else:
        result = synthesize_circuit_gridsynth(circuit, args.eps)
    out = result.circuit
    print(f"rotations synthesized : {result.n_rotations}")
    print(f"T count               : {t_count(out)}")
    print(f"T depth               : {t_depth(out)}")
    print(f"Clifford count        : {clifford_count(out)}")
    print(f"synthesis error bound : {result.total_synthesis_error:.3e}")
    if args.output:
        with open(args.output, "w") as f:
            f.write(to_qasm(out))
        print(f"wrote {args.output}")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.enumeration import expected_unique_count, get_table

    table = get_table(args.budget)
    print(f"unique Clifford+T matrices with T <= {args.budget}: {len(table)}")
    print(f"theoretical 24*(3*2^t-2): {expected_unique_count(args.budget)}")
    for t, size in enumerate(table.level_sizes()):
        print(f"  T={t}: {size}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.circuits.qasm import from_qasm
    from repro.resources import estimate_resources

    with open(args.input) as f:
        circuit = from_qasm(f.read())
    est = estimate_resources(circuit, args.budget)
    print(est.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth-rz", help="gridsynth one Rz rotation")
    p.add_argument("--theta", type=float, required=True)
    p.add_argument("--eps", type=float, default=1e-3)
    p.set_defaults(func=_cmd_synth_rz)

    p = sub.add_parser("synth-u3", help="trasyn an arbitrary unitary")
    p.add_argument("--theta", type=float, required=True)
    p.add_argument("--phi", type=float, default=0.0)
    p.add_argument("--lam", type=float, default=0.0)
    p.add_argument("--eps", type=float, default=1e-2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_synth_u3)

    p = sub.add_parser("compile", help="compile an OpenQASM 2.0 circuit")
    p.add_argument("input")
    p.add_argument("--workflow", choices=("trasyn", "gridsynth"),
                   default="trasyn")
    p.add_argument("--eps", type=float, default=0.007)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default=None)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("catalog", help="Clifford+T enumeration summary")
    p.add_argument("--budget", type=int, default=6)
    p.set_defaults(func=_cmd_catalog)

    p = sub.add_parser("estimate", help="surface-code resource estimate")
    p.add_argument("input")
    p.add_argument("--budget", type=float, default=1e-2,
                   help="logical error budget")
    p.set_defaults(func=_cmd_estimate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
