"""repro: reproduction of "Reducing T Gates with Unitary Synthesis".

The package implements trasyn — tensor-network-guided synthesis of
arbitrary single-qubit unitaries into Clifford+T — together with every
substrate the paper's evaluation rests on: a Ross-Selinger gridsynth
baseline, exact Clifford+T enumeration, a quantum-circuit IR and
transpiler, a hardware target model with layout/routing
(:mod:`repro.target`), benchmark circuit generators, noisy simulators,
post-synthesis optimizers, and the :mod:`repro.analysis` verification
layer (IR checkers, per-pass contracts, and a project linter).

Quickstart::

    import numpy as np
    from repro import trasyn, gridsynth_u3, haar_random_u2

    u = haar_random_u2(np.random.default_rng(0))
    ours = trasyn(u, error_threshold=0.01)
    baseline = gridsynth_u3(u, 0.01)
    print(ours.t_count, "T gates vs", baseline.t_count)
"""

from repro.analysis import (
    VerificationError,
    check_basis,
    check_connectivity,
    check_schedule,
    verify_circuit,
    verify_compiled,
    verify_dag,
)
from repro.circuits import Circuit, CircuitDAG
from repro.enumeration import build_table, get_table
from repro.optimizers import optimize_circuit
from repro.linalg import haar_random_u2, rz, trace_distance, u3
from repro.pipeline import (
    PassManager,
    SynthesisCache,
    compile_batch,
    compile_circuit,
    preset_pipeline,
)
from repro.schedule import (
    Schedule,
    insert_idle_markers,
    schedule_circuit,
    strip_idle_markers,
    with_idle_noise,
)
from repro.synthesis import GateSequence, allocate_eps_budget, synthesize, trasyn
from repro.synthesis.gridsynth import gridsynth_rz, gridsynth_u3
from repro.target import (
    CouplingMap,
    EspEstimate,
    Layout,
    RoutingMetrics,
    RoutingResult,
    Target,
    estimate_esp,
    parse_target,
    route_circuit,
)
from repro.transpiler import transpile

__version__ = "1.3.0"

__all__ = [
    "Circuit",
    "CircuitDAG",
    "CouplingMap",
    "EspEstimate",
    "GateSequence",
    "Layout",
    "PassManager",
    "RoutingMetrics",
    "RoutingResult",
    "Schedule",
    "SynthesisCache",
    "Target",
    "VerificationError",
    "allocate_eps_budget",
    "build_table",
    "check_basis",
    "check_connectivity",
    "check_schedule",
    "compile_batch",
    "compile_circuit",
    "estimate_esp",
    "get_table",
    "insert_idle_markers",
    "gridsynth_rz",
    "gridsynth_u3",
    "haar_random_u2",
    "optimize_circuit",
    "parse_target",
    "preset_pipeline",
    "route_circuit",
    "rz",
    "schedule_circuit",
    "strip_idle_markers",
    "synthesize",
    "trace_distance",
    "transpile",
    "trasyn",
    "u3",
    "verify_circuit",
    "verify_compiled",
    "verify_dag",
    "with_idle_noise",
]
