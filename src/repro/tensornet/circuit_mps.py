"""Matrix-product-state circuit simulation with bond truncation.

:class:`TraceMPS` (the synthesis engine) represents a *trace tensor*;
this module generalizes the same machinery to *states*: a circuit is
applied gate-by-gate to an open-boundary MPS over the qubit chain, with
every two-qubit gate absorbed by a local contraction + SVD and the bond
dimension capped at ``max_bond``.  Memory is ``O(n * max_bond^2)``
instead of ``2^n``, which is what lets 20+ qubit circuits through the
fidelity-evaluation wall.

Conventions
-----------
* Site tensors have shape ``(D_left, 2, D_right)``; boundary bonds are 1.
* A mixed-canonical form is maintained: everything left of
  :attr:`CircuitMPS.center` is left-canonical, everything right of it is
  right-canonical.  The center is swept (QR/LQ) to each two-qubit gate
  before its SVD, so local singular values *are* Schmidt coefficients
  and truncation is globally optimal, norm-preserving, and exactly
  accounted.
* Gates on non-adjacent qubits work at a bond-dimension cost: whole
  circuits (:meth:`CircuitMPS.run`) are pre-routed to a line target
  with the lookahead router of :mod:`repro.target.routing` and
  un-permuted at the end; single long-range gates (:meth:`apply_2q`)
  fall back to explicit there-and-back swap chains.
* Truncation keeps the state normalized: discarded Schmidt weight is
  accumulated in :attr:`CircuitMPS.truncation_error` and the kept
  spectrum is rescaled, so fidelities stay comparable across backends
  (the reported number is then accurate only up to the accumulated
  truncation weight).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit, Gate

_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
).reshape(2, 2, 2, 2)


class CircuitMPS:
    """A pure state on ``n_qubits`` wires as a bond-truncated MPS."""

    def __init__(
        self,
        n_qubits: int,
        max_bond: int = 64,
        svd_cutoff: float = 1e-12,
    ):
        if n_qubits < 1:
            raise ValueError("CircuitMPS needs at least one qubit")
        if max_bond < 1:
            raise ValueError("max_bond must be positive")
        self.n = n_qubits
        self.max_bond = int(max_bond)
        self.svd_cutoff = float(svd_cutoff)
        self.truncation_error = 0.0  # cumulative discarded Schmidt weight
        zero = np.zeros((1, 2, 1), dtype=complex)
        zero[0, 0, 0] = 1.0
        self.tensors = [zero.copy() for _ in range(n_qubits)]
        # A product state is canonical everywhere; pick site 0.
        self.center = 0

    # -- bond structure ----------------------------------------------------
    def bond_dimensions(self) -> list[int]:
        """Current bond dimensions between neighbouring sites."""
        return [t.shape[2] for t in self.tensors[:-1]]

    # -- canonical-form maintenance ----------------------------------------
    def _move_center(self, to: int) -> None:
        """Sweep the orthogonality center to site ``to`` via QR/LQ."""
        while self.center < to:
            i = self.center
            t = self.tensors[i]
            dl, _, dr = t.shape
            q, r = np.linalg.qr(t.reshape(dl * 2, dr))
            k = q.shape[1]
            self.tensors[i] = np.ascontiguousarray(q.reshape(dl, 2, k))
            self.tensors[i + 1] = np.einsum(
                "kb,bar->kar", r, self.tensors[i + 1]
            )
            self.center = i + 1
        while self.center > to:
            i = self.center
            t = self.tensors[i]
            dl, _, dr = t.shape
            # LQ via QR of the conjugate transpose: t = L Q.
            q, r = np.linalg.qr(t.reshape(dl, 2 * dr).conj().T)
            k = q.shape[1]
            self.tensors[i] = np.ascontiguousarray(
                q.conj().T.reshape(k, 2, dr)
            )
            self.tensors[i - 1] = np.einsum(
                "lar,rk->lak", self.tensors[i - 1], r.conj().T
            )
            self.center = i - 1

    # -- gate application --------------------------------------------------
    def apply_1q(self, m: np.ndarray, q: int) -> None:
        m = np.asarray(m, dtype=complex)
        # Non-unitary operators (Kraus branches) break canonicity away
        # from the center; sweep there first so the form survives.
        if not np.allclose(m @ m.conj().T, np.eye(2), atol=1e-12):
            self._move_center(q)
        self.tensors[q] = np.einsum("ab,lbr->lar", m, self.tensors[q])

    def _apply_2q_adjacent(self, m4: np.ndarray, i: int) -> None:
        """Apply a (2,2,2,2) operator on sites (i, i+1) and re-split."""
        if self.center < i:
            self._move_center(i)
        elif self.center > i + 1:
            self._move_center(i + 1)
        a, b = self.tensors[i], self.tensors[i + 1]
        dl, dr = a.shape[0], b.shape[2]
        theta = np.einsum("lar,rbs->labs", a, b)
        theta = np.einsum("cdab,labs->lcds", m4, theta)
        mat = theta.reshape(dl * 2, 2 * dr)
        u, s, vh = np.linalg.svd(mat, full_matrices=False)
        norm2 = float(np.sum(s**2))
        if norm2 <= 0.0:
            raise ArithmeticError("MPS norm vanished during 2q application")
        keep = int(np.sum(s > self.svd_cutoff * s[0]))
        keep = max(1, min(keep, self.max_bond))
        kept2 = float(np.sum(s[:keep] ** 2))
        self.truncation_error += max(0.0, 1.0 - kept2 / norm2)
        # Rescale so the state stays normalized after truncation.
        s = s[:keep] * np.sqrt(norm2 / kept2)
        self.tensors[i] = np.ascontiguousarray(
            u[:, :keep].reshape(dl, 2, keep)
        )
        self.tensors[i + 1] = np.ascontiguousarray(
            (s[:, None] * vh[:keep]).reshape(keep, 2, dr)
        )
        self.center = i + 1

    def _swap_sites(self, i: int) -> None:
        """Swap the qubits on sites i and i+1."""
        self._apply_2q_adjacent(_SWAP, i)

    def apply_2q(self, m: np.ndarray, a: int, b: int) -> None:
        """Apply a 4x4 gate on qubits ``(a, b)`` (any distance apart)."""
        m4 = np.asarray(m, dtype=complex).reshape(2, 2, 2, 2)
        i, j = (a, b) if a < b else (b, a)
        if a > b:  # gate order (a, b) with a on the right: permute indices
            m4 = m4.transpose(1, 0, 3, 2)
        # Route qubit j down to site i+1, apply, route back.
        for k in range(j - 1, i, -1):
            self._swap_sites(k)
        self._apply_2q_adjacent(m4, i)
        for k in range(i + 1, j):
            self._swap_sites(k)

    def apply_gate(self, gate: Gate) -> None:
        if len(gate.qubits) == 1:
            self.apply_1q(gate.matrix(), gate.qubits[0])
        else:
            self.apply_2q(gate.matrix(), *gate.qubits)

    def run(self, circuit: Circuit, route: bool = True) -> "CircuitMPS":
        """Apply a whole circuit, pre-routing long-range gates.

        When the circuit contains non-adjacent two-qubit gates and
        ``route`` is True, the circuit is first routed to a line target
        with the lookahead router of :mod:`repro.target.routing` —
        fewer swaps than the per-gate there-and-back chains of
        :meth:`apply_2q` — and the final qubit permutation is undone
        with adjacent swaps afterwards, so the resulting state is
        bit-identical (up to truncation-order effects) to the unrouted
        path.  ``route=False`` keeps the legacy per-gate chains, which
        also remain the fallback for tiny circuits.
        """
        if circuit.n_qubits != self.n:
            raise ValueError("circuit size mismatch")
        needs_routing = any(
            len(g.qubits) == 2 and abs(g.qubits[0] - g.qubits[1]) != 1
            for g in circuit.gates
        )
        if route and needs_routing and self.n >= 3:
            from repro.target import Target, route_circuit

            routed = route_circuit(
                circuit, Target.line(self.n), layout="trivial"
            )
            for gate in routed.circuit.gates:
                self.apply_gate(gate)
            self._restore_site_order(routed.final_layout.as_list())
            return self
        for gate in circuit.gates:
            self.apply_gate(gate)
        return self

    def _restore_site_order(self, l2p) -> None:
        """Undo a routing permutation with adjacent swaps.

        ``l2p[v]`` is the site currently holding qubit ``v``; after the
        selection-sort sweep every qubit is back on its own site, so
        readout (amplitudes, overlaps, statevectors) is unchanged.
        """
        p2l = [0] * self.n
        for v, p in enumerate(l2p):
            p2l[p] = v
        for site in range(self.n):
            src = p2l.index(site, site)
            for k in range(src - 1, site - 1, -1):
                self._swap_sites(k)
                p2l[k], p2l[k + 1] = p2l[k + 1], p2l[k]

    # -- measurement-free readout ------------------------------------------
    def norm(self) -> float:
        env = np.ones((1, 1), dtype=complex)
        for t in self.tensors:
            env = np.einsum("lm,lar,mas->rs", env, t, t.conj())
        return float(np.sqrt(max(0.0, env[0, 0].real)))

    def overlap(self, other: "CircuitMPS") -> complex:
        """Inner product <self|other> contracted in O(n D^3)."""
        if other.n != self.n:
            raise ValueError("qubit-count mismatch in overlap")
        env = np.ones((1, 1), dtype=complex)
        for mine, theirs in zip(self.tensors, other.tensors):
            env = np.einsum("lm,lar,mas->rs", env, mine.conj(), theirs)
        return complex(env[0, 0])

    def amplitude(self, bits) -> complex:
        """Amplitude of one computational-basis state (MSB = qubit 0)."""
        bits = list(bits)
        if len(bits) != self.n:
            raise ValueError("bitstring length mismatch")
        vec = np.ones((1, 1), dtype=complex)
        for t, b in zip(self.tensors, bits):
            vec = vec @ t[:, int(b), :]
        return complex(vec[0, 0])

    def to_statevector(self, max_qubits: int = 22) -> np.ndarray:
        """Contract into a dense statevector (guarded against blowups)."""
        if self.n > max_qubits:
            raise ValueError(
                f"refusing dense statevector on {self.n} qubits "
                f"(limit {max_qubits})"
            )
        psi = self.tensors[0].reshape(2, -1)
        for t in self.tensors[1:]:
            psi = np.einsum("xl,lar->xar", psi, t)
            psi = psi.reshape(-1, t.shape[2])
        return np.ascontiguousarray(psi[:, 0])

    def copy(self) -> "CircuitMPS":
        dup = CircuitMPS(self.n, self.max_bond, self.svd_cutoff)
        dup.tensors = [t.copy() for t in self.tensors]
        dup.truncation_error = self.truncation_error
        dup.center = self.center
        return dup
