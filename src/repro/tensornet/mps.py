"""The trace-value MPS at the heart of trasyn.

Given a target unitary ``U`` and per-slot candidate matrices ``M_i[s_i]``
(each slot holding every Clifford+T matrix within a T-count range), the
exponentially large tensor of trace values

    T[s_1, ..., s_l] = Tr( U^dag  M_1[s_1] M_2[s_2] ... M_l[s_l] )

is represented exactly as a matrix product state with bond dimension at
most four: the 2x2 matrix index pair travels along the chain and the
trace closure index is carried through every bond (paper Figure 5(b-c),
implemented here as an open-boundary MPS instead of a ring).

Right-canonicalizing the chain (sequential SVDs, paper step 1) makes the
conditional distributions of step 2 local, so *perfect sampling* from
``p proportional to |T|^2`` costs one forward pass per sample batch, and
every sample's amplitude — hence its synthesis error — comes out of the
pass for free.
"""

from __future__ import annotations

import numpy as np

_EYE2 = np.eye(2, dtype=complex)


class TraceMPS:
    """Open-boundary MPS whose full contraction enumerates trace values.

    Parameters
    ----------
    target:
        The 2x2 unitary ``U`` being synthesized.
    site_matrices:
        List of arrays, one per slot, each of shape ``(N_i, 2, 2)``.
    """

    def __init__(self, target: np.ndarray, site_matrices: list[np.ndarray]):
        if len(site_matrices) < 2:
            raise ValueError("TraceMPS needs at least two slots; use a direct "
                             "table lookup for single-slot synthesis")
        target = np.asarray(target, dtype=complex)
        if target.shape != (2, 2):
            raise ValueError("target must be a 2x2 matrix")
        self.target = target
        self.n_sites = len(site_matrices)
        self.site_sizes = [m.shape[0] for m in site_matrices]
        self.tensors = self._build(target, site_matrices)
        self._canonicalize()

    # -- construction -----------------------------------------------------
    @staticmethod
    def _build(target: np.ndarray, mats: list[np.ndarray]) -> list[np.ndarray]:
        """Assemble site tensors (N, D_left, D_right); bond carries (b, a)."""
        tensors: list[np.ndarray] = []
        udag = target.conj().T
        # Site 1: B[s] = U^dag M_1[s]; vector over bond (b1, a) = B[s, a, b1].
        b = np.einsum("ab,sbc->sac", udag, mats[0])
        first = b.transpose(0, 2, 1).reshape(-1, 1, 4)
        tensors.append(np.ascontiguousarray(first))
        # Middle sites: W[s, (b,a), (c,a')] = M[s, b, c] * delta_{a,a'}.
        for m in mats[1:-1]:
            w = np.einsum("sbc,ad->sbacd", m, _EYE2)
            tensors.append(np.ascontiguousarray(w.reshape(m.shape[0], 4, 4)))
        # Last site: V[s, (b,a)] = M[s, b, a] closes the trace loop.
        last = mats[-1].reshape(-1, 4, 1)
        tensors.append(np.ascontiguousarray(last))
        return tensors

    def _canonicalize(self) -> None:
        """Right-canonical form: orthogonality center moves to site 0."""
        for i in range(self.n_sites - 1, 0, -1):
            a = self.tensors[i]
            n, dl, dr = a.shape
            mat = a.transpose(1, 0, 2).reshape(dl, n * dr)
            u, s, vh = np.linalg.svd(mat, full_matrices=False)
            rank = s.shape[0]
            self.tensors[i] = np.ascontiguousarray(
                vh.reshape(rank, n, dr).transpose(1, 0, 2)
            )
            carry = u * s
            self.tensors[i - 1] = np.einsum(
                "slm,mr->slr", self.tensors[i - 1], carry
            )

    # -- exact contraction (testing / tiny instances) -----------------------
    def full_tensor(self) -> np.ndarray:
        """Contract everything into the dense trace-value tensor.

        Exponential in the number of slots — test-sized inputs only.
        """
        result = self.tensors[0]  # (N1, 1, D)
        n_accum = result.shape[0]
        result = result.reshape(n_accum, -1)
        for a in self.tensors[1:]:
            n, dl, dr = a.shape
            result = np.einsum("xl,slr->xsr", result.reshape(-1, dl), a)
            result = result.reshape(-1, dr)
        return result.reshape(self.site_sizes)

    # -- perfect sampling ----------------------------------------------------
    def sample(
        self,
        n_samples: int,
        rng: np.random.Generator,
        chunk_size: int = 1024,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw samples from p(s_1..s_l) proportional to |T[s_1..s_l]|^2.

        Returns ``(choices, amplitudes)`` with ``choices`` of shape
        ``(n_samples, n_sites)`` and exact complex trace values per
        sample (no renormalization is ever applied to amplitudes).
        """
        first = self.tensors[0][:, 0, :]  # (N1, D)
        probs0 = np.einsum("sd,sd->s", first, first.conj()).real
        probs0 = np.maximum(probs0, 0.0)
        total = probs0.sum()
        if total <= 0.0:
            raise ArithmeticError("degenerate MPS: all trace values vanish")
        choices = np.empty((n_samples, self.n_sites), dtype=np.int64)
        choices[:, 0] = rng.choice(
            probs0.shape[0], size=n_samples, p=probs0 / total
        )
        msgs = first[choices[:, 0]]  # (k, D)
        for site in range(1, self.n_sites):
            a = self.tensors[site]
            sel, msgs = self._sample_site(a, msgs, rng, chunk_size)
            choices[:, site] = sel
        amplitudes = msgs[:, 0]
        return choices, amplitudes

    @staticmethod
    def _sample_site(
        a: np.ndarray,
        msgs: np.ndarray,
        rng: np.random.Generator,
        chunk_size: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One conditional-sampling step for a batch of partial chains."""
        n, dl, dr = a.shape
        k = msgs.shape[0]
        # Gram tensor P[s, l, l'] = sum_r A[s,l,r] conj(A[s,l',r]); the
        # conditional weight is m^dag P m, evaluated as a real matmul.
        gram = np.einsum("slr,smr->slm", a, a.conj()).reshape(n, dl * dl)
        sel = np.empty(k, dtype=np.int64)
        new_msgs = np.empty((k, dr), dtype=complex)
        for lo in range(0, k, chunk_size):
            hi = min(lo + chunk_size, k)
            m = msgs[lo:hi]
            m2 = (m[:, :, None] * m.conj()[:, None, :]).reshape(hi - lo, dl * dl)
            probs = np.maximum((m2 @ gram.T).real, 0.0)  # (c, n)
            cum = probs.cumsum(axis=1)
            norm = cum[:, -1]
            if (norm <= 0).any():
                raise ArithmeticError("conditional distribution vanished")
            r = rng.random(hi - lo) * norm
            chosen = (cum < r[:, None]).sum(axis=1).clip(max=n - 1)
            sel[lo:hi] = chosen
            new_msgs[lo:hi] = np.einsum("cl,clr->cr", m, a[chosen])
        return sel, new_msgs

    # -- greedy decoding (extension beyond the paper) -------------------------
    def best_first(self, beam_width: int = 64) -> tuple[np.ndarray, complex]:
        """Beam search for a high-|amplitude| index assignment.

        The conditional weights used for sampling also steer a
        deterministic beam search; this is the "fine-grained control"
        extension the paper's tensor formulation makes cheap.
        """
        first = self.tensors[0][:, 0, :]
        weights = np.einsum("sd,sd->s", first, first.conj()).real
        order = np.argsort(weights)[::-1][:beam_width]
        beams = [((int(s),), first[s]) for s in order]
        for site in range(1, self.n_sites):
            a = self.tensors[site]
            candidates = []
            msgs = np.stack([m for _, m in beams])
            b = np.einsum("kl,slr->ksr", msgs, a)
            scores = np.einsum("ksr,ksr->ks", b, b.conj()).real
            flat = np.argsort(scores, axis=None)[::-1][: beam_width * 4]
            for f in flat[: beam_width * 4]:
                ki, si = np.unravel_index(f, scores.shape)
                candidates.append((beams[ki][0] + (int(si),), b[ki, si]))
                if len(candidates) >= beam_width:
                    break
            beams = candidates
        best_idx, best_msg = max(beams, key=lambda t: abs(t[1][0]))
        return np.array(best_idx, dtype=np.int64), complex(best_msg[0])
