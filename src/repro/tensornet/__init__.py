"""Matrix-product-state machinery behind trasyn's search (steps 1-2)."""

from repro.tensornet.mps import TraceMPS

__all__ = ["TraceMPS"]
