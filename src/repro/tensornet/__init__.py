"""Matrix-product-state machinery: trasyn's trace MPS and circuit MPS."""

from repro.tensornet.circuit_mps import CircuitMPS
from repro.tensornet.mps import TraceMPS

__all__ = ["CircuitMPS", "TraceMPS"]
