"""Dense linear-algebra utilities for single-qubit unitaries.

This subpackage provides the numerical foundations shared by every
synthesis algorithm in the repository: standard gate matrices, Haar
sampling, the paper's trace-based unitary distance (Equation (2)), and
Euler-angle decompositions used by the transpiler.
"""

from repro.linalg.su2 import (
    GATES,
    closest_u3_angles,
    haar_random_su2,
    haar_random_u2,
    is_unitary,
    normalize_phase,
    rx,
    ry,
    rz,
    trace_distance,
    trace_value,
    u3,
    zyz_angles,
)

__all__ = [
    "GATES",
    "closest_u3_angles",
    "haar_random_su2",
    "haar_random_u2",
    "is_unitary",
    "normalize_phase",
    "rx",
    "ry",
    "rz",
    "trace_distance",
    "trace_value",
    "u3",
    "zyz_angles",
]
