"""Single-qubit unitary helpers: gates, metrics, and decompositions.

The synthesis problem in the paper is stated over 2x2 unitaries, with
closeness measured by the Hilbert-Schmidt trace value |Tr(U^dag V)| / N
and the derived *unitary distance*

    D(U, V) = sqrt(1 - |Tr(U^dag V)|^2 / N^2)        (paper Eq. (2))

which is insensitive to global phase.  All functions here operate on
plain numpy ``complex128`` arrays.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

_SQRT2 = math.sqrt(2.0)

# Standard fault-tolerant gate set {H, S, T, X, Y, Z} plus a few extras
# used by the transpiler and tests.  All matrices are exact up to float
# rounding.
GATES: dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "H": np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2,
    "S": np.array([[1, 0], [0, 1j]], dtype=complex),
    "Sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "T": np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex),
    "Tdg": np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis by ``theta`` (paper's synthesis target)."""
    return np.array(
        [[cmath.exp(-0.5j * theta), 0], [0, cmath.exp(0.5j * theta)]],
        dtype=complex,
    )


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """General single-qubit unitary in the U3 parameterization.

    U3(theta, phi, lam) = Rz(phi) Ry(theta) Rz(lam) up to global phase,
    written in the standard matrix form used by circuit IRs.
    """
    ct, st = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [ct, -cmath.exp(1j * lam) * st],
            [cmath.exp(1j * phi) * st, cmath.exp(1j * (phi + lam)) * ct],
        ],
        dtype=complex,
    )


def is_unitary(m: np.ndarray, tol: float = 1e-9) -> bool:
    """Return True when ``m`` is unitary to within ``tol``."""
    m = np.asarray(m, dtype=complex)
    if m.shape[0] != m.shape[1]:
        return False
    return bool(np.allclose(m.conj().T @ m, np.eye(m.shape[0]), atol=tol))


def trace_value(u: np.ndarray, v: np.ndarray) -> float:
    """Hilbert-Schmidt overlap |Tr(U^dag V)| / N (1.0 means equal up to phase)."""
    n = u.shape[0]
    return abs(np.trace(u.conj().T @ v)) / n


def trace_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Unitary distance from paper Eq. (2); phase-insensitive, in [0, 1]."""
    t = trace_value(u, v)
    return math.sqrt(max(0.0, 1.0 - t * t))


def normalize_phase(u: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Fix the global phase so the first non-negligible entry is real positive.

    Two matrices equal up to global phase normalize to the same array,
    which makes float-keyed deduplication (enumeration step 0) possible.
    """
    flat = u.reshape(-1)
    for x in flat:
        if abs(x) > tol:
            return u * (abs(x) / x)
    return u.copy()


def haar_random_su2(rng: np.random.Generator) -> np.ndarray:
    """Draw a Haar-random element of SU(2)."""
    # Haar measure on SU(2) == uniform on the unit 3-sphere of
    # quaternion coefficients.
    q = rng.normal(size=4)
    q /= np.linalg.norm(q)
    a, b, c, d = q
    return np.array(
        [[a + 1j * b, c + 1j * d], [-c + 1j * d, a - 1j * b]], dtype=complex
    )


def haar_random_u2(rng: np.random.Generator) -> np.ndarray:
    """Draw a Haar-random element of U(2) (SU(2) times a random phase)."""
    phase = cmath.exp(1j * rng.uniform(0.0, 2.0 * math.pi))
    return phase * haar_random_su2(rng)


def zyz_angles(u: np.ndarray) -> tuple[float, float, float, float]:
    """Decompose ``u`` as e^{i alpha} Rz(phi) Ry(theta) Rz(lam).

    Returns ``(theta, phi, lam, alpha)``.  The decomposition always
    exists; angle conventions match :func:`u3` so that
    ``exp(i alpha') * u3(theta, phi, lam)`` reconstructs ``u``.
    """
    u = np.asarray(u, dtype=complex)
    det = u[0, 0] * u[1, 1] - u[0, 1] * u[1, 0]
    alpha = cmath.phase(det) / 2.0
    su = u * cmath.exp(-1j * alpha)
    # su is in SU(2): [[a, -b*], [b, a*]]
    a, b = su[0, 0], su[1, 0]
    theta = 2.0 * math.atan2(abs(b), abs(a))
    if abs(a) < 1e-12:
        # theta == pi: only phi - lam is determined; set lam = 0.
        phi = 2.0 * cmath.phase(b)
        lam = 0.0
    elif abs(b) < 1e-12:
        # theta == 0: only phi + lam is determined; set lam = 0.
        phi = 2.0 * cmath.phase(a.conjugate())
        lam = 0.0
    else:
        phi = cmath.phase(b) - cmath.phase(a)
        lam = -cmath.phase(b) - cmath.phase(a)
    return theta, phi, lam, alpha


def closest_u3_angles(u: np.ndarray) -> tuple[float, float, float]:
    """Return (theta, phi, lam) with u3(...) equal to ``u`` up to phase."""
    theta, phi, lam, _alpha = zyz_angles(u)
    return theta, phi, lam
