"""The ring Z[omega] of cyclotomic integers, omega = exp(i pi / 4).

Elements are written ``a*w^3 + b*w^2 + c*w + d`` with integer
coefficients, where ``w^4 = -1``.  Clifford+T matrix entries are
elements of ``Z[omega] / sqrt(2)^k`` (:class:`DOmega`).

Structure used throughout the synthesis stack:

* ``conj``    — complex conjugation (w -> w^-1 = -w^3),
* ``adj2``    — the sqrt(2)-Galois automorphism (w -> w^3),
* ``norm_zs2``— |x|^2 = x * conj(x), a real element of Z[sqrt(2)],
* ``norm``    — the full rational norm N(x) = |x|^2 * adj2(|x|^2) in Z,
* Euclidean division and gcd (Z[omega] is norm-Euclidean),
* ``sqrt2 = w - w^3`` so divisibility by sqrt(2) is an exact test.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

from repro.rings.zsqrt2 import ZSqrt2

_OMEGA_COMPLEX = cmath.exp(1j * math.pi / 4)


@dataclass(frozen=True)
class ZOmega:
    """Cyclotomic integer ``a*w^3 + b*w^2 + c*w + d`` (w = exp(i pi/4))."""

    a: int
    b: int
    c: int
    d: int

    # -- ring operations ------------------------------------------------
    def __add__(self, other: "ZOmega | int") -> "ZOmega":
        other = _coerce(other)
        return ZOmega(
            self.a + other.a, self.b + other.b, self.c + other.c, self.d + other.d
        )

    def __radd__(self, other: int) -> "ZOmega":
        return self.__add__(other)

    def __sub__(self, other: "ZOmega | int") -> "ZOmega":
        other = _coerce(other)
        return ZOmega(
            self.a - other.a, self.b - other.b, self.c - other.c, self.d - other.d
        )

    def __rsub__(self, other: int) -> "ZOmega":
        return _coerce(other) - self

    def __neg__(self) -> "ZOmega":
        return ZOmega(-self.a, -self.b, -self.c, -self.d)

    def __mul__(self, other: "ZOmega | int") -> "ZOmega":
        other = _coerce(other)
        a, b, c, d = self.a, self.b, self.c, self.d
        e, f, g, h = other.a, other.b, other.c, other.d
        # Polynomial product modulo w^4 = -1.
        return ZOmega(
            a * h + b * g + c * f + d * e,
            b * h + c * g + d * f - a * e,
            c * h + d * g - a * f - b * e,
            d * h - a * g - b * f - c * e,
        )

    def __rmul__(self, other: int) -> "ZOmega":
        return self.__mul__(other)

    def __pow__(self, n: int) -> "ZOmega":
        if n < 0:
            raise ValueError("negative powers are not closed in Z[omega]")
        result = ZOmega(0, 0, 0, 1)
        base = self
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    # -- structure --------------------------------------------------------
    def conj(self) -> "ZOmega":
        """Complex conjugation: w -> -w^3."""
        return ZOmega(-self.c, -self.b, -self.a, self.d)

    def adj2(self) -> "ZOmega":
        """sqrt(2)-conjugation (Galois automorphism w -> w^3)."""
        return ZOmega(self.c, -self.b, self.a, self.d)

    def norm_zs2(self) -> ZSqrt2:
        """|x|^2 = x * conj(x), as an exact element of Z[sqrt(2)]."""
        return (self * self.conj()).to_zsqrt2()

    def to_zsqrt2(self) -> ZSqrt2:
        """Convert a *real* cyclotomic integer to Z[sqrt(2)].

        A real element has b == 0 and a == -c, representing d + c*sqrt(2)
        since sqrt(2) = w - w^3.  Raises for non-real elements.
        """
        if self.b != 0 or self.a != -self.c:
            raise ArithmeticError(f"element is not real: {self}")
        return ZSqrt2(self.d, self.c)

    def norm(self) -> int:
        """Full rational norm N(x) in Z (nonnegative, multiplicative)."""
        return self.norm_zs2().norm()

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0 and self.c == 0 and self.d == 0

    # -- sqrt(2) divisibility ---------------------------------------------
    def mul_sqrt2(self) -> "ZOmega":
        """Multiply by sqrt(2) = w - w^3."""
        return ZOmega(
            self.b - self.d, self.a + self.c, self.b + self.d, self.c - self.a
        )

    def is_divisible_by_sqrt2(self) -> bool:
        return (self.a + self.c) % 2 == 0 and (self.b + self.d) % 2 == 0

    def div_sqrt2(self) -> "ZOmega":
        """Exact division by sqrt(2); raises when not divisible."""
        if not self.is_divisible_by_sqrt2():
            raise ValueError(f"{self} not divisible by sqrt(2)")
        # x / sqrt(2) = x * sqrt(2) / 2
        y = self.mul_sqrt2()
        return ZOmega(y.a // 2, y.b // 2, y.c // 2, y.d // 2)

    def is_divisible_by_2(self) -> bool:
        return all(v % 2 == 0 for v in (self.a, self.b, self.c, self.d))

    # -- Euclidean division -------------------------------------------------
    def divmod(self, other: "ZOmega") -> tuple["ZOmega", "ZOmega"]:
        """Euclidean division with |N(r)| < |N(other)| (norm-Euclidean)."""
        if other.is_zero():
            raise ZeroDivisionError("division by zero in Z[omega]")
        n = other.norm()
        # 1/other = conj(other) * adj2(|other|^2 as Z[omega]) / N(other)
        s = other.norm_zs2()  # |other|^2 in Z[sqrt2]
        s_adj = ZOmega(-s.b, 0, s.b, s.a).adj2()  # embed then conjugate
        num = self * other.conj() * s_adj
        q = ZOmega(
            _round_div(num.a, n),
            _round_div(num.b, n),
            _round_div(num.c, n),
            _round_div(num.d, n),
        )
        r = self - q * other
        return q, r

    def __floordiv__(self, other: "ZOmega") -> "ZOmega":
        return self.divmod(other)[0]

    def __mod__(self, other: "ZOmega") -> "ZOmega":
        return self.divmod(other)[1]

    def divides(self, other: "ZOmega") -> bool:
        if self.is_zero():
            return other.is_zero()
        return other.divmod(self)[1].is_zero()

    def exact_div(self, other: "ZOmega") -> "ZOmega":
        q, r = self.divmod(other)
        if not r.is_zero():
            raise ValueError(f"{self} not divisible by {other}")
        return q

    # -- numeric views ------------------------------------------------------
    def __complex__(self) -> complex:
        w = _OMEGA_COMPLEX
        return self.a * w**3 + self.b * w**2 + self.c * w + self.d

    def real(self) -> float:
        return self.d + (self.c - self.a) / math.sqrt(2.0)

    def imag(self) -> float:
        return self.b + (self.c + self.a) / math.sqrt(2.0)

    def __repr__(self) -> str:
        return f"ZOmega({self.a}, {self.b}, {self.c}, {self.d})"

    @staticmethod
    def from_zsqrt2(x: ZSqrt2) -> "ZOmega":
        """Embed a + b*sqrt(2) as a real cyclotomic integer."""
        return ZOmega(-x.b, 0, x.b, x.a)

    @staticmethod
    def omega_power(n: int) -> "ZOmega":
        """w^n for any integer n (w^8 = 1)."""
        n %= 8
        sign = 1 if n < 4 else -1
        n %= 4
        coeffs = [0, 0, 0, 0]
        coeffs[3 - n] = sign
        return ZOmega(coeffs[0], coeffs[1], coeffs[2], coeffs[3])


def _coerce(x: "ZOmega | int") -> ZOmega:
    if isinstance(x, ZOmega):
        return x
    if isinstance(x, int):
        return ZOmega(0, 0, 0, x)
    raise TypeError(f"cannot coerce {type(x).__name__} to ZOmega")


def _round_div(num: int, den: int) -> int:
    if den < 0:
        num, den = -num, -den
    return (2 * num + den) // (2 * den)


def gcd(x: ZOmega, y: ZOmega) -> ZOmega:
    """Greatest common divisor in Z[omega] (defined up to a unit)."""
    while not y.is_zero():
        _, r = x.divmod(y)
        x, y = y, r
    return x


ZERO = ZOmega(0, 0, 0, 0)
ONE = ZOmega(0, 0, 0, 1)
OMEGA = ZOmega(0, 0, 1, 0)
SQRT2_OMEGA = ZOmega(-1, 0, 1, 0)  # sqrt(2) = w - w^3
DELTA = ZOmega(0, 0, 1, 1)  # 1 + w; delta^dag * delta = lambda * sqrt(2)


@dataclass(frozen=True)
class DOmega:
    """Element ``z / sqrt(2)^k`` with z in Z[omega], in lowest terms.

    This is the exact representation of Clifford+T matrix entries.  The
    reduced denominator exponent ``k`` is the entry's *sde* (smallest
    denominator exponent), the quantity exact synthesis drives to zero.
    """

    z: ZOmega
    k: int

    @staticmethod
    def make(z: ZOmega, k: int) -> "DOmega":
        """Construct in lowest terms (divide out common sqrt(2) factors)."""
        while k > 0 and z.is_divisible_by_sqrt2():
            z = z.div_sqrt2()
            k -= 1
        if z.is_zero():
            k = 0
        return DOmega(z, k)

    def with_denom_exp(self, k: int) -> ZOmega:
        """Numerator when written over denominator sqrt(2)^k (k >= self.k)."""
        if k < self.k:
            raise ValueError("requested denominator exponent too small")
        z = self.z
        for _ in range(k - self.k):
            z = z.mul_sqrt2()
        return z

    def __add__(self, other: "DOmega") -> "DOmega":
        k = max(self.k, other.k)
        return DOmega.make(self.with_denom_exp(k) + other.with_denom_exp(k), k)

    def __sub__(self, other: "DOmega") -> "DOmega":
        k = max(self.k, other.k)
        return DOmega.make(self.with_denom_exp(k) - other.with_denom_exp(k), k)

    def __neg__(self) -> "DOmega":
        return DOmega(-self.z, self.k)

    def __mul__(self, other: "DOmega") -> "DOmega":
        return DOmega.make(self.z * other.z, self.k + other.k)

    def conj(self) -> "DOmega":
        return DOmega(self.z.conj(), self.k)

    def adj2(self) -> "DOmega":
        """sqrt(2)-conjugate; flips the sign of odd denominator powers."""
        z = self.z.adj2()
        if self.k % 2 == 1:
            z = -z
        return DOmega(z, self.k)

    def is_zero(self) -> bool:
        return self.z.is_zero()

    def __complex__(self) -> complex:
        return complex(self.z) / math.sqrt(2.0) ** self.k

    def __repr__(self) -> str:
        return f"DOmega({self.z!r}, k={self.k})"
