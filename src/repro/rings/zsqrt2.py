"""The ring Z[sqrt(2)] of quadratic integers a + b*sqrt(2).

This ring underpins the one-dimensional grid problems of gridsynth and
the Diophantine norm-equation solver.  Key structure:

* Galois conjugation ``x.conj()`` sends sqrt(2) -> -sqrt(2).
* The rational norm ``N(x) = x * x.conj() = a^2 - 2 b^2`` is an integer
  and is multiplicative, making Z[sqrt(2)] a Euclidean domain.
* The fundamental unit is ``LAMBDA = 1 + sqrt(2)`` with inverse
  ``-LAMBDA.conj() = sqrt(2) - 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction


@dataclass(frozen=True)
class ZSqrt2:
    """Element ``a + b * sqrt(2)`` with integer ``a``, ``b``."""

    a: int
    b: int

    # -- ring operations ------------------------------------------------
    def __add__(self, other: "ZSqrt2 | int") -> "ZSqrt2":
        other = _coerce(other)
        return ZSqrt2(self.a + other.a, self.b + other.b)

    def __radd__(self, other: int) -> "ZSqrt2":
        return self.__add__(other)

    def __sub__(self, other: "ZSqrt2 | int") -> "ZSqrt2":
        other = _coerce(other)
        return ZSqrt2(self.a - other.a, self.b - other.b)

    def __rsub__(self, other: int) -> "ZSqrt2":
        return _coerce(other) - self

    def __neg__(self) -> "ZSqrt2":
        return ZSqrt2(-self.a, -self.b)

    def __mul__(self, other: "ZSqrt2 | int") -> "ZSqrt2":
        other = _coerce(other)
        return ZSqrt2(
            self.a * other.a + 2 * self.b * other.b,
            self.a * other.b + self.b * other.a,
        )

    def __rmul__(self, other: int) -> "ZSqrt2":
        return self.__mul__(other)

    def __pow__(self, n: int) -> "ZSqrt2":
        if n < 0:
            raise ValueError("use unit_pow for negative powers of units")
        result = ZSqrt2(1, 0)
        base = self
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    # -- structure ------------------------------------------------------
    def conj(self) -> "ZSqrt2":
        """Galois conjugate: sqrt(2) -> -sqrt(2)."""
        return ZSqrt2(self.a, -self.b)

    def norm(self) -> int:
        """Rational norm N(x) = a^2 - 2 b^2 (multiplicative)."""
        return self.a * self.a - 2 * self.b * self.b

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    def is_unit(self) -> bool:
        return abs(self.norm()) == 1

    def is_doubly_positive(self) -> bool:
        """True when both embeddings are nonnegative (x >= 0 and x.conj() >= 0)."""
        return not self.is_negative() and not self.conj().is_negative()

    def is_negative(self) -> bool:
        """Exact sign test of the real embedding a + b*sqrt(2) < 0."""
        if self.a >= 0 and self.b >= 0:
            return False
        if self.a <= 0 and self.b <= 0:
            return not self.is_zero()
        # Mixed signs: compare a^2 with 2 b^2 carefully.
        if self.a > 0:  # b < 0: negative iff 2 b^2 > a^2
            return 2 * self.b * self.b > self.a * self.a
        # a < 0, b > 0: negative iff a^2 > 2 b^2
        return self.a * self.a > 2 * self.b * self.b

    def sign(self) -> int:
        if self.is_zero():
            return 0
        return -1 if self.is_negative() else 1

    # -- Euclidean division ---------------------------------------------
    def divmod(self, other: "ZSqrt2") -> tuple["ZSqrt2", "ZSqrt2"]:
        """Euclidean division: q, r with self = q*other + r, |N(r)| < |N(other)|."""
        if other.is_zero():
            raise ZeroDivisionError("division by zero in Z[sqrt2]")
        n = other.norm()
        num = self * other.conj()
        qa = _round_div(num.a, n)
        qb = _round_div(num.b, n)
        q = ZSqrt2(qa, qb)
        r = self - q * other
        return q, r

    def __floordiv__(self, other: "ZSqrt2") -> "ZSqrt2":
        return self.divmod(other)[0]

    def __mod__(self, other: "ZSqrt2") -> "ZSqrt2":
        return self.divmod(other)[1]

    def divides(self, other: "ZSqrt2") -> bool:
        """True when self divides other exactly."""
        if self.is_zero():
            return other.is_zero()
        _, r = other.divmod(self)
        return r.is_zero()

    def exact_div(self, other: "ZSqrt2") -> "ZSqrt2":
        """Exact quotient; raises ValueError when not divisible."""
        q, r = self.divmod(other)
        if not r.is_zero():
            raise ValueError(f"{self} not divisible by {other}")
        return q

    # -- numeric views ---------------------------------------------------
    def __float__(self) -> float:
        return self.a + self.b * math.sqrt(2.0)

    def to_fraction_pair(self) -> tuple[Fraction, Fraction]:
        return Fraction(self.a), Fraction(self.b)

    def __repr__(self) -> str:
        return f"ZSqrt2({self.a}, {self.b})"


def _coerce(x: "ZSqrt2 | int") -> ZSqrt2:
    if isinstance(x, ZSqrt2):
        return x
    if isinstance(x, int):
        return ZSqrt2(x, 0)
    raise TypeError(f"cannot coerce {type(x).__name__} to ZSqrt2")


def _round_div(num: int, den: int) -> int:
    """Round num/den to the nearest integer (den may be negative)."""
    if den < 0:
        num, den = -num, -den
    return (2 * num + den) // (2 * den)


SQRT2 = ZSqrt2(0, 1)
LAMBDA = ZSqrt2(1, 1)
LAMBDA_INV = ZSqrt2(-1, 1)  # sqrt(2) - 1 == LAMBDA**-1


def gcd(x: ZSqrt2, y: ZSqrt2) -> ZSqrt2:
    """Greatest common divisor via the Euclidean algorithm."""
    while not y.is_zero():
        _, r = x.divmod(y)
        x, y = y, r
    return x


def unit_pow(n: int) -> tuple[ZSqrt2, ZSqrt2]:
    """Return (LAMBDA^n, LAMBDA^-n) for any integer n (possibly negative)."""
    if n >= 0:
        return LAMBDA**n, LAMBDA_INV**n
    return LAMBDA_INV ** (-n), LAMBDA ** (-n)


def from_dyadic_interval(lo: float, hi: float) -> tuple[float, float]:
    """Clamp helper kept for interface symmetry (floats pass through)."""
    return lo, hi
