"""Exact arithmetic rings used by number-theoretic synthesis.

``Z[sqrt(2)]`` and ``Z[omega]`` (omega = exp(i pi/4)) are the rings in
which Clifford+T matrix entries live, up to powers of ``1/sqrt(2)``.
The gridsynth baseline (Ross-Selinger) and the exact Clifford+T
synthesizer both run entirely on these exact representations, so
unitarity and T counts carry mathematical guarantees instead of float
tolerances.
"""

from repro.rings.zsqrt2 import LAMBDA, LAMBDA_INV, SQRT2, ZSqrt2
from repro.rings.zomega import DOmega, ZOmega

__all__ = ["LAMBDA", "LAMBDA_INV", "SQRT2", "ZSqrt2", "DOmega", "ZOmega"]
