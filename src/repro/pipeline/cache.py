"""Process-wide memoization of synthesized rotations.

Trotter/QAOA circuits repeat a handful of angles hundreds of times, and
whole benchmark suites repeat them across circuits, so the synthesis
result for a ``(kind, angles, eps, method)`` key is worth keeping far
beyond one circuit.  :class:`SynthesisCache` is a thread-safe LRU shared
by every workflow and by the :func:`repro.pipeline.compile_batch`
worker pool, with optional JSON persistence so a warm cache survives
the process (the cross-process half of the paper's caching argument).
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.synthesis.sequences import GateSequence

# Angles are rounded to this many digits when forming keys, matching the
# historical workflow cache: angles closer than 1e-12 share a synthesis.
KEY_DIGITS = 12

Key = tuple  # (kind, method, *rounded params, eps)

_FORMAT_VERSION = 1


def key_rz(theta: float, eps: float, method: str = "gridsynth") -> Key:
    """Cache key for a single Rz(theta) synthesis."""
    return ("rz", method, round(float(theta), KEY_DIGITS), float(eps))


def key_u3(
    theta: float, phi: float, lam: float, eps: float, method: str = "trasyn"
) -> Key:
    """Cache key for a direct U3(theta, phi, lam) synthesis."""
    return (
        "u3",
        method,
        round(float(theta), KEY_DIGITS),
        round(float(phi), KEY_DIGITS),
        round(float(lam), KEY_DIGITS),
        float(eps),
    )


@dataclass(frozen=True)
class CacheStats:
    """Counters snapshot: lifetime hits/misses plus current size."""

    hits: int
    misses: int
    size: int
    maxsize: int | None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SynthesisCache:
    """Thread-safe LRU of :class:`GateSequence` results by rotation key.

    Drop-in successor of the old per-run ``_SequenceCache``: the same
    ``get_or(key, compute)`` interface, plus bounded size, hit/miss
    accounting, and JSON round-tripping via :meth:`save`/:meth:`load`.
    """

    def __init__(self, maxsize: int | None = 100_000):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be positive or None")
        self.maxsize = maxsize
        self._store: OrderedDict[Key, GateSequence] = OrderedDict()
        self._lock = threading.Lock()
        self._inflight: dict[Key, threading.Event] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: Key) -> bool:
        with self._lock:
            return tuple(key) in self._store

    def get(self, key: Key) -> GateSequence | None:
        key = tuple(key)
        with self._lock:
            seq = self._store.get(key)
            if seq is not None:
                self._store.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
            return seq

    def put(self, key: Key, seq: GateSequence) -> GateSequence:
        """Insert unless present; returns the canonical stored value."""
        key = tuple(key)
        with self._lock:
            existing = self._store.get(key)
            if existing is not None:
                self._store.move_to_end(key)
                return existing
            self._store[key] = seq
            if self.maxsize is not None:
                while len(self._store) > self.maxsize:
                    self._store.popitem(last=False)
            return seq

    def get_or(
        self, key: Key, compute: Callable[[], GateSequence]
    ) -> GateSequence:
        """Return the cached sequence, computing and storing on a miss.

        ``compute`` runs outside the lock so workers on *different*
        keys never serialize on synthesis, while workers racing on the
        *same* key coordinate through an in-flight event: one computes,
        the rest wait and read its result, so a cold parallel batch
        synthesizes each unique rotation exactly once.
        """
        key = tuple(key)
        seq = self.get(key)
        if seq is not None:
            return seq
        with self._lock:
            event = self._inflight.get(key)
            owner = event is None
            if owner:
                event = self._inflight[key] = threading.Event()
        if not owner:
            event.wait()
            seq = self.get(key)
            if seq is not None:
                return seq
            # The owner's compute failed; fall back to our own attempt.
            return self.put(key, compute())
        try:
            return self.put(key, compute())
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._store),
                maxsize=self.maxsize,
            )

    # -- persistence -------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write every entry as JSON (atomic replace).

        Routed through :func:`repro.analysis.atomic_write_json`: the
        payload is serialized first and published with a unique temp
        file + ``os.replace``, so a failed save (full disk, kill) can
        never truncate or corrupt an existing cache file.
        """
        from repro.analysis.atomic_io import atomic_write_json

        with self._lock:
            entries = [
                {"key": list(k), "gates": list(s.gates), "error": s.error}
                for k, s in self._store.items()
            ]
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        atomic_write_json(path, payload)

    @classmethod
    def load(
        cls, path: str | os.PathLike, maxsize: int | None = 100_000
    ) -> "SynthesisCache":
        """Rebuild a cache from :meth:`save` output."""
        cache = cls(maxsize=maxsize)
        cache.merge_from(path)
        return cache

    def merge_from(self, path: str | os.PathLike) -> int:
        """Load entries from disk into this cache; returns count added."""
        with open(path) as f:
            payload = json.load(f)
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported cache format in {path!r}")
        added = 0
        for entry in payload["entries"]:
            key = tuple(
                tuple(p) if isinstance(p, list) else p for p in entry["key"]
            )
            if key not in self:
                self.put(
                    key,
                    GateSequence(
                        gates=tuple(entry["gates"]),
                        error=float(entry["error"]),
                    ),
                )
                added += 1
        return added
