"""Process-wide memoization of synthesized rotations.

Trotter/QAOA circuits repeat a handful of angles hundreds of times, and
whole benchmark suites repeat them across circuits, so the synthesis
result for a ``(kind, angles, eps, method)`` key is worth keeping far
beyond one circuit.  :class:`SynthesisCache` is a thread-safe LRU shared
by every workflow and by the :func:`repro.pipeline.compile_batch`
worker pool, with optional JSON persistence so a warm cache survives
the process.

The cross-process half of the paper's caching argument lives in
:mod:`repro.pipeline.store`: pass ``store=`` (a
:class:`~repro.pipeline.store.DiskSynthesisStore`) and the LRU becomes
the L1 write-through tier of a two-level hierarchy — L1 misses probe
the shared on-disk segment store before synthesizing, and fresh results
are written through to it.  Per-tier hits land in :class:`CacheStats`.

Epsilon banding
---------------
Keys never carry the caller's exact ``eps`` float.  Thresholds are
bucketed into log-spaced bands (:data:`EPS_BANDS_PER_DECADE` per
decade) and the band *floor* — the strictest value in the band — is
both the key component and the threshold actually synthesized at, so
one cached word provably satisfies every request in its band.  Lookups
through the disk store additionally fall back to stricter bands: a
request at ``eps=1e-3`` can reuse a cataloged ``1e-4`` entry, never the
reverse.
"""

from __future__ import annotations

import json
import math
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.synthesis.sequences import GateSequence

# Angles are rounded to this many digits when forming keys, matching the
# historical workflow cache: angles closer than 1e-12 share a synthesis.
KEY_DIGITS = 12

#: Log-spaced epsilon bands per decade of threshold: band edges sit at
#: ``10**(-k / EPS_BANDS_PER_DECADE)``, a factor of ~1.78 apart, so
#: bucketing to the band floor costs at most that factor in precision
#: (a handful of extra T gates) while collapsing the unbounded space of
#: request floats onto a shared, catalog-friendly grid.
EPS_BANDS_PER_DECADE = 4

Key = tuple  # (kind, method, *rounded params, banded eps)

_FORMAT_VERSION = 1


def eps_band(eps: float) -> int:
    """Band index of ``eps``: smallest ``k`` with ``band_eps(k) <= eps``.

    Decade values (1e-2, 1e-3, ...) sit exactly on band edges and map
    to themselves; everything else maps to the next-stricter edge.  The
    inner ``round`` absorbs float noise so ``eps_band(band_eps(k))``
    round-trips to ``k`` exactly.
    """
    if not eps > 0.0:
        raise ValueError(f"eps must be positive, got {eps!r}")
    return math.ceil(round(-math.log10(eps) * EPS_BANDS_PER_DECADE, 9))


def band_eps(band: int) -> float:
    """The band's floor: the strictest epsilon inside band ``band``."""
    return 10.0 ** (-band / EPS_BANDS_PER_DECADE)


def bucket_eps(eps: float) -> float:
    """Snap ``eps`` down to its band floor (idempotent).

    The returned threshold is what the pipeline synthesizes at and what
    cache keys carry, so a cached sequence's error is ``<=`` every
    request epsilon that buckets to it.
    """
    return band_eps(eps_band(eps))


def key_rz(theta: float, eps: float, method: str = "gridsynth") -> Key:
    """Cache key for a single Rz(theta) synthesis (eps banded)."""
    return ("rz", method, round(float(theta), KEY_DIGITS), bucket_eps(eps))


def key_u3(
    theta: float, phi: float, lam: float, eps: float, method: str = "trasyn"
) -> Key:
    """Cache key for a direct U3(theta, phi, lam) synthesis (eps banded)."""
    return (
        "u3",
        method,
        round(float(theta), KEY_DIGITS),
        round(float(phi), KEY_DIGITS),
        round(float(lam), KEY_DIGITS),
        bucket_eps(eps),
    )


def stricter_keys(key: Key, depth: int) -> list[Key]:
    """The same rotation's keys in the next ``depth`` stricter bands.

    Keys place the banded epsilon last, so a fallback probe only swaps
    that component.  Used by the disk store's cross-band lookup: any of
    these entries satisfies a request at ``key``'s band.
    """
    band = eps_band(key[-1])
    return [key[:-1] + (band_eps(band + i),) for i in range(1, depth + 1)]


@dataclass(frozen=True)
class CacheStats:
    """Counters snapshot: lifetime per-tier hits/misses plus sizes.

    ``hits``/``misses`` count L1 (in-memory LRU) lookups.  When a disk
    store is attached, every L1 miss that reaches the synthesis path
    also resolves against L2 and lands in exactly one of ``l2_hits``
    (exact key), ``l2_fallback_hits`` (stricter-band reuse), or
    ``l2_misses`` (a real synthesis happened).
    """

    hits: int
    misses: int
    size: int
    maxsize: int | None
    l2_hits: int = 0
    l2_fallback_hits: int = 0
    l2_misses: int = 0
    store_attached: bool = False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def computes(self) -> int:
        """Synthesis invocations: L2 misses when a store is attached."""
        return self.l2_misses if self.store_attached else self.misses


class SynthesisCache:
    """Thread-safe LRU of :class:`GateSequence` results by rotation key.

    Drop-in successor of the old per-run ``_SequenceCache``: the same
    ``get_or(key, compute)`` interface, plus bounded size, hit/miss
    accounting, and JSON round-tripping via :meth:`save`/:meth:`load`.

    With ``store=`` (a :class:`repro.pipeline.store.DiskSynthesisStore`
    or anything matching its ``get``/``get_fallback``/``put`` surface)
    the LRU becomes the L1 of a two-tier hierarchy: L1 misses consult
    the shared on-disk store — exact key first, then stricter epsilon
    bands — and only synthesize on an L2 miss, writing the fresh result
    through to the store's pending segment.
    """

    def __init__(self, maxsize: int | None = 100_000, store=None):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be positive or None")
        self.maxsize = maxsize
        self._store: OrderedDict[Key, GateSequence] = OrderedDict()
        self._lock = threading.Lock()
        self._inflight: dict[Key, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._l2_hits = 0
        self._l2_fallback_hits = 0
        self._l2_misses = 0
        self._disk = store

    @property
    def store(self):
        """The attached L2 disk store, or None."""
        return self._disk

    def attach_store(self, store) -> None:
        """Attach an L2 disk store (once; reattaching is an error)."""
        with self._lock:
            if self._disk is not None and self._disk is not store:
                raise ValueError("cache already has a different store")
            self._disk = store

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: Key) -> bool:
        with self._lock:
            return tuple(key) in self._store

    def get(self, key: Key) -> GateSequence | None:
        key = tuple(key)
        with self._lock:
            seq = self._store.get(key)
            if seq is not None:
                self._store.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
            return seq

    def put(self, key: Key, seq: GateSequence) -> GateSequence:
        """Insert unless present; returns the canonical stored value."""
        key = tuple(key)
        with self._lock:
            existing = self._store.get(key)
            if existing is not None:
                self._store.move_to_end(key)
                return existing
            self._store[key] = seq
            if self.maxsize is not None:
                while len(self._store) > self.maxsize:
                    self._store.popitem(last=False)
            return seq

    def get_or(
        self, key: Key, compute: Callable[[], GateSequence]
    ) -> GateSequence:
        """Return the cached sequence, computing and storing on a miss.

        ``compute`` runs outside the lock so workers on *different*
        keys never serialize on synthesis, while workers racing on the
        *same* key coordinate through an in-flight event: one computes,
        the rest wait and read its result, so a cold parallel batch
        synthesizes each unique rotation exactly once.

        When a disk store is attached, the owner resolves an L1 miss
        against it (exact key, then stricter bands) before computing,
        and writes a computed result through to the store.
        """
        key = tuple(key)
        seq = self.get(key)
        if seq is not None:
            return seq
        with self._lock:
            event = self._inflight.get(key)
            owner = event is None
            if owner:
                event = self._inflight[key] = threading.Event()
        if not owner:
            event.wait()
            seq = self.get(key)
            if seq is not None:
                return seq
            # The owner's compute failed; fall back to our own attempt.
            return self.put(key, self._resolve(key, compute))
        try:
            return self.put(key, self._resolve(key, compute))
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()

    def _resolve(
        self, key: Key, compute: Callable[[], GateSequence]
    ) -> GateSequence:
        """L2 lookup (exact, then stricter bands), else compute+write."""
        if self._disk is None:
            return compute()
        seq = self._disk.get(key)
        if seq is not None:
            with self._lock:
                self._l2_hits += 1
            return seq
        seq = self._disk.get_fallback(key)
        if seq is not None:
            # Promoted into L1 under the *requested* key by the caller;
            # the store keeps only the stricter original.
            with self._lock:
                self._l2_fallback_hits += 1
            return seq
        with self._lock:
            self._l2_misses += 1
        seq = compute()
        self._disk.put(key, seq)
        return seq

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._store),
                maxsize=self.maxsize,
                l2_hits=self._l2_hits,
                l2_fallback_hits=self._l2_fallback_hits,
                l2_misses=self._l2_misses,
                store_attached=self._disk is not None,
            )

    def absorb_counts(
        self,
        hits: int = 0,
        misses: int = 0,
        l2_hits: int = 0,
        l2_fallback_hits: int = 0,
        l2_misses: int = 0,
    ) -> None:
        """Fold another tier's counter deltas into this cache's stats.

        The process-pool batch path compiles through per-worker caches;
        their counters are shipped back and absorbed here so the
        parent's :meth:`stats` reflect the whole batch.
        """
        with self._lock:
            self._hits += hits
            self._misses += misses
            self._l2_hits += l2_hits
            self._l2_fallback_hits += l2_fallback_hits
            self._l2_misses += l2_misses

    # -- persistence -------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write every entry as JSON (atomic replace).

        Routed through :func:`repro.analysis.atomic_write_json`: the
        payload is serialized first and published with a unique temp
        file + ``os.replace``, so a failed save (full disk, kill) can
        never truncate or corrupt an existing cache file.
        """
        from repro.analysis.atomic_io import atomic_write_json

        with self._lock:
            entries = [
                {"key": list(k), "gates": list(s.gates), "error": s.error}
                for k, s in self._store.items()
            ]
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        atomic_write_json(path, payload)

    @classmethod
    def load(
        cls, path: str | os.PathLike, maxsize: int | None = 100_000
    ) -> "SynthesisCache":
        """Rebuild a cache from :meth:`save` output."""
        cache = cls(maxsize=maxsize)
        cache.merge_from(path)
        return cache

    def merge_from(self, path: str | os.PathLike) -> int:
        """Load entries from disk into this cache; returns count added."""
        with open(path) as f:
            payload = json.load(f)
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported cache format in {path!r}")
        added = 0
        for entry in payload["entries"]:
            key = tuple(
                tuple(p) if isinstance(p, list) else p for p in entry["key"]
            )
            if key not in self:
                self.put(
                    key,
                    GateSequence(
                        gates=tuple(entry["gates"]),
                        error=float(entry["error"]),
                    ),
                )
                added += 1
        return added
