"""Composable transpiler passes and the pass manager running them.

The fixed function chain of :func:`repro.transpiler.transpile` becomes a
first-class pipeline here (the ``PassManager`` shape of Qiskit/UCC and
qibo's ``Passes``): each rewrite is a :class:`Pass` object, and a
:class:`PassManager` runs an ordered list of them while recording
per-pass wall time and gate-count metrics.  Every pass preserves the
circuit unitary (up to global phase for the decomposition passes), so
pipelines compose freely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.circuits import Circuit, CircuitDAG, DAGTable, rotation_count
from repro.optimizers.columnar import (
    cancel_inverses_table,
    fold_phases_table,
    merge_rotations_table,
    optimize_table,
)
from repro.optimizers.dag_passes import (
    cancel_inverses,
    dag_engine,
    fold_phases_dag,
    merge_rotations,
    optimize_dag,
)
from repro.transpiler.passes import (
    _isolate_1q,
    cancel_inverse_pairs,
    commute_rotations,
    decompose_to_rz_basis,
    merge_1q_runs,
    snap_trivial_rotations,
)


class Pass:
    """A circuit-to-circuit rewrite step.

    Subclasses implement :meth:`run`; ``name`` identifies the pass in
    metrics and reprs.  Passes must not mutate their input circuit.

    ``requires``/``ensures`` declare the pass's contract from the
    :data:`repro.analysis.CONTRACT_VOCABULARY` (``structural``,
    ``basis``, ``connectivity``, ``unitary_preserving``); a pass
    ensuring ``basis`` names its gate vocabulary in ``basis``, and a
    pass that repairs CX orientation on directed couplings sets
    ``fixes_directions``.  ``PassManager(validate=...)`` enforces the
    contracts (see :class:`repro.analysis.ContractChecker`).
    """

    name: str = "pass"
    requires: tuple[str, ...] = ()
    ensures: tuple[str, ...] = ()
    #: Gate vocabulary promised by an ``ensures`` containing "basis"
    #: (a ``repro.analysis.BASIS_SETS`` key or iterable of gate names).
    basis: object = "clifford_t"
    fixes_directions: bool = False

    def run(self, circuit: Circuit) -> Circuit:
        raise NotImplementedError

    def __call__(self, circuit: Circuit) -> Circuit:
        return self.run(circuit)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


@dataclass(frozen=True, repr=False)
class FunctionPass(Pass):
    """Wrap any ``Circuit -> Circuit`` callable as a pass."""

    fn: Callable[[Circuit], Circuit]
    name: str = "function"

    def run(self, circuit: Circuit) -> Circuit:
        return self.fn(circuit)


class MergeRuns(Pass):
    """Fuse maximal 1q-gate runs into single U3 gates."""

    name = "merge_1q_runs"
    ensures = ("unitary_preserving", "basis")
    basis = "u3"

    def __init__(self, drop_identities: bool = True):
        self.drop_identities = drop_identities

    def run(self, circuit: Circuit) -> Circuit:
        return merge_1q_runs(circuit, drop_identities=self.drop_identities)


class CommuteRotations(Pass):
    """Move Rz/Rx through CX to create merge opportunities."""

    name = "commute_rotations"
    ensures = ("unitary_preserving",)

    def run(self, circuit: Circuit) -> Circuit:
        return commute_rotations(circuit)


class CancelInversePairs(Pass):
    """Remove adjacent self-inverse duplicates and inverse pairs."""

    name = "cancel_inverse_pairs"
    ensures = ("unitary_preserving",)

    def __init__(self, max_passes: int = 8):
        self.max_passes = max_passes

    def run(self, circuit: Circuit) -> Circuit:
        return cancel_inverse_pairs(circuit, max_passes=self.max_passes)


class SnapTrivialRotations(Pass):
    """Round rotation angles within ``tol`` of pi/4 multiples."""

    name = "snap_trivial_rotations"
    ensures = ("unitary_preserving",)

    def __init__(self, tol: float = 1e-9):
        self.tol = tol

    def run(self, circuit: Circuit) -> Circuit:
        return snap_trivial_rotations(circuit, tol=self.tol)


class DecomposeToRzBasis(Pass):
    """Lower every 1q gate to {H, Rz} + discrete Cliffords (Eq. 1)."""

    name = "decompose_to_rz_basis"
    ensures = ("unitary_preserving", "basis")
    basis = "rz"

    def run(self, circuit: Circuit) -> Circuit:
        return decompose_to_rz_basis(circuit)


class IsolateU3(Pass):
    """Convert each 1q gate to U3 individually (level-0 lowering)."""

    name = "isolate_u3"
    ensures = ("unitary_preserving", "basis")
    basis = "u3"

    def run(self, circuit: Circuit) -> Circuit:
        return _isolate_1q(circuit)


class SetLayout(Pass):
    """Embed the circuit onto a target's physical wires.

    Computes an initial placement (``"trivial"`` or ``"dense"``, or an
    explicit :class:`repro.target.Layout`) and relabels every gate onto
    physical qubits; the output circuit has ``target.n_qubits`` wires.
    Routing the result with a trivial layout equals routing the input
    with the chosen layout, so this pass always precedes
    :class:`RouteToTarget` in a pipeline.
    """

    name = "set_layout"

    def __init__(self, target, layout="dense"):
        self.target = target
        self.layout = layout

    def run(self, circuit: Circuit) -> Circuit:
        from repro.target import apply_layout, resolve_layout

        placed = resolve_layout(self.layout, circuit, self.target)
        return apply_layout(circuit, placed)


class RouteToTarget(Pass):
    """SABRE-style swap routing onto a target's coupling map.

    Expects the circuit already placed on physical wires (normally by
    :class:`SetLayout`); smaller circuits are embedded trivially.  Only
    the routed circuit flows on through the pipeline — callers needing
    the permutation and swap metrics use
    :func:`repro.target.route_circuit` directly (as
    :func:`repro.pipeline.compile_circuit` does).
    """

    name = "route_to_target"
    ensures = ("connectivity",)

    def __init__(self, target, lookahead: int | None = None,
                 lookahead_weight: float | None = None):
        from repro.target.routing import (
            DEFAULT_LOOKAHEAD,
            DEFAULT_LOOKAHEAD_WEIGHT,
        )

        self.target = target
        self.lookahead = (
            DEFAULT_LOOKAHEAD if lookahead is None else int(lookahead)
        )
        self.lookahead_weight = (
            DEFAULT_LOOKAHEAD_WEIGHT
            if lookahead_weight is None
            else float(lookahead_weight)
        )

    def run(self, circuit: Circuit) -> Circuit:
        from repro.target import route_circuit

        return route_circuit(
            circuit, self.target, layout="trivial",
            lookahead=self.lookahead,
            lookahead_weight=self.lookahead_weight,
        ).circuit


class FixDirections(Pass):
    """Repair CX orientation on directed couplings (H conjugation)."""

    name = "fix_directions"
    requires = ("connectivity",)
    ensures = ("connectivity",)
    fixes_directions = True

    def __init__(self, target):
        self.target = target

    def run(self, circuit: Circuit) -> Circuit:
        from repro.target import fix_gate_directions

        fixed, _ = fix_gate_directions(circuit, self.target)
        return fixed


class SchedulePass(Pass):
    """Analysis pass: attach an ASAP/ALAP timed schedule.

    The circuit flows through unchanged; the computed
    :class:`repro.schedule.Schedule` is kept on the pass instance as
    ``self.schedule`` (an analysis pass in the Qiskit property-set
    sense, without a property set).  Durations come from the target's
    calibration, falling back to arity defaults.
    """

    name = "schedule"

    def __init__(self, target=None, method: str = "asap",
                 durations=None):
        self.target = target
        self.method = method
        self.durations = durations
        self.schedule = None

    def run(self, circuit: Circuit) -> Circuit:
        from repro.schedule import schedule_circuit

        self.schedule = schedule_circuit(
            circuit, self.target, self.durations, method=self.method
        )
        return circuit


class EstimateESP(Pass):
    """Analysis pass: predict the circuit's success probability.

    Stores the :class:`repro.target.EspEstimate` on ``self.estimate``
    (and the underlying ASAP schedule on ``self.schedule``); the
    circuit itself is untouched.
    """

    name = "estimate_esp"

    def __init__(self, target, durations=None):
        if target is None:
            raise ValueError("ESP estimation needs a target")
        self.target = target
        self.durations = durations
        self.schedule = None
        self.estimate = None

    def run(self, circuit: Circuit) -> Circuit:
        from repro.schedule import schedule_circuit
        from repro.target.cost import estimate_esp

        self.schedule = schedule_circuit(circuit, self.target, self.durations)
        self.estimate = estimate_esp(
            circuit, self.target, schedule=self.schedule
        )
        return circuit


class DAGPass(Pass):
    """A rewrite running natively on the dependency IR.

    Subclasses implement :meth:`run_dag` over a
    :class:`~repro.circuits.CircuitDAG` and (optionally)
    :meth:`run_table` over the columnar
    :class:`~repro.circuits.DAGTable`; the base class handles the
    Circuit→IR→Circuit conversion so DAG passes drop into any
    :class:`PassManager` beside the list-based ones.  When the active
    engine (:func:`repro.optimizers.dag_passes.dag_engine`) is
    ``"columnar"`` and the pass implements :meth:`run_table`, the
    node-object DAG is skipped entirely; circuits with gates outside
    the interned vocabulary fall back to the DAG path.
    """

    name = "dag_pass"

    #: Set by subclasses implementing :meth:`run_table`.
    has_table_path = False

    def run_dag(self, dag: CircuitDAG) -> None:
        raise NotImplementedError

    def run_table(self, table: DAGTable) -> None:
        raise NotImplementedError

    def _import_table(self, circuit: Circuit) -> DAGTable | None:
        """The circuit as a table when the columnar path applies."""
        if not (self.has_table_path and dag_engine() == "columnar"):
            return None
        try:
            return DAGTable.from_circuit(circuit)
        except ValueError:
            return None

    def run(self, circuit: Circuit) -> Circuit:
        table = self._import_table(circuit)
        if table is not None:
            self.run_table(table)
            return table.to_circuit()
        dag = CircuitDAG.from_circuit(circuit)
        self.run_dag(dag)
        return dag.to_circuit()


class CancelInverses(DAGPass):
    """Wire-adjacent inverse cancellation on the DAG (to fixpoint)."""

    name = "cancel_inverses"
    ensures = ("unitary_preserving",)
    has_table_path = True

    def run_dag(self, dag: CircuitDAG) -> None:
        cancel_inverses(dag)

    def run_table(self, table: DAGTable) -> None:
        cancel_inverses_table(table)


class MergeRotations(DAGPass):
    """Wire-adjacent rotation merging: rz·rz → rz, u3·u3 fusion."""

    name = "merge_rotations"
    ensures = ("unitary_preserving",)
    has_table_path = True

    def run_dag(self, dag: CircuitDAG) -> None:
        merge_rotations(dag)

    def run_table(self, table: DAGTable) -> None:
        merge_rotations_table(table)


class FoldPhases(DAGPass):
    """Commutation-aware parity phase folding on the DAG."""

    name = "fold_phases"
    ensures = ("unitary_preserving",)
    has_table_path = True

    def run_dag(self, dag: CircuitDAG) -> None:
        fold_phases_dag(dag)

    def run_table(self, table: DAGTable) -> None:
        fold_phases_table(table)


class DagOptimize(DAGPass):
    """The combined cancel/merge/fold fixpoint loop (level-4 core).

    After each run, ``self.stats`` holds the driver's
    :class:`~repro.optimizers.columnar.OptimizeStats` (rounds taken,
    convergence, per-pass removals); ``PassManager.run_detailed``
    surfaces it in the pass's :class:`PassMetrics` ``extra`` dict.
    """

    name = "dag_optimize"
    ensures = ("unitary_preserving",)
    has_table_path = True

    def __init__(self, max_rounds: int = 8):
        self.max_rounds = max_rounds
        self.stats = None

    def run_dag(self, dag: CircuitDAG) -> None:
        self.stats = optimize_dag(dag, max_rounds=self.max_rounds)

    def run_table(self, table: DAGTable) -> None:
        self.stats = optimize_table(table, max_rounds=self.max_rounds)

    def metrics_extra(self) -> dict:
        if self.stats is None:
            return {}
        return {
            "removed": self.stats.removed,
            "rounds": self.stats.rounds,
            "converged": self.stats.converged,
        }


@dataclass(frozen=True)
class PassMetrics:
    """Timing and size accounting for one pass execution.

    ``extra`` carries pass-specific facts (e.g. ``DagOptimize`` reports
    ``removed``/``rounds``/``converged`` from its fixpoint driver).
    """

    name: str
    wall_time: float
    gates_in: int
    gates_out: int
    rotations_in: int
    rotations_out: int
    extra: dict = field(default_factory=dict)


@dataclass
class PipelineResult:
    """Output circuit of a pipeline run plus per-pass metrics."""

    circuit: Circuit
    metrics: list[PassMetrics] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(m.wall_time for m in self.metrics)


class PassManager:
    """An ordered, user-configurable sequence of passes.

    ``PassManager([...]).run(c)`` equals composing the underlying pass
    functions left to right; :meth:`run_detailed` additionally returns
    a :class:`PassMetrics` entry per pass.

    ``validate`` turns on contract verification between passes:
    ``"off"`` (the default) adds no work, ``"structural"`` runs the
    cheap IR well-formedness check after every pass, and ``"full"``
    additionally enforces each pass's ``requires``/``ensures``
    contract, persistent basis/connectivity properties, DAG wire
    consistency for :class:`DAGPass` rewrites, and unitary
    preservation on small circuits.  Violations raise
    :class:`repro.analysis.VerificationError` naming the pass, the
    offending node, and the broken contract.  ``target`` supplies the
    coupling map for connectivity checks when the ensuring pass does
    not carry one.
    """

    def __init__(self, passes: Iterable[Pass] = (), *,
                 validate: str = "off", target=None):
        from repro.analysis.contracts import VALIDATE_MODES

        if validate not in VALIDATE_MODES:
            raise ValueError(
                f"validate must be one of {VALIDATE_MODES}, got {validate!r}"
            )
        self.passes: list[Pass] = list(passes)
        self.validate = validate
        self.target = target

    def append(self, p: Pass) -> "PassManager":
        self.passes.append(p)
        return self

    def extend(self, passes: Iterable[Pass]) -> "PassManager":
        self.passes.extend(passes)
        return self

    def __len__(self) -> int:
        return len(self.passes)

    def __iter__(self) -> Iterator[Pass]:
        return iter(self.passes)

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.passes)
        return f"PassManager([{names}])"

    def run(self, circuit: Circuit) -> Circuit:
        return self.run_detailed(circuit).circuit

    def run_detailed(self, circuit: Circuit) -> PipelineResult:
        """Run every pass in order, collecting per-pass metrics.

        The manager holds no state about the run (the result carries
        the metrics, validation state lives in a per-run
        :class:`repro.analysis.ContractChecker`), so a single instance
        is safe to share across the worker threads of
        :func:`repro.pipeline.compile_batch`.
        """
        from repro.analysis.contracts import ContractChecker

        checker = ContractChecker(self.validate, target=self.target)
        checker.check_input(circuit)
        work = circuit
        metrics: list[PassMetrics] = []
        for p in self.passes:
            checker.before_pass(p, work)
            gates_in = len(work.gates)
            rot_in = rotation_count(work)
            start = time.monotonic()
            if checker.full and isinstance(p, DAGPass):
                # Run the IR rewrite under the manager's control so a
                # corrupted wire is caught (and attributed to the pass)
                # before linearization crashes on it or hides it.  The
                # columnar engine is verified on its own columns,
                # pre-linearization, same as DAG rewrites are.
                table = p._import_table(work)
                if table is not None:
                    p.run_table(table)
                    checker.check_table(p, table)
                    out = table.to_circuit()
                else:
                    dag = CircuitDAG.from_circuit(work)
                    p.run_dag(dag)
                    checker.check_dag(p, dag)
                    out = dag.to_circuit()
            else:
                out = p.run(work)
            elapsed = time.monotonic() - start
            checker.after_pass(p, work, out)
            extra = getattr(p, "metrics_extra", None)
            metrics.append(PassMetrics(
                name=p.name,
                wall_time=elapsed,
                gates_in=gates_in,
                gates_out=len(out.gates),
                rotations_in=rot_in,
                rotations_out=rotation_count(out),
                extra=extra() if callable(extra) else {},
            ))
            work = out
        checker.final(work)
        return PipelineResult(circuit=work, metrics=metrics)
