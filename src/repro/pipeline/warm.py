"""Offline Rz catalog precompiler: ``python -m repro.pipeline.warm``.

"Precompile the world": synthesize a dense Rz angle x epsilon catalog
into a :class:`repro.pipeline.store.DiskSynthesisStore` ahead of time,
sharding the grid across worker processes, so a *fresh* compiler
process starts with warm segments instead of a cold cache — the
cold-start-within-2x-of-warm target the ROADMAP names.

gridsynth is deterministic, so the catalog is fully reproducible: two
runs (or two concurrent precompilers) publish byte-identical
content-addressed segments.  Re-running over an existing store is
incremental — keys already present in the snapshot are skipped — which
also makes an interrupted run resumable.

Also exposed as the ``warm-cache`` CLI command.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.pipeline.batch import default_num_processes
from repro.pipeline.cache import bucket_eps, key_rz
from repro.pipeline.store import DiskSynthesisStore

#: Default epsilon grid: the everyday band and one decade tighter.
#: Values are band floors already, so requests at any epsilon in
#: ``[1e-3, 1e-1]`` find an exact- or stricter-band entry.
DEFAULT_EPS_GRID = (1e-2, 1e-3)

DEFAULT_N_ANGLES = 64


def catalog_angles(n_angles: int) -> list[float]:
    """A dense, trivial-free angle grid: ``k * 2*pi / n`` over one turn.

    Multiples of pi/4 synthesize exactly (T-power words) and never
    reach the cache, so they are dropped from the catalog.
    """
    if n_angles < 1:
        raise ValueError("n_angles must be >= 1")
    quarter = math.pi / 4
    angles = []
    for k in range(1, n_angles + 1):
        theta = 2.0 * math.pi * k / n_angles
        snapped = round(theta / quarter)
        if abs(theta - snapped * quarter) < 1e-12:
            continue
        angles.append(theta)
    return angles


def catalog_keys(
    n_angles: int, eps_grid=DEFAULT_EPS_GRID
) -> list[tuple[float, float]]:
    """The deduplicated ``(theta, banded eps)`` grid to precompile."""
    seen = set()
    tasks = []
    for eps in eps_grid:
        eps_b = bucket_eps(eps)
        for theta in catalog_angles(n_angles):
            key = key_rz(theta, eps_b)
            if key not in seen:
                seen.add(key)
                tasks.append((theta, eps_b))
    return tasks


def _warm_shard(cache_dir: str, tasks: list[tuple[float, float]]) -> dict:
    """Worker: synthesize one task shard into the shared store.

    Opens its own store instance, skips keys already in the snapshot
    (resume), and publishes everything fresh as one flush — a handful
    of consolidated segments per worker rather than one per result.
    """
    from repro.synthesis.gridsynth import gridsynth_rz

    store = DiskSynthesisStore(cache_dir)
    computed = skipped = 0
    for theta, eps_b in tasks:
        key = key_rz(theta, eps_b)
        if store.get(key) is not None:
            skipped += 1
            continue
        store.put(key, gridsynth_rz(theta, eps_b))
        computed += 1
    segments = store.flush()
    return {
        "computed": computed,
        "skipped": skipped,
        "segments": len(segments),
    }


@dataclass(frozen=True)
class WarmReport:
    """Outcome of one precompile run."""

    requested: int
    computed: int
    skipped: int
    segments: int
    workers: int
    wall_time: float

    def summary(self) -> str:
        return (
            f"warmed {self.computed} of {self.requested} catalog entries "
            f"({self.skipped} already present) into {self.segments} "
            f"segment(s) with {self.workers} worker(s) "
            f"in {self.wall_time:.2f}s"
        )


def warm_rz_catalog(
    cache_dir: str | os.PathLike,
    n_angles: int = DEFAULT_N_ANGLES,
    eps_grid=DEFAULT_EPS_GRID,
    workers: int | None = None,
    progress=None,
) -> WarmReport:
    """Precompile a dense Rz angle x epsilon catalog into ``cache_dir``.

    The grid is sharded by the store's own key-shard function and the
    shards are spread across ``workers`` processes (default:
    :func:`default_num_processes`; ``1`` runs inline, no pool), so
    each worker's single flush produces consolidated per-shard
    segments.  Incremental: entries already in the store are skipped.
    """
    from repro.pipeline.store import segments as seg

    start = time.monotonic()
    cache_dir = os.fspath(cache_dir)
    if workers is None:
        workers = default_num_processes()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    store = DiskSynthesisStore(cache_dir)  # create/validate up front
    tasks = catalog_keys(n_angles, eps_grid)
    # Group the grid by store shard so one worker owns a shard's whole
    # slice and its flush writes one consolidated segment for it.
    by_shard: dict[int, list[tuple[float, float]]] = {}
    for theta, eps_b in tasks:
        kstr = seg.key_str(key_rz(theta, eps_b))
        by_shard.setdefault(
            seg.shard_of(kstr, store.n_shards), []
        ).append((theta, eps_b))
    groups = [by_shard[s] for s in sorted(by_shard)]
    workers = min(workers, len(groups)) if groups else 1
    if workers == 1:
        outcomes = [_warm_shard(cache_dir, g) for g in groups]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(_warm_shard, [cache_dir] * len(groups), groups)
            )
    if progress is not None:
        for i, out in enumerate(outcomes):
            progress(
                f"shard group {i}: computed {out['computed']}, "
                f"skipped {out['skipped']}"
            )
    store.refresh()
    return WarmReport(
        requested=len(tasks),
        computed=sum(o["computed"] for o in outcomes),
        skipped=sum(o["skipped"] for o in outcomes),
        segments=sum(o["segments"] for o in outcomes),
        workers=workers,
        wall_time=time.monotonic() - start,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline.warm",
        description=(
            "Precompile a dense Rz angle x epsilon catalog into a "
            "cross-process synthesis store (warm segments for cold "
            "compiler starts)."
        ),
    )
    parser.add_argument(
        "--cache-dir", required=True,
        help="store directory to create or extend",
    )
    parser.add_argument(
        "--angles", type=int, default=DEFAULT_N_ANGLES,
        help=f"angle-grid density over one turn "
             f"(default {DEFAULT_N_ANGLES}; pi/4 multiples are dropped)",
    )
    parser.add_argument(
        "--eps", type=float, action="append", default=None,
        help="epsilon grid point, repeatable "
             f"(default: {' '.join(str(e) for e in DEFAULT_EPS_GRID)}; "
             "each is snapped to its band floor)",
    )
    parser.add_argument(
        "--workers", default="auto",
        help="worker processes: an integer or 'auto' "
             "(default: auto = scheduler-affinity CPU count)",
    )
    return parser


def parse_workers_arg(value: str):
    """CLI ``N|auto`` worker spec -> compile_batch ``workers`` value."""
    if value == "auto":
        return "process"
    try:
        return int(value)
    except ValueError as exc:
        raise SystemExit(
            f"error: --workers must be an integer or 'auto', got {value!r}"
        ) from exc


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    spec = parse_workers_arg(args.workers)
    workers = default_num_processes() if spec == "process" else spec
    report = warm_rz_catalog(
        args.cache_dir,
        n_angles=args.angles,
        eps_grid=tuple(args.eps) if args.eps else DEFAULT_EPS_GRID,
        workers=workers,
        progress=lambda msg: print(f"[warm] {msg}"),
    )
    print(f"[warm] {report.summary()}")
    store = DiskSynthesisStore(args.cache_dir)
    print(f"[warm] store now holds {len(store)} entries "
          f"across {store.stats().n_segments} segment(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
