"""Preset pipelines replicating the paper's transpile settings.

:func:`preset_pipeline` builds the exact pass sequence that
:func:`repro.transpiler.transpile` historically hard-coded, for both
target IRs (CX+U3 for trasyn, CX+H+Rz for gridsynth) at optimization
levels 0-3, with the optional commutation pass of Figure 6.  Level 4
goes beyond the paper: the level-3 sequence plus the commutation-aware
DAG fixpoint (cancel inverses / merge rotations / fold phases) of
:mod:`repro.optimizers.dag_passes`.
:func:`repro.transpiler.transpile` itself now delegates here, so the
presets *are* the reference lowering semantics.
"""

from __future__ import annotations

from typing import Iterator

from repro.circuits import Circuit, rotation_count
from repro.pipeline.passes import (
    CancelInversePairs,
    CommuteRotations,
    DagOptimize,
    DecomposeToRzBasis,
    FixDirections,
    IsolateU3,
    MergeRuns,
    Pass,
    PassManager,
    RouteToTarget,
    SetLayout,
    SnapTrivialRotations,
)

BASES = ("u3", "rz")
OPTIMIZATION_LEVELS = (0, 1, 2, 3, 4)

# Optimization-level cores shared by both bases (paper Section 3.4;
# level 4 adds the commutation-aware DAG fixpoint of
# :mod:`repro.optimizers.dag_passes` on top of the paper's level 3).
_LEVEL_PASSES: dict[int, tuple[str, ...]] = {
    0: (),
    1: ("merge",),
    2: ("cancel", "merge", "snap"),
    3: ("cancel", "merge", "snap", "cancel", "merge"),
    4: ("cancel", "merge", "snap", "cancel", "merge", "dag"),
}

_STEP_FACTORY = {
    "merge": MergeRuns,
    "cancel": CancelInversePairs,
    "snap": SnapTrivialRotations,
    "dag": DagOptimize,
}


def preset_pipeline(
    basis: str = "u3",
    optimization_level: int = 1,
    commutation: bool = False,
    target=None,
    layout="dense",
    validate: str = "off",
) -> PassManager:
    """The pass sequence lowering a circuit to ``basis`` at a level.

    ``basis='u3'`` ends in CX+U3 (the trasyn workflow input);
    ``basis='rz'`` ends in CX+H+Rz (the gridsynth workflow input,
    where level 4 re-runs the DAG fixpoint after lowering so phases
    fold through the freshly exposed CX/Rz stream).

    ``target`` (a :class:`repro.target.Target`) composes the
    connectivity stage — :class:`SetLayout` (``layout`` picks the
    placement strategy), :class:`RouteToTarget`, and
    :class:`FixDirections` — *before* the optimization core and basis
    lowering at every level, so 1q-run merges happen on the routed
    circuit and survive the inserted SWAPs.

    ``validate`` (``"off"``/``"structural"``/``"full"``) turns on
    contract verification between passes; see
    :class:`repro.pipeline.PassManager`.
    """
    if basis not in BASES:
        raise ValueError("basis must be 'u3' or 'rz'")
    if optimization_level not in _LEVEL_PASSES:
        raise ValueError("optimization_level must be 0..4")
    passes: list[Pass] = [SnapTrivialRotations()]
    if commutation:
        passes.append(CommuteRotations())
    if target is not None:
        passes.append(SetLayout(target, layout=layout))
        passes.append(RouteToTarget(target))
        passes.append(FixDirections(target))
    passes.extend(
        _STEP_FACTORY[step]() for step in _LEVEL_PASSES[optimization_level]
    )
    if basis == "rz":
        passes.append(DecomposeToRzBasis())
        passes.append(CancelInversePairs())
        if optimization_level >= 4:
            # Fold the lowered Rz stream itself: phases merge through
            # the CX skeleton that decomposition just exposed.
            passes.append(DagOptimize())
    elif optimization_level == 0:
        # Level 0 converts each 1q gate separately — no run fusion.
        passes.append(IsolateU3())
    else:
        passes.append(MergeRuns())
    return PassManager(passes, validate=validate, target=target)


def iter_presets(
    basis: str, validate: str = "off"
) -> Iterator[tuple[int, bool, PassManager]]:
    """All (level, commutation, pipeline) presets for one target basis.

    This is the grid :func:`repro.experiments.workflows.best_transpile`
    searches to pick the fewest-rotations lowering (Section 3.4).
    """
    for level in OPTIMIZATION_LEVELS:
        for commutation in (False, True):
            yield level, commutation, preset_pipeline(
                basis, level, commutation, validate=validate
            )


def best_preset_lowering(
    circuit: Circuit,
    basis: str,
    commutation: bool | None = None,
    target=None,
    layout="dense",
    validate: str = "off",
) -> Circuit:
    """Fewest-rotations lowering over the preset grid (Section 3.4).

    The single implementation behind both
    :func:`repro.experiments.workflows.best_transpile` and
    ``compile_circuit(optimization_level='best')``.  ``commutation``
    pins the commutation pass on/off; ``None`` searches both.

    With a ``target``, the circuit is laid out, routed, and
    direction-fixed *once* up front (routing is deterministic and
    independent of the preset knobs), then the grid searches lowerings
    of the routed circuit.
    """
    if target is not None:
        from repro.target import fix_gate_directions, route_circuit

        routed = route_circuit(circuit, target, layout=layout)
        circuit, _ = fix_gate_directions(routed.circuit, target)
        if validate != "off":
            from repro.analysis.contracts import verify_compiled

            verify_compiled(circuit, target, level=validate)
    best: tuple[int, Circuit] | None = None
    for _, comm, pipeline in iter_presets(basis, validate=validate):
        if commutation is not None and comm != commutation:
            continue
        cand = pipeline.run(circuit)
        n = rotation_count(cand)
        if best is None or n < best[0]:
            best = (n, cand)
    if best is None:
        # Reachable only when ``commutation`` filters out every preset
        # (asserts would vanish under ``python -O``).
        raise RuntimeError("preset grid produced no candidate lowering")
    return best[1]
