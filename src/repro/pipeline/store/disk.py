"""The cross-process L2 tier: a content-addressed on-disk store.

:class:`DiskSynthesisStore` serves :class:`repro.pipeline.SynthesisCache`
as its shared second level (see the cache-hierarchy analysis the design
follows: a small hot L1 in front of a large shared L2).  The contract
that makes it safe under many concurrent compiler processes:

* **Immutable segments, atomic publish.**  All writes buffer in-process
  (:meth:`put`) and land on disk only through :meth:`flush`, which
  publishes brand-new content-addressed segment files via the
  ``atomic_io`` temp+``os.replace`` idiom.  No file is ever mutated, so
  readers need no locks and crashes can never corrupt published data.

* **Snapshot reads.**  A store instance serves lookups from the set of
  segments present when it was opened (or last :meth:`refresh`-ed), and
  its own unflushed writes stay invisible to lookups (the L1 above
  holds them).  Results therefore depend only on the snapshot — never
  on how concurrent writers interleave — which is what keeps a
  process-pool batch byte-identical to a serial run.

* **Lazy, sharded loading.**  Keys hash onto a fixed shard fan-out and
  a shard's segments are parsed only on the first lookup that touches
  it — opening a store with a multi-thousand-entry catalog costs one
  ``listdir``, in the spirit of mmap-style laziness.

* **Epsilon-band fallback.**  :meth:`get_fallback` probes the same
  rotation at stricter epsilon bands (see
  :func:`repro.pipeline.cache.stricter_keys`), so a request at
  ``eps=1e-3`` reuses a cataloged ``1e-4`` word — satisfying by
  construction, never the reverse.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.pipeline.cache import EPS_BANDS_PER_DECADE, Key, stricter_keys
from repro.pipeline.store import segments as seg
from repro.synthesis.sequences import GateSequence

#: How many stricter bands a fallback lookup probes: two decades'
#: worth, so a 1e-3 request can reuse anything cataloged down to 1e-5.
DEFAULT_FALLBACK_BANDS = 2 * EPS_BANDS_PER_DECADE


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of one store instance's shape and activity."""

    root: str
    n_shards: int
    n_segments: int
    loaded_shards: int
    entries_loaded: int
    pending: int
    segments_published: int
    skipped_segments: int


class DiskSynthesisStore:
    """Shared on-disk ``key -> GateSequence`` store (see module docs).

    Safe for concurrent use by threads (internal lock) and by multiple
    processes (immutable segments + atomic publishes); every process
    opens its own instance over the same directory.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        fallback_bands: int = DEFAULT_FALLBACK_BANDS,
    ):
        if fallback_bands < 0:
            raise ValueError("fallback_bands must be >= 0")
        self.root = os.fspath(root)
        self.fallback_bands = fallback_bands
        self._lock = threading.RLock()
        self._pending: dict[int, dict[str, dict]] = {}
        self._published = 0
        self._skipped = 0
        os.makedirs(self.root, exist_ok=True)
        index = seg.read_index(self.root)
        if index is None:
            index = seg.write_index(self.root, seg.DEFAULT_N_SHARDS)
        self.n_shards = int(index["n_shards"])
        if self.n_shards < 1:
            raise ValueError(
                f"store {self.root!r} has invalid n_shards {self.n_shards}"
            )
        self._scan(index)

    def _scan(self, index: dict | None = None) -> None:
        """(Re)build the segment snapshot: index union directory listing."""
        listed = seg.list_segments(self.root)
        named = set(listed)
        if index is not None:
            named.update(
                n for n in index["segments"]
                if seg.shard_of_segment(n) is not None
            )
        by_shard: dict[int, list[str]] = {}
        for name in sorted(named):
            by_shard.setdefault(seg.shard_of_segment(name), []).append(name)
        self._segments_by_shard = by_shard
        self._shards: dict[int, dict[str, GateSequence]] = {}

    # -- lookups (snapshot only) ------------------------------------------
    def _shard_table(self, shard: int) -> dict[str, GateSequence]:
        table = self._shards.get(shard)
        if table is None:
            table = {}
            for name in self._segments_by_shard.get(shard, ()):
                entries = seg.read_segment(self.root, name)
                if entries is None:
                    self._skipped += 1
                    continue
                for entry in entries:
                    # First segment (sorted name order) wins: load order
                    # is deterministic across processes.
                    table.setdefault(
                        seg.key_str(tuple(
                            tuple(p) if isinstance(p, list) else p
                            for p in entry["key"]
                        )),
                        seg.entry_sequence(entry),
                    )
            self._shards[shard] = table
        return table

    def get(self, key: Key) -> GateSequence | None:
        """Exact-key lookup against the open snapshot."""
        kstr = seg.key_str(tuple(key))
        with self._lock:
            return self._shard_table(seg.shard_of(kstr, self.n_shards)).get(
                kstr
            )

    def get_fallback(self, key: Key) -> GateSequence | None:
        """Stricter-band lookup: any hit satisfies a request at ``key``.

        Probes the same rotation's keys up to ``fallback_bands`` bands
        below the requested epsilon, nearest band first, so the hit
        with the least surplus precision (fewest extra T gates) wins.
        """
        for candidate in stricter_keys(tuple(key), self.fallback_bands):
            seq = self.get(candidate)
            if seq is not None:
                return seq
        return None

    # -- writes (buffered; atomic publish) --------------------------------
    def put(self, key: Key, sequence: GateSequence) -> None:
        """Buffer one entry for the next :meth:`flush`.

        Invisible to this instance's lookups on purpose: the snapshot
        stays immutable so results never depend on write interleaving.
        """
        key = tuple(key)
        kstr = seg.key_str(key)
        with self._lock:
            shard = seg.shard_of(kstr, self.n_shards)
            self._pending.setdefault(shard, {})[kstr] = seg.entry_dict(
                key, sequence
            )

    def flush(self) -> list[str]:
        """Publish pending entries as new segments; returns their names.

        One segment per touched shard, entries sorted for a stable
        content address — two processes flushing identical results
        publish identical files.  The index is rewritten from a fresh
        directory listing afterwards.
        """
        with self._lock:
            pending, self._pending = self._pending, {}
        if not pending:
            return []
        names = []
        for shard in sorted(pending):
            entries = [
                pending[shard][kstr] for kstr in sorted(pending[shard])
            ]
            names.append(seg.write_segment(self.root, shard, entries))
        seg.write_index(self.root, self.n_shards)
        with self._lock:
            self._published += len(names)
        return names

    def refresh(self) -> None:
        """Re-scan the directory, picking up segments published since open.

        Drops loaded shard tables; pending writes are kept.
        """
        with self._lock:
            self._scan(seg.read_index(self.root))

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        """Distinct keys in the snapshot (loads every shard)."""
        with self._lock:
            return sum(
                len(self._shard_table(s))
                for s in range(self.n_shards)
            )

    def __contains__(self, key: Key) -> bool:
        return self.get(key) is not None

    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                root=self.root,
                n_shards=self.n_shards,
                n_segments=sum(
                    len(v) for v in self._segments_by_shard.values()
                ),
                loaded_shards=len(self._shards),
                entries_loaded=sum(len(t) for t in self._shards.values()),
                pending=sum(len(p) for p in self._pending.values()),
                segments_published=self._published,
                skipped_segments=self._skipped,
            )
