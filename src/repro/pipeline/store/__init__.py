"""Cross-process synthesis store: the shared L2 behind the LRU cache.

The paper's caching argument is that Clifford+T synthesis results are
worth keeping far beyond one circuit.  This package keeps them beyond
one *process*: a content-addressed on-disk store of
:class:`~repro.synthesis.GateSequence` results built from immutable,
atomically-published segment files plus a compact index
(:mod:`repro.pipeline.store.segments`), served through
:class:`DiskSynthesisStore` (:mod:`repro.pipeline.store.disk`) with
lazy sharded loading, snapshot-read determinism, and epsilon-band
fallback (a request at ``eps=1e-3`` reuses a cataloged ``1e-4`` word).

Wire it under the in-memory tier with
``SynthesisCache(store=DiskSynthesisStore(path))`` — or just pass
``cache_dir=`` to :func:`repro.pipeline.compile_batch`.  The offline
catalog precompiler that ships warm segments lives in
:mod:`repro.pipeline.warm`.
"""

from repro.pipeline.store.disk import (
    DEFAULT_FALLBACK_BANDS,
    DiskSynthesisStore,
    StoreStats,
)
from repro.pipeline.store.segments import (
    DEFAULT_N_SHARDS,
    FORMAT_VERSION,
)

__all__ = [
    "DEFAULT_FALLBACK_BANDS",
    "DEFAULT_N_SHARDS",
    "DiskSynthesisStore",
    "FORMAT_VERSION",
    "StoreStats",
]
