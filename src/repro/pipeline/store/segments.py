"""Segment-file format of the cross-process synthesis store.

A store directory looks like::

    <root>/
      index.json                  # {"format", "n_shards", "segments"}
      segments/
        seg-03-4f2a9c1d77e0.json  # immutable, content-addressed
        seg-0b-90ee12aa34cd.json

Every segment is an *immutable* JSON file holding a batch of
``key -> GateSequence`` entries for exactly one shard.  Writers never
modify a published file: new results are appended to the store by
publishing a brand-new segment through
:func:`repro.analysis.atomic_write_json` (unique temp + ``os.replace``),
so a reader can never observe a half-written segment and concurrent
writer processes can never corrupt each other.

Segment names are content-addressed — ``seg-<shard>-<digest>.json``
where the digest hashes the canonical entry payload — so two processes
that synthesize the same keys publish the *same file name with the same
bytes* and converge instead of conflicting.

``index.json`` is a compact accelerator, not the source of truth: it is
rewritten (atomically) from a fresh directory listing after every
publish, and readers union it with their own listing on open, so an
index lost to a concurrent rewrite costs nothing.  A damaged or partial
segment (e.g. truncated by a copy gone wrong) is skipped with a
:class:`UserWarning` instead of poisoning the store.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings

from repro.synthesis.sequences import GateSequence

FORMAT_VERSION = "repro-segstore/v1"

#: Fixed shard fan-out: keys hash onto this many buckets, each loaded
#: lazily as one dict.  Recorded in the index so every process hashing
#: into a store agrees (a mismatch is a hard error, not silent misses).
DEFAULT_N_SHARDS = 16

INDEX_NAME = "index.json"
SEGMENT_DIR = "segments"


def key_str(key: tuple) -> str:
    """Canonical JSON serialization of a cache key.

    Shard hashing, entry dictionaries, and the on-disk ``"key"`` field
    all go through this one function, so a key round-trips disk exactly
    (JSON float repr is shortest-round-trip in Python).
    """
    return json.dumps(list(key), separators=(",", ":"))


def key_from_str(text: str) -> tuple:
    return tuple(
        tuple(p) if isinstance(p, list) else p for p in json.loads(text)
    )


def shard_of(kstr: str, n_shards: int) -> int:
    digest = hashlib.sha256(kstr.encode()).digest()
    return int.from_bytes(digest[:4], "big") % n_shards


def segment_name(shard: int, entries: list[dict]) -> str:
    """Content-addressed file name for a segment holding ``entries``."""
    payload = json.dumps(entries, separators=(",", ":"), sort_keys=True)
    digest = hashlib.sha256(payload.encode()).hexdigest()[:12]
    return f"seg-{shard:02d}-{digest}.json"


def shard_of_segment(name: str) -> int | None:
    """Parse the shard index out of a segment file name (None if not one)."""
    if not (name.startswith("seg-") and name.endswith(".json")):
        return None
    parts = name.split("-")
    if len(parts) != 3:
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


def write_segment(root: str, shard: int, entries: list[dict]) -> str:
    """Publish one immutable segment; returns its file name.

    ``entries`` are ``{"key": [...], "gates": [...], "error": float}``
    dicts, sorted by caller for a stable content address.  Publishing
    is atomic, and identical content maps to an identical name, so a
    concurrent identical publish is a harmless same-bytes replace.
    """
    from repro.analysis.atomic_io import atomic_write_json

    name = segment_name(shard, entries)
    seg_dir = os.path.join(root, SEGMENT_DIR)
    os.makedirs(seg_dir, exist_ok=True)
    payload = {
        "format": FORMAT_VERSION,
        "shard": shard,
        "entries": entries,
    }
    atomic_write_json(os.path.join(seg_dir, name), payload)
    return name


def read_segment(root: str, name: str) -> list[dict] | None:
    """Load one segment's entries; None (with a warning) if unreadable.

    Truncated, corrupt, wrong-format, or vanished segment files are a
    recoverable condition — the entries they held are merely cache
    misses — so they are skipped loudly rather than raised.
    """
    path = os.path.join(root, SEGMENT_DIR, name)
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("format") != FORMAT_VERSION:
            raise ValueError(f"format {payload.get('format')!r}")
        entries = payload["entries"]
        if not isinstance(entries, list):
            raise ValueError("entries must be a list")
        for entry in entries:
            # Touch the required fields so a malformed entry fails the
            # whole segment here, not deep inside a lookup.
            if not isinstance(entry["key"], list):
                raise ValueError("entry key must be a list")
            if not isinstance(entry["gates"], list):
                raise ValueError("entry gates must be a list")
            float(entry["error"])
        return entries
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError) as exc:
        warnings.warn(
            f"synthesis store: skipping unreadable segment {path}: {exc}",
            stacklevel=2,
        )
        return None


def entry_dict(key: tuple, seq: GateSequence) -> dict:
    return {
        "key": list(key),
        "gates": list(seq.gates),
        "error": seq.error,
    }


def entry_sequence(entry: dict) -> GateSequence:
    return GateSequence(
        gates=tuple(entry["gates"]), error=float(entry["error"])
    )


def list_segments(root: str) -> list[str]:
    """Segment names currently on disk (sorted; source of truth)."""
    seg_dir = os.path.join(root, SEGMENT_DIR)
    try:
        names = os.listdir(seg_dir)
    except FileNotFoundError:
        return []
    return sorted(n for n in names if shard_of_segment(n) is not None)


def read_index(root: str) -> dict | None:
    """The index accelerator, or None when missing/unreadable."""
    path = os.path.join(root, INDEX_NAME)
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("format") != FORMAT_VERSION:
            raise ValueError(f"format {payload.get('format')!r}")
        int(payload["n_shards"])
        list(payload["segments"])
        return payload
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError) as exc:
        warnings.warn(
            f"synthesis store: rebuilding unreadable index "
            f"{path}: {exc}",
            stacklevel=2,
        )
        return None


def write_index(root: str, n_shards: int) -> dict:
    """Atomically rewrite the index from a fresh directory listing.

    Concurrent writers may race on this rewrite; whichever listing
    lands last is at worst *missing* a segment published in the race
    window, never wrong about one it names — and readers union the
    index with their own listing, so convergence only needs any later
    publish (or open) to observe the full directory.
    """
    from repro.analysis.atomic_io import atomic_write_json

    payload = {
        "format": FORMAT_VERSION,
        "n_shards": n_shards,
        "segments": list_segments(root),
    }
    atomic_write_json(os.path.join(root, INDEX_NAME), payload)
    return payload
