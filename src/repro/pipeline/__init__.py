"""Composable compilation pipeline: passes, presets, caching, batching.

The architectural seam between the paper's algorithms and a production
compiler service:

* :class:`Pass` / :class:`PassManager` — the transpiler rewrites as
  composable objects with per-pass metrics, including the DAG passes
  (:class:`CancelInverses`, :class:`MergeRotations`,
  :class:`FoldPhases`, :class:`DagOptimize`) running on
  :class:`repro.circuits.CircuitDAG` and the connectivity stage
  (:class:`SetLayout`, :class:`RouteToTarget`, :class:`FixDirections`)
  targeting a :class:`repro.target.Target`,
* :func:`preset_pipeline` — the paper's optimization levels 0-3 plus
  the DAG-pass level 4, for both target IRs as ready-made pipelines,
* :class:`SynthesisCache` — a thread-safe LRU of synthesized rotations
  with JSON persistence; attach a :class:`DiskSynthesisStore`
  (:mod:`repro.pipeline.store`) and it becomes the L1 of a two-tier,
  cross-process hierarchy with epsilon-band reuse,
* :func:`compile_circuit` / :func:`compile_batch` — the end-to-end
  transpile→synthesize flow, parallel over circuits on threads or
  (``workers='process'``) a true process pool sharing the disk store,
* :mod:`repro.pipeline.warm` — the offline Rz catalog precompiler
  (``python -m repro.pipeline.warm`` / CLI ``warm-cache``) that ships
  warm segments for cold starts.

Every entry point takes ``validate="off"|"structural"|"full"``, which
runs the :mod:`repro.analysis` contract checkers between passes and on
the final output.
"""

from repro.pipeline.batch import (
    DEFAULT_EPS,
    OBJECTIVES,
    BatchResult,
    SynthesizedCircuit,
    compile_batch,
    compile_circuit,
    default_num_processes,
    map_parallel,
    resolve_workers,
    rng_for_key,
    synthesize_lowered,
)
from repro.pipeline.cache import (
    EPS_BANDS_PER_DECADE,
    CacheStats,
    SynthesisCache,
    band_eps,
    bucket_eps,
    eps_band,
    key_rz,
    key_u3,
    stricter_keys,
)
from repro.pipeline.store import (
    DiskSynthesisStore,
    StoreStats,
)
from repro.pipeline.passes import (
    CancelInversePairs,
    CancelInverses,
    CommuteRotations,
    DAGPass,
    DagOptimize,
    DecomposeToRzBasis,
    EstimateESP,
    FixDirections,
    FoldPhases,
    FunctionPass,
    IsolateU3,
    MergeRotations,
    MergeRuns,
    Pass,
    PassManager,
    PassMetrics,
    PipelineResult,
    RouteToTarget,
    SchedulePass,
    SetLayout,
    SnapTrivialRotations,
)
from repro.pipeline.presets import (
    BASES,
    OPTIMIZATION_LEVELS,
    best_preset_lowering,
    iter_presets,
    preset_pipeline,
)

__all__ = [
    "BASES",
    "BatchResult",
    "CacheStats",
    "DiskSynthesisStore",
    "EPS_BANDS_PER_DECADE",
    "StoreStats",
    "band_eps",
    "best_preset_lowering",
    "bucket_eps",
    "default_num_processes",
    "eps_band",
    "resolve_workers",
    "stricter_keys",
    "CancelInversePairs",
    "CancelInverses",
    "CommuteRotations",
    "DAGPass",
    "DagOptimize",
    "DEFAULT_EPS",
    "DecomposeToRzBasis",
    "EstimateESP",
    "FixDirections",
    "FoldPhases",
    "FunctionPass",
    "IsolateU3",
    "MergeRotations",
    "MergeRuns",
    "OBJECTIVES",
    "OPTIMIZATION_LEVELS",
    "Pass",
    "PassManager",
    "PassMetrics",
    "PipelineResult",
    "RouteToTarget",
    "SchedulePass",
    "SetLayout",
    "SnapTrivialRotations",
    "SynthesisCache",
    "SynthesizedCircuit",
    "compile_batch",
    "compile_circuit",
    "iter_presets",
    "key_rz",
    "key_u3",
    "map_parallel",
    "preset_pipeline",
    "rng_for_key",
    "synthesize_lowered",
]
