"""Circuit-level compilation on top of the pass pipeline and cache.

:func:`compile_circuit` is the full transpile→synthesize flow of paper
Figure 3(a) as one call: lower through a preset :class:`PassManager`
(or the best-of-grid search of Section 3.4), then replace every
nontrivial rotation with a Clifford+T word via the shared
:class:`SynthesisCache`.  :func:`compile_batch` runs many circuits
through it on a ``concurrent.futures`` thread pool — or, with
``workers='process'``, on a true process pool whose workers share the
on-disk segment store (``cache_dir=``) for cross-process reuse.

Determinism: each rotation's synthesis RNG is derived from
``(seed, cache key)`` rather than shared across the walk, so results do
not depend on gate order, circuit order, cache warmth, or worker
scheduling — a cold serial run, a warm run, a thread-pool batch, and a
process-pool batch all produce byte-identical circuits.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.circuits import (
    Circuit,
    clifford_count,
    is_trivial_angle,
    t_count,
    t_depth,
)
from repro.circuits.circuit import Gate
from repro.pipeline.cache import SynthesisCache, bucket_eps, key_rz, key_u3
from repro.pipeline.passes import PassManager
from repro.pipeline.presets import (
    best_preset_lowering,
    iter_presets,
    preset_pipeline,
)
from repro.synthesis import GateSequence

DEFAULT_EPS = 0.007  # the paper's RQ3 per-rotation threshold

#: Objectives ``compile_circuit`` can optimize the preset/target
#: variant grid for: fewest nontrivial rotations (the paper's Section
#: 3.4 criterion), shortest timed schedule, or highest predicted
#: success probability under the target's calibration.
OBJECTIVES = ("count", "depth", "esp")


def default_num_processes() -> int:
    """Worker-pool size for CPU-bound compilation on this host.

    The ``default_num_processes`` idiom from qiskit's parallel
    defaults: the CPUs this process may actually run on (its scheduler
    affinity, which cgroup/container limits shrink) rather than the
    machine's raw core count, overridable with the
    ``REPRO_NUM_PROCESSES`` environment variable.
    """
    env = os.environ.get("REPRO_NUM_PROCESSES")
    if env:
        try:
            n = int(env)
        except ValueError as exc:
            raise ValueError(
                f"REPRO_NUM_PROCESSES must be an integer, got {env!r}"
            ) from exc
        if n < 1:
            raise ValueError("REPRO_NUM_PROCESSES must be >= 1")
        return n
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without affinity (macOS, Windows)
        return max(1, os.cpu_count() or 1)


def map_parallel(fn, items: Sequence, max_workers: int | None = None) -> list:
    """Map ``fn`` over ``items`` on a thread pool, preserving order.

    The shared fan-out primitive behind :func:`compile_batch` and the
    trajectory simulation backend: ``max_workers=1`` (or a single item)
    degrades to a serial loop, otherwise a ``ThreadPoolExecutor`` of
    ``max_workers`` threads (default: one per item, capped at CPU
    count) is used.  Results must not depend on scheduling — callers
    are responsible for deriving any randomness per item, not per
    worker.
    """
    if max_workers is None:
        max_workers = max(1, min(len(items), os.cpu_count() or 1))
    if max_workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))

_WORKFLOW_BASIS = {"trasyn": "u3", "gridsynth": "rz"}

# Gate-name mapping from synthesis tokens to the circuit IR.
_TOKEN_TO_IR = {
    "H": "h", "S": "s", "Sdg": "sdg", "T": "t", "Tdg": "tdg",
    "X": "x", "Y": "y", "Z": "z", "I": "i",
}


@dataclass
class SynthesizedCircuit:
    """A Clifford+T circuit with synthesis provenance."""

    circuit: Circuit
    n_rotations: int
    total_synthesis_error: float  # additive upper bound over rotations
    wall_time: float
    #: Layout/routing provenance when compiled against a hardware
    #: target (:class:`repro.target.RoutingResult`), else None.
    routing: object | None = None
    #: ASAP timed schedule of the final circuit
    #: (:class:`repro.schedule.Schedule`) when compiled against a
    #: target or a time/noise objective, else None.
    schedule: object | None = None
    #: Predicted success probability
    #: (:class:`repro.target.EspEstimate`) when a target was given.
    esp_estimate: object | None = None
    #: The objective the winning variant was selected under.
    objective: str = "count"
    #: Per-rotation epsilon allocation when compiled under an
    #: ``eps_budget`` (flat-order slice per synthesized rotation).
    eps_allocation: tuple[float, ...] | None = None

    @property
    def esp(self) -> float | None:
        """Predicted success probability, if estimated."""
        return self.esp_estimate.esp if self.esp_estimate is not None else None

    @property
    def makespan(self) -> float | None:
        """Schedule length of the final circuit, if scheduled.

        ``is not None`` matters: a gate-free circuit's Schedule has
        ``len() == 0`` and is falsy, but its makespan (0.0) is real.
        """
        return self.schedule.makespan if self.schedule is not None else None

    @property
    def t_count(self) -> int:
        return t_count(self.circuit)

    @property
    def t_depth(self) -> int:
        return t_depth(self.circuit)

    @property
    def clifford_count(self) -> int:
        return clifford_count(self.circuit)


def append_sequence(circuit: Circuit, seq_gates, qubit: int) -> None:
    """Splice a matrix-ordered gate sequence onto one wire (time order)."""
    for token in reversed(list(seq_gates)):
        name = _TOKEN_TO_IR[token]
        if name != "i":
            circuit.append(name, qubit)


def trivial_u3_sequence(g: Gate) -> GateSequence:
    """Exact Clifford+T word for a U3 whose angles are pi/4 multiples."""
    from repro.enumeration import get_table
    from repro.synthesis.trasyn import synthesize

    table = get_table(2)
    res = synthesize(g.matrix(), [2], table=table,
                     rng=np.random.default_rng(0))
    return res.sequence


def rng_for_key(seed: int, key: tuple) -> np.random.Generator:
    """Deterministic per-rotation generator derived from the cache key.

    Hashing the key decouples each synthesis from every other one, so a
    cached result is identical no matter which gate, circuit, thread,
    or process computes it first.
    """
    digest = hashlib.sha256(f"{seed}|{key!r}".encode()).digest()
    return np.random.default_rng(np.frombuffer(digest, dtype=np.uint64))


def synthesize_lowered(
    lowered: Circuit,
    basis: str,
    eps: float,
    cache: SynthesisCache,
    rng_for: Callable[[tuple], np.random.Generator],
    name: str | None = None,
    eps_schedule: Sequence[float] | None = None,
) -> SynthesizedCircuit:
    """Replace every nontrivial rotation of a lowered circuit.

    ``basis='u3'`` expects CX+U3 and synthesizes with trasyn;
    ``basis='rz'`` expects CX+H+Rz and synthesizes with gridsynth.
    ``rng_for`` maps a cache key to the generator used on a cache miss
    (trasyn only; gridsynth is deterministic).

    ``eps_schedule`` overrides the flat ``eps`` with one threshold per
    nontrivial rotation in flat gate order — the consumption side of
    :func:`repro.synthesis.allocate_eps_budget` (trivial-angle
    rotations synthesize exactly and consume no slice).

    Every effective threshold is snapped down to its log-spaced band
    floor (:func:`repro.pipeline.cache.bucket_eps`) before both the
    cache key and the synthesis call, so keys are shared across nearby
    requests and a cached word always satisfies the band it is keyed
    under.  Bucketing only tightens a threshold, so error bounds and
    budget sums still hold.
    """
    from repro.synthesis import trasyn
    from repro.synthesis.gridsynth import gridsynth_rz
    from repro.synthesis.gridsynth.exact_synthesis import t_power_tokens

    if basis not in _WORKFLOW_BASIS.values():
        raise ValueError("basis must be 'u3' or 'rz'")
    start = time.monotonic()
    out = Circuit(lowered.n_qubits, name=name or lowered.name)
    n_rot = 0
    total_err = 0.0

    def next_eps() -> float:
        if eps_schedule is None:
            return eps
        if n_rot > len(eps_schedule):
            raise ValueError(
                f"eps_schedule has {len(eps_schedule)} entries but the "
                f"circuit has more nontrivial rotations"
            )
        return float(eps_schedule[n_rot - 1])

    for g in lowered.gates:
        if basis == "u3" and g.name == "u3":
            q = g.qubits[0]
            if all(is_trivial_angle(p) for p in g.params):
                append_sequence(out, trivial_u3_sequence(g).gates, q)
                continue
            n_rot += 1
            eps_g = bucket_eps(next_eps())
            key = key_u3(*g.params, eps_g)
            target = g.matrix()
            seq = cache.get_or(
                key,
                lambda: trasyn(
                    target, error_threshold=eps_g, rng=rng_for(key)
                ),
            )
            total_err += seq.error
            append_sequence(out, seq.gates, q)
        elif basis == "rz" and g.name == "rz":
            q = g.qubits[0]
            theta = g.params[0]
            if is_trivial_angle(theta):
                j = round(theta / (np.pi / 4))
                append_sequence(out, t_power_tokens(j), q)
                continue
            n_rot += 1
            eps_g = bucket_eps(next_eps())
            key = key_rz(theta, eps_g)
            seq = cache.get_or(key, lambda: gridsynth_rz(theta, eps_g))
            total_err += seq.error
            append_sequence(out, seq.gates, q)
        elif g.name in ("rx", "ry", "rz", "u3"):
            expected = "CX+U3" if basis == "u3" else "CX+H+Rz"
            raise ValueError(f"{basis} flow expects a {expected} circuit")
        else:
            out.gates.append(g)
    return SynthesizedCircuit(
        circuit=out,
        n_rotations=n_rot,
        total_synthesis_error=total_err,
        wall_time=time.monotonic() - start,
        eps_allocation=tuple(eps_schedule) if eps_schedule is not None
        else None,
    )


def _lower(
    circuit: Circuit,
    basis: str,
    optimization_level: int | str,
    commutation: bool | None,
    pipeline: PassManager | None,
    validate: str = "off",
) -> Circuit:
    if pipeline is not None:
        # An explicit pipeline carries its own validate setting.
        return pipeline.run(circuit)
    if optimization_level == "best":
        return best_preset_lowering(
            circuit, basis, commutation, validate=validate
        )
    pm = preset_pipeline(
        basis, int(optimization_level), bool(commutation), validate=validate
    )
    return pm.run(circuit)


def _route_to_target(circuit: Circuit, target, layout, cost_aware=None):
    """Layout + route + direction-fix: ``(RoutingResult, fixed circuit)``."""
    from repro.circuits import depth, two_qubit_depth
    from repro.target import fix_gate_directions, route_circuit

    routing = route_circuit(
        circuit, target, layout=layout, cost_aware=cost_aware
    )
    fixed, n_fixes = fix_gate_directions(routing.circuit, target)
    if n_fixes:
        # The result must carry the circuit actually compiled (and
        # its real depths), not the pre-fix orientation.
        routing.circuit = fixed
        routing.metrics.depth_after = depth(fixed)
        routing.metrics.two_qubit_depth_after = two_qubit_depth(fixed)
    routing.metrics.direction_fixes = n_fixes
    return routing, fixed


def _routing_variants(target, layout, objective):
    """The (layout, cost_aware) grid an objective search routes over.

    Always contains the error-agnostic route of the requested layout —
    the pre-cost-model baseline — so an objective search can only ever
    match or beat it.  Calibrated targets add the cost-aware tie-break
    variant; the ESP objective additionally tries the alternate layout
    strategy.
    """
    variants = [(layout, False)]
    if getattr(target, "edge_errors", None):
        variants.append((layout, True))
    if objective == "esp" and isinstance(layout, str):
        alt = "trivial" if layout == "dense" else "dense"
        variants.append((alt, bool(getattr(target, "edge_errors", None))))
    return variants


def _variant_score(objective: str, result: SynthesizedCircuit, target):
    """Ranking key (lower is better) for one compiled variant."""
    if objective == "esp":
        esp = result.esp if result.esp is not None else 1.0
        return (-esp, result.makespan or 0.0, result.n_rotations)
    if objective == "depth":
        return (result.makespan or 0.0, result.n_rotations,
                len(result.circuit.gates))
    return (result.n_rotations, len(result.circuit.gates))


def compile_circuit(
    circuit: Circuit,
    workflow: str = "trasyn",
    eps: float = DEFAULT_EPS,
    cache: SynthesisCache | None = None,
    seed: int = 0,
    optimization_level: int | str = "best",
    commutation: bool | None = None,
    pipeline: PassManager | None = None,
    pre_transpiled: bool = False,
    target=None,
    layout="dense",
    objective: str = "count",
    eps_budget: float | None = None,
    cost_aware: bool | None = None,
    validate: str = "off",
) -> SynthesizedCircuit:
    """Compile one circuit to Clifford+T through the pass pipeline.

    Parameters
    ----------
    workflow:
        ``'trasyn'`` (CX+U3 lowering, direct U3 synthesis) or
        ``'gridsynth'`` (CX+H+Rz lowering, Rz synthesis).
    optimization_level:
        0-4 selects one preset (4 = the paper's level 3 plus the DAG
        cancel/merge/fold fixpoint); ``'best'`` (default) searches the
        full preset grid for the objective's winner.
    commutation:
        Pin the commutation pass on/off; ``None`` means "off" for fixed
        levels and "search both" for ``'best'``.
    pipeline:
        Explicit :class:`PassManager` overriding the preset choice.
    target:
        A :class:`repro.target.Target`; when given, the circuit is laid
        out (``layout``), SABRE-routed, and direction-fixed before
        lowering, and the returned result carries the
        :class:`~repro.target.RoutingResult` (swap count, permutation,
        depths) as ``result.routing`` plus the timed schedule and ESP
        prediction of the final circuit.
    objective:
        What the preset×target variant grid is ranked by: ``'count'``
        (fewest nontrivial rotations, the historical behavior and
        paper Section 3.4), ``'depth'`` (shortest timed schedule
        under the target's gate durations), or ``'esp'`` (highest
        predicted success probability under the target's calibration —
        the search additionally tries the cost-aware routing variants
        and synthesizes every candidate through the shared cache).
    eps_budget:
        Circuit-level accuracy budget replacing the flat per-rotation
        ``eps``: :func:`repro.synthesis.allocate_eps_budget` splits it
        across rotations in inverse proportion to their schedule
        criticality, and the allocation is recorded on
        ``result.eps_allocation``.
    cost_aware:
        Error-aware routing tie-breaks for the single-variant path
        (see :func:`repro.target.route_dag`; ``None`` auto-enables on
        per-edge-calibrated targets).  Pass ``False`` to pin the
        error-agnostic router, e.g. as an experimental baseline.  The
        objective grid explores both settings regardless.
    validate:
        ``"off"``/``"structural"``/``"full"`` contract verification of
        every compilation stage (see
        :class:`repro.pipeline.PassManager`): the lowering pipeline
        runs under a :class:`repro.analysis.ContractChecker`, the
        routed circuit and the final Clifford+T output are verified
        with :func:`repro.analysis.verify_compiled`, and at ``"full"``
        the attached schedule is checked for per-qubit overlap.
    """
    from repro.analysis.contracts import VALIDATE_MODES

    if validate not in VALIDATE_MODES:
        raise ValueError(
            f"validate must be one of {VALIDATE_MODES}, got {validate!r}"
        )
    if workflow not in _WORKFLOW_BASIS:
        raise ValueError("workflow must be 'trasyn' or 'gridsynth'")
    if objective not in OBJECTIVES:
        raise ValueError(
            f"objective must be one of {OBJECTIVES}, got {objective!r}"
        )
    if objective == "esp" and target is None:
        # Without calibration every variant scores ESP 1.0 and the
        # "search" would silently degrade to a plain compile.
        raise ValueError(
            "objective='esp' needs a target (its calibration defines the "
            "success probability being maximized)"
        )
    basis = _WORKFLOW_BASIS[workflow]
    start = time.monotonic()
    if cache is None:
        cache = SynthesisCache()

    def synth(lowered: Circuit, routing) -> SynthesizedCircuit:
        eps_schedule = None
        if eps_budget is not None:
            from repro.synthesis import allocate_eps_budget

            eps_schedule = allocate_eps_budget(lowered, eps_budget, target)
        result = synthesize_lowered(
            lowered, basis, eps, cache,
            rng_for=lambda key: rng_for_key(seed, key),
            name=circuit.name + f"_{workflow}",
            eps_schedule=eps_schedule,
        )
        result.routing = routing
        result.objective = objective
        if target is not None:
            from repro.schedule import schedule_circuit
            from repro.target.cost import estimate_esp

            result.schedule = schedule_circuit(result.circuit, target)
            result.esp_estimate = estimate_esp(
                result.circuit, target, schedule=result.schedule
            )
        elif objective == "depth":
            from repro.schedule import schedule_circuit

            result.schedule = schedule_circuit(result.circuit)
        if validate != "off":
            from repro.analysis import check_schedule, verify_compiled

            verify_compiled(
                result.circuit, target, level=validate, basis="clifford_t"
            )
            if validate == "full" and result.schedule is not None:
                check_schedule(result.schedule)
        return result

    single_variant = (
        objective == "count"
        or pre_transpiled
        or pipeline is not None
    )
    if single_variant:
        routing = None
        work = circuit
        if target is not None and not pre_transpiled:
            routing, work = _route_to_target(
                circuit, target, layout, cost_aware
            )
            if validate != "off":
                from repro.analysis import verify_compiled

                verify_compiled(work, target, level=validate)
        lowered = work if pre_transpiled else _lower(
            work, basis, optimization_level, commutation, pipeline,
            validate=validate,
        )
        result = synth(lowered, routing)
    else:
        # Objective-driven search: every routing variant × lowering
        # preset is synthesized (the shared cache de-duplicates the
        # rotation work) and ranked by the objective's score.  The
        # error-agnostic dense route + every preset is always in the
        # grid, so the winner is never worse than the baseline.
        candidates: list[tuple[tuple, SynthesizedCircuit]] = []
        route_grid = (
            _routing_variants(target, layout, objective)
            if target is not None
            else [None]
        )
        for route_variant in route_grid:
            if route_variant is None:
                routing, work = None, circuit
            else:
                variant_layout, cost_aware = route_variant
                routing, work = _route_to_target(
                    circuit, target, variant_layout, cost_aware
                )
            if optimization_level == "best":
                lowerings = [
                    pm.run(work)
                    for _, comm, pm in iter_presets(basis, validate=validate)
                    if commutation is None or comm == commutation
                ]
            else:
                pm = preset_pipeline(
                    basis, int(optimization_level), bool(commutation),
                    validate=validate,
                )
                lowerings = [pm.run(work)]
            for lowered in lowerings:
                result = synth(lowered, routing)
                candidates.append(
                    (_variant_score(objective, result, target), result)
                )
        if not candidates:
            raise RuntimeError("objective search produced no candidate")
        candidates.sort(key=lambda c: c[0])
        result = candidates[0][1]
    result.wall_time = time.monotonic() - start
    return result


@dataclass
class BatchResult:
    """Results of a batch compile, in input order."""

    results: list[SynthesizedCircuit]
    wall_time: float
    cache: SynthesisCache

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def summary(self) -> str:
        stats = self.cache.stats()
        lines = [
            f"{len(self.results)} circuits in {self.wall_time:.2f}s "
            f"(cache: {stats.hits} hits / {stats.misses} misses)"
        ]
        for r in self.results:
            lines.append(
                f"  {r.circuit.name or '<unnamed>'}: "
                f"T={r.t_count} Clifford={r.clifford_count} "
                f"rot={r.n_rotations} err<={r.total_synthesis_error:.2e}"
            )
        return "\n".join(lines)


# -- process-pool worker plumbing -----------------------------------------
# One compile context per worker process, installed by the pool
# initializer: a private L1 cache over the shared on-disk L2 (when a
# cache_dir is given) plus the pickled compile kwargs.  Per-key RNG
# derivation makes every worker's output independent of which process
# computes what, so the pool is byte-identical to a serial run.
_WORKER_CTX: dict = {}


def _pool_worker_init(cache_dir: str | None, maxsize, kwargs: dict) -> None:
    store = None
    if cache_dir is not None:
        from repro.pipeline.store import DiskSynthesisStore

        store = DiskSynthesisStore(cache_dir)
    _WORKER_CTX["cache"] = SynthesisCache(maxsize=maxsize, store=store)
    _WORKER_CTX["kwargs"] = kwargs


def _pool_compile_job(circuit: Circuit):
    cache: SynthesisCache = _WORKER_CTX["cache"]
    before = cache.stats()
    result = compile_circuit(
        circuit, cache=cache, **_WORKER_CTX["kwargs"]
    )
    if cache.store is not None:
        # Publish this job's fresh synthesis results so other workers'
        # *future* store opens see them; snapshot reads keep the
        # current batch deterministic regardless.
        cache.store.flush()
    after = cache.stats()
    delta = {
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
        "l2_hits": after.l2_hits - before.l2_hits,
        "l2_fallback_hits": after.l2_fallback_hits
        - before.l2_fallback_hits,
        "l2_misses": after.l2_misses - before.l2_misses,
    }
    return result, delta


def resolve_workers(workers) -> int | None:
    """Normalize a ``workers`` spec to a process count (None = threads).

    ``None``/``'thread'`` selects the thread-pool path; ``'process'``
    a process pool sized by :func:`default_num_processes`; an integer
    ``N >= 1`` a pool of exactly N worker processes.
    """
    if workers is None or workers == "thread":
        return None
    if workers == "process":
        return default_num_processes()
    if isinstance(workers, int) and not isinstance(workers, bool):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return workers
    raise ValueError(
        f"workers must be None, 'thread', 'process', or an int >= 1, "
        f"got {workers!r}"
    )


def compile_batch(
    circuits: Sequence[Circuit],
    workflow: str = "trasyn",
    eps: float = DEFAULT_EPS,
    cache: SynthesisCache | None = None,
    seed: int = 0,
    max_workers: int | None = None,
    optimization_level: int | str = "best",
    commutation: bool | None = None,
    pipeline: PassManager | None = None,
    target=None,
    layout="dense",
    objective: str = "count",
    eps_budget: float | None = None,
    validate: str = "off",
    workers: int | str | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> BatchResult:
    """Compile many circuits concurrently with a shared synthesis cache.

    Two fan-out paths:

    * **Threads** (default, ``workers=None``): ``max_workers=1`` (or a
      single circuit) runs serially, otherwise a thread pool of
      ``max_workers`` (default: one per circuit, capped at CPU count)
      shares one thread-safe cache.  Gridsynth/trasyn are pure-Python
      and CPU-bound, so the GIL caps this path at roughly one core of
      cache-miss throughput — it wins on warm caches, where hits
      dominate and threads avoid pickling.
    * **Processes** (``workers='process'`` or ``workers=N``): a
      ``ProcessPoolExecutor`` compiles circuits in true parallel, one
      private L1 cache per worker over the shared on-disk store named
      by ``cache_dir`` (each worker publishes its fresh results as
      atomic segments).  ``'process'`` sizes the pool with
      :func:`default_num_processes`.  This is the path for cold,
      synthesis-heavy batches.

    Either way, per-key RNG derivation keeps the output independent of
    scheduling: thread, process, and serial runs are gate-for-gate
    identical (given the same store snapshot, when one is used).

    ``cache_dir`` attaches a :class:`repro.pipeline.store.
    DiskSynthesisStore` under whichever path runs — thread workers
    share it through the one cache, process workers each open it — and
    new results are flushed to it before returning.
    """
    n_processes = resolve_workers(workers)
    store = None
    if cache_dir is not None:
        from repro.pipeline.store import DiskSynthesisStore

        store = DiskSynthesisStore(cache_dir)
    if cache is None:
        cache = SynthesisCache(store=store)
    elif store is not None:
        cache.attach_store(store)
    if cache_dir is None and cache.store is not None:
        # A store attached to the caller's cache serves the process
        # path too: workers re-open it by its directory.
        cache_dir = getattr(cache.store, "root", None)
    start = time.monotonic()

    if n_processes is not None and len(circuits) > 1:
        results = _compile_batch_processes(
            circuits, n_processes, cache, cache_dir,
            dict(
                workflow=workflow, eps=eps, seed=seed,
                optimization_level=optimization_level,
                commutation=commutation, pipeline=pipeline, target=target,
                layout=layout, objective=objective, eps_budget=eps_budget,
                validate=validate,
            ),
        )
    else:
        def job(circuit: Circuit) -> SynthesizedCircuit:
            return compile_circuit(
                circuit, workflow=workflow, eps=eps, cache=cache, seed=seed,
                optimization_level=optimization_level,
                commutation=commutation, pipeline=pipeline, target=target,
                layout=layout, objective=objective, eps_budget=eps_budget,
                validate=validate,
            )

        serial = 1 if n_processes is not None else max_workers
        results = map_parallel(job, circuits, serial)
    if cache.store is not None:
        cache.store.flush()
    return BatchResult(
        results=results,
        wall_time=time.monotonic() - start,
        cache=cache,
    )


def _compile_batch_processes(
    circuits: Sequence[Circuit],
    n_processes: int,
    cache: SynthesisCache,
    cache_dir,
    kwargs: dict,
) -> list[SynthesizedCircuit]:
    """Fan a batch out over a ``ProcessPoolExecutor`` (see compile_batch)."""
    import pickle

    try:
        pickle.dumps(kwargs)
    except Exception as exc:
        raise ValueError(
            "compile_batch(workers=...) must ship its arguments to worker "
            f"processes, but they do not pickle: {exc!r}; pass picklable "
            "arguments or use the thread path (workers=None)"
        ) from exc
    cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
    with ProcessPoolExecutor(
        max_workers=min(n_processes, len(circuits)),
        initializer=_pool_worker_init,
        initargs=(cache_dir, cache.maxsize, kwargs),
    ) as pool:
        outcomes = list(pool.map(_pool_compile_job, circuits))
    results = []
    for result, delta in outcomes:
        results.append(result)
        cache.absorb_counts(**delta)
    if cache.store is not None:
        # Pick up the segments the workers just published so this
        # process' next batch starts warm.
        cache.store.refresh()
    return results
