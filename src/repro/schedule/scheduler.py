"""ASAP/ALAP timed schedules over the dependency DAG.

A :class:`Schedule` assigns every gate a start/end time computed from
the circuit's :class:`~repro.circuits.CircuitDAG` and a per-gate
duration table (normally a :class:`repro.target.Target`'s
``gate_durations``; unlisted gates fall back to arity-based defaults).
Two disciplines are provided:

* ``asap`` — every gate starts the moment its wire predecessors end
  (the front-layer schedule with real durations),
* ``alap`` — every gate ends the moment its successors must start,
  anchored to the ASAP makespan.

The spread between the two is a node's *slack*: zero-slack nodes form
the critical path, and per-qubit idle time (makespan minus busy time)
is the exposure the ESP cost model (:func:`repro.target.cost
.estimate_esp`) converts into an idle-decoherence penalty.
:func:`insert_idle_markers` materializes those idle periods as
parameterized identity gates so the simulation backends can apply
duration-scaled idle noise and validate the prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.circuits.circuit import (
    Circuit,
    Gate,
    canonical_gate_name,
    is_idle_marker,
)
from repro.circuits.dag import BOUNDARY, CircuitDAG

#: Fallback durations (schedule time units) by gate arity.
DEFAULT_DURATION_1Q = 1.0
DEFAULT_DURATION_2Q = 3.0
#: Arity defaults a name-keyed table may override; SWAP defaults to
#: three CX worth of time, matching its standard decomposition.
DEFAULT_DURATIONS: dict[str, float] = {"swap": 3.0 * DEFAULT_DURATION_2Q}

SCHEDULE_METHODS = ("asap", "alap")


def duration_of(gate: Gate, durations: Mapping[str, float] | None = None) -> float:
    """The duration of one gate under a (possibly partial) table.

    Lookup order: idle markers carry their duration as their parameter;
    then the explicit table (canonical names); then
    :data:`DEFAULT_DURATIONS`; then the arity default.
    """
    if is_idle_marker(gate):
        return float(gate.params[0])
    name = canonical_gate_name(gate.name)
    if durations:
        hit = durations.get(name)
        if hit is not None:
            return float(hit)
    hit = DEFAULT_DURATIONS.get(name)
    if hit is not None:
        return hit
    return DEFAULT_DURATION_1Q if len(gate.qubits) == 1 else DEFAULT_DURATION_2Q


def resolve_durations(
    target=None, durations: Mapping[str, float] | None = None
) -> Mapping[str, float]:
    """The duration table from an explicit mapping or a target."""
    if durations is not None:
        return durations
    return getattr(target, "gate_durations", None) or {}


@dataclass(frozen=True)
class GateSpan:
    """One scheduled gate occurrence: node id, gate, time interval."""

    node_id: int
    gate: Gate
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Schedule:
    """A timed schedule: per-gate spans plus timeline accounting."""

    n_qubits: int
    spans: list[GateSpan]
    makespan: float
    method: str = "asap"
    name: str = ""
    _by_node: dict[int, GateSpan] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Lazy per-qubit span index: every accounting query (busy/idle,
    #: marker insertion, rendering) is per-qubit, so one pass over the
    #: spans amortizes what would otherwise be O(n_qubits * spans).
    _per_qubit: dict[int, list[GateSpan]] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self):
        if not self._by_node:
            self._by_node = {s.node_id: s for s in self.spans}

    def __len__(self) -> int:
        return len(self.spans)

    def span(self, node_id: int) -> GateSpan:
        return self._by_node[node_id]

    @property
    def critical_path_time(self) -> float:
        """Length of the heaviest dependency chain == the makespan."""
        return self.makespan

    # -- per-qubit accounting ------------------------------------------------
    def qubit_spans(self, qubit: int) -> list[GateSpan]:
        """Spans touching one qubit, in start-time order."""
        if self._per_qubit is None:
            index: dict[int, list[GateSpan]] = {
                q: [] for q in range(self.n_qubits)
            }
            for s in self.spans:
                for q in s.gate.qubits:
                    index[q].append(s)
            # schedule_dag emits spans pre-sorted, but hand-built
            # Schedules keep the same ordering contract.
            for lst in index.values():
                lst.sort(key=lambda s: (s.start, s.node_id))
            self._per_qubit = index
        return self._per_qubit[qubit]

    def busy_time(self, qubit: int) -> float:
        return sum(s.duration for s in self.qubit_spans(qubit))

    def idle_time(self, qubit: int) -> float:
        """Makespan minus busy time: the qubit's decoherence exposure."""
        return max(0.0, self.makespan - self.busy_time(qubit))

    def idle_slack(self) -> dict[int, float]:
        """Per-qubit idle time over the whole schedule window."""
        return {q: self.idle_time(q) for q in range(self.n_qubits)}

    @property
    def total_idle(self) -> float:
        return sum(self.idle_slack().values())

    @property
    def utilization(self) -> float:
        """Busy fraction of the qubit-time area (1.0 = no idling)."""
        area = self.makespan * self.n_qubits
        if area <= 0:
            return 1.0
        return 1.0 - self.total_idle / area

    # -- rendering -----------------------------------------------------------
    def render(self, width: int = 60) -> str:
        """ASCII timeline: one row per qubit, time left to right.

        Each gate paints its name's first letter over its time span
        (``*`` marks a multi-qubit gate); ``.`` is idle time.  Purely
        diagnostic — precision is limited by the column resolution.
        """
        if not self.spans or self.makespan <= 0:
            return "\n".join(
                f"q{q:<3d} |" + "." * width for q in range(self.n_qubits)
            )
        scale = width / self.makespan
        rows = []
        for q in range(self.n_qubits):
            row = ["."] * width
            for s in self.qubit_spans(q):
                lo = min(width - 1, int(math.floor(s.start * scale)))
                hi = max(lo + 1, min(width, int(math.ceil(s.end * scale))))
                mark = "*" if len(s.gate.qubits) > 1 else s.gate.name[0]
                for k in range(lo, hi):
                    row[k] = mark
            rows.append(f"q{q:<3d} |" + "".join(row))
        unit = self.makespan / width
        rows.append(f"     +{'-' * width} one column ~ {unit:.3g} time units")
        return "\n".join(rows)

    def summary(self) -> str:
        lines = [
            f"{self.method.upper()} schedule: {len(self.spans)} gates, "
            f"makespan {self.makespan:g}, "
            f"utilization {self.utilization:.1%}"
        ]
        slack = self.idle_slack()
        worst = max(slack, key=slack.get) if slack else None
        if worst is not None:
            lines.append(
                f"idle: total {self.total_idle:g}, "
                f"worst qubit q{worst} ({slack[worst]:g})"
            )
        return "\n".join(lines)


def schedule_dag(
    dag: CircuitDAG,
    target=None,
    durations: Mapping[str, float] | None = None,
    method: str = "asap",
) -> Schedule:
    """Timed schedule of ``dag`` under a duration table.

    ``asap`` starts every gate as early as its wire predecessors allow;
    ``alap`` anchors to the ASAP makespan and starts every gate as late
    as its successors allow.  Both produce the same makespan — the
    critical-path time — and differ only in where slack accumulates.
    """
    if method not in SCHEDULE_METHODS:
        raise ValueError(
            f"unknown schedule method {method!r} "
            f"(expected one of {SCHEDULE_METHODS})"
        )
    table = resolve_durations(target, durations)
    order = list(dag.topological())
    end_asap: dict[int, float] = {}
    for node in order:
        t0 = max(
            (
                end_asap[p]
                for p in node.preds.values()
                if p != BOUNDARY
            ),
            default=0.0,
        )
        end_asap[node.id] = t0 + duration_of(node.gate, table)
    makespan = max(end_asap.values(), default=0.0)
    spans: list[GateSpan] = []
    if method == "asap":
        for node in order:
            end = end_asap[node.id]
            spans.append(
                GateSpan(node.id, node.gate,
                         end - duration_of(node.gate, table), end)
            )
    else:
        start_alap: dict[int, float] = {}
        for node in reversed(order):
            t1 = min(
                (
                    start_alap[s]
                    for s in node.succs.values()
                    if s != BOUNDARY
                ),
                default=makespan,
            )
            start_alap[node.id] = t1 - duration_of(node.gate, table)
            spans.append(GateSpan(node.id, node.gate, start_alap[node.id], t1))
        spans.reverse()
    spans.sort(key=lambda s: (s.start, s.node_id))
    return Schedule(
        n_qubits=dag.n_qubits,
        spans=spans,
        makespan=makespan,
        method=method,
        name=dag.name,
    )


def schedule_circuit(
    circuit: Circuit,
    target=None,
    durations: Mapping[str, float] | None = None,
    method: str = "asap",
) -> Schedule:
    """Timed schedule of a flat circuit (see :func:`schedule_dag`)."""
    return schedule_dag(
        CircuitDAG.from_circuit(circuit), target, durations, method
    )


def node_slacks(
    dag: CircuitDAG,
    target=None,
    durations: Mapping[str, float] | None = None,
) -> tuple[float, dict[int, float]]:
    """Per-node schedule slack: ALAP start minus ASAP start.

    Returns ``(makespan, slacks)``.  Zero-slack nodes sit on the
    critical path; a node's slack is how much its synthesis could
    stretch without lengthening the schedule — the criticality signal
    behind the epsilon-budget allocator
    (:func:`repro.synthesis.budget.allocate_eps_budget`).
    """
    asap = schedule_dag(dag, target, durations, method="asap")
    alap = schedule_dag(dag, target, durations, method="alap")
    slacks = {
        s.node_id: max(0.0, alap.span(s.node_id).start - s.start)
        for s in asap.spans
    }
    return asap.makespan, slacks


def idle_marker(qubit: int, duration: float) -> Gate:
    """An identity gate carrying an idle period's duration.

    The marker convention shared with
    :func:`repro.sim.noise.is_idle_marker`: plain IR ``"i"`` gates
    never carry parameters, so markers are unambiguous.
    """
    return Gate("i", (int(qubit),), (float(duration),))


def insert_idle_markers(
    circuit: Circuit,
    target=None,
    durations: Mapping[str, float] | None = None,
    schedule: Schedule | None = None,
    min_duration: float = 1e-12,
) -> Circuit:
    """Materialize every idle period of the ASAP schedule as a marker.

    For each qubit, gaps between consecutive gates — plus the lead-in
    before its first gate and the tail out to the makespan — become
    :func:`idle_marker` gates spliced into the gate stream in start-
    time order.  The result is unitarily identical to ``circuit``
    (markers are identities) but lets a :class:`repro.sim.NoiseModel`
    with ``idle_rate`` set apply duration-scaled idle decoherence, so
    simulated fidelity accounts for exactly the slack the ESP cost
    model penalizes.
    """
    if schedule is None:
        schedule = schedule_circuit(circuit, target, durations, method="asap")
    elif schedule.method != "asap":
        raise ValueError("idle insertion expects an ASAP schedule")
    # (start time, tie-break, gate): original gates keep their flat
    # order via the node id; markers sort after gates starting together.
    events: list[tuple[float, int, int, Gate]] = [
        (s.start, 0, s.node_id, s.gate) for s in schedule.spans
    ]
    marker_seq = 0
    for q in range(circuit.n_qubits):
        cursor = 0.0
        for s in schedule.qubit_spans(q):
            if s.start - cursor > min_duration:
                events.append(
                    (cursor, 1, marker_seq, idle_marker(q, s.start - cursor))
                )
                marker_seq += 1
            cursor = max(cursor, s.end)
        if schedule.makespan - cursor > min_duration:
            events.append(
                (cursor, 1, marker_seq,
                 idle_marker(q, schedule.makespan - cursor))
            )
            marker_seq += 1
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    out = Circuit(circuit.n_qubits, name=circuit.name)
    out.gates = [g for _, _, _, g in events]
    return out


def strip_idle_markers(circuit: Circuit) -> Circuit:
    """Remove every idle marker, recovering a plain gate stream.

    The inverse of :func:`insert_idle_markers` up to gate order within
    a start-time tie: re-compiling a scheduled circuit must not treat
    bookkeeping markers as gates, so pipelines strip them before
    optimization and the metrics ignore them either way.
    """
    out = Circuit(circuit.n_qubits, name=circuit.name)
    out.gates = [g for g in circuit.gates if not is_idle_marker(g)]
    return out


def with_idle_noise(
    circuit: Circuit,
    target,
    base_noise=None,
    durations: Mapping[str, float] | None = None,
):
    """Idle-aware simulation setup: ``(marked_circuit, noise_model)``.

    Inserts idle markers per the ASAP schedule and extends
    ``base_noise`` (e.g. :meth:`repro.sim.NoiseModel.from_target`) with
    the target's ``idle_error_rate`` so backends decohere idle qubits
    at the schedule-predicted exposure.  With no idle rate the circuit
    and model pass through untouched.
    """
    from repro.sim.noise import NoiseModel

    idle_rate = float(getattr(target, "idle_error_rate", 0.0) or 0.0)
    if idle_rate <= 0.0:
        return circuit, base_noise
    marked = insert_idle_markers(circuit, target, durations)
    return marked, NoiseModel.with_idle(base_noise, idle_rate)
