"""Time-aware compilation: ASAP/ALAP schedules and idle accounting.

The scheduler subsystem turns a circuit plus a target's
``gate_durations`` into per-qubit timelines (:class:`Schedule`):
makespan/critical-path-time metrics, idle-slack accounting, an ASCII
timeline renderer, and idle-marker insertion so the simulation
backends can apply duration-scaled idle noise.  The ESP cost model
(:mod:`repro.target.cost`) and the epsilon-budget allocator
(:mod:`repro.synthesis.budget`) both build on these schedules.
"""

from repro.schedule.scheduler import (
    DEFAULT_DURATION_1Q,
    DEFAULT_DURATION_2Q,
    DEFAULT_DURATIONS,
    SCHEDULE_METHODS,
    GateSpan,
    Schedule,
    duration_of,
    idle_marker,
    insert_idle_markers,
    node_slacks,
    resolve_durations,
    schedule_circuit,
    schedule_dag,
    strip_idle_markers,
    with_idle_noise,
)

__all__ = [
    "DEFAULT_DURATION_1Q",
    "DEFAULT_DURATION_2Q",
    "DEFAULT_DURATIONS",
    "GateSpan",
    "SCHEDULE_METHODS",
    "Schedule",
    "duration_of",
    "idle_marker",
    "insert_idle_markers",
    "node_slacks",
    "resolve_durations",
    "schedule_circuit",
    "schedule_dag",
    "strip_idle_markers",
    "with_idle_noise",
]
