"""Logical-error noise models (paper RQ2/RQ4 setup).

Logical errors are modeled as single-qubit depolarizing channels applied
after selected gates.  The paper's two settings are both expressible:

* RQ2 (most conservative): errors on T gates only, Cliffords error-free.
* RQ4: errors on every non-Pauli gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.circuits.circuit import Gate

_PAULIS = (
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
)

_T_NAMES = frozenset({"t", "tdg"})
_PAULI_NAMES = frozenset({"i", "x", "y", "z"})


def canonical_gate_name(name: str) -> str:
    """Canonical (lower-case) gate name shared by every noise layer.

    Circuit IR gates are lower-case (``"t"``) while synthesis token
    sequences are capitalized (``"T"``); every name comparison in the
    noise/fidelity stack must go through this normalization so a
    :class:`NoiseModel` can never silently skip a gate depending on
    which layer produced it.
    """
    return name.lower()


def depolarizing_kraus(p: float) -> list[np.ndarray]:
    """Kraus operators of the 1q depolarizing channel with rate ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("depolarizing rate must be in [0, 1]")
    ops = [math.sqrt(1.0 - p) * np.eye(2, dtype=complex)]
    ops.extend(math.sqrt(p / 3.0) * s for s in _PAULIS)
    return ops


@dataclass(frozen=True)
class NoiseModel:
    """Depolarizing noise attached to gates matching a predicate.

    ``rate`` is the uniform depolarizing rate; the optional ``rates``
    table (canonical gate name -> rate) makes the model heterogeneous,
    as when derived from a hardware target's calibration via
    :meth:`from_target` — ``rate`` then holds the maximum table entry
    so backends can still cheaply test "is this model noisy at all".
    Every engine draws its per-gate channel from :meth:`rate_for`.
    """

    rate: float
    applies_to: Callable[[Gate], bool]
    rates: dict[str, float] | None = None

    def rate_for(self, gate: Gate) -> float:
        """The depolarizing rate following this particular gate."""
        if self.rates is None:
            return self.rate
        return self.rates.get(canonical_gate_name(gate.name), 0.0)

    @staticmethod
    def t_gates_only(rate: float) -> "NoiseModel":
        """RQ2's conservative model: only T gates are noisy."""
        return NoiseModel(
            rate, lambda g: canonical_gate_name(g.name) in _T_NAMES
        )

    @staticmethod
    def non_pauli_gates(rate: float) -> "NoiseModel":
        """RQ4's model: depolarizing after every non-Pauli gate."""
        return NoiseModel(
            rate, lambda g: canonical_gate_name(g.name) not in _PAULI_NAMES
        )

    @staticmethod
    def from_target(target, scale: float = 1.0) -> "NoiseModel":
        """Heterogeneous noise from a target's per-gate error table.

        Each gate named in ``target.gate_errors`` gets a depolarizing
        channel at its calibrated rate (times ``scale``); unlisted
        gates are noiseless.  Raises ``ValueError`` when the target has
        no (positive) error entries — silently simulating noiselessly
        would be a footgun.
        """
        table = {
            canonical_gate_name(name): float(rate) * scale
            for name, rate in getattr(target, "gate_errors", {}).items()
            if float(rate) > 0.0
        }
        if not table:
            raise ValueError(
                f"target {getattr(target, 'name', '') or '<unnamed>'} has "
                "no gate error table to derive noise from"
            )
        return NoiseModel(
            max(table.values()),
            lambda g: table.get(canonical_gate_name(g.name), 0.0) > 0.0,
            rates=table,
        )

    def noisy_qubits(self, gate: Gate) -> tuple[int, ...]:
        """Qubits receiving a depolarizing channel after ``gate``."""
        return gate.qubits if self.applies_to(gate) else ()
