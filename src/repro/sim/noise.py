"""Logical-error noise models (paper RQ2/RQ4 setup).

Logical errors are modeled as single-qubit depolarizing channels applied
after selected gates.  The paper's two settings are both expressible:

* RQ2 (most conservative): errors on T gates only, Cliffords error-free.
* RQ4: errors on every non-Pauli gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.circuits.circuit import Gate, canonical_gate_name, is_idle_marker

__all__ = [
    "NoiseModel",
    "canonical_gate_name",
    "depolarizing_kraus",
    "is_idle_marker",
]

_PAULIS = (
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
)

_T_NAMES = frozenset({"t", "tdg"})
_PAULI_NAMES = frozenset({"i", "x", "y", "z"})


def depolarizing_kraus(p: float) -> list[np.ndarray]:
    """Kraus operators of the 1q depolarizing channel with rate ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("depolarizing rate must be in [0, 1]")
    ops = [math.sqrt(1.0 - p) * np.eye(2, dtype=complex)]
    ops.extend(math.sqrt(p / 3.0) * s for s in _PAULIS)
    return ops


@dataclass(frozen=True)
class NoiseModel:
    """Depolarizing noise attached to gates matching a predicate.

    ``rate`` is the uniform depolarizing rate; the optional ``rates``
    table (canonical gate name -> rate) makes the model heterogeneous,
    as when derived from a hardware target's calibration via
    :meth:`from_target` — ``rate`` then holds the maximum table entry
    so backends can still cheaply test "is this model noisy at all".
    Every engine draws its per-gate channel from :meth:`rate_for`.

    ``idle_rate`` is a T1-style decoherence rate per schedule time
    unit: an idle marker of duration ``d`` (see :func:`is_idle_marker`)
    receives a depolarizing channel of strength ``1 - exp(-idle_rate *
    d)``, so a trajectory's no-error probability over an idle period
    decays exponentially in its slack — the same law the ESP cost
    model (:func:`repro.target.cost.estimate_esp`) predicts.
    """

    rate: float
    applies_to: Callable[[Gate], bool]
    rates: dict[str, float] | None = None
    idle_rate: float = 0.0
    #: Per-undirected-edge 2q rates overriding the name table, as from
    #: a target's ``edge_errors`` calibration.  Keys ``(min, max)``.
    edge_rates: dict[tuple[int, int], float] | None = None
    #: Optional channel factory ``rate -> [Kraus operators]`` replacing
    #: the default depolarizing channel — e.g. amplitude damping.  The
    #: factory's identity participates in the compiled-program cache
    #: key, so two models sharing one factory share channel tables.
    kraus: Callable[[float], list[np.ndarray]] | None = None

    def rate_for(self, gate: Gate) -> float:
        """The depolarizing rate following this particular gate."""
        if self.idle_rate > 0.0 and is_idle_marker(gate):
            return -math.expm1(-self.idle_rate * gate.params[0])
        if self.edge_rates is not None and len(gate.qubits) == 2:
            a, b = gate.qubits
            hit = self.edge_rates.get((min(a, b), max(a, b)))
            if hit is not None:
                return hit
        if self.rates is None:
            return self.rate
        return self.rates.get(canonical_gate_name(gate.name), 0.0)

    @staticmethod
    def t_gates_only(rate: float) -> "NoiseModel":
        """RQ2's conservative model: only T gates are noisy."""
        return NoiseModel(
            rate, lambda g: canonical_gate_name(g.name) in _T_NAMES
        )

    @staticmethod
    def non_pauli_gates(rate: float) -> "NoiseModel":
        """RQ4's model: depolarizing after every non-Pauli gate."""
        return NoiseModel(
            rate, lambda g: canonical_gate_name(g.name) not in _PAULI_NAMES
        )

    @staticmethod
    def from_target(target, scale: float = 1.0) -> "NoiseModel":
        """Heterogeneous noise from a target's calibration tables.

        Each gate named in ``target.gate_errors`` gets a depolarizing
        channel at its calibrated rate (times ``scale``); 2q gates on
        an edge listed in ``target.edge_errors`` use the per-edge rate
        instead, matching the ESP cost model's preference order.
        Unlisted gates are noiseless.  Raises ``ValueError`` when the
        target has no (positive) error entries — silently simulating
        noiselessly would be a footgun.
        """
        table = {
            canonical_gate_name(name): float(rate) * scale
            for name, rate in getattr(target, "gate_errors", {}).items()
            if float(rate) > 0.0
        }
        edge_table = {
            (min(a, b), max(a, b)): float(rate) * scale
            for (a, b), rate in getattr(target, "edge_errors", {}).items()
            if float(rate) > 0.0
        }
        if not table and not edge_table:
            raise ValueError(
                f"target {getattr(target, 'name', '') or '<unnamed>'} has "
                "no gate error table to derive noise from"
            )

        def applies(g: Gate) -> bool:
            if len(g.qubits) == 2:
                a, b = g.qubits
                if (min(a, b), max(a, b)) in edge_table:
                    return True
            return table.get(canonical_gate_name(g.name), 0.0) > 0.0

        return NoiseModel(
            max([*table.values(), *edge_table.values()]),
            applies,
            rates=table,
            edge_rates=edge_table or None,
        )

    @staticmethod
    def with_idle(
        base: "NoiseModel | None", idle_rate: float
    ) -> "NoiseModel | None":
        """Extend ``base`` so idle markers decohere at ``idle_rate``.

        The returned model applies ``base``'s channels to every gate
        ``base`` covered, plus a duration-scaled depolarizing channel
        ``1 - exp(-idle_rate * d)`` to each idle marker.  With
        ``idle_rate <= 0`` the base model is returned unchanged; with
        no base model the result is idle-noise only.
        """
        if idle_rate <= 0.0:
            return base
        if base is None or base.rate <= 0.0:
            # No (effective) base noise: idle markers are the only
            # noisy gates; the empty table keeps every other lookup 0.
            return NoiseModel(idle_rate, is_idle_marker, rates={},
                              idle_rate=idle_rate)
        base_applies = base.applies_to
        combined = lambda g: is_idle_marker(g) or base_applies(g)  # noqa: E731
        edge_rates = (
            dict(base.edge_rates) if base.edge_rates is not None else None
        )
        if base.rates is None:
            # Uniform base: ``rate`` doubles as the per-gate rate and
            # must stay exactly the base rate (idle markers short-
            # circuit in rate_for before the uniform fallback).
            return NoiseModel(base.rate, combined, rates=None,
                              idle_rate=idle_rate, edge_rates=edge_rates)
        return NoiseModel(max(base.rate, idle_rate), combined,
                          rates=dict(base.rates), idle_rate=idle_rate,
                          edge_rates=edge_rates)

    def noisy_qubits(self, gate: Gate) -> tuple[int, ...]:
        """Qubits receiving a depolarizing channel after ``gate``."""
        return gate.qubits if self.applies_to(gate) else ()
