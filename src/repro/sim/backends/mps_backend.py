"""Bond-truncated MPS simulation behind the backend protocol.

Generalizes the trace-value MPS of :mod:`repro.tensornet.mps` to full
circuit states (:class:`~repro.tensornet.circuit_mps.CircuitMPS`):
memory is linear in qubit count and quadratic in the bond-dimension cap,
so 20+ qubit circuits become simulable.  Accuracy degrades gracefully —
the per-run truncated weight is tracked on the result so callers can
tell a genuine infidelity from a truncation artifact.

Noise uses the same Monte-Carlo Kraus unravelling as the statevector
engine, one MPS per trajectory, with the identical per-trajectory
``default_rng([seed, t])`` uniform streams — so a given trajectory count
and seed is comparable across both stochastic backends.  Trajectories
fan out over :func:`repro.pipeline.map_parallel`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits.circuit import Circuit
from repro.pipeline.batch import map_parallel
from repro.sim.backends.base import (
    _ITEMSIZE,
    SimulationResult,
    SimulatorBackend,
    gate_schedule,
    is_noisy,
    noise_event_layout,
)
from repro.sim.noise import NoiseModel
from repro.sim.program import (
    ProgramCache,
    SimProgram,
    channels_for,
    default_program_cache,
)
from repro.tensornet.circuit_mps import CircuitMPS

_DEFAULT_MPS_TRAJECTORIES = 50


class MPSResult(SimulationResult):
    """One MPS per trajectory (a single MPS when noiseless)."""

    backend = "mps"

    def __init__(
        self,
        trajectories: list[CircuitMPS],
        n_qubits: int,
        seed: int,
        wall_time: float,
    ):
        self.trajectories = trajectories
        self.n_qubits = n_qubits
        self.n_trajectories = len(trajectories)
        self.seed = seed
        self.wall_time = wall_time

    @property
    def truncation_error(self) -> float:
        """Worst accumulated truncated weight across trajectories."""
        return max(t.truncation_error for t in self.trajectories)

    @property
    def mps(self) -> CircuitMPS:
        """The state of a noiseless single-trajectory run."""
        if self.n_trajectories != 1:
            raise ValueError(
                "stochastic MPS bundle has no single state; use "
                "fidelity() against a reference instead"
            )
        return self.trajectories[0]

    def _sample_fidelities(self, reference) -> np.ndarray:
        if isinstance(reference, MPSResult):
            reference = reference.mps
        if isinstance(reference, CircuitMPS):
            return np.array(
                [abs(reference.overlap(t)) ** 2 for t in self.trajectories]
            )
        # Dense references go through each trajectory's statevector —
        # only viable at moderate qubit counts.
        from repro.sim.backends.base import reference_statevector

        psi = reference_statevector(reference, self.n_qubits)
        return np.array(
            [
                abs(np.vdot(psi, t.to_statevector())) ** 2
                for t in self.trajectories
            ]
        )

    def fidelity(self, reference) -> float:
        return float(self._sample_fidelities(reference).mean())

    def fidelity_std_error(self, reference) -> float | None:
        fids = self._sample_fidelities(reference)
        if fids.shape[0] < 2:
            return 0.0
        return float(fids.std(ddof=1) / np.sqrt(fids.shape[0]))

    def statevector(self) -> np.ndarray:
        return self.mps.to_statevector()


class MPSBackend(SimulatorBackend):
    """Circuit simulation on a bond-truncated matrix product state."""

    name = "mps"

    def __init__(
        self,
        max_bond: int = 64,
        trajectories: int = _DEFAULT_MPS_TRAJECTORIES,
        seed: int = 0,
        svd_cutoff: float = 1e-12,
        max_workers: int | None = None,
        layered: bool = False,
        compiled: bool = True,
        program_cache: ProgramCache | None = None,
    ):
        if trajectories < 1:
            raise ValueError("need at least one trajectory")
        self.max_bond = int(max_bond)
        self.trajectories = int(trajectories)
        self.seed = int(seed)
        self.svd_cutoff = float(svd_cutoff)
        self.max_workers = max_workers
        # Layer-batched application via the DAG front-layer schedule.
        # Exact when nothing truncates; under aggressive bond caps the
        # truncation sequence differs from the flat order, so layering
        # is opt-in here (unlike the exact statevector engine).
        self.layered = bool(layered)
        # Noisy runs drive a JIT-compiled SimProgram (schedule, channel
        # tables, and event columns resolved once, shared read-only by
        # every trajectory/worker) instead of re-interpreting the gate
        # stream per trajectory.  Fusion stays off: collapsing gates
        # would change the bond-truncation sequence, and the MPS noisy
        # path must stay bit-identical to the per-gate reference.
        self.compiled = bool(compiled)
        self.program_cache = program_cache

    def supports(self, n_qubits: int, noisy: bool) -> bool:
        return True  # linear memory: the backend of last resort

    def memory_bytes(self, n_qubits: int, noisy: bool = True) -> int:
        return _ITEMSIZE * n_qubits * 2 * self.max_bond**2

    def make_reference(self, circuit: Circuit) -> CircuitMPS:
        return self._run_one(circuit, None, np.empty(0))

    # -- execution ---------------------------------------------------------
    def _run_one(
        self,
        circuit: Circuit,
        noise: NoiseModel | None,
        uniforms: np.ndarray,
    ) -> CircuitMPS:
        """The retained reference path: re-interpret the gate stream."""
        mps = CircuitMPS(
            circuit.n_qubits, max_bond=self.max_bond,
            svd_cutoff=self.svd_cutoff,
        )
        if not is_noisy(noise):
            # Noiseless runs (references included) take the whole-circuit
            # path, which pre-routes long-range gates with the lookahead
            # router.  Noisy trajectories stay per-gate below: each noise
            # event must land on the qubit's un-permuted site.
            return mps.run(circuit)
        channels = channels_for(noise)
        offsets, _ = noise_event_layout(circuit, noise)
        for layer in gate_schedule(circuit, self.layered):
            for _, gate in layer:
                mps.apply_gate(gate)
            for pos, gate in layer:
                qubits = noise.noisy_qubits(gate)
                if not qubits:
                    continue
                kraus, mixture = channels.get(noise.rate_for(gate))
                for j, q in enumerate(qubits):
                    self._kraus_event(
                        mps, kraus, mixture, q, uniforms[offsets[pos] + j]
                    )
        return mps

    def _run_one_program(
        self, program: SimProgram, uniforms: np.ndarray
    ) -> CircuitMPS:
        """One noisy trajectory driven by a compiled program.

        Matrices, channel tables, and uniform columns are all
        precomputed; with fusion off the application sequence matches
        :meth:`_run_one` operator for operator, so the trajectory —
        including its truncation sequence — is bit-identical.
        """
        mps = CircuitMPS(
            program.n_qubits, max_bond=self.max_bond,
            svd_cutoff=self.svd_cutoff,
        )
        for ops, events in program.layers:
            for op in ops:
                if len(op.qubits) == 1:
                    mps.apply_1q(op.matrix, op.qubits[0])
                else:
                    mps.apply_2q(op.matrix, *op.qubits)
            for ev in events:
                self._kraus_event(
                    mps, ev.kraus, ev.mixture, ev.qubit,
                    uniforms[ev.column],
                )
        return mps

    @staticmethod
    def _kraus_event(
        mps: CircuitMPS,
        kraus: list[np.ndarray],
        mixture,
        q: int,
        u: float,
    ) -> None:
        if mixture is not None:
            i = int(np.searchsorted(mixture.cum, u, side="right"))
            if i == mixture.identity_index:
                return  # exact-identity outcome: applying is a no-op
            mps.apply_1q(mixture.unitaries[i], q)
            return
        # General channel: branch probabilities need full norms.
        branches = []
        for op in kraus:
            cand = mps.copy()
            cand.apply_1q(op, q)
            branches.append((cand, cand.norm() ** 2))
        total = sum(p for _, p in branches)
        acc = 0.0
        for cand, p in branches:
            acc += p / total
            if u < acc or cand is branches[-1][0]:
                cand.apply_1q(
                    np.eye(2, dtype=complex) / np.sqrt(max(p, 1e-300)), q
                )
                mps.tensors = cand.tensors
                mps.truncation_error = cand.truncation_error
                mps.center = cand.center
                return

    def run(
        self, circuit: Circuit, noise: NoiseModel | None = None
    ) -> MPSResult:
        start = time.monotonic()
        _, n_events = noise_event_layout(circuit, noise)
        if n_events == 0:
            states = [self._run_one(circuit, None, np.empty(0))]
        else:
            program = None
            if self.compiled:
                cache = self.program_cache
                if cache is None:
                    cache = default_program_cache()
                program = cache.get(
                    circuit, noise,
                    layered=self.layered, fuse=False, fuse2q=False,
                )

            def job(t: int) -> CircuitMPS:
                uniforms = np.random.default_rng(
                    [self.seed, t]
                ).random(n_events)
                if program is not None:
                    return self._run_one_program(program, uniforms)
                return self._run_one(circuit, noise, uniforms)

            states = map_parallel(
                job, list(range(self.trajectories)), self.max_workers
            )
        return MPSResult(
            states, circuit.n_qubits, self.seed, time.monotonic() - start
        )
