"""Vectorized statevector simulation with Monte-Carlo Kraus trajectories.

Noise is unravelled into quantum trajectories: each trajectory is a pure
state, every Kraus channel becomes a weighted random choice of one Kraus
operator, and the noisy density matrix is the empirical average over
trajectories.  Memory is ``O(n_traj * 2^n)`` instead of ``4^n``, which
both breaks the 12-qubit density-matrix wall and — because trajectories
are batched as one stacked ``(n_traj, 2, ..., 2)`` array driven through
the same BLAS calls — beats the density matrix on wall-clock well below
it.

Execution is two-phase (``compiled=True``, the default): the circuit,
noise model, and schedule configuration are JIT-compiled once per run
into a flat :class:`~repro.sim.program.SimProgram` — precomputed dense
matrices (including 1q/2q fusion products), resolved channel tables,
and per-event uniform columns — memoized in a shared
:class:`~repro.sim.program.ProgramCache` and driven read-only by every
chunk and worker.  Mixture outcome choices for a whole chunk come from
one batched ``searchsorted`` per distinct channel, and the identity
outcome (the overwhelming majority at calibrated rates) is skipped
outright.  ``compiled=False`` retains the per-chunk interpreting
reference path; both produce bit-identical trajectory states.

Determinism
-----------
Trajectory ``t`` consumes only the uniform stream of
``np.random.default_rng([seed, t])``, pre-drawn as one row of a
``(n_traj, n_events)`` matrix (the number of noise events per circuit is
known upfront).  Results are therefore bit-identical regardless of chunk
size, worker count, scheduling, or program compilation — the same
contract :func:`repro.pipeline.compile_batch` makes for compilation, and
the chunks fan out over the same :func:`repro.pipeline.map_parallel`
thread-pool machinery.

Channels whose Kraus operators are proportional to unitaries (the
depolarizing channels of :class:`NoiseModel`) take a fast path: outcome
probabilities are state-independent, so sampling costs one uniform and
the selected operator is applied to just the trajectories that drew it.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.pipeline.batch import map_parallel
from repro.sim.backends.base import (
    _ITEMSIZE,
    SimulationResult,
    SimulatorBackend,
    fused_gate_schedule,
    gate_schedule,
    is_noisy,
    noise_event_layout,
    reference_statevector,
)
from repro.sim.noise import NoiseModel
from repro.sim.program import (  # noqa: F401  (re-exported legacy names)
    DepolarizingChannels,
    ProgramCache,
    SimProgram,
    _as_unitary_mixture,
    _UnitaryMixture,
    channels_for,
    default_program_cache,
)

_DEFAULT_TRAJECTORIES = 200


def _apply_1q_batch(states: np.ndarray, m: np.ndarray, q: int) -> np.ndarray:
    """Apply a 2x2 operator on qubit ``q`` of a stacked (k, 2, ..., 2).

    Structured matrices take cheaper routes than the generic BLAS
    round-trip: diagonal operators (t/s/rz, and the exact-identity
    Kraus outcome) become one broadcast multiply, anti-diagonal ones
    (x/y) a flip plus multiply.  Path selection depends only on the
    matrix and axis geometry — never on the batch size — so chunking
    and worker count cannot change which kernel (and rounding) a given
    operator gets; compiled and reference execution share these
    helpers, which is what keeps their states bit-identical.
    """
    axis = 1 + q
    last = states.ndim - 1
    if m[0, 1] == 0 and m[1, 0] == 0:
        if m[0, 0] == 1.0 and m[1, 1] == 1.0:
            return states  # exact identity: applying is the identity
        d = np.array([m[0, 0], m[1, 1]])
        shape = (1,) * axis + (2,) + (1,) * (last - axis)
        return states * d.reshape(shape)
    if m[0, 0] == 0 and m[1, 1] == 0 and axis != last:
        d = np.array([m[0, 1], m[1, 0]])
        shape = (1,) * axis + (2,) + (1,) * (last - axis)
        return np.flip(states, axis) * d.reshape(shape)
    out = np.tensordot(m, states, axes=([1], [1 + q]))
    return np.moveaxis(out, 0, 1 + q)


def _apply_matrix_batch(
    states: np.ndarray, m: np.ndarray, qubits: tuple[int, ...]
) -> np.ndarray:
    """Apply a dense 1q/2q operator — shared by program and reference."""
    if len(qubits) == 1:
        return _apply_1q_batch(states, m, qubits[0])
    a, b = qubits
    n = states.ndim - 1
    if b == a + 1 and n - b - 1 >= 4:
        # Adjacent pair with a wide tail block: one batched matmul on a
        # reshape view beats tensordot's transpose copies.  The cut-off
        # uses only (a, b, n) so every chunk takes the same kernel.
        pre = 1 << a
        post = 1 << (n - b - 1)
        v = states.reshape(states.shape[0], pre, 4, post)
        return np.matmul(m, v).reshape(states.shape)
    m = m.reshape(2, 2, 2, 2)
    out = np.tensordot(m, states, axes=([2, 3], [1 + a, 1 + b]))
    return np.moveaxis(out, (0, 1), (1 + a, 1 + b))


def _apply_gate_batch(states: np.ndarray, gate: Gate) -> np.ndarray:
    return _apply_matrix_batch(states, gate.matrix(), gate.qubits)


def _apply_mixture_selected(
    states: np.ndarray,
    mixture: _UnitaryMixture,
    choice: np.ndarray,
    q: int,
) -> np.ndarray:
    """Apply each non-identity outcome to the trajectories that drew it.

    The identity outcome — the overwhelming majority at calibrated
    rates — is skipped entirely; its unitary is exact (see
    :func:`repro.sim.program._as_unitary_mixture`), so skipping equals
    applying, value for value.
    """
    for i, u in enumerate(mixture.unitaries):
        if i == mixture.identity_index:
            continue
        rows = np.nonzero(choice == i)[0]
        if rows.size == 0:
            continue
        states[rows] = _apply_1q_batch(states[rows], u, q)
    return states


def _apply_kraus_general(
    states: np.ndarray,
    kraus: list[np.ndarray],
    q: int,
    uniforms: np.ndarray,
) -> np.ndarray:
    """General channel: norms are state-dependent, so evaluate every
    candidate branch and select per trajectory."""
    k = states.shape[0]
    candidates = [_apply_1q_batch(states, op, q) for op in kraus]
    flat = [c.reshape(k, -1) for c in candidates]
    norms2 = np.stack(
        [np.einsum("kd,kd->k", f, f.conj()).real for f in flat]
    )  # (n_kraus, k)
    totals = norms2.sum(axis=0)
    cum = np.cumsum(norms2 / totals, axis=0)
    cum[-1] = 1.0
    choice = (cum < uniforms[None, :]).sum(axis=0)
    out = np.empty_like(flat[0])
    for i in range(len(kraus)):
        rows = np.nonzero(choice == i)[0]
        if rows.size == 0:
            continue
        out[rows] = flat[i][rows] / np.sqrt(norms2[i, rows])[:, None]
    return out.reshape(states.shape)


def _apply_kraus_mc(
    states: np.ndarray,
    kraus: list[np.ndarray],
    mixture: _UnitaryMixture | None,
    q: int,
    uniforms: np.ndarray,
) -> np.ndarray:
    """One Monte-Carlo Kraus event on qubit ``q`` for every trajectory.

    The reference (un-compiled) event path: one ``searchsorted`` per
    event, every outcome applied — including the identity, whose exact
    unitary makes the result value-identical to the compiled path's
    identity skip.  ``uniforms`` holds one pre-drawn uniform per
    trajectory; the state batch is mutated out-of-place and returned.
    """
    if mixture is not None:
        choice = np.searchsorted(mixture.cum, uniforms, side="right")
        for i, u in enumerate(mixture.unitaries):
            rows = np.nonzero(choice == i)[0]
            if rows.size == 0:
                continue
            states[rows] = _apply_1q_batch(states[rows], u, q)
        return states
    return _apply_kraus_general(states, kraus, q, uniforms)


class TrajectoryResult(SimulationResult):
    """Stacked trajectory statevectors of shape ``(n_traj, 2^n)``."""

    backend = "statevector"

    def __init__(
        self,
        states: np.ndarray,
        n_qubits: int,
        seed: int,
        wall_time: float,
    ):
        self.states = states
        self.n_qubits = n_qubits
        self.n_trajectories = states.shape[0]
        self.seed = seed
        self.wall_time = wall_time

    def _sample_fidelities(self, reference) -> np.ndarray:
        psi = reference_statevector(reference, self.n_qubits)
        overlaps = self.states @ psi.conj()
        return np.abs(overlaps) ** 2

    def fidelity(self, reference) -> float:
        return float(self._sample_fidelities(reference).mean())

    def fidelity_std_error(self, reference) -> float | None:
        fids = self._sample_fidelities(reference)
        if fids.shape[0] < 2:
            return 0.0
        return float(fids.std(ddof=1) / np.sqrt(fids.shape[0]))

    def statevector(self) -> np.ndarray:
        if self.n_trajectories != 1:
            raise ValueError(
                "stochastic trajectory bundle has no single statevector; "
                "use fidelity() against a reference instead"
            )
        return self.states[0]


class StatevectorTrajectoryBackend(SimulatorBackend):
    """Batched pure-state trajectories with Monte-Carlo Kraus noise."""

    name = "statevector"

    def __init__(
        self,
        trajectories: int = _DEFAULT_TRAJECTORIES,
        seed: int = 0,
        max_qubits: int = 24,
        chunk_size: int = 64,
        max_workers: int | None = None,
        layered: bool = True,
        fuse: bool = True,
        fuse2q: bool = True,
        compiled: bool = True,
        program_cache: ProgramCache | None = None,
    ):
        if trajectories < 1:
            raise ValueError("need at least one trajectory")
        self.trajectories = int(trajectories)
        self.seed = int(seed)
        self.max_qubits = max_qubits
        self.chunk_size = max(1, int(chunk_size))
        self.max_workers = max_workers
        # Layer-batched application: the DAG front-layer schedule is
        # computed once per run (not per chunk) and noise-event offsets
        # stay keyed by flat gate position, so results match the
        # sequential stream for any chunking or worker count.
        self.layered = bool(layered)
        # Fuse runs of noise-free 1q gates per wire into single 2x2
        # matrices; ``fuse2q`` additionally collapses same-pair 2q
        # blocks (and sandwiched 1q runs) into 4x4 operators.
        self.fuse = bool(fuse)
        self.fuse2q = bool(fuse2q)
        # JIT-compile (circuit, noise, config) into a SimProgram once
        # per run, memoized across runs; False retains the per-chunk
        # interpreting reference path (bit-identical states).
        self.compiled = bool(compiled)
        self.program_cache = program_cache

    def supports(self, n_qubits: int, noisy: bool) -> bool:
        return n_qubits <= self.max_qubits

    def memory_bytes(self, n_qubits: int, noisy: bool = True) -> int:
        if not noisy:
            # One deterministic state plus a same-size gate transient.
            return _ITEMSIZE * 2**n_qubits * 2
        # The preallocated trajectory stack plus an in-flight chunk of
        # working states and its same-size gate transient.
        width = self.trajectories + 2 * min(self.trajectories, self.chunk_size)
        return _ITEMSIZE * 2**n_qubits * width

    # -- execution ---------------------------------------------------------
    def _program_for(
        self, circuit: Circuit, noise: NoiseModel | None
    ) -> SimProgram:
        cache = self.program_cache
        if cache is None:
            cache = default_program_cache()
        return cache.get(
            circuit, noise,
            layered=self.layered, fuse=self.fuse, fuse2q=self.fuse2q,
        )

    def _run_chunk_program(
        self, program: SimProgram, uniforms: np.ndarray
    ) -> np.ndarray:
        """Drive one chunk of trajectories through a compiled program.

        Every operator matrix and channel table is precomputed; the
        chunk's mixture outcomes come from one batched ``searchsorted``
        per distinct channel (:meth:`SimProgram.sample_choices`) and
        identity outcomes are skipped.
        """
        k = uniforms.shape[0]
        n = program.n_qubits
        states = np.zeros((k,) + (2,) * n, dtype=complex)
        states[(slice(None),) + (0,) * n] = 1.0
        choices = program.sample_choices(uniforms)
        for ops, events in program.layers:
            for op in ops:
                states = _apply_matrix_batch(states, op.matrix, op.qubits)
            for ev in events:
                if ev.mixture is not None:
                    states = _apply_mixture_selected(
                        states, ev.mixture, choices[:, ev.column], ev.qubit
                    )
                else:
                    states = _apply_kraus_general(
                        states, ev.kraus, ev.qubit, uniforms[:, ev.column]
                    )
        return states.reshape(k, -1)

    def _run_chunk(
        self,
        schedule: list[list[tuple[int, Gate]]],
        offsets: list[int],
        n: int,
        noise: NoiseModel | None,
        uniforms: np.ndarray,
    ) -> np.ndarray:
        """The retained reference path: re-interpret the gate stream.

        ``schedule`` is the (possibly layer-batched, possibly fused)
        gate stream from :func:`gate_schedule`; each layer's gates are
        applied back to back and the layer's noise events follow in
        flat-list order — gates within a layer act on disjoint qubits,
        so this equals the sequential stream.  ``offsets[pos]`` indexes
        the uniform column of gate ``pos``'s first noise event.
        """
        k = uniforms.shape[0]
        states = np.zeros((k,) + (2,) * n, dtype=complex)
        states[(slice(None),) + (0,) * n] = 1.0
        channels = channels_for(noise) if is_noisy(noise) else None
        for layer in schedule:
            for _, gate in layer:
                states = _apply_gate_batch(states, gate)
            if channels is not None:
                for pos, gate in layer:
                    if pos < 0:
                        continue  # fused operators carry no noise events
                    qubits = noise.noisy_qubits(gate)
                    if not qubits:
                        continue
                    kraus, mixture = channels.get(noise.rate_for(gate))
                    for j, q in enumerate(qubits):
                        states = _apply_kraus_mc(
                            states, kraus, mixture, q,
                            uniforms[:, offsets[pos] + j],
                        )
        return states.reshape(k, -1)

    def run(
        self, circuit: Circuit, noise: NoiseModel | None = None
    ) -> TrajectoryResult:
        if circuit.n_qubits > self.max_qubits:
            raise ValueError(
                f"statevector simulation of {circuit.n_qubits} qubits "
                f"refused (limit {self.max_qubits})"
            )
        start = time.monotonic()
        if self.compiled:
            # Compiled once per (circuit, noise, config) — and memoized
            # across runs — then shared read-only by every chunk/worker.
            program = self._program_for(circuit, noise)
            n_events = program.n_events

            def run_chunk(rows: np.ndarray) -> np.ndarray:
                return self._run_chunk_program(program, rows)
        else:
            # Reference path: schedule and event offsets are shared by
            # every chunk/worker, and content-cached across runs so a
            # repeated circuit skips as_layers() + fusion re-derivation.
            if self.fuse:
                schedule = fused_gate_schedule(
                    circuit, noise,
                    layered=self.layered, two_qubit=self.fuse2q,
                )
            else:
                schedule = gate_schedule(circuit, self.layered)
            event_offsets, n_events = noise_event_layout(circuit, noise)

            def run_chunk(rows: np.ndarray) -> np.ndarray:
                return self._run_chunk(
                    schedule, event_offsets, circuit.n_qubits, noise, rows
                )

        if n_events == 0:
            # Deterministic evolution: every trajectory is identical.
            states = run_chunk(np.empty((1, 0)))
            return TrajectoryResult(
                states, circuit.n_qubits, self.seed,
                time.monotonic() - start,
            )
        # One private uniform stream per trajectory, derived from
        # (seed, trajectory index) — chunking cannot change results.
        uniforms = np.stack(
            [
                np.random.default_rng([self.seed, t]).random(n_events)
                for t in range(self.trajectories)
            ]
        )
        # Chunks write straight into one preallocated stack — no
        # concatenate copy doubling peak memory at the end.
        states = np.empty(
            (self.trajectories, 2**circuit.n_qubits), dtype=complex
        )
        offsets = list(range(0, self.trajectories, self.chunk_size))

        def job(lo: int) -> None:
            rows = uniforms[lo : lo + self.chunk_size]
            states[lo : lo + rows.shape[0]] = run_chunk(rows)

        map_parallel(job, offsets, self.max_workers)
        return TrajectoryResult(
            states, circuit.n_qubits, self.seed, time.monotonic() - start
        )
