"""Vectorized statevector simulation with Monte-Carlo Kraus trajectories.

Noise is unravelled into quantum trajectories: each trajectory is a pure
state, every Kraus channel becomes a weighted random choice of one Kraus
operator, and the noisy density matrix is the empirical average over
trajectories.  Memory is ``O(n_traj * 2^n)`` instead of ``4^n``, which
both breaks the 12-qubit density-matrix wall and — because trajectories
are batched as one stacked ``(n_traj, 2, ..., 2)`` array driven through
the same BLAS calls — beats the density matrix on wall-clock well below
it.

Determinism
-----------
Trajectory ``t`` consumes only the uniform stream of
``np.random.default_rng([seed, t])``, pre-drawn as one row of a
``(n_traj, n_events)`` matrix (the number of noise events per circuit is
known upfront).  Results are therefore bit-identical regardless of chunk
size, worker count, or scheduling — the same contract
:func:`repro.pipeline.compile_batch` makes for compilation, and the
chunks fan out over the same :func:`repro.pipeline.map_parallel`
thread-pool machinery.

Channels whose Kraus operators are proportional to unitaries (the
depolarizing channels of :class:`NoiseModel`) take a fast path: outcome
probabilities are state-independent, so sampling costs one uniform and
the selected operator is applied to just the trajectories that drew it.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.pipeline.batch import map_parallel
from repro.sim.backends.base import (
    _ITEMSIZE,
    SimulationResult,
    SimulatorBackend,
    fuse_1q_schedule,
    gate_schedule,
    is_noisy,
    noise_event_offsets,
    reference_statevector,
)
from repro.sim.noise import NoiseModel, depolarizing_kraus

_DEFAULT_TRAJECTORIES = 200


class _UnitaryMixture:
    """A Kraus channel of scaled unitaries: sample index, apply unitary."""

    def __init__(self, probs: np.ndarray, unitaries: list[np.ndarray]):
        self.cum = np.cumsum(probs)
        self.cum[-1] = 1.0  # guard rounding at the top end
        self.unitaries = unitaries


def _as_unitary_mixture(kraus: list[np.ndarray]) -> _UnitaryMixture | None:
    """Detect K_i^dag K_i = c_i I and precompute the sampling table."""
    probs, unitaries = [], []
    for k in kraus:
        kdk = k.conj().T @ k
        c = float(np.real(kdk[0, 0]))
        if c <= 0 or not np.allclose(kdk, c * np.eye(k.shape[0]), atol=1e-12):
            return None
        probs.append(c)
        unitaries.append(k / np.sqrt(c))
    probs = np.asarray(probs)
    if not np.isclose(probs.sum(), 1.0, atol=1e-9):
        return None  # not trace preserving; use the general path
    return _UnitaryMixture(probs, unitaries)


def _apply_1q_batch(states: np.ndarray, m: np.ndarray, q: int) -> np.ndarray:
    """Apply a 2x2 operator on qubit ``q`` of a stacked (k, 2, ..., 2)."""
    out = np.tensordot(m, states, axes=([1], [1 + q]))
    return np.moveaxis(out, 0, 1 + q)


def _apply_gate_batch(states: np.ndarray, gate: Gate) -> np.ndarray:
    m = gate.matrix()
    if len(gate.qubits) == 1:
        return _apply_1q_batch(states, m, gate.qubits[0])
    a, b = gate.qubits
    m = m.reshape(2, 2, 2, 2)
    out = np.tensordot(m, states, axes=([2, 3], [1 + a, 1 + b]))
    return np.moveaxis(out, (0, 1), (1 + a, 1 + b))


def _apply_kraus_mc(
    states: np.ndarray,
    kraus: list[np.ndarray],
    mixture: _UnitaryMixture | None,
    q: int,
    uniforms: np.ndarray,
) -> np.ndarray:
    """One Monte-Carlo Kraus event on qubit ``q`` for every trajectory.

    ``uniforms`` holds one pre-drawn uniform per trajectory; the state
    batch is mutated out-of-place and returned.
    """
    if mixture is not None:
        choice = np.searchsorted(mixture.cum, uniforms, side="right")
        for i, u in enumerate(mixture.unitaries):
            rows = np.nonzero(choice == i)[0]
            if rows.size == 0:
                continue
            states[rows] = _apply_1q_batch(states[rows], u, q)
        return states
    # General channel: norms are state-dependent, so evaluate every
    # candidate branch and select per trajectory.
    k = states.shape[0]
    candidates = [_apply_1q_batch(states, op, q) for op in kraus]
    flat = [c.reshape(k, -1) for c in candidates]
    norms2 = np.stack(
        [np.einsum("kd,kd->k", f, f.conj()).real for f in flat]
    )  # (n_kraus, k)
    totals = norms2.sum(axis=0)
    cum = np.cumsum(norms2 / totals, axis=0)
    cum[-1] = 1.0
    choice = (cum < uniforms[None, :]).sum(axis=0)
    out = np.empty_like(flat[0])
    for i in range(len(kraus)):
        rows = np.nonzero(choice == i)[0]
        if rows.size == 0:
            continue
        out[rows] = flat[i][rows] / np.sqrt(norms2[i, rows])[:, None]
    return out.reshape(states.shape)


def _count_noise_events(
    circuit: Circuit, noise: NoiseModel | None
) -> int:
    if not is_noisy(noise):
        return 0
    return sum(len(noise.noisy_qubits(g)) for g in circuit.gates)


class DepolarizingChannels:
    """Per-rate cache of (kraus, mixture) pairs for heterogeneous noise.

    Uniform models hit one entry; target-derived models
    (:meth:`NoiseModel.from_target`) have one entry per distinct
    calibrated rate.  Shared by the statevector and MPS engines.
    """

    def __init__(self):
        self._by_rate: dict[float, tuple] = {}

    def get(self, rate: float) -> tuple:
        entry = self._by_rate.get(rate)
        if entry is None:
            kraus = depolarizing_kraus(rate)
            entry = (kraus, _as_unitary_mixture(kraus))
            self._by_rate[rate] = entry
        return entry


class TrajectoryResult(SimulationResult):
    """Stacked trajectory statevectors of shape ``(n_traj, 2^n)``."""

    backend = "statevector"

    def __init__(
        self,
        states: np.ndarray,
        n_qubits: int,
        seed: int,
        wall_time: float,
    ):
        self.states = states
        self.n_qubits = n_qubits
        self.n_trajectories = states.shape[0]
        self.seed = seed
        self.wall_time = wall_time

    def _sample_fidelities(self, reference) -> np.ndarray:
        psi = reference_statevector(reference, self.n_qubits)
        overlaps = self.states @ psi.conj()
        return np.abs(overlaps) ** 2

    def fidelity(self, reference) -> float:
        return float(self._sample_fidelities(reference).mean())

    def fidelity_std_error(self, reference) -> float | None:
        fids = self._sample_fidelities(reference)
        if fids.shape[0] < 2:
            return 0.0
        return float(fids.std(ddof=1) / np.sqrt(fids.shape[0]))

    def statevector(self) -> np.ndarray:
        if self.n_trajectories != 1:
            raise ValueError(
                "stochastic trajectory bundle has no single statevector; "
                "use fidelity() against a reference instead"
            )
        return self.states[0]


class StatevectorTrajectoryBackend(SimulatorBackend):
    """Batched pure-state trajectories with Monte-Carlo Kraus noise."""

    name = "statevector"

    def __init__(
        self,
        trajectories: int = _DEFAULT_TRAJECTORIES,
        seed: int = 0,
        max_qubits: int = 24,
        chunk_size: int = 64,
        max_workers: int | None = None,
        layered: bool = True,
        fuse: bool = True,
    ):
        if trajectories < 1:
            raise ValueError("need at least one trajectory")
        self.trajectories = int(trajectories)
        self.seed = int(seed)
        self.max_qubits = max_qubits
        self.chunk_size = max(1, int(chunk_size))
        self.max_workers = max_workers
        # Layer-batched application: the DAG front-layer schedule is
        # computed once per run (not per chunk) and noise-event offsets
        # stay keyed by flat gate position, so results match the
        # sequential stream for any chunking or worker count.
        self.layered = bool(layered)
        # Fuse runs of noise-free 1q gates per wire into single 2x2
        # products before driving the state batch (fuse_1q_schedule).
        self.fuse = bool(fuse)

    def supports(self, n_qubits: int, noisy: bool) -> bool:
        return n_qubits <= self.max_qubits

    def memory_bytes(self, n_qubits: int, noisy: bool = True) -> int:
        if not noisy:
            # One deterministic state plus a same-size gate transient.
            return _ITEMSIZE * 2**n_qubits * 2
        # The preallocated trajectory stack plus an in-flight chunk of
        # working states and its same-size gate transient.
        width = self.trajectories + 2 * min(self.trajectories, self.chunk_size)
        return _ITEMSIZE * 2**n_qubits * width

    # -- execution ---------------------------------------------------------
    def _run_chunk(
        self,
        schedule: list[list[tuple[int, Gate]]],
        offsets: list[int],
        n: int,
        noise: NoiseModel | None,
        uniforms: np.ndarray,
    ) -> np.ndarray:
        """Drive ``uniforms.shape[0]`` trajectories as one stacked array.

        ``schedule`` is the (possibly layer-batched) gate stream from
        :func:`gate_schedule`; each layer's gates are applied back to
        back and the layer's noise events follow in flat-list order —
        gates within a layer act on disjoint qubits, so this equals the
        sequential stream.  ``offsets[pos]`` indexes the uniform column
        of gate ``pos``'s first noise event.
        """
        k = uniforms.shape[0]
        states = np.zeros((k,) + (2,) * n, dtype=complex)
        states[(slice(None),) + (0,) * n] = 1.0
        channels = DepolarizingChannels() if is_noisy(noise) else None
        for layer in schedule:
            for _, gate in layer:
                states = _apply_gate_batch(states, gate)
            if channels is not None:
                for pos, gate in layer:
                    if pos < 0:
                        continue  # fused 1q run: carries no noise events
                    qubits = noise.noisy_qubits(gate)
                    if not qubits:
                        continue
                    kraus, mixture = channels.get(noise.rate_for(gate))
                    for j, q in enumerate(qubits):
                        states = _apply_kraus_mc(
                            states, kraus, mixture, q,
                            uniforms[:, offsets[pos] + j],
                        )
        return states.reshape(k, -1)

    def run(
        self, circuit: Circuit, noise: NoiseModel | None = None
    ) -> TrajectoryResult:
        if circuit.n_qubits > self.max_qubits:
            raise ValueError(
                f"statevector simulation of {circuit.n_qubits} qubits "
                f"refused (limit {self.max_qubits})"
            )
        start = time.monotonic()
        # The schedule and event offsets are computed once per run and
        # shared by every chunk/worker.
        schedule = gate_schedule(circuit, self.layered)
        if self.fuse:
            schedule = fuse_1q_schedule(schedule, noise)
        event_offsets = noise_event_offsets(circuit, noise)
        n_events = _count_noise_events(circuit, noise)
        if n_events == 0:
            # Deterministic evolution: every trajectory is identical.
            states = self._run_chunk(
                schedule, event_offsets, circuit.n_qubits, None,
                np.empty((1, 0)),
            )
            return TrajectoryResult(
                states, circuit.n_qubits, self.seed,
                time.monotonic() - start,
            )
        # One private uniform stream per trajectory, derived from
        # (seed, trajectory index) — chunking cannot change results.
        uniforms = np.stack(
            [
                np.random.default_rng([self.seed, t]).random(n_events)
                for t in range(self.trajectories)
            ]
        )
        # Chunks write straight into one preallocated stack — no
        # concatenate copy doubling peak memory at the end.
        states = np.empty(
            (self.trajectories, 2**circuit.n_qubits), dtype=complex
        )
        offsets = list(range(0, self.trajectories, self.chunk_size))

        def job(lo: int) -> None:
            rows = uniforms[lo : lo + self.chunk_size]
            states[lo : lo + rows.shape[0]] = self._run_chunk(
                schedule, event_offsets, circuit.n_qubits, noise, rows
            )

        map_parallel(job, offsets, self.max_workers)
        return TrajectoryResult(
            states, circuit.n_qubits, self.seed, time.monotonic() - start
        )
