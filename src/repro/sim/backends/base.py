"""The simulation-backend protocol.

Every engine — exact density matrix, Monte-Carlo statevector
trajectories, bond-truncated MPS — implements :class:`SimulatorBackend`
and returns a :class:`SimulationResult`.  Results know how to score
themselves against a *reference* pure state supplied as a dense
statevector, a :class:`~repro.tensornet.circuit_mps.CircuitMPS`, or
another result, so experiment code never touches engine internals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.dag import CircuitDAG
from repro.sim.noise import NoiseModel
from repro.tensornet.circuit_mps import CircuitMPS

#: Complex128 entries.
_ITEMSIZE = 16


def is_noisy(noise: NoiseModel | None) -> bool:
    """True when the model would actually inject Kraus channels."""
    return noise is not None and noise.rate > 0.0


def gate_schedule(
    circuit: Circuit, layered: bool
) -> list[list[tuple[int, Gate]]]:
    """The gate stream an engine drives, as layers of ``(position, gate)``.

    ``layered=True`` computes the front-layer (ASAP) schedule from the
    dependency DAG: gates within a layer act on pairwise-disjoint
    qubits, so an engine may apply a whole layer — and then the layer's
    noise events, in flat-list order — without changing the sequential
    semantics.  ``position`` is the gate's index in ``circuit.gates``,
    which keys the noise-event offsets: a trajectory consumes the same
    uniform for the same gate under either schedule, so layered and
    sequential runs of one seed produce identical fidelities.
    ``layered=False`` degrades to one gate per layer, in flat order.
    """
    if not layered:
        return [[(i, g)] for i, g in enumerate(circuit.gates)]
    layers = CircuitDAG.from_circuit(circuit).as_layers()
    return [[(n.id, n.gate) for n in layer] for layer in layers]


class Fused1Q:
    """A run of adjacent 1q gates on one wire, collapsed to a 2x2.

    Quacks like a :class:`~repro.circuits.circuit.Gate` as far as the
    engines care (``qubits``/``params``/``matrix()``); it never appears
    in circuits, only in engine schedules.  Fused entries carry no
    noise events, so they are scheduled with position ``-1`` and the
    noise loop skips them.
    """

    __slots__ = ("name", "qubits", "params", "_matrix")

    def __init__(self, qubit: int, matrix: np.ndarray):
        self.name = "fused1q"
        self.qubits = (qubit,)
        self.params = ()
        self._matrix = matrix

    def matrix(self) -> np.ndarray:
        return self._matrix


def fuse_1q_schedule(
    schedule: list[list[tuple[int, Gate]]],
    noise: NoiseModel | None,
) -> list[list[tuple[int, Gate]]]:
    """Fuse runs of consecutive noise-free 1q gates per wire.

    Matrix products replace chains of 2x2 applications on the full
    state batch — the dominant cost of deep Clifford+T streams, where
    synthesis expands every rotation into long 1q runs.  A pending
    product on a wire is flushed (emitted as a :class:`Fused1Q` with
    position ``-1``) right before the next 2q or noisy gate touching
    that wire, so gate order per wire and the (gate, uniform) noise
    pairing are unchanged; deferred 1q products commute with the
    other-wire gates and noise events that overtake them.
    """
    noisy = is_noisy(noise)
    pending: dict[int, np.ndarray] = {}
    out: list[list[tuple[int, Gate]]] = []
    for layer in schedule:
        out_layer: list[tuple[int, Gate]] = []
        for pos, gate in layer:
            if len(gate.qubits) == 1 and not (
                noisy and noise.noisy_qubits(gate)
            ):
                q = gate.qubits[0]
                acc = pending.get(q)
                m = gate.matrix()
                pending[q] = m if acc is None else m @ acc
                continue
            for q in gate.qubits:
                acc = pending.pop(q, None)
                if acc is not None:
                    out_layer.append((-1, Fused1Q(q, acc)))
            out_layer.append((pos, gate))
        if out_layer:
            out.append(out_layer)
    if pending:
        out.append(
            [(-1, Fused1Q(q, pending[q])) for q in sorted(pending)]
        )
    return out


def noise_event_offsets(
    circuit: Circuit, noise: NoiseModel | None
) -> list[int]:
    """Per-gate start index into the pre-drawn uniform event matrix.

    Offsets follow the flat gate order regardless of scheduling, so the
    (gate, trajectory) → uniform pairing is schedule-invariant.
    """
    offsets = []
    event = 0
    for g in circuit.gates:
        offsets.append(event)
        if is_noisy(noise):
            event += len(noise.noisy_qubits(g))
    return offsets


def reference_statevector(reference, n_qubits: int) -> np.ndarray:
    """Coerce any supported reference into a dense statevector."""
    if isinstance(reference, np.ndarray):
        vec = reference.reshape(-1)
        if vec.shape[0] != 2**n_qubits:
            raise ValueError(
                f"reference statevector has dimension {vec.shape[0]}, "
                f"expected {2**n_qubits}"
            )
        return np.asarray(vec, dtype=complex)
    if isinstance(reference, CircuitMPS):
        return reference.to_statevector()
    if isinstance(reference, SimulationResult):
        return reference.statevector()
    raise TypeError(
        f"unsupported reference of type {type(reference).__name__}; pass a "
        "statevector array, a CircuitMPS, or a SimulationResult"
    )


class SimulationResult(ABC):
    """Output of one backend run: a (possibly mixed/sampled) state."""

    backend: str
    n_qubits: int
    n_trajectories: int = 1
    wall_time: float = 0.0

    @abstractmethod
    def fidelity(self, reference) -> float:
        """Fidelity of the simulated state against a pure reference."""

    def infidelity(self, reference) -> float:
        return max(0.0, 1.0 - self.fidelity(reference))

    def fidelity_std_error(self, reference) -> float | None:
        """Sampling standard error of :meth:`fidelity`, if stochastic."""
        return None

    def statevector(self) -> np.ndarray:
        """Dense pure-state readout (noiseless single-trajectory runs)."""
        raise NotImplementedError(
            f"{self.backend} result does not expose a single statevector"
        )


class SimulatorBackend(ABC):
    """One simulation engine behind the common run/score protocol."""

    name: str

    @abstractmethod
    def run(
        self, circuit: Circuit, noise: NoiseModel | None = None
    ) -> SimulationResult:
        """Simulate ``circuit`` from |0..0> under optional noise."""

    @abstractmethod
    def supports(self, n_qubits: int, noisy: bool) -> bool:
        """Whether this engine can take on a problem of this shape."""

    @abstractmethod
    def memory_bytes(self, n_qubits: int, noisy: bool = True) -> int:
        """Approximate peak working-set size for ``n_qubits``.

        ``noisy`` matters for the trajectory engine, whose noiseless
        runs collapse to a single deterministic state.
        """

    def make_reference(self, circuit: Circuit):
        """Noiseless reference state in this backend's native format.

        The dense engines score against a plain statevector; the MPS
        engine overrides this to produce a same-bond-budget MPS so the
        overlap contraction stays cheap at 20+ qubits.
        """
        return circuit.statevector()
