"""The simulation-backend protocol.

Every engine — exact density matrix, Monte-Carlo statevector
trajectories, bond-truncated MPS — implements :class:`SimulatorBackend`
and returns a :class:`SimulationResult`.  Results know how to score
themselves against a *reference* pure state supplied as a dense
statevector, a :class:`~repro.tensornet.circuit_mps.CircuitMPS`, or
another result, so experiment code never touches engine internals.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.dag import CircuitDAG
from repro.sim.noise import NoiseModel
from repro.tensornet.circuit_mps import CircuitMPS

#: Complex128 entries.
_ITEMSIZE = 16


def is_noisy(noise: NoiseModel | None) -> bool:
    """True when the model would actually inject Kraus channels."""
    return noise is not None and noise.rate > 0.0


def _circuit_key(circuit: Circuit) -> tuple:
    """Content identity of a gate stream (the ProgramCache discipline)."""
    return (
        circuit.n_qubits,
        tuple((g.name, g.qubits, g.params) for g in circuit.gates),
    )


def _noise_signature(circuit: Circuit, noise: NoiseModel | None):
    """What fusion actually consumes from a noise model on this circuit.

    Mirrors :func:`repro.sim.program.program_key`: per-gate noisy qubits
    and rates plus the channel factory's identity, so two model objects
    behaving identically share cache entries and a model tweak is never
    masked by object reuse.
    """
    if not is_noisy(noise):
        return None
    events = tuple(
        (pos, qubits, noise.rate_for(g))
        for pos, g in enumerate(circuit.gates)
        if (qubits := noise.noisy_qubits(g))
    )
    return (events, getattr(noise, "kraus", None))


def _compute_gate_schedule(
    circuit: Circuit, layered: bool
) -> tuple[tuple[tuple[int, Gate], ...], ...]:
    if not layered:
        return tuple(((i, g),) for i, g in enumerate(circuit.gates))
    layers = CircuitDAG.from_circuit(circuit).as_layers()
    return tuple(
        tuple((n.id, n.gate) for n in layer) for layer in layers
    )


class ScheduleCache:
    """Thread-safe LRU of layer schedules and their fused variants.

    The ProgramCache pattern applied one stage earlier: repeated
    evaluation of the same circuit (objective grids, fidelity sweeps,
    per-chunk backend calls) skips the ``as_layers()`` front-layer
    scan — and, for the reference engine paths, the dense
    fusion re-derivation — by keying on gate-stream content rather
    than object identity.  Entries are immutable tuple-of-tuples
    layers, shared read-only by every consumer; gates are immutable, so
    sharing is safe.  Two threads missing one key may both compute, but
    the results are identical and the last insert wins.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("schedule cache needs room for one entry")
        self.maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _lookup(self, key: tuple):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            self.misses += 1
        return None

    def _insert(self, key: tuple, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def layers(self, circuit: Circuit, layered: bool):
        """The (cached) layer schedule of :func:`gate_schedule`."""
        key = ("layers", layered, _circuit_key(circuit))
        entry = self._lookup(key)
        if entry is None:
            entry = _compute_gate_schedule(circuit, layered)
            self._insert(key, entry)
        return entry

    def fused(
        self,
        circuit: Circuit,
        noise: NoiseModel | None,
        *,
        layered: bool,
        two_qubit: bool = False,
    ):
        """The (cached) fused schedule for a circuit + noise behavior."""
        key = (
            "fused",
            layered,
            two_qubit,
            _circuit_key(circuit),
            _noise_signature(circuit, noise),
        )
        entry = self._lookup(key)
        if entry is None:
            entry = tuple(
                tuple(layer)
                for layer in fuse_schedule(
                    self.layers(circuit, layered), noise,
                    two_qubit=two_qubit,
                )
            )
            self._insert(key, entry)
        return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "maxsize": self.maxsize,
            }


#: Process-wide default cache: every engine's schedule derivation goes
#: through it unless a private cache is passed explicitly.
_GLOBAL_SCHEDULE_CACHE = ScheduleCache()


def schedule_cache() -> ScheduleCache:
    """The process-wide :class:`ScheduleCache`."""
    return _GLOBAL_SCHEDULE_CACHE


def gate_schedule(
    circuit: Circuit, layered: bool, *, cache: ScheduleCache | None = None
):
    """The gate stream an engine drives, as layers of ``(position, gate)``.

    ``layered=True`` computes the front-layer (ASAP) schedule from the
    dependency DAG: gates within a layer act on pairwise-disjoint
    qubits, so an engine may apply a whole layer — and then the layer's
    noise events, in flat-list order — without changing the sequential
    semantics.  ``position`` is the gate's index in ``circuit.gates``,
    which keys the noise-event offsets: a trajectory consumes the same
    uniform for the same gate under either schedule, so layered and
    sequential runs of one seed produce identical fidelities.
    ``layered=False`` degrades to one gate per layer, in flat order.

    Results are memoized content-keyed in a :class:`ScheduleCache`
    (the process-wide one unless ``cache`` is given) and returned as
    immutable tuple-of-tuples layers — treat them as read-only.
    """
    # Explicit None test: an empty ScheduleCache is falsy via __len__.
    if cache is None:
        cache = _GLOBAL_SCHEDULE_CACHE
    return cache.layers(circuit, layered)


def fused_gate_schedule(
    circuit: Circuit,
    noise: NoiseModel | None,
    *,
    layered: bool,
    two_qubit: bool = False,
    cache: ScheduleCache | None = None,
):
    """:func:`gate_schedule` + :func:`fuse_schedule`, content-cached.

    One lookup covers both derivations, so repeated evaluation of the
    same circuit under the same noise behavior (the compile-batch
    objective loop, fidelity sweeps) skips the front-layer scan *and*
    the dense operator fusion.
    """
    if cache is None:
        cache = _GLOBAL_SCHEDULE_CACHE
    return cache.fused(
        circuit, noise, layered=layered, two_qubit=two_qubit
    )


class Fused1Q:
    """A run of adjacent 1q gates on one wire, collapsed to a 2x2.

    Quacks like a :class:`~repro.circuits.circuit.Gate` as far as the
    engines care (``qubits``/``params``/``matrix()``); it never appears
    in circuits, only in engine schedules.  Fused entries carry no
    noise events, so they are scheduled with position ``-1`` and the
    noise loop skips them.
    """

    __slots__ = ("name", "qubits", "params", "_matrix")

    def __init__(self, qubit: int, matrix: np.ndarray):
        self.name = "fused1q"
        self.qubits = (qubit,)
        self.params = ()
        self._matrix = matrix

    def matrix(self) -> np.ndarray:
        return self._matrix


class Fused2Q:
    """A block of same-pair 2q gates and sandwiched 1q runs, as one 4x4.

    ``qubits`` is the sorted pair ``(lo, hi)`` and the matrix lives in
    that qubit order (first factor = ``lo``), matching how the engines
    interpret a 2q ``Gate``.  Like :class:`Fused1Q`, fused blocks carry
    no noise events and are scheduled with position ``-1``.
    """

    __slots__ = ("name", "qubits", "params", "_matrix")

    def __init__(self, pair: tuple[int, int], matrix: np.ndarray):
        self.name = "fused2q"
        self.qubits = pair
        self.params = ()
        self._matrix = matrix

    def matrix(self) -> np.ndarray:
        return self._matrix


_EYE2 = np.eye(2, dtype=complex)


def _oriented_2q(gate: Gate) -> tuple[tuple[int, int], np.ndarray]:
    """A 2q gate's matrix re-expressed on its sorted qubit pair."""
    a, b = gate.qubits
    m = gate.matrix()
    if a < b:
        return (a, b), m
    return (b, a), m.reshape(2, 2, 2, 2).transpose(1, 0, 3, 2).reshape(4, 4)


def fuse_schedule(
    schedule: list[list[tuple[int, Gate]]],
    noise: NoiseModel | None,
    *,
    two_qubit: bool = False,
) -> list[list[tuple[int, Gate]]]:
    """Fuse runs of noise-free gates into single dense operators.

    With ``two_qubit=False`` this is 1q fusion: consecutive noise-free
    1q gates per wire collapse into one 2x2 product (the dominant cost
    of deep Clifford+T streams, where synthesis expands every rotation
    into long 1q runs); any 2q or noisy gate touching the wire flushes
    the pending product first, so gate order per wire and the
    (gate, uniform) noise pairing are unchanged.

    ``two_qubit=True`` additionally collapses adjacent noise-free 2q
    gates on the *same* qubit pair — plus the noise-free 1q runs
    sandwiched between them — into single 4x4 operators
    (:class:`Fused2Q`).  This un-fences exactly the layers where 1q
    fusion stalls under gate noise: between two noise events the whole
    entangling block becomes one batched application.  Deferred
    operators commute with the other-wire gates and noise events that
    overtake them, because a pending block is flushed right before the
    first gate (noisy or differently-paired) touching one of its wires.
    """
    noisy = is_noisy(noise)
    pending_1q: dict[int, np.ndarray] = {}
    pending_2q: dict[tuple[int, int], np.ndarray] = {}
    wire_pair: dict[int, tuple[int, int]] = {}
    out: list[list[tuple[int, Gate]]] = []

    def flush(q: int, out_layer: list[tuple[int, Gate]]) -> None:
        pair = wire_pair.get(q)
        if pair is not None:
            out_layer.append((-1, Fused2Q(pair, pending_2q.pop(pair))))
            for w in pair:
                del wire_pair[w]
            return
        acc = pending_1q.pop(q, None)
        if acc is not None:
            out_layer.append((-1, Fused1Q(q, acc)))

    for layer in schedule:
        out_layer: list[tuple[int, Gate]] = []
        for pos, gate in layer:
            gate_noisy = noisy and noise.noisy_qubits(gate)
            if len(gate.qubits) == 1 and not gate_noisy:
                q = gate.qubits[0]
                pair = wire_pair.get(q)
                if pair is not None:
                    # Sandwiched 1q gate: fold into the open 4x4 block.
                    m = gate.matrix()
                    lift = (
                        np.kron(m, _EYE2) if q == pair[0]
                        else np.kron(_EYE2, m)
                    )
                    pending_2q[pair] = lift @ pending_2q[pair]
                else:
                    acc = pending_1q.get(q)
                    m = gate.matrix()
                    pending_1q[q] = m if acc is None else m @ acc
                continue
            if two_qubit and len(gate.qubits) == 2 and not gate_noisy:
                pair, m = _oriented_2q(gate)
                if wire_pair.get(pair[0]) == pair:
                    pending_2q[pair] = m @ pending_2q[pair]
                    continue
                for q in pair:
                    if wire_pair.get(q) is not None:
                        flush(q, out_layer)
                # Absorb each wire's pending 1q run into the new block.
                lo1q = pending_1q.pop(pair[0], None)
                hi1q = pending_1q.pop(pair[1], None)
                if lo1q is not None or hi1q is not None:
                    m = m @ np.kron(
                        _EYE2 if lo1q is None else lo1q,
                        _EYE2 if hi1q is None else hi1q,
                    )
                pending_2q[pair] = m
                wire_pair[pair[0]] = wire_pair[pair[1]] = pair
                continue
            for q in gate.qubits:
                flush(q, out_layer)
            out_layer.append((pos, gate))
        if out_layer:
            out.append(out_layer)
    leftovers: list[tuple[int, tuple[int, Gate]]] = [
        (pair[0], (-1, Fused2Q(pair, m))) for pair, m in pending_2q.items()
    ]
    leftovers += [
        (q, (-1, Fused1Q(q, m))) for q, m in pending_1q.items()
    ]
    if leftovers:
        out.append([entry for _, entry in sorted(
            leftovers, key=lambda item: item[0]
        )])
    return out


def fuse_1q_schedule(
    schedule: list[list[tuple[int, Gate]]],
    noise: NoiseModel | None,
) -> list[list[tuple[int, Gate]]]:
    """1q-only fusion (see :func:`fuse_schedule`); kept as the stable name."""
    return fuse_schedule(schedule, noise, two_qubit=False)


def noise_event_layout(
    circuit: Circuit, noise: NoiseModel | None
) -> tuple[list[int], int]:
    """Per-gate uniform-column offsets and the total event count.

    One pass over the gate stream yields both facts every stochastic
    engine needs: ``offsets[pos]`` is gate ``pos``'s first column in the
    pre-drawn ``(n_traj, n_events)`` uniform matrix, and the returned
    total sizes that matrix.  Offsets follow the flat gate order
    regardless of scheduling, so the (gate, trajectory) → uniform
    pairing is schedule-invariant.
    """
    offsets: list[int] = []
    event = 0
    noisy = is_noisy(noise)
    for g in circuit.gates:
        offsets.append(event)
        if noisy:
            event += len(noise.noisy_qubits(g))
    return offsets, event


def reference_statevector(reference, n_qubits: int) -> np.ndarray:
    """Coerce any supported reference into a dense statevector."""
    if isinstance(reference, np.ndarray):
        vec = reference.reshape(-1)
        if vec.shape[0] != 2**n_qubits:
            raise ValueError(
                f"reference statevector has dimension {vec.shape[0]}, "
                f"expected {2**n_qubits}"
            )
        return np.asarray(vec, dtype=complex)
    if isinstance(reference, CircuitMPS):
        return reference.to_statevector()
    if isinstance(reference, SimulationResult):
        return reference.statevector()
    raise TypeError(
        f"unsupported reference of type {type(reference).__name__}; pass a "
        "statevector array, a CircuitMPS, or a SimulationResult"
    )


class SimulationResult(ABC):
    """Output of one backend run: a (possibly mixed/sampled) state."""

    backend: str
    n_qubits: int
    n_trajectories: int = 1
    wall_time: float = 0.0

    @abstractmethod
    def fidelity(self, reference) -> float:
        """Fidelity of the simulated state against a pure reference."""

    def infidelity(self, reference) -> float:
        return max(0.0, 1.0 - self.fidelity(reference))

    def fidelity_std_error(self, reference) -> float | None:
        """Sampling standard error of :meth:`fidelity`, if stochastic."""
        return None

    def statevector(self) -> np.ndarray:
        """Dense pure-state readout (noiseless single-trajectory runs)."""
        raise NotImplementedError(
            f"{self.backend} result does not expose a single statevector"
        )


class SimulatorBackend(ABC):
    """One simulation engine behind the common run/score protocol."""

    name: str

    @abstractmethod
    def run(
        self, circuit: Circuit, noise: NoiseModel | None = None
    ) -> SimulationResult:
        """Simulate ``circuit`` from |0..0> under optional noise."""

    @abstractmethod
    def supports(self, n_qubits: int, noisy: bool) -> bool:
        """Whether this engine can take on a problem of this shape."""

    @abstractmethod
    def memory_bytes(self, n_qubits: int, noisy: bool = True) -> int:
        """Approximate peak working-set size for ``n_qubits``.

        ``noisy`` matters for the trajectory engine, whose noiseless
        runs collapse to a single deterministic state.
        """

    def make_reference(self, circuit: Circuit):
        """Noiseless reference state in this backend's native format.

        The dense engines score against a plain statevector; the MPS
        engine overrides this to produce a same-bond-budget MPS so the
        overlap contraction stays cheap at 20+ qubits.
        """
        return circuit.statevector()
