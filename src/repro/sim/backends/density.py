"""The exact density-matrix engine behind the backend protocol.

This is the seed repository's only simulator, refactored behind
:class:`SimulatorBackend`: exact open-system evolution with explicit
Kraus sums, 4^n memory, hard-guarded at ``max_qubits`` (default 12, the
paper's fidelity-evaluation cutoff).  It remains the ground truth the
stochastic engines are validated against.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits.circuit import Circuit
from repro.sim.backends.base import (
    _ITEMSIZE,
    SimulationResult,
    SimulatorBackend,
    reference_statevector,
)
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.noise import NoiseModel


class DensityMatrixResult(SimulationResult):
    """Exact mixed state: fidelity is <psi|rho|psi> with no sampling."""

    backend = "density"

    def __init__(self, rho: np.ndarray, n_qubits: int, wall_time: float):
        self.rho = rho
        self.n_qubits = n_qubits
        self.wall_time = wall_time

    def fidelity(self, reference) -> float:
        psi = reference_statevector(reference, self.n_qubits)
        return float(np.real(psi.conj() @ self.rho @ psi))

    def statevector(self) -> np.ndarray:
        """Dominant eigenvector — valid only for (near-)pure states."""
        vals, vecs = np.linalg.eigh(self.rho)
        if vals[-1] < 1.0 - 1e-9:
            raise ValueError(
                "density matrix is mixed; no single statevector exists"
            )
        return np.ascontiguousarray(vecs[:, -1])


class DensityMatrixBackend(SimulatorBackend):
    """Exact density-matrix simulation (4^n memory, <= max_qubits)."""

    name = "density"

    def __init__(self, max_qubits: int = 12):
        self.max_qubits = max_qubits

    def supports(self, n_qubits: int, noisy: bool) -> bool:
        return n_qubits <= self.max_qubits

    def memory_bytes(self, n_qubits: int, noisy: bool = True) -> int:
        return _ITEMSIZE * 4**n_qubits

    def run(
        self, circuit: Circuit, noise: NoiseModel | None = None
    ) -> DensityMatrixResult:
        start = time.monotonic()
        sim = DensityMatrixSimulator(
            circuit.n_qubits, max_qubits=self.max_qubits
        )
        rho = sim.run(circuit, noise)
        return DensityMatrixResult(
            rho, circuit.n_qubits, time.monotonic() - start
        )
