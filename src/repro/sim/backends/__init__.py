"""Pluggable simulation backends and size-aware auto-dispatch.

Three engines implement the :class:`SimulatorBackend` protocol:

``density``
    Exact density matrix (4^n memory, <= 12 qubits) — ground truth.
``statevector``
    Batched statevector trajectories with Monte-Carlo Kraus noise
    (n_traj x 2^n memory, <= ~24 qubits) — the fast noisy engine.
``mps``
    Bond-truncated matrix product state (linear memory) — the 20+
    qubit engine, exact up to the tracked truncated weight.

:func:`select_backend` picks one from ``(n_qubits, noise, memory
budget)``; see the README "Simulation backends" section for the rules.
"""

from __future__ import annotations

from repro.sim.backends.base import (
    ScheduleCache,
    SimulationResult,
    SimulatorBackend,
    fused_gate_schedule,
    gate_schedule,
    is_noisy,
    reference_statevector,
    schedule_cache,
)
from repro.sim.backends.density import DensityMatrixBackend, DensityMatrixResult
from repro.sim.backends.mps_backend import MPSBackend, MPSResult
from repro.sim.backends.statevector import (
    StatevectorTrajectoryBackend,
    TrajectoryResult,
)
from repro.sim.noise import NoiseModel
from repro.sim.program import ProgramCache

#: Default working-set ceiling for auto-dispatch: 2 GiB.
DEFAULT_MEMORY_BUDGET = 2**31

#: Exact density matrices win below this size even when noisy: the 4^n
#: work is still smaller than a meaningful trajectory count's 2^n work.
_DENSITY_PREFERRED_MAX = 8

BACKEND_NAMES = ("auto", "density", "statevector", "mps")

_ALIASES = {
    "density": "density",
    "density_matrix": "density",
    "dm": "density",
    "statevector": "statevector",
    "sv": "statevector",
    "trajectories": "statevector",
    "mps": "mps",
    "tensornet": "mps",
}


def _make(
    name: str,
    trajectories: int | None,
    max_bond: int | None,
    seed: int,
    max_workers: int | None,
    sim_options: dict | None = None,
) -> SimulatorBackend:
    if name == "density":
        return DensityMatrixBackend()
    options = dict(sim_options or {})
    if name == "statevector":
        kwargs = {"seed": seed, "max_workers": max_workers, **options}
        if trajectories is not None:
            kwargs["trajectories"] = trajectories
        return StatevectorTrajectoryBackend(**kwargs)
    # The MPS engine understands the program knobs but not the dense
    # fusion ones (fusion would change its truncation sequence).
    options.pop("fuse", None)
    options.pop("fuse2q", None)
    kwargs = {"seed": seed, "max_workers": max_workers, **options}
    if trajectories is not None:
        kwargs["trajectories"] = trajectories
    if max_bond is not None:
        kwargs["max_bond"] = max_bond
    return MPSBackend(**kwargs)


def select_backend(
    n_qubits: int,
    noise: NoiseModel | None = None,
    *,
    backend: str = "auto",
    trajectories: int | None = None,
    max_bond: int | None = None,
    seed: int = 0,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
    max_workers: int | None = None,
    compiled: bool = True,
    fuse: bool = True,
    fuse2q: bool = True,
    program_cache: ProgramCache | None = None,
) -> SimulatorBackend:
    """Choose a simulation engine for a problem shape.

    ``backend='auto'`` dispatches on (n_qubits, noise, memory budget):

    * noiseless → statevector if one state fits the budget, else MPS;
    * noisy → exact density matrix up to 8 qubits (when 4^n fits),
      then statevector trajectories while a trajectory chunk fits,
      then MPS trajectories.

    Any explicit name (``density`` / ``statevector`` / ``mps``, plus
    common aliases) bypasses the heuristics but still validates the
    qubit count against the engine's own hard limits.

    ``compiled``/``fuse``/``fuse2q`` configure the stochastic engines'
    JIT program compilation and gate fusion (see
    :mod:`repro.sim.program`); ``program_cache`` injects a private
    compiled-program cache in place of the process-wide shared one.
    """
    sim_options = {
        "compiled": compiled,
        "fuse": fuse,
        "fuse2q": fuse2q,
        "program_cache": program_cache,
    }
    canonical = _ALIASES.get(backend, backend)
    if canonical != "auto":
        if canonical not in ("density", "statevector", "mps"):
            raise ValueError(
                f"unknown backend {backend!r}; pick from {BACKEND_NAMES}"
            )
        chosen = _make(
            canonical, trajectories, max_bond, seed, max_workers, sim_options
        )
        if not chosen.supports(n_qubits, is_noisy(noise)):
            raise ValueError(
                f"backend {canonical!r} cannot simulate {n_qubits} qubits"
            )
        return chosen
    noisy = is_noisy(noise)
    density = _make("density", trajectories, max_bond, seed, max_workers)
    statevec = _make(
        "statevector", trajectories, max_bond, seed, max_workers, sim_options
    )
    sv_fits = (
        statevec.supports(n_qubits, noisy)
        and statevec.memory_bytes(n_qubits, noisy) <= memory_budget_bytes
    )
    if noisy:
        dm_fits = (
            n_qubits <= _DENSITY_PREFERRED_MAX
            and density.supports(n_qubits, noisy)
            and density.memory_bytes(n_qubits, noisy) <= memory_budget_bytes
        )
        if dm_fits:
            return density
    if sv_fits:
        return statevec
    return _make("mps", trajectories, max_bond, seed, max_workers)


__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_MEMORY_BUDGET",
    "DensityMatrixBackend",
    "DensityMatrixResult",
    "MPSBackend",
    "MPSResult",
    "NoiseModel",
    "ProgramCache",
    "ScheduleCache",
    "SimulationResult",
    "SimulatorBackend",
    "StatevectorTrajectoryBackend",
    "TrajectoryResult",
    "fused_gate_schedule",
    "gate_schedule",
    "is_noisy",
    "reference_statevector",
    "schedule_cache",
    "select_backend",
]
