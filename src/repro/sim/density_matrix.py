"""Exact density-matrix simulation with per-gate depolarizing noise.

The density matrix is stored as a rank-2n tensor (ket axes then bra
axes); gates act on both sides and Kraus channels are summed explicitly.
Memory is 4^n complex entries, so the simulator guards at 12 qubits —
matching the paper's fidelity-evaluation cutoff.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.sim.noise import NoiseModel, depolarizing_kraus


class DensityMatrixSimulator:
    """Runs circuits under an optional :class:`NoiseModel`."""

    def __init__(self, n_qubits: int, max_qubits: int = 12):
        if n_qubits > max_qubits:
            raise ValueError(
                f"density-matrix simulation of {n_qubits} qubits refused "
                f"(limit {max_qubits})"
            )
        self.n = n_qubits
        dim = 2**n_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        self._rho = rho.reshape((2,) * (2 * n_qubits))

    # -- state access -----------------------------------------------------
    @property
    def rho(self) -> np.ndarray:
        dim = 2**self.n
        return self._rho.reshape(dim, dim)

    def set_state(self, rho: np.ndarray) -> None:
        rho = np.asarray(rho, dtype=complex)
        dim = 2**self.n
        if rho.shape != (dim, dim):
            raise ValueError(
                f"expected a square ({dim}, {dim}) density matrix for "
                f"{self.n} qubits, got shape {rho.shape}"
            )
        trace = complex(np.trace(rho))
        if abs(trace - 1.0) > 1e-8:
            raise ValueError(
                f"density matrix must have unit trace, got {trace:.6g}"
            )
        self._rho = rho.reshape((2,) * (2 * self.n))

    # -- evolution -----------------------------------------------------------
    def apply_gate(self, gate: Gate) -> None:
        m = gate.matrix()
        qubits = gate.qubits
        self._rho = _apply_operator(self._rho, m, qubits, self.n, side="ket")
        self._rho = _apply_operator(
            self._rho, m.conj(), qubits, self.n, side="bra"
        )

    def apply_kraus_1q(self, kraus: list[np.ndarray], qubit: int) -> None:
        total = None
        for k in kraus:
            term = _apply_operator(self._rho, k, (qubit,), self.n, side="ket")
            term = _apply_operator(term, k.conj(), (qubit,), self.n, side="bra")
            total = term if total is None else total + term
        self._rho = total

    def run(self, circuit: Circuit, noise: NoiseModel | None = None) -> np.ndarray:
        if circuit.n_qubits != self.n:
            raise ValueError("circuit size mismatch")
        for gate in circuit.gates:
            self.apply_gate(gate)
            if noise is not None:
                for q in noise.noisy_qubits(gate):
                    self.apply_kraus_1q(
                        depolarizing_kraus(noise.rate_for(gate)), q
                    )
        return self.rho


def _apply_operator(
    rho: np.ndarray, m: np.ndarray, qubits: tuple[int, ...], n: int, side: str
) -> np.ndarray:
    """Contract a local operator into ket axes (0..n-1) or bra axes (n..2n-1)."""
    axes = [q if side == "ket" else n + q for q in qubits]
    k = len(qubits)
    m = m.reshape((2,) * (2 * k))
    rho = np.tensordot(m, rho, axes=(list(range(k, 2 * k)), axes))
    return np.moveaxis(rho, list(range(k)), axes)


def simulate_noisy(
    circuit: Circuit, noise: NoiseModel | None = None, max_qubits: int = 12
) -> np.ndarray:
    """Convenience wrapper: run ``circuit`` from |0..0> and return rho."""
    sim = DensityMatrixSimulator(circuit.n_qubits, max_qubits=max_qubits)
    return sim.run(circuit, noise)
