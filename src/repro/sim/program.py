"""JIT-compiled simulation programs: compile once, run every chunk.

The stochastic engines used to re-interpret the gate stream on every
chunk of every run — ``gate.matrix()`` per gate per chunk, a channel
table resolved per noise event, one ``searchsorted`` per event column.
:func:`compile_program` lowers a ``(circuit, noise, schedule-config)``
triple into a flat :class:`SimProgram` instead:

* every operator is a precomputed dense matrix (including the 1q/2q
  fusion products of :func:`repro.sim.backends.base.fuse_schedule`),
* every noise event carries its resolved Kraus/mixture table and its
  column into the pre-drawn ``(n_traj, n_events)`` uniform matrix,
* mixture events are grouped by channel so a whole run's outcome
  choices come from one batched ``searchsorted`` per distinct rate —
  bit-identical to the per-event sampling by construction — and the
  identity outcome (the overwhelming majority at calibrated rates) is
  marked so engines can skip it outright.

Programs are immutable after compilation and shared read-only across
chunks and worker threads.  :class:`ProgramCache` memoizes them under a
content key — gate stream plus the *resolved* noise behavior (noisy
qubits and rate per gate), not model object identity — so repeated
evaluation of the same circuit (rq3/rq4/rq7 sweeps, ``compile_batch``
objective grids, fidelity sampling) skips recompilation entirely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.sim.backends.base import (
    fuse_schedule,
    gate_schedule,
    is_noisy,
    noise_event_layout,
)
from repro.sim.noise import NoiseModel, depolarizing_kraus

_EYE2 = np.eye(2, dtype=complex)


class _UnitaryMixture:
    """A Kraus channel of scaled unitaries: sample index, apply unitary.

    ``identity_index`` marks the outcome whose unitary is *exactly* the
    identity (−1 when there is none): applying it is a no-op, so
    engines skip those trajectories — the dominant outcome at
    calibrated error rates.
    """

    __slots__ = ("cum", "unitaries", "identity_index")

    def __init__(self, probs: np.ndarray, unitaries: list[np.ndarray]):
        self.cum = np.cumsum(probs)
        self.cum[-1] = 1.0  # guard rounding at the top end
        self.unitaries = unitaries
        self.identity_index = next(
            (
                i for i, u in enumerate(unitaries)
                if u.shape == (2, 2) and np.array_equal(u, _EYE2)
            ),
            -1,
        )


def _as_unitary_mixture(kraus: list[np.ndarray]) -> _UnitaryMixture | None:
    """Detect K_i^dag K_i = c_i I and precompute the sampling table."""
    probs, unitaries = [], []
    for k in kraus:
        kdk = k.conj().T @ k
        c = float(np.real(kdk[0, 0]))
        if c <= 0 or not np.allclose(kdk, c * np.eye(k.shape[0]), atol=1e-12):
            return None
        u = k / np.sqrt(c)
        if u.shape == (2, 2) and np.allclose(u, _EYE2, atol=1e-12):
            # Snap the near-identity branch (K0 of a depolarizing
            # channel) to the exact identity so applying and skipping
            # it are the same state, bit for bit.
            u = _EYE2
        probs.append(c)
        unitaries.append(u)
    probs = np.asarray(probs)
    if not np.isclose(probs.sum(), 1.0, atol=1e-9):
        return None  # not trace preserving; use the general path
    return _UnitaryMixture(probs, unitaries)


class DepolarizingChannels:
    """Per-rate cache of (kraus, mixture) pairs for heterogeneous noise.

    Uniform models hit one entry; target-derived models
    (:meth:`NoiseModel.from_target`) have one entry per distinct
    calibrated rate.  Shared by the statevector and MPS engines.  A
    custom ``factory`` (:attr:`NoiseModel.kraus`) swaps the default
    depolarizing construction for an arbitrary channel family.
    """

    def __init__(
        self,
        factory: Callable[[float], list[np.ndarray]] | None = None,
    ):
        self._by_rate: dict[float, tuple] = {}
        self._factory = factory if factory is not None else depolarizing_kraus

    def get(self, rate: float) -> tuple:
        entry = self._by_rate.get(rate)
        if entry is None:
            kraus = self._factory(rate)
            entry = (kraus, _as_unitary_mixture(kraus))
            self._by_rate[rate] = entry
        return entry


def channels_for(noise: NoiseModel | None) -> DepolarizingChannels:
    """A channel table honoring the model's optional Kraus factory."""
    return DepolarizingChannels(getattr(noise, "kraus", None))


class ProgramOp:
    """One precompiled operator: dense matrix on a qubit tuple."""

    __slots__ = ("qubits", "matrix")

    def __init__(self, qubits: tuple[int, ...], matrix: np.ndarray):
        self.qubits = qubits
        self.matrix = matrix


class NoiseEvent:
    """One precompiled Monte-Carlo Kraus event.

    ``column`` indexes the event's uniform in the pre-drawn matrix;
    ``mixture`` is the fast unitary-mixture table (None for general
    channels, which stay state-dependent).
    """

    __slots__ = ("qubit", "column", "kraus", "mixture")

    def __init__(self, qubit, column, kraus, mixture):
        self.qubit = qubit
        self.column = column
        self.kraus = kraus
        self.mixture = mixture


def program_key(
    circuit: Circuit,
    noise: NoiseModel | None,
    *,
    layered: bool,
    fuse: bool,
    fuse2q: bool,
):
    """Content cache key: gate stream + resolved noise behavior + config.

    The noise model enters through what the engines actually consume —
    per-gate noisy qubits and rates (plus the channel factory's
    identity) — so two model objects that behave identically on this
    circuit share one compiled program, and a model tweak can never be
    masked by object reuse.
    """
    gates = tuple((g.name, g.qubits, g.params) for g in circuit.gates)
    noise_sig = None
    if is_noisy(noise):
        events = tuple(
            (pos, qubits, noise.rate_for(g))
            for pos, g in enumerate(circuit.gates)
            if (qubits := noise.noisy_qubits(g))
        )
        noise_sig = (events, getattr(noise, "kraus", None))
    return (circuit.n_qubits, gates, noise_sig, layered, fuse, fuse2q)


class SimProgram:
    """A compiled, immutable, engine-agnostic simulation program."""

    __slots__ = (
        "n_qubits",
        "n_events",
        "layers",
        "mixture_groups",
        "n_source_gates",
        "n_ops",
    )

    def __init__(self, n_qubits, n_events, layers, mixture_groups,
                 n_source_gates):
        self.n_qubits = n_qubits
        self.n_events = n_events
        #: ``[(ops, events), ...]`` — one entry per schedule layer.
        self.layers = layers
        #: ``[(cum, columns), ...]`` — mixture events grouped by channel.
        self.mixture_groups = mixture_groups
        self.n_source_gates = n_source_gates
        self.n_ops = sum(len(ops) for ops, _ in layers)

    def sample_choices(self, uniforms: np.ndarray) -> np.ndarray | None:
        """Outcome indices for every mixture event of every trajectory.

        One batched ``searchsorted`` per distinct channel over the
        chunk's pre-drawn uniforms — element-for-element the same
        values the per-event reference sampling produces, so results
        stay chunk- and worker-invariant.  Columns of general (non-
        mixture) events are left untouched; their probabilities depend
        on the state and are resolved at application time.
        """
        if not self.mixture_groups:
            return None
        choices = np.empty(uniforms.shape, dtype=np.intp)
        for cum, cols in self.mixture_groups:
            choices[:, cols] = np.searchsorted(
                cum, uniforms[:, cols], side="right"
            )
        return choices


def compile_program(
    circuit: Circuit,
    noise: NoiseModel | None = None,
    *,
    layered: bool = True,
    fuse: bool = True,
    fuse2q: bool = True,
) -> SimProgram:
    """Lower a circuit (+ noise model) into a :class:`SimProgram`.

    ``layered``/``fuse``/``fuse2q`` mirror the engine knobs: DAG
    front-layer scheduling, 1q fusion, and same-pair 2q fusion.  The
    returned program is self-contained — engines touch neither the
    circuit nor the noise model again.
    """
    offsets, n_events = noise_event_layout(circuit, noise)
    schedule = gate_schedule(circuit, layered)
    if fuse:
        schedule = fuse_schedule(schedule, noise, two_qubit=fuse2q)
    noisy = is_noisy(noise)
    channels = channels_for(noise) if noisy else None
    layers = []
    mixture_cols: dict[int, tuple[np.ndarray, list[int]]] = {}
    for layer in schedule:
        ops = tuple(
            ProgramOp(gate.qubits, gate.matrix()) for _, gate in layer
        )
        events = []
        if noisy:
            for pos, gate in layer:
                if pos < 0:
                    continue  # fused operators carry no noise events
                qubits = noise.noisy_qubits(gate)
                if not qubits:
                    continue
                kraus, mixture = channels.get(noise.rate_for(gate))
                for j, q in enumerate(qubits):
                    column = offsets[pos] + j
                    events.append(NoiseEvent(q, column, kraus, mixture))
                    if mixture is not None:
                        group = mixture_cols.setdefault(
                            id(mixture), (mixture.cum, [])
                        )
                        group[1].append(column)
        layers.append((ops, tuple(events)))
    mixture_groups = tuple(
        (cum, np.asarray(cols, dtype=np.intp))
        for cum, cols in mixture_cols.values()
    )
    return SimProgram(
        circuit.n_qubits, n_events, tuple(layers), mixture_groups,
        len(circuit.gates),
    )


class ProgramCache:
    """Thread-safe LRU of compiled programs, keyed by content.

    Sized for working sets like a compile-batch objective grid or an
    rq-sweep's circuit family; eviction is least-recently-used.  Hit
    and miss counters make cache behavior testable and observable.
    """

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError("program cache needs room for one entry")
        self.maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._programs: OrderedDict[tuple, SimProgram] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(
        self,
        circuit: Circuit,
        noise: NoiseModel | None = None,
        *,
        layered: bool = True,
        fuse: bool = True,
        fuse2q: bool = True,
    ) -> SimProgram:
        """The compiled program for this triple, compiling on miss.

        Compilation happens outside the lock — two threads racing on
        one key may both compile, but the result is identical and the
        last insert wins, so correctness is unaffected.
        """
        key = program_key(
            circuit, noise, layered=layered, fuse=fuse, fuse2q=fuse2q
        )
        with self._lock:
            program = self._programs.get(key)
            if program is not None:
                self._programs.move_to_end(key)
                self.hits += 1
                return program
            self.misses += 1
        program = compile_program(
            circuit, noise, layered=layered, fuse=fuse, fuse2q=fuse2q
        )
        with self._lock:
            self._programs[key] = program
            self._programs.move_to_end(key)
            while len(self._programs) > self.maxsize:
                self._programs.popitem(last=False)
        return program

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)

    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._programs),
                "maxsize": self.maxsize,
            }


#: Process-wide default cache: chunks, workers, repeated runs, and both
#: stochastic engines all share it unless a private cache is injected.
_GLOBAL_CACHE = ProgramCache()


def default_program_cache() -> ProgramCache:
    """The process-wide shared :class:`ProgramCache`."""
    return _GLOBAL_CACHE


__all__ = [
    "DepolarizingChannels",
    "NoiseEvent",
    "ProgramCache",
    "ProgramOp",
    "SimProgram",
    "channels_for",
    "compile_program",
    "default_program_cache",
    "program_key",
]
