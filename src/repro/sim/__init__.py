"""Simulators and fidelity metrics for noisy fault-tolerant execution.

The engines live behind :mod:`repro.sim.backends` (density matrix,
statevector trajectories, MPS) with :func:`select_backend` auto-dispatch
and :func:`evaluate_fidelity` as the circuit-level entry point.
"""

from repro.sim.backends import (
    DensityMatrixBackend,
    MPSBackend,
    SimulationResult,
    SimulatorBackend,
    StatevectorTrajectoryBackend,
    select_backend,
)
from repro.sim.density_matrix import DensityMatrixSimulator, simulate_noisy
from repro.sim.evaluate import FidelityEvaluation, evaluate_fidelity
from repro.sim.fidelity import (
    process_fidelity_1q,
    sequence_process_infidelity,
    state_fidelity,
    state_infidelity,
)
from repro.sim.noise import NoiseModel, canonical_gate_name, depolarizing_kraus
from repro.sim.program import (
    ProgramCache,
    SimProgram,
    compile_program,
    default_program_cache,
    program_key,
)

__all__ = [
    "DensityMatrixBackend",
    "DensityMatrixSimulator",
    "FidelityEvaluation",
    "MPSBackend",
    "NoiseModel",
    "ProgramCache",
    "SimProgram",
    "SimulationResult",
    "SimulatorBackend",
    "StatevectorTrajectoryBackend",
    "canonical_gate_name",
    "compile_program",
    "default_program_cache",
    "depolarizing_kraus",
    "evaluate_fidelity",
    "process_fidelity_1q",
    "program_key",
    "select_backend",
    "sequence_process_infidelity",
    "simulate_noisy",
    "state_fidelity",
    "state_infidelity",
]
