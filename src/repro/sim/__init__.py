"""Simulators and fidelity metrics for noisy fault-tolerant execution."""

from repro.sim.density_matrix import DensityMatrixSimulator, simulate_noisy
from repro.sim.fidelity import (
    process_fidelity_1q,
    sequence_process_infidelity,
    state_fidelity,
    state_infidelity,
)
from repro.sim.noise import NoiseModel, depolarizing_kraus

__all__ = [
    "DensityMatrixSimulator",
    "NoiseModel",
    "depolarizing_kraus",
    "process_fidelity_1q",
    "sequence_process_infidelity",
    "simulate_noisy",
    "state_fidelity",
    "state_infidelity",
]
