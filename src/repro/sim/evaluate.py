"""Circuit-level fidelity evaluation dispatched through the backends.

The one entry point the experiment harness (RQ3/RQ4), the workflows
module, and the CLI all share: simulate a circuit under optional noise
with :func:`repro.sim.backends.select_backend`, build a noiseless
reference in a compatible representation, and report the fidelity
between them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.sim.backends import select_backend
from repro.sim.noise import NoiseModel


@dataclass
class FidelityEvaluation:
    """Outcome of one backend-dispatched fidelity evaluation."""

    backend: str
    n_qubits: int
    fidelity: float
    std_error: float | None
    n_trajectories: int
    wall_time: float
    truncation_error: float = 0.0

    @property
    def infidelity(self) -> float:
        return max(0.0, 1.0 - self.fidelity)

    def summary(self) -> str:
        parts = [
            f"backend={self.backend}",
            f"n_qubits={self.n_qubits}",
            f"fidelity={self.fidelity:.6f}",
        ]
        if self.std_error is not None:
            parts.append(f"+/-{self.std_error:.1e}")
        if self.n_trajectories > 1:
            parts.append(f"trajectories={self.n_trajectories}")
        if self.truncation_error > 0:
            parts.append(f"truncated_weight={self.truncation_error:.1e}")
        parts.append(f"{self.wall_time:.3f}s")
        return " ".join(parts)


def make_reference_state(
    reference: Circuit,
    sim,
):
    """Noiseless reference in the representation ``sim`` scores best.

    A dense statevector for the density/statevector engines; a
    noiseless MPS run of the same bond budget for the MPS engine
    (keeping the overlap contraction cheap at 20+ qubits).  The return
    value can be passed to :func:`evaluate_fidelity` as
    ``reference_state`` to amortize the reference simulation over many
    evaluations against the same ideal circuit.
    """
    return sim.make_reference(reference)


def evaluate_fidelity(
    circuit: Circuit,
    reference: Circuit | None = None,
    noise: NoiseModel | None = None,
    *,
    backend: str = "auto",
    trajectories: int | None = None,
    max_bond: int | None = None,
    seed: int = 0,
    max_workers: int | None = None,
    reference_state=None,
    compiled: bool = True,
    fuse: bool = True,
    fuse2q: bool = True,
    program_cache=None,
) -> FidelityEvaluation:
    """Fidelity of ``circuit`` (under ``noise``) against ``reference``.

    ``reference`` defaults to the circuit itself — i.e. "how much
    fidelity does this circuit lose to noise".  For synthesis
    evaluation pass the original (pre-synthesis) circuit as the
    reference and the synthesized circuit as ``circuit``.

    The reference is simulated noiselessly via
    :func:`make_reference_state` unless a precomputed
    ``reference_state`` (dense vector or ``CircuitMPS``) is supplied —
    callers scoring many circuits against one ideal state should
    precompute it once.

    ``compiled``/``fuse``/``fuse2q``/``program_cache`` configure the
    stochastic engines' JIT program compilation (see
    :mod:`repro.sim.program`); the defaults give the fast path.
    """
    if reference is None:
        reference = circuit
    if reference.n_qubits != circuit.n_qubits:
        raise ValueError("reference and circuit qubit counts differ")
    sim = select_backend(
        circuit.n_qubits,
        noise,
        backend=backend,
        trajectories=trajectories,
        max_bond=max_bond,
        seed=seed,
        max_workers=max_workers,
        compiled=compiled,
        fuse=fuse,
        fuse2q=fuse2q,
        program_cache=program_cache,
    )
    ref_state = reference_state
    if ref_state is None:
        ref_state = make_reference_state(reference, sim)
    result = sim.run(circuit, noise)
    return FidelityEvaluation(
        backend=result.backend,
        n_qubits=circuit.n_qubits,
        fidelity=result.fidelity(ref_state),
        std_error=result.fidelity_std_error(ref_state),
        n_trajectories=result.n_trajectories,
        wall_time=result.wall_time,
        truncation_error=getattr(result, "truncation_error", 0.0),
    )
