"""Fidelity metrics: state fidelity and 1q process fidelity (RQ2/RQ4).

The process fidelity of a channel E against a target unitary U is
computed through the Choi state: F = <Phi_U| (E x I)(|Phi><Phi|) |Phi_U>
with |Phi> the maximally entangled pair and |Phi_U> = (U x I)|Phi>.
For a noiseless unitary V this reduces to |Tr(U^dag V)|^2 / 4 — the
square of the paper's trace value, tying RQ2's fidelity curve directly
to the synthesis error metric.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import GATES
from repro.sim.noise import canonical_gate_name, depolarizing_kraus

# Kept in synthesis-token capitalization for backward compatibility of
# call sites; every comparison goes through canonical_gate_name so the
# circuit IR's lower-case names match too.
_T_NAMES = frozenset({"T", "Tdg"})
_PAULI_NAMES = frozenset({"I", "X", "Y", "Z"})

_CANONICAL_GATES = {canonical_gate_name(k): v for k, v in GATES.items()}


def _gate_matrix(name: str) -> np.ndarray:
    """Look up a 1q gate matrix by either token or IR capitalization."""
    try:
        return GATES[name]
    except KeyError:
        return _CANONICAL_GATES[canonical_gate_name(name)]


def state_fidelity(rho: np.ndarray, psi: np.ndarray) -> float:
    """<psi| rho |psi> for a density matrix against a pure state."""
    psi = np.asarray(psi, dtype=complex).reshape(-1)
    return float(np.real(psi.conj() @ rho @ psi))


def state_infidelity(rho: np.ndarray, psi: np.ndarray) -> float:
    return max(0.0, 1.0 - state_fidelity(rho, psi))


def process_fidelity_1q(choi: np.ndarray, target: np.ndarray) -> float:
    """Process fidelity from a 1q Choi state (4x4, trace 1)."""
    phi = np.zeros(4, dtype=complex)
    phi[0] = phi[3] = 1.0 / np.sqrt(2.0)
    phi_u = np.kron(target, np.eye(2)) @ phi
    return float(np.real(phi_u.conj() @ choi @ phi_u))


def choi_of_sequence(
    gates,
    logical_rate: float = 0.0,
    noisy_gates: frozenset[str] = _T_NAMES,
) -> np.ndarray:
    """Choi state of a 1q gate sequence with depolarizing logical errors.

    ``gates`` is in matrix-product order (as produced by the
    synthesizers); depolarizing noise at ``logical_rate`` follows every
    gate whose name is in ``noisy_gates`` (default: T gates only — the
    paper's most conservative RQ2 model).
    """
    phi = np.zeros(4, dtype=complex)
    phi[0] = phi[3] = 1.0 / np.sqrt(2.0)
    rho = np.outer(phi, phi.conj())
    kraus = depolarizing_kraus(logical_rate) if logical_rate > 0 else None
    noisy = frozenset(canonical_gate_name(n) for n in noisy_gates)
    eye = np.eye(2, dtype=complex)
    # Matrix order: gates[-1] acts first in time.
    for name in reversed(list(gates)):
        u = np.kron(_gate_matrix(name), eye)
        rho = u @ rho @ u.conj().T
        if kraus is not None and canonical_gate_name(name) in noisy:
            rho = sum(
                np.kron(k, eye) @ rho @ np.kron(k, eye).conj().T for k in kraus
            )
    return rho


def sequence_process_infidelity(
    gates,
    target: np.ndarray,
    logical_rate: float,
    noisy_gates: frozenset[str] = _T_NAMES,
) -> float:
    """1 - F_pro of a synthesized sequence under logical errors (RQ2)."""
    choi = choi_of_sequence(gates, logical_rate, noisy_gates)
    return max(0.0, 1.0 - process_fidelity_1q(choi, target))
