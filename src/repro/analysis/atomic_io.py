"""Atomic file writes: the one tmp + ``os.replace`` idiom, shared.

PRs 1-6 grew three hand-rolled copies of the same write-and-replace
dance (``SynthesisCache.save``, ``Target.save``, the bench harness'
``write_report``) while the CLI's QASM outputs stayed plain ``open``
calls that an interrupted run leaves truncated on disk.  This module is
the single implementation all of them now route through, and the
anchor the project linter's ``atomic-write`` rule points offenders at:
a write is atomic iff it lands in a unique temp file first and is
published with ``os.replace`` (POSIX rename semantics — readers see
either the old complete file or the new complete file, never a prefix).

No repro imports on purpose: every layer (target, pipeline, bench,
CLI) may depend on this module without cycles.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any


def _tmp_name(path: str) -> str:
    # Unique per writer: concurrent savers of the same path must not
    # interleave into one temp file and publish garbage.
    return f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + ``os.replace``).

    On any failure the temp file is removed and the previous contents
    of ``path`` (if any) are left untouched.
    """
    path = os.fspath(path)
    tmp = _tmp_name(path)
    try:
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str | os.PathLike,
    obj: Any,
    *,
    indent: int | None = None,
    sort_keys: bool = False,
    trailing_newline: bool = False,
) -> None:
    """Serialize ``obj`` as JSON and publish it atomically.

    The serialization happens *before* the temp file is replaced over
    ``path``, so a ``TypeError`` from an unserializable object can
    never corrupt an existing file either.
    """
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys)
    if trailing_newline:
        text += "\n"
    atomic_write_text(path, text)
