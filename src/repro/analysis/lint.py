"""AST-based project linter: repo-specific rules ruff cannot express.

``python -m repro.analysis.lint src/`` walks the given files or
directories, parses every ``*.py`` with the stdlib :mod:`ast`, and
enforces the invariants PRs 1-6 established by hand and review alone:

``rng-discipline``
    No calls to the legacy global NumPy RNG (``np.random.seed``,
    ``np.random.random``, ...).  All randomness must flow through
    ``np.random.default_rng`` / ``repro.pipeline.rng_for_key`` so
    results stay deterministic under threading and batching.
``bare-assert``
    No ``assert`` statements in library code: they vanish under
    ``python -O``, so invariants must raise real exceptions (PRs 2-5
    converted these one by one; this rule freezes the invariant).
``atomic-write``
    No ``open(path, "w")`` writes that are not part of a tmp +
    ``os.replace`` publish in the same function — an interrupted
    writer must never leave a truncated file.  Route writes through
    :mod:`repro.analysis.atomic_io`.
``mutable-default``
    No mutable default arguments (lists/dicts/sets evaluated once at
    definition time and shared across calls).
``lock-discipline``
    A module-level mutable container mutated from more than one
    function needs a ``threading.Lock``/``RLock`` somewhere in the
    module — the pipeline's worker threads share module state.
``columnar-discipline``
    No per-node DAG traversal (``.topological()``/``.nodes()``) inside
    ``src/repro/optimizers/`` outside functions named ``*_reference``:
    hot pass code must go through the columnar
    :class:`repro.circuits.dag_table.DAGTable` kernels; the per-node
    loops survive only as the byte-identical reference oracles.

Suppression: append ``# repro-lint: disable=<rule>[,<rule>...]`` (or
``disable=all``) to the offending line.  A committed baseline file
(``--write-baseline`` / ``--baseline``) grandfathers existing findings
by content fingerprint so new code is held to the rules immediately.

Output is human-readable by default or JSON with ``--format json``;
the exit code is 0 when clean, 1 with findings, 2 on usage errors.
Only the stdlib is used, so the linter runs anywhere the repo does.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import os
import re
import sys
from dataclasses import dataclass

#: Rule catalog: id -> one-line description (shown by ``--list-rules``).
RULES: dict[str, str] = {
    "rng-discipline": (
        "legacy np.random.<fn> global-RNG call; use "
        "np.random.default_rng / rng_for_key"
    ),
    "bare-assert": (
        "assert in library code (stripped under python -O); raise a "
        "real exception"
    ),
    "atomic-write": (
        "open(path, 'w') without os.replace in the same function; use "
        "repro.analysis.atomic_io"
    ),
    "mutable-default": (
        "mutable default argument (shared across calls); default to "
        "None and create inside"
    ),
    "lock-discipline": (
        "module-level mutable container mutated from multiple "
        "functions without a threading.Lock in the module"
    ),
    "columnar-discipline": (
        "per-node DAG traversal in repro.optimizers outside a "
        "*_reference function; use the columnar DAGTable kernels"
    ),
}

_RNG_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator",
     "PCG64", "Philox", "MT19937"}
)
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "OrderedDict", "defaultdict", "deque",
     "Counter", "WeakKeyDictionary", "WeakValueDictionary"}
)
_MUTATING_METHODS = frozenset(
    {"append", "appendleft", "extend", "insert", "add", "update",
     "pop", "popitem", "popleft", "clear", "setdefault", "remove",
     "discard", "move_to_end"}
)
_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([\w\-, ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def fingerprint(self, line_text: str) -> str:
        """Content-based identity for the baseline mechanism.

        Hashing the stripped source line (not the line number) keeps a
        baselined finding suppressed when unrelated edits shift it.
        """
        basename = os.path.basename(self.path)
        payload = f"{basename}|{self.rule}|{line_text.strip()}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_mutable_value(node: ast.expr) -> bool:
    """A value that creates a fresh mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        if name is None:
            return False
        return name.rsplit(".", 1)[-1] in _MUTABLE_FACTORIES
    return False


# -- individual rules -------------------------------------------------------

def _check_rng(tree: ast.AST, path: str) -> list[Finding]:
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if len(parts) == 3 and parts[0] in ("np", "numpy") \
                and parts[1] == "random" and parts[2] not in _RNG_ALLOWED:
            out.append(Finding(
                path, node.lineno, node.col_offset, "rng-discipline",
                f"call to legacy global RNG {dotted}(); use "
                "np.random.default_rng (or rng_for_key) instead",
            ))
    return out


def _check_asserts(tree: ast.AST, path: str) -> list[Finding]:
    return [
        Finding(
            path, node.lineno, node.col_offset, "bare-assert",
            "assert statement in library code; raise "
            "ValueError/RuntimeError so the check survives python -O",
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.Assert)
    ]


def _open_write_mode(node: ast.Call) -> bool:
    """Is this an ``open(...)`` call with a write mode?"""
    if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
        return False
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and mode.value.startswith("w")
    )


def _check_atomic_writes(tree: ast.AST, path: str) -> list[Finding]:
    out = []

    def scan_scope(scope_body: list[ast.stmt]) -> None:
        # One scope = one function (or the module top level).  A write
        # is atomic iff the same scope publishes it with os.replace;
        # nested functions are their own scopes.
        opens: list[ast.Call] = []
        has_replace = False
        stack: list[ast.AST] = list(scope_body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan_scope(node.body)
                continue
            if isinstance(node, ast.Call):
                if _open_write_mode(node):
                    opens.append(node)
                elif _dotted_name(node.func) == "os.replace":
                    has_replace = True
            stack.extend(ast.iter_child_nodes(node))
        if not has_replace:
            for call in opens:
                out.append(Finding(
                    path, call.lineno, call.col_offset, "atomic-write",
                    "write-mode open() without os.replace in the same "
                    "function; an interrupted run leaves a truncated "
                    "file — use repro.analysis.atomic_io",
                ))

    scan_scope(tree.body if isinstance(tree, ast.Module) else [])
    return out


def _check_mutable_defaults(tree: ast.AST, path: str) -> list[Finding]:
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults)
        defaults.extend(d for d in node.args.kw_defaults if d is not None)
        for default in defaults:
            if _is_mutable_value(default):
                label = getattr(node, "name", "<lambda>")
                out.append(Finding(
                    path, default.lineno, default.col_offset,
                    "mutable-default",
                    f"mutable default argument in {label}(); evaluated "
                    "once and shared across calls — default to None",
                ))
    return out


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally in a function (params + bare assignments)."""
    args = fn.args
    names = {a.arg for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
            tgt = node.target
            if isinstance(tgt, ast.Name):
                names.add(tgt.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not fn:
            names.add(node.name)
    return names


def _mutated_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Container names this function mutates (method call / item store)."""
    mutated: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.attr in _MUTATING_METHODS:
            mutated.add(node.func.value.id)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for tgt in targets:
                if isinstance(tgt, ast.Subscript) \
                        and isinstance(tgt.value, ast.Name):
                    mutated.add(tgt.value.id)
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                if isinstance(tgt, ast.Subscript) \
                        and isinstance(tgt.value, ast.Name):
                    mutated.add(tgt.value.id)
    return mutated


def _check_lock_discipline(tree: ast.AST, path: str) -> list[Finding]:
    if not isinstance(tree, ast.Module):
        return []
    # Module-level mutable containers by name -> definition site.
    containers: dict[str, ast.stmt] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and _is_mutable_value(stmt.value):
            containers[stmt.targets[0].id] = stmt
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.value is not None \
                and _is_mutable_value(stmt.value):
            containers[stmt.target.id] = stmt
    if not containers:
        return []
    has_lock = any(
        isinstance(node, ast.Call)
        and _dotted_name(node.func) in ("threading.Lock", "threading.RLock")
        for node in ast.walk(tree)
    )
    if has_lock:
        return []
    # Which functions (anywhere in the module) mutate which container,
    # ignoring functions that shadow the name locally.
    mutators: dict[str, list[str]] = {name: [] for name in containers}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        locals_ = _local_names(node)
        for name in _mutated_names(node):
            if name in containers and name not in locals_:
                mutators[name].append(node.name)
    out = []
    for name, fns in mutators.items():
        if len(set(fns)) >= 2:
            stmt = containers[name]
            out.append(Finding(
                path, stmt.lineno, stmt.col_offset, "lock-discipline",
                f"module-level mutable {name!r} is mutated from "
                f"{len(set(fns))} functions ({', '.join(sorted(set(fns)))}) "
                "but the module has no threading.Lock",
            ))
    return out


#: Per-node traversal surface of :class:`CircuitDAG` that hot pass
#: code must not touch (the columnar kernels replace it).
_PER_NODE_CALLS = frozenset({"topological", "nodes"})


def _check_columnar_discipline(tree: ast.AST, path: str) -> list[Finding]:
    norm = path.replace(os.sep, "/")
    if "repro/optimizers/" not in norm:
        return []
    out = []

    def scan(node: ast.AST, in_reference: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Helpers nested inside a reference oracle inherit its
                # exemption.
                scan(child, in_reference
                     or child.name.endswith("_reference"))
                continue
            if (
                not in_reference
                and isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _PER_NODE_CALLS
            ):
                out.append(Finding(
                    path, child.lineno, child.col_offset,
                    "columnar-discipline",
                    f"per-node DAG traversal .{child.func.attr}() in the "
                    "optimizers package; hot pass code must use the "
                    "columnar DAGTable kernels (per-node loops are "
                    "reserved for *_reference oracles)",
                ))
            scan(child, in_reference)

    scan(tree, False)
    return out


_RULE_CHECKS = {
    "rng-discipline": _check_rng,
    "bare-assert": _check_asserts,
    "atomic-write": _check_atomic_writes,
    "mutable-default": _check_mutable_defaults,
    "lock-discipline": _check_lock_discipline,
    "columnar-discipline": _check_columnar_discipline,
}


# -- driver -----------------------------------------------------------------

def _suppressed_rules(line_text: str) -> frozenset[str]:
    match = _DISABLE_RE.search(line_text)
    if not match:
        return frozenset()
    return frozenset(r.strip() for r in match.group(1).split(",") if r.strip())


def lint_source(
    text: str, path: str, rules: set[str] | None = None
) -> list[Finding]:
    """Lint one file's source text; returns surviving findings."""
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [Finding(
            path, exc.lineno or 1, exc.offset or 0, "syntax-error",
            f"file does not parse: {exc.msg}",
        )]
    lines = text.splitlines()
    findings: list[Finding] = []
    for rule, check in _RULE_CHECKS.items():
        if rules is not None and rule not in rules:
            continue
        findings.extend(check(tree, path))
    kept = []
    for f in findings:
        line_text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        disabled = _suppressed_rules(line_text)
        if f.rule in disabled or "all" in disabled:
            continue
        kept.append(f)
    return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.rule))


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__" and not d.startswith(".")
                )
                out.extend(
                    os.path.join(root, f) for f in sorted(files)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return out


def lint_paths(
    paths: list[str], rules: set[str] | None = None
) -> list[Finding]:
    """Lint every python file under ``paths``."""
    findings: list[Finding] = []
    for filename in iter_python_files(paths):
        with open(filename, encoding="utf-8") as f:
            text = f.read()
        findings.extend(lint_source(text, filename, rules))
    return findings


def _line_text(finding: Finding) -> str:
    try:
        with open(finding.path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        return lines[finding.line - 1]
    except (OSError, IndexError):
        return ""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repo-specific AST linter (see module docstring)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human")
    parser.add_argument("--rule", action="append", dest="rules",
                        metavar="RULE", choices=sorted(RULES),
                        help="run only this rule (repeatable)")
    parser.add_argument("--baseline", default=None,
                        help="JSON baseline of fingerprints to ignore")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write current findings as a baseline and exit")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule:18s} {desc}")
        return 0

    try:
        findings = lint_paths(args.paths,
                              set(args.rules) if args.rules else None)
    except (FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        from repro.analysis.atomic_io import atomic_write_json

        fingerprints = sorted(
            f.fingerprint(_line_text(f)) for f in findings
        )
        atomic_write_json(
            args.write_baseline,
            {"version": 1, "fingerprints": fingerprints},
            indent=2, trailing_newline=True,
        )
        print(f"wrote {len(fingerprints)} baseline entries "
              f"to {args.write_baseline}")
        return 0

    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as f:
                baseline = set(json.load(f).get("fingerprints", []))
        except (OSError, ValueError) as exc:
            print(f"error: unreadable baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        findings = [
            f for f in findings
            if f.fingerprint(_line_text(f)) not in baseline
        ]

    if args.format == "json":
        print(json.dumps({
            "version": 1,
            "findings": [vars(f) for f in findings],
        }, indent=2))
    else:
        for f in findings:
            print(f.render())
        n_files = len(iter_python_files(args.paths))
        print(f"{len(findings)} finding(s) in {n_files} file(s); "
              f"{len(RULES)} rules active"
              if not args.rules else
              f"{len(findings)} finding(s) in {n_files} file(s); "
              f"rules: {', '.join(sorted(set(args.rules)))}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
