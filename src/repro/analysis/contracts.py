"""Pass contracts: what each pipeline rewrite requires and ensures.

Every :class:`repro.pipeline.Pass` declares a contract through two
class attributes, ``requires`` and ``ensures``, drawn from a small
vocabulary:

``structural``
    The circuit is well-formed (:func:`repro.analysis.verify_circuit`,
    and for DAG passes :func:`repro.analysis.verify_dag`).  Every pass
    implicitly requires and ensures this; the checker enforces it.
``basis``
    Every gate is drawn from a declared vocabulary.  A pass ensuring
    ``basis`` names the vocabulary in its ``basis`` attribute (a
    :data:`repro.analysis.verify.BASIS_SETS` key or iterable of gate
    names).  Once established, the property is *persistent*: it is
    re-checked after every later pass until another basis-ensuring
    pass replaces the vocabulary.
``connectivity``
    Every 2q gate sits on a coupling edge of the target carried by the
    ensuring pass (or the :class:`ContractChecker`'s target).  Also
    persistent.  Orientation on directed couplings is enforced from
    the first pass with ``fixes_directions = True`` onward, and again
    on the final pipeline output — routing legitimately emits
    reversed CXs that :class:`repro.pipeline.FixDirections` repairs.
``unitary_preserving``
    The pass's output implements the same unitary as its input up to
    global phase.  Transient (checked at the ensuring pass's own
    boundary only) and size-gated by
    :data:`repro.analysis.verify.UNITARY_CHECK_MAX_QUBITS`.

:class:`ContractChecker` is the stateful verifier a
``PassManager(validate=...)`` run instantiates: ``"structural"`` mode
runs the cheap structural check after every pass; ``"full"`` mode
additionally enforces requires/ensures, persistent properties, DAG
wire consistency for DAG passes, and unitary preservation.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.verify import (
    VerificationError,
    check_basis,
    check_connectivity,
    resolve_basis,
    unitaries_equivalent,
    verify_circuit,
    verify_dag,
    verify_table,
    UNITARY_CHECK_MAX_QUBITS,
)
from repro.circuits import Circuit, CircuitDAG

#: The contract vocabulary passes may draw ``requires``/``ensures`` from.
CONTRACT_VOCABULARY = frozenset(
    {"structural", "basis", "connectivity", "unitary_preserving"}
)

#: PassManager validation modes.
VALIDATE_MODES = ("off", "structural", "full")


def contract_of(p) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """The validated ``(requires, ensures)`` contract of one pass."""
    requires = tuple(getattr(p, "requires", ()))
    ensures = tuple(getattr(p, "ensures", ()))
    for prop in (*requires, *ensures):
        if prop not in CONTRACT_VOCABULARY:
            raise VerificationError(
                f"pass {getattr(p, 'name', p)!r} declares unknown "
                f"contract {prop!r} (vocabulary: "
                f"{sorted(CONTRACT_VOCABULARY)})",
                contract=prop,
            )
    return requires, ensures


class ContractChecker:
    """Per-run contract verification state for a pipeline.

    One instance per ``PassManager.run_detailed`` call (the manager
    itself stays stateless and thread-shareable).  The checker tracks
    which persistent properties earlier passes established — and with
    what context (basis vocabulary, target) — and re-verifies them at
    every later pass boundary, attributing any violation to the pass
    that broke the contract.
    """

    def __init__(self, level: str, target=None):
        if level not in VALIDATE_MODES:
            raise ValueError(
                f"validate must be one of {VALIDATE_MODES}, got {level!r}"
            )
        self.level = level
        self.target = target
        #: Persistent properties established so far.  ``basis`` maps to
        #: its vocabulary, ``connectivity`` to the target it holds on.
        self.established: dict[str, object] = {}
        self.directions_fixed = False

    @property
    def enabled(self) -> bool:
        return self.level != "off"

    @property
    def full(self) -> bool:
        return self.level == "full"

    # -- hooks driven by PassManager.run_detailed ---------------------------
    def check_input(self, circuit: Circuit) -> None:
        """Verify the pipeline input before any pass runs."""
        if not self.enabled:
            return
        verify_circuit(circuit)
        self.established["structural"] = True

    def before_pass(self, p, circuit: Circuit) -> None:
        """Enforce the pass's ``requires`` clause (full mode)."""
        if not self.full:
            return
        requires, _ = contract_of(p)
        for prop in requires:
            if prop == "structural":
                continue  # maintained by check_input/after_pass
            if prop not in self.established:
                raise VerificationError(
                    f"requires {prop!r} but no earlier pass established it",
                    contract=prop,
                    pass_name=p.name,
                )

    def check_dag(self, p, dag: CircuitDAG) -> None:
        """Verify a DAG pass's mutated DAG before linearization.

        Called by ``PassManager`` between ``run_dag`` and
        ``to_circuit`` so wire corruption is caught — and attributed to
        the pass — before the linearization crashes on it or silently
        hides it.
        """
        if not self.full:
            return
        try:
            verify_dag(dag)
        except VerificationError as exc:
            raise exc.with_pass(p.name) from None

    def check_table(self, p, table) -> None:
        """Verify a columnar pass's mutated :class:`DAGTable`.

        The columnar twin of :meth:`check_dag`: called between a table
        kernel and ``to_circuit`` so corrupted columns are caught — and
        attributed to the pass — pre-linearization.
        """
        if not self.full:
            return
        try:
            verify_table(table)
        except VerificationError as exc:
            raise exc.with_pass(p.name) from None

    def after_pass(self, p, before: Circuit, after: Circuit) -> None:
        """Verify the pass output and update the established set."""
        if not self.enabled:
            return
        try:
            verify_circuit(after)
        except VerificationError as exc:
            raise exc.with_pass(p.name) from None
        if not self.full:
            return
        _, ensures = contract_of(p)
        # Transient contract: the pass's own rewrite preserved the
        # circuit unitary (size-gated; layout/routing passes change
        # the wire count and never declare this).
        if (
            "unitary_preserving" in ensures
            and before.n_qubits == after.n_qubits
            and after.n_qubits <= UNITARY_CHECK_MAX_QUBITS
        ):
            if not unitaries_equivalent(before, after):
                raise VerificationError(
                    "output unitary differs from input (up to global phase)",
                    contract="unitary_preserving",
                    pass_name=p.name,
                )
        # Newly established persistent properties (context from the
        # ensuring pass itself where it carries one).
        if "basis" in ensures:
            self.established["basis"] = resolve_basis(
                getattr(p, "basis", "clifford_t")
            )
        if "connectivity" in ensures:
            target = getattr(p, "target", None) or self.target
            if target is not None:
                self.established["connectivity"] = target
        if getattr(p, "fixes_directions", False):
            self.directions_fixed = True
        # Persistent properties must survive every pass that runs after
        # the one establishing them.
        self._check_persistent(after, p.name)

    def final(self, circuit: Circuit) -> None:
        """End-of-pipeline checks on the final output."""
        if not self.full:
            return
        self._check_persistent(circuit, pass_name=None, at_end=True)

    # -- internals ----------------------------------------------------------
    def _check_persistent(
        self, circuit: Circuit, pass_name: str | None, at_end: bool = False
    ) -> None:
        try:
            vocab = self.established.get("basis")
            if vocab is not None:
                check_basis(circuit, vocab)
            target = self.established.get("connectivity")
            if target is not None:
                directed = self.directions_fixed or at_end
                check_connectivity(circuit, target, directed=directed)
        except VerificationError as exc:
            raise (exc.with_pass(pass_name) if pass_name else exc) from None


def verify_compiled(
    circuit: Circuit,
    target=None,
    *,
    level: str = "structural",
    basis: str | Iterable[str] | None = None,
) -> None:
    """One-shot verification of a finished compilation result.

    The check :func:`repro.pipeline.compile_circuit` applies to its
    output (and the core of the CLI ``verify`` command): structural
    always, plus basis-vocabulary and directed connectivity compliance
    at ``level="full"`` when a ``basis``/``target`` is given.
    """
    if level == "off":
        return
    if level not in VALIDATE_MODES:
        raise ValueError(
            f"validate must be one of {VALIDATE_MODES}, got {level!r}"
        )
    verify_circuit(circuit)
    if level != "full":
        return
    if basis is not None:
        check_basis(circuit, basis)
    if target is not None:
        check_connectivity(circuit, target)
