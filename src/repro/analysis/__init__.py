"""Static analysis: IR verification, pass contracts, project linting.

Two halves, per the roadmap's service-grade correctness push:

* Runtime IR checkers (:func:`verify_circuit`, :func:`verify_dag`,
  :func:`verify_table`, :func:`check_basis`, :func:`check_connectivity`,
  :func:`check_schedule`) and the :class:`ContractChecker` that
  ``PassManager(validate=...)`` drives after every pass.
* A stdlib-:mod:`ast` project linter (``python -m repro.analysis.lint``)
  enforcing repo-specific source rules ruff cannot express.

:mod:`repro.analysis.atomic_io` is the shared tmp + ``os.replace``
write helper the atomic-write lint rule points offenders at.
"""

from repro.analysis.atomic_io import atomic_write_json, atomic_write_text
from repro.analysis.contracts import (
    CONTRACT_VOCABULARY,
    VALIDATE_MODES,
    ContractChecker,
    contract_of,
    verify_compiled,
)
from repro.analysis.verify import (
    BASIS_SETS,
    UNITARY_CHECK_MAX_QUBITS,
    VerificationError,
    check_basis,
    check_connectivity,
    check_schedule,
    describe_gate,
    resolve_basis,
    unitaries_equivalent,
    verify_circuit,
    verify_dag,
    verify_table,
)

__all__ = [
    "BASIS_SETS",
    "CONTRACT_VOCABULARY",
    "ContractChecker",
    "UNITARY_CHECK_MAX_QUBITS",
    "VALIDATE_MODES",
    "VerificationError",
    "atomic_write_json",
    "atomic_write_text",
    "check_basis",
    "check_connectivity",
    "check_schedule",
    "contract_of",
    "describe_gate",
    "resolve_basis",
    "unitaries_equivalent",
    "verify_circuit",
    "verify_dag",
    "verify_compiled",
    "verify_table",
]
