"""Structural and target-aware verification of the circuit IR.

Machine-checked invariants for every compilation stage: the structural
checkers (:func:`verify_circuit`, :func:`verify_dag`,
:func:`verify_table`) validate what any
well-formed circuit must satisfy — qubit indices in range, known gate
names with matching arities, finite parameters, wire-consistent acyclic
DAG edges — while the target-aware checkers (:func:`check_basis`,
:func:`check_connectivity`, :func:`check_schedule`) validate what a
*compiled* circuit promises about a hardware target.  All of them raise
:class:`VerificationError`, which names the offending node and the
violated contract so a pipeline failure reads like a type error, not a
wrong fidelity three layers later.

:mod:`repro.analysis.contracts` builds the per-pass contract system on
top of these checkers; ``PassManager(validate=...)`` drives it.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.circuits.circuit import (
    ONE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    Circuit,
    Gate,
    canonical_gate_name,
    is_idle_marker,
)
from repro.circuits.dag import BOUNDARY, CircuitDAG

#: Gate vocabularies a lowering stage may promise.  ``"u3"`` is the
#: trasyn workflow IR, ``"rz"`` the gridsynth workflow IR (discrete 1q
#: gates pass through :func:`repro.transpiler.decompose_to_rz_basis`
#: untouched), ``"clifford_t"`` the fully synthesized output.
BASIS_SETS: dict[str, frozenset[str]] = {
    "u3": frozenset({"u3", "cx", "cz", "swap", "i"}),
    "rz": frozenset(
        {"rz", "h", "s", "sdg", "t", "tdg", "x", "y", "z", "i",
         "cx", "cz", "swap"}
    ),
    "clifford_t": frozenset(
        {"h", "s", "sdg", "t", "tdg", "x", "y", "z", "i",
         "cx", "cz", "swap"}
    ),
}

#: Above this size the unitary-preservation check is skipped (dense
#: 2^n x 2^n matrices); structural/basis/connectivity checks have no
#: size limit.
UNITARY_CHECK_MAX_QUBITS = 7


class VerificationError(Exception):
    """A compilation invariant was violated.

    Attributes
    ----------
    contract:
        The violated contract name (``"structural"``, ``"basis"``,
        ``"connectivity"``, ``"schedule"``, ``"unitary_preserving"``).
    node:
        A human-readable description of the offending gate/node
        (``"gate 3: cx(0, 5)"``), or None for circuit-level violations.
    pass_name:
        The pipeline pass after which the violation was detected, when
        raised through ``PassManager(validate=...)``; None otherwise.
    """

    def __init__(
        self,
        message: str,
        *,
        contract: str | None = None,
        node: str | None = None,
        pass_name: str | None = None,
    ):
        self.message = message
        self.contract = contract
        self.node = node
        self.pass_name = pass_name
        parts = []
        if contract:
            parts.append(f"[{contract}]")
        if pass_name:
            parts.append(f"after pass {pass_name!r}:")
        if node:
            parts.append(f"at {node}:")
        parts.append(message)
        super().__init__(" ".join(parts))

    def with_pass(self, pass_name: str) -> "VerificationError":
        """A copy of this error attributed to a pipeline pass."""
        return VerificationError(
            self.message,
            contract=self.contract,
            node=self.node,
            pass_name=pass_name,
        )




def describe_gate(index: int, gate: Gate) -> str:
    """The node spelling used in every error: ``gate 3: cx(0, 5)``."""
    qubits = ", ".join(str(q) for q in gate.qubits)
    return f"gate {index}: {gate.name}({qubits})"


def _check_gate(gate: Gate, n_qubits: int, where: str) -> None:
    """Gate-level structural checks shared by circuit and DAG verify."""

    def fail(msg: str) -> VerificationError:
        return VerificationError(msg, contract="structural", node=where)

    name = gate.name
    if name != canonical_gate_name(name):
        raise fail(f"gate name {name!r} is not canonical (lower-case)")
    if name in ONE_QUBIT_GATES:
        arity = 1
    elif name in TWO_QUBIT_GATES:
        arity = 2
    else:
        raise fail(f"unknown gate {name!r}")
    if len(gate.qubits) != arity:
        raise fail(
            f"{name} expects {arity} qubit(s), got {len(gate.qubits)}"
        )
    for q in gate.qubits:
        if not isinstance(q, (int, np.integer)):
            raise fail(f"non-integer qubit index {q!r}")
        if not 0 <= q < n_qubits:
            raise fail(
                f"qubit {q} out of range for a {n_qubits}-qubit circuit"
            )
    if len(set(gate.qubits)) != len(gate.qubits):
        raise fail("duplicate qubits in one gate")
    if is_idle_marker(gate):
        # Scheduler idle markers: "i" carrying its duration as the
        # single parameter (see repro.circuits.is_idle_marker).
        expected_params = 1
    elif name == "u3":
        expected_params = 3
    elif name in ("rx", "ry", "rz"):
        expected_params = 1
    else:
        expected_params = 0
    if len(gate.params) != expected_params:
        raise fail(
            f"{name} expects {expected_params} parameter(s), "
            f"got {len(gate.params)}"
        )
    for p in gate.params:
        if not math.isfinite(p):
            raise fail(f"non-finite parameter {p!r}")


def verify_circuit(circuit: Circuit) -> None:
    """Structural verification of a gate-list circuit.

    Checks: positive qubit count, every gate known with the right
    arity and parameter count, all qubit indices in range and distinct
    within a gate, all parameters finite.  Raises
    :class:`VerificationError` (contract ``"structural"``) at the
    first violation.
    """
    if circuit.n_qubits < 1:
        raise VerificationError(
            f"circuit has {circuit.n_qubits} qubits", contract="structural"
        )
    for i, gate in enumerate(circuit.gates):
        _check_gate(gate, circuit.n_qubits, describe_gate(i, gate))


def verify_dag(dag: CircuitDAG) -> None:
    """Structural verification of a dependency DAG.

    Beyond the per-gate checks of :func:`verify_circuit`, validates the
    wire invariants every pass relies on: each node's pred/succ tables
    cover exactly its gate's qubits, every wire is a consistent doubly
    linked chain from ``_first`` to ``_last`` visiting exactly the
    nodes that touch that qubit, and the graph as a whole is acyclic.
    Raises :class:`VerificationError` (contract ``"structural"``)
    naming the offending node id.
    """
    if dag.n_qubits < 1:
        raise VerificationError(
            f"DAG has {dag.n_qubits} qubits", contract="structural"
        )
    nodes = {node.id: node for node in dag.nodes()}
    for node in nodes.values():
        where = f"node {node.id}: {describe_gate(node.id, node.gate)[6:]}"
        _check_gate(node.gate, dag.n_qubits, where)
        qubits = set(node.gate.qubits)
        for table_name in ("preds", "succs"):
            table = getattr(node, table_name)
            if set(table) != qubits:
                raise VerificationError(
                    f"{table_name} wires {sorted(table)} do not match the "
                    f"gate's qubits {sorted(qubits)}",
                    contract="structural",
                    node=where,
                )
            for q, other in table.items():
                if other == BOUNDARY:
                    continue
                if other not in nodes:
                    raise VerificationError(
                        f"{table_name}[{q}] points at missing node {other}",
                        contract="structural",
                        node=where,
                    )
                back = getattr(nodes[other],
                               "succs" if table_name == "preds" else "preds")
                if back.get(q) != node.id:
                    raise VerificationError(
                        f"wire {q} link to node {other} is not mirrored "
                        f"({table_name} edge without its reverse)",
                        contract="structural",
                        node=where,
                    )
    # Every wire must be a linear chain visiting exactly the nodes
    # that touch it (a dangling _first/_last or a spliced-out node
    # still linked in would show up here).
    for q in range(dag.n_qubits):
        expected = {n.id for n in nodes.values() if q in n.gate.qubits}
        seen: list[int] = []
        i = dag._first[q]
        while i != BOUNDARY:
            if i not in nodes:
                raise VerificationError(
                    f"wire {q} chain reaches missing node {i}",
                    contract="structural",
                )
            seen.append(i)
            if len(seen) > len(expected):
                raise VerificationError(
                    f"wire {q} chain cycles or visits foreign nodes "
                    f"(walked {seen[-4:]} beyond the {len(expected)} "
                    f"gates on this wire)",
                    contract="structural",
                    node=f"node {i}",
                )
            i = nodes[i].succs[q]
        if set(seen) != expected:
            missing = sorted(expected - set(seen))
            extra = sorted(set(seen) - expected)
            raise VerificationError(
                f"wire {q} chain mismatch: missing nodes {missing}, "
                f"foreign nodes {extra}",
                contract="structural",
            )
        last = seen[-1] if seen else BOUNDARY
        if dag._last[q] != last:
            raise VerificationError(
                f"wire {q} _last is {dag._last[q]}, chain ends at {last}",
                contract="structural",
            )
    # Global acyclicity via Kahn's count (cross-wire cycles).
    pending = {
        i: len({p for p in n.preds.values() if p != BOUNDARY})
        for i, n in nodes.items()
    }
    ready = [i for i, deg in pending.items() if deg == 0]
    emitted = 0
    while ready:
        i = ready.pop()
        emitted += 1
        for succ in dag.successors(i):
            pending[succ.id] -= 1
            if pending[succ.id] == 0:
                ready.append(succ.id)
    if emitted != len(nodes):
        stuck = sorted(i for i, deg in pending.items() if deg > 0)
        raise VerificationError(
            f"cycle in circuit DAG: nodes {stuck[:6]} never become ready",
            contract="structural",
            node=f"node {stuck[0]}" if stuck else None,
        )


def verify_table(table) -> None:
    """Structural verification of a columnar :class:`DAGTable`.

    The struct-of-arrays twin of :func:`verify_dag`, run by
    ``PassManager(validate="full")`` on the columnar path between a
    table kernel and linearization.  Validates the per-gate invariants
    plus the column invariants every vectorized kernel relies on: the
    alive count matches the mask, dead rows are never linked, each
    wire is a consistent doubly linked chain from ``first`` to ``last``
    visiting exactly the alive rows on that qubit, and ``pos`` strictly
    increases along every wire (which bounds every edge, so the graph
    is acyclic).  Raises :class:`VerificationError` (contract
    ``"structural"``).
    """
    from repro.circuits.dag_table import BOUNDARY as TBOUNDARY

    if table.n_qubits < 1:
        raise VerificationError(
            f"table has {table.n_qubits} qubits", contract="structural"
        )
    alive_ids = np.nonzero(table.alive)[0]
    if alive_ids.shape[0] != len(table):
        raise VerificationError(
            f"alive mask marks {alive_ids.shape[0]} rows but the table "
            f"counts {len(table)}",
            contract="structural",
        )
    alive = set(alive_ids.tolist())
    links: dict[int, dict[str, dict[int, int]]] = {}
    for i in alive_ids.tolist():
        gate = table.gate(i)
        where = f"row {i}: {describe_gate(i, gate)[6:]}"
        _check_gate(gate, table.n_qubits, where)
        preds = {int(table.q0[i]): int(table.pred0[i])}
        succs = {int(table.q0[i]): int(table.succ0[i])}
        if int(table.q1[i]) >= 0:
            preds[int(table.q1[i])] = int(table.pred1[i])
            succs[int(table.q1[i])] = int(table.succ1[i])
        if set(preds) != set(gate.qubits):
            raise VerificationError(
                f"wire columns cover qubits {sorted(preds)} but the gate "
                f"acts on {sorted(set(gate.qubits))}",
                contract="structural",
                node=where,
            )
        links[i] = {"preds": preds, "succs": succs}
    for i, tables in links.items():
        where = f"row {i}"
        for kind, other_kind in (("preds", "succs"), ("succs", "preds")):
            for q, other in tables[kind].items():
                if other == TBOUNDARY:
                    continue
                if other not in alive:
                    raise VerificationError(
                        f"{kind}[{q}] points at dead or missing row {other}",
                        contract="structural",
                        node=where,
                    )
                if links[other][other_kind].get(q) != i:
                    raise VerificationError(
                        f"wire {q} link to row {other} is not mirrored "
                        f"({kind} edge without its reverse)",
                        contract="structural",
                        node=where,
                    )
    q0 = table.q0
    q1 = table.q1
    pos = table.pos
    for q in range(table.n_qubits):
        expected = {
            int(i)
            for i in alive_ids.tolist()
            if int(q0[i]) == q or int(q1[i]) == q
        }
        seen: list[int] = []
        i = int(table.first[q])
        prev_pos = -math.inf
        while i != TBOUNDARY:
            if i not in alive:
                raise VerificationError(
                    f"wire {q} chain reaches dead or missing row {i}",
                    contract="structural",
                )
            if float(pos[i]) <= prev_pos:
                raise VerificationError(
                    f"wire {q} pos is not strictly increasing at row {i} "
                    f"({pos[i]!r} after {prev_pos!r})",
                    contract="structural",
                    node=f"row {i}",
                )
            prev_pos = float(pos[i])
            seen.append(i)
            if len(seen) > len(expected):
                raise VerificationError(
                    f"wire {q} chain cycles or visits foreign rows "
                    f"(walked {seen[-4:]} beyond the {len(expected)} "
                    f"gates on this wire)",
                    contract="structural",
                    node=f"row {i}",
                )
            i = links[i]["succs"][q]
        if set(seen) != expected:
            missing = sorted(expected - set(seen))
            extra = sorted(set(seen) - expected)
            raise VerificationError(
                f"wire {q} chain mismatch: missing rows {missing}, "
                f"foreign rows {extra}",
                contract="structural",
            )
        last = seen[-1] if seen else TBOUNDARY
        if int(table.last[q]) != last:
            raise VerificationError(
                f"wire {q} last is {int(table.last[q])}, chain ends at "
                f"{last}",
                contract="structural",
            )


def resolve_basis(basis: str | Iterable[str]) -> frozenset[str]:
    """An allowed-gate set from a named vocabulary or explicit names."""
    if isinstance(basis, str):
        try:
            return BASIS_SETS[basis]
        except KeyError:
            raise ValueError(
                f"unknown basis {basis!r} "
                f"(expected one of {sorted(BASIS_SETS)} or an iterable "
                "of gate names)"
            ) from None
    return frozenset(canonical_gate_name(g) for g in basis)


def check_basis(circuit: Circuit, basis: str | Iterable[str]) -> None:
    """Every gate drawn from the promised vocabulary.

    ``basis`` is a :data:`BASIS_SETS` name (``"u3"``, ``"rz"``,
    ``"clifford_t"``) or an explicit iterable of gate names (e.g. a
    :class:`repro.target.Target`'s ``basis_gates``).  Idle markers are
    always allowed — they are scheduling metadata, not gates a device
    executes.  Raises :class:`VerificationError` (contract
    ``"basis"``).
    """
    allowed = resolve_basis(basis)
    label = basis if isinstance(basis, str) else "target basis"
    for i, gate in enumerate(circuit.gates):
        if is_idle_marker(gate):
            continue
        if canonical_gate_name(gate.name) not in allowed:
            raise VerificationError(
                f"gate {gate.name!r} is not in the {label} vocabulary "
                f"{sorted(allowed)}",
                contract="basis",
                node=describe_gate(i, gate),
            )


def check_connectivity(
    circuit: Circuit, target, *, directed: bool | None = None
) -> None:
    """Every 2q gate placed on a coupling edge of ``target``.

    ``directed=None`` (default) respects the coupling map's own
    directedness: on a directed map, ``cx`` must point along a native
    edge orientation (``cz``/``swap`` are symmetric and only need the
    edge), exactly what :func:`repro.target.fix_gate_directions`
    establishes.  Pass ``directed=False`` to accept either orientation
    — the mid-pipeline state between routing and direction fixing.
    Raises :class:`VerificationError` (contract ``"connectivity"``).
    """
    coupling = target.coupling
    if directed is None:
        directed = coupling.directed
    if circuit.n_qubits > target.n_qubits:
        raise VerificationError(
            f"circuit uses {circuit.n_qubits} qubits but the target "
            f"{target.name or '<unnamed>'} has {target.n_qubits}",
            contract="connectivity",
        )
    for i, gate in enumerate(circuit.gates):
        if len(gate.qubits) != 2:
            continue
        a, b = gate.qubits
        if not coupling.has_edge(a, b):
            raise VerificationError(
                f"2q gate on ({a}, {b}) but the target has no such "
                "coupling edge",
                contract="connectivity",
                node=describe_gate(i, gate),
            )
        if directed and gate.name == "cx" and not coupling.allows(a, b):
            raise VerificationError(
                f"cx points {a}->{b} against the directed coupling "
                f"(native orientation is {b}->{a})",
                contract="connectivity",
                node=describe_gate(i, gate),
            )


def check_schedule(schedule, circuit: Circuit | None = None) -> None:
    """Timed-schedule consistency: no per-qubit overlap, real makespan.

    Validates that no qubit executes two gates at once (spans on one
    wire never overlap), that every span has non-negative start and
    duration, and that the recorded makespan equals the latest span
    end (0 for an empty schedule).  With ``circuit`` given, also
    checks the schedule covers exactly the circuit's gates.  Raises
    :class:`VerificationError` (contract ``"schedule"``).
    """
    tol = 1e-9
    latest = 0.0
    per_qubit: dict[int, list] = {}
    for span in schedule.spans:
        where = (
            f"node {span.node_id}: {span.gate.name}"
            f"{tuple(span.gate.qubits)} @ [{span.start:g}, {span.end:g}]"
        )
        if span.start < -tol or span.end < span.start - tol:
            raise VerificationError(
                "span has negative start or duration",
                contract="schedule",
                node=where,
            )
        latest = max(latest, span.end)
        for q in span.gate.qubits:
            per_qubit.setdefault(q, []).append(span)
    for q, spans in per_qubit.items():
        spans.sort(key=lambda s: (s.start, s.end))
        for prev, cur in zip(spans, spans[1:]):
            if cur.start < prev.end - tol:
                raise VerificationError(
                    f"qubit {q} runs two gates at once "
                    f"(node {prev.node_id} ends {prev.end:g}, "
                    f"node {cur.node_id} starts {cur.start:g})",
                    contract="schedule",
                    node=f"node {cur.node_id}",
                )
    if abs(schedule.makespan - latest) > tol:
        raise VerificationError(
            f"makespan {schedule.makespan:g} does not equal the latest "
            f"span end {latest:g}",
            contract="schedule",
        )
    if circuit is not None and len(schedule.spans) != len(circuit.gates):
        raise VerificationError(
            f"schedule covers {len(schedule.spans)} gates but the "
            f"circuit has {len(circuit.gates)}",
            contract="schedule",
        )


def unitaries_equivalent(
    before: Circuit, after: Circuit, tol: float = 1e-7
) -> bool:
    """Whether two circuits implement the same unitary up to phase.

    Uses the phase-invariant overlap ``|tr(U_a^dag U_b)| / dim``; both
    circuits must have the same qubit count.  Guarded by the callers
    to :data:`UNITARY_CHECK_MAX_QUBITS`.
    """
    if before.n_qubits != after.n_qubits:
        return False
    ua = before.unitary(max_qubits=UNITARY_CHECK_MAX_QUBITS + 1)
    ub = after.unitary(max_qubits=UNITARY_CHECK_MAX_QUBITS + 1)
    dim = ua.shape[0]
    return abs(abs(np.trace(ua.conj().T @ ub)) / dim - 1.0) < tol
