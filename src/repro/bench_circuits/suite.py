"""The 187-circuit benchmark suite (Table 2 analogue).

Category structure mirrors the paper's sources:

* ``ft_algorithm``        — Benchpress/QASMBench-style FT algorithms,
* ``quantum_hamiltonian`` — Hamlib-style X/Y/Z Trotter circuits,
* ``classical_hamiltonian`` — Z-only (Ising/MaxCut) Trotter circuits,
* ``qaoa``                — 3-regular MaxCut QAOA, depths 1-5, 4-26 qubits.

Circuits that are trivial to synthesize (no nontrivial rotations after
transpilation) are excluded, as in the paper.  The full suite holds
exactly 187 circuits; ``benchmark_suite(limit=...)`` provides stratified
subsets for laptop-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench_circuits import ft_algorithms as ft
from repro.bench_circuits import hamiltonians as ham
from repro.bench_circuits.qaoa import qaoa_maxcut
from repro.circuits import Circuit, rotation_count

CATEGORIES = (
    "ft_algorithm",
    "quantum_hamiltonian",
    "classical_hamiltonian",
    "qaoa",
)


@dataclass(frozen=True)
class BenchmarkCase:
    """One suite entry: a circuit plus its provenance."""

    name: str
    category: str
    circuit: Circuit

    @property
    def n_qubits(self) -> int:
        return self.circuit.n_qubits

    @property
    def n_rotations(self) -> int:
        return rotation_count(self.circuit)


def _ft_cases(rng: np.random.Generator) -> list[BenchmarkCase]:
    cases = []
    for n in (3, 4, 5, 6, 7, 8, 10, 12, 14, 16):
        cases.append(BenchmarkCase(f"qft_n{n}", "ft_algorithm", ft.qft(n)))
    for n, phase in (
        (3, 0.137), (4, 0.311), (5, 0.713), (6, 0.177), (7, 0.457),
        (8, 0.291), (9, 0.613), (10, 0.843), (11, 0.129), (12, 0.527),
    ):
        cases.append(
            BenchmarkCase(f"qpe_n{n}", "ft_algorithm", ft.qpe(n, phase))
        )
    for n in (4, 6, 8, 10, 12, 14, 16):
        for layers in (1, 2):
            cases.append(
                BenchmarkCase(
                    f"ghz_rot_n{n}_l{layers}",
                    "ft_algorithm",
                    ft.ghz_rotation(n, layers, rng),
                )
            )
    for n in (4, 8, 12):
        cases.append(
            BenchmarkCase(
                f"ghz_rot_n{n}_l3", "ft_algorithm", ft.ghz_rotation(n, 3, rng)
            )
        )
    for n in (4, 6, 8, 10, 12, 14):
        cases.append(BenchmarkCase(f"w_state_n{n}", "ft_algorithm", ft.w_state(n)))
    for n in (4, 6, 8, 10, 12, 14):
        for layers in (1, 2):
            cases.append(
                BenchmarkCase(
                    f"vqe_hea_n{n}_l{layers}",
                    "ft_algorithm",
                    ft.vqe_hea(n, layers, rng),
                )
            )
    for n in (4, 8):
        cases.append(
            BenchmarkCase(
                f"vqe_hea_n{n}_l3", "ft_algorithm", ft.vqe_hea(n, 3, rng)
            )
        )
    for n, iters in ((3, 1), (4, 1), (5, 2)):
        cases.append(
            BenchmarkCase(f"grover_n{n}", "ft_algorithm", ft.grover(n, iters, rng))
        )
    for n in (4, 6, 8, 10, 12, 14):
        cases.append(
            BenchmarkCase(
                f"random_su4_n{n}", "ft_algorithm", ft.random_su4_circuit(n, 4, rng)
            )
        )
    for n in (4, 6, 8):
        cases.append(
            BenchmarkCase(
                f"random_su4_n{n}_d6",
                "ft_algorithm",
                ft.random_su4_circuit(n, 6, rng),
            )
        )
    return cases


def _hamiltonian_cases(rng: np.random.Generator) -> list[BenchmarkCase]:
    cases = []
    quantum_sizes = {
        "tfim": (2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20),
        "heisenberg": (2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20),
        "xy": (2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20),
        "random_pauli": (3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20, 24),
    }
    for kind, sizes in quantum_sizes.items():
        for n in sizes:
            circuit = ham.hamiltonian_circuit(kind, n, rng)
            cases.append(
                BenchmarkCase(circuit.name, "quantum_hamiltonian", circuit)
            )
    # Two Trotter steps for a subset (longer circuits, Table 2 max).
    for kind, sizes in (
        ("tfim", (6, 10, 14)),
        ("heisenberg", (6, 10, 14)),
        ("xy", (6, 10)),
        ("random_pauli", (6, 10)),
    ):
        for n in sizes:
            circuit = ham.hamiltonian_circuit(kind, n, rng, steps=2)
            circuit.name += "_s2"
            cases.append(
                BenchmarkCase(circuit.name, "quantum_hamiltonian", circuit)
            )
    classical_sizes = {
        "ising": (3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 26),
        "maxcut": (4, 6, 8, 10, 12, 14, 16, 18, 20, 24, 26, 28),
    }
    for kind, sizes in classical_sizes.items():
        for n in sizes:
            circuit = ham.hamiltonian_circuit(kind, n, rng)
            cases.append(
                BenchmarkCase(circuit.name, "classical_hamiltonian", circuit)
            )
    return cases


def _qaoa_cases(rng: np.random.Generator) -> list[BenchmarkCase]:
    cases = []
    for depth in (1, 2, 3, 4, 5):
        for n in (4, 6, 8, 10, 12, 16, 20, 26):
            circuit = qaoa_maxcut(n, depth, rng)
            cases.append(
                BenchmarkCase(f"qaoa_n{n}_p{depth}", "qaoa", circuit)
            )
    return cases


def full_suite(seed: int = 20260322) -> list[BenchmarkCase]:
    """All 187 benchmark circuits (deterministic given the seed)."""
    rng = np.random.default_rng(seed)
    cases = _ft_cases(rng) + _hamiltonian_cases(rng) + _qaoa_cases(rng)
    cases = [c for c in cases if c.n_rotations > 0]
    if len(cases) != 187:
        raise AssertionError(
            f"suite size drifted: {len(cases)} != 187 — update generators"
        )
    return cases


def benchmark_suite(
    limit: int | None = None,
    max_qubits: int | None = None,
    categories: tuple[str, ...] | None = None,
    seed: int = 20260322,
) -> list[BenchmarkCase]:
    """Stratified subset of the suite for time-bounded runs."""
    cases = full_suite(seed)
    if categories:
        cases = [c for c in cases if c.category in categories]
    if max_qubits is not None:
        cases = [c for c in cases if c.n_qubits <= max_qubits]
    if limit is None or limit >= len(cases):
        return cases
    # Round-robin across categories, smallest circuits first.
    by_cat: dict[str, list[BenchmarkCase]] = {}
    for c in sorted(cases, key=lambda c: c.n_rotations):
        by_cat.setdefault(c.category, []).append(c)
    picked: list[BenchmarkCase] = []
    while len(picked) < limit and any(by_cat.values()):
        for cat in list(by_cat):
            if by_cat[cat] and len(picked) < limit:
                picked.append(by_cat[cat].pop(0))
    return picked


def suite_statistics(cases: list[BenchmarkCase]) -> dict[str, dict[str, float]]:
    """Table-2 style qubit/rotation statistics per category."""
    stats: dict[str, dict[str, float]] = {}
    for cat in CATEGORIES:
        group = [c for c in cases if c.category == cat]
        if not group:
            continue
        qubits = [c.n_qubits for c in group]
        rots = [c.n_rotations for c in group]
        stats[cat] = {
            "count": len(group),
            "qubits_min": min(qubits), "qubits_mean": float(np.mean(qubits)),
            "qubits_max": max(qubits),
            "rotations_min": min(rots), "rotations_mean": float(np.mean(rots)),
            "rotations_max": max(rots),
        }
    return stats
