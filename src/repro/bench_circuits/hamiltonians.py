"""Hamiltonian-simulation benchmarks (the Hamlib analogue).

Two families, matching the paper's RQ3 categorization:

* **Quantum Hamiltonians** (X/Y/Z terms — TFIM, Heisenberg, XY chains,
  random local Paulis): transpile to Rx/Ry/Rz mixtures and benefit most
  from U3 merging.
* **Classical Hamiltonians** (Z/I terms only — Ising, MaxCut): transpile
  to Rz-only circuits, where U3 only wins when rotations straddle
  non-diagonal Cliffords.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.circuits import Circuit
from repro.paulis import PauliString, trotter_circuit


def _chain_label(n: int, i: int, ops: str) -> str:
    label = ["I"] * n
    for k, op in enumerate(ops):
        label[i + k] = op
    return "".join(label)


def tfim_terms(n: int, j: float = 1.0, h: float = 0.8) -> list[tuple[PauliString, float]]:
    """Transverse-field Ising chain: -J ZZ - h X."""
    terms = [(PauliString(_chain_label(n, i, "ZZ")), -j) for i in range(n - 1)]
    terms += [(PauliString(_chain_label(n, i, "X")), -h) for i in range(n)]
    return terms


def heisenberg_terms(
    n: int, j: float = 1.0, h: float = 0.6
) -> list[tuple[PauliString, float]]:
    """Heisenberg chain with transverse field: J (XX + YY + ZZ) + h X."""
    terms = []
    for i in range(n - 1):
        for ops in ("XX", "YY", "ZZ"):
            terms.append((PauliString(_chain_label(n, i, ops)), j))
    for i in range(n):
        terms.append((PauliString(_chain_label(n, i, "X")), h))
    return terms


def xy_terms(
    n: int, j: float = 1.0, h: float = 0.6
) -> list[tuple[PauliString, float]]:
    """XY chain in a transverse Z field: J (XX + YY) + h Z."""
    terms = []
    for i in range(n - 1):
        for ops in ("XX", "YY"):
            terms.append((PauliString(_chain_label(n, i, ops)), j))
    for i in range(n):
        terms.append((PauliString(_chain_label(n, i, "Z")), h))
    return terms


def random_pauli_terms(
    n: int, n_terms: int, rng: np.random.Generator, max_weight: int = 3
) -> list[tuple[PauliString, float]]:
    """Random local Pauli Hamiltonian (molecular-fragment analogue)."""
    terms = []
    for _ in range(n_terms):
        weight = int(rng.integers(1, min(max_weight, n) + 1))
        qubits = rng.choice(n, size=weight, replace=False)
        label = ["I"] * n
        for q in qubits:
            label[q] = "XYZ"[int(rng.integers(0, 3))]
        terms.append((PauliString("".join(label)), float(rng.normal())))
    return terms


def ising_terms(
    n: int, rng: np.random.Generator, field: bool = True
) -> list[tuple[PauliString, float]]:
    """Classical Ising chain with random couplings (Z-only terms)."""
    terms = []
    for i in range(n - 1):
        terms.append((PauliString(_chain_label(n, i, "ZZ")), float(rng.normal())))
    if field:
        for i in range(n):
            terms.append((PauliString(_chain_label(n, i, "Z")), float(rng.normal())))
    return terms


def maxcut_terms(graph: nx.Graph, n: int) -> list[tuple[PauliString, float]]:
    """MaxCut cost Hamiltonian: sum over edges of ZZ (Z-only terms)."""
    terms = []
    for u, v in graph.edges:
        label = ["I"] * n
        label[u] = label[v] = "Z"
        terms.append((PauliString("".join(label)), 0.5))
    return terms


def hamiltonian_circuit(
    kind: str,
    n: int,
    rng: np.random.Generator,
    time: float = 1.0,
    steps: int = 1,
) -> Circuit:
    """Trotterized evolution circuit of a named Hamiltonian family."""
    if kind == "tfim":
        terms = tfim_terms(n)
    elif kind == "heisenberg":
        terms = heisenberg_terms(n)
    elif kind == "xy":
        terms = xy_terms(n)
    elif kind == "random_pauli":
        terms = random_pauli_terms(n, n_terms=3 * n, rng=rng)
    elif kind == "ising":
        terms = ising_terms(n, rng)
    elif kind == "maxcut":
        graph = nx.random_regular_graph(3, n, seed=int(rng.integers(2**31)))
        terms = maxcut_terms(graph, n)
    else:
        raise ValueError(f"unknown Hamiltonian kind {kind!r}")
    # Slightly irrational time step keeps rotations nontrivial.
    circuit = trotter_circuit(terms, time=time * 0.7391, steps=steps)
    circuit.name = f"{kind}_n{n}"
    return circuit


QUANTUM_KINDS = ("tfim", "heisenberg", "xy", "random_pauli")
CLASSICAL_KINDS = ("ising", "maxcut")
