"""QAOA MaxCut circuits with merge-friendly gate ordering (Section 3.4).

For 3-regular MaxCut, each cost layer applies ``CX - Rz(2 gamma) - CX``
per edge and the mixer applies ``Rx(2 beta)`` per qubit.  Ordering the
edge gadgets so every qubit's last cost-layer touch is adjacent to its
mixer rotation lets the commutation pass merge ``Rz . Rx`` pairs into
single U3 gates — the construction behind the paper's consistent ~1.6x
T-count gains on QAOA.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.circuits import Circuit


def qaoa_maxcut(
    n: int,
    depth: int,
    rng: np.random.Generator,
    degree: int = 3,
) -> Circuit:
    """Depth-p QAOA for MaxCut on a random regular graph."""
    if n * degree % 2:
        n += 1  # regular graphs need even n * degree
    graph = nx.random_regular_graph(degree, n, seed=int(rng.integers(2**31)))
    c = Circuit(n, name=f"qaoa_n{n}_p{depth}")
    for q in range(n):
        c.h(q)
    for _ in range(depth):
        gamma = float(rng.uniform(0, np.pi))
        beta = float(rng.uniform(0, np.pi / 2))
        # Edge ordering: process edges so that each vertex's final edge
        # appears as late as possible (sorted pass keeps the last touch
        # of high-index vertices adjacent to the mixer).
        edges = _merge_friendly_edge_order(graph)
        for u, v in edges:
            c.cx(u, v)
            c.rz(2.0 * gamma, v)
            c.cx(u, v)
        for q in range(n):
            c.rx(2.0 * beta, q)
    return c


def _merge_friendly_edge_order(graph: nx.Graph) -> list[tuple[int, int]]:
    """Orient and order edges so every vertex (except one root per
    component) is first touched as a CX *target*.

    DFS tree edges come first, oriented parent -> child, so the child's
    first cost gadget has it on the CX target wire; the incoming mixer
    Rx commutes through the opening CX and merges with the gadget's Rz.
    Non-tree edges follow (both endpoints already touched, orientation
    free).  This realizes the paper's "all but one Rx per layer" merge.
    """
    tree_edges: list[tuple[int, int]] = []
    visited: set[int] = set()
    for root in graph.nodes:
        if root in visited:
            continue
        visited.add(root)
        stack = [root]
        while stack:
            u = stack.pop()
            for v in sorted(graph.neighbors(u)):
                if v not in visited:
                    visited.add(v)
                    tree_edges.append((u, v))  # v is the target
                    stack.append(u)
                    stack.append(v)
                    break
            else:
                continue
    tree_set = {frozenset(e) for e in tree_edges}
    rest = [
        tuple(e) for e in graph.edges if frozenset(e) not in tree_set
    ]
    return tree_edges + rest
