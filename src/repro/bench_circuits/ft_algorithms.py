"""Fault-tolerant algorithm benchmarks (the Benchpress/QASMBench analogue).

Standard FTQC circuit families with rotation content: QFT, quantum phase
estimation, Grover iterations with phase-oracle rotations, GHZ states
with rotation layers, W states (controlled-Ry cascades), variational
(hardware-efficient) ansatzes, and structured random circuits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits import Circuit


def qft(n: int) -> Circuit:
    """Quantum Fourier transform with controlled-phase ladders."""
    c = Circuit(n, name=f"qft_n{n}")
    for i in range(n):
        c.h(i)
        for j in range(i + 1, n):
            c.cp(math.pi / 2 ** (j - i), j, i)
    for i in range(n // 2):
        c.swap(i, n - 1 - i)
    return c


def qpe(n_counting: int, phase: float) -> Circuit:
    """Phase estimation of Rz(2*pi*phase) with ``n_counting`` readout qubits."""
    n = n_counting + 1
    c = Circuit(n, name=f"qpe_n{n}")
    target = n_counting
    c.x(target)
    for i in range(n_counting):
        c.h(i)
    for i in range(n_counting):
        c.crz(2.0 * math.pi * phase * 2**i, i, target)
    inverse_qft = qft(n_counting).inverse()
    for g in inverse_qft.gates:
        c.gates.append(g)
    return c


def ghz_rotation(n: int, layers: int, rng: np.random.Generator) -> Circuit:
    """GHZ preparation followed by random rotation layers."""
    c = Circuit(n, name=f"ghz_rot_n{n}_l{layers}")
    c.h(0)
    for i in range(n - 1):
        c.cx(i, i + 1)
    for _ in range(layers):
        for q in range(n):
            c.rz(float(rng.uniform(0, 2 * math.pi)), q)
            c.rx(float(rng.uniform(0, 2 * math.pi)), q)
        for i in range(0, n - 1, 2):
            c.cx(i, i + 1)
    return c


def w_state(n: int) -> Circuit:
    """W state preparation via controlled-Ry cascade."""
    c = Circuit(n, name=f"w_state_n{n}")
    c.x(0)
    for i in range(n - 1):
        theta = 2.0 * math.acos(math.sqrt(1.0 / (n - i)))
        c.cry(theta, i, i + 1)
        c.cx(i + 1, i)
    return c


def vqe_hea(n: int, layers: int, rng: np.random.Generator) -> Circuit:
    """Hardware-efficient ansatz: Ry-Rz columns + linear entanglement.

    Adjacent axial rotations per wire are exactly the merge opportunity
    Section 3.4 cites for variational circuits.
    """
    c = Circuit(n, name=f"vqe_hea_n{n}_l{layers}")
    for q in range(n):
        c.ry(float(rng.uniform(0, 2 * math.pi)), q)
        c.rz(float(rng.uniform(0, 2 * math.pi)), q)
    for _ in range(layers):
        for i in range(n - 1):
            c.cx(i, i + 1)
        for q in range(n):
            c.ry(float(rng.uniform(0, 2 * math.pi)), q)
            c.rz(float(rng.uniform(0, 2 * math.pi)), q)
    return c


def grover(n: int, iterations: int, rng: np.random.Generator) -> Circuit:
    """Grover search with a random phase-rotation oracle.

    The oracle marks a random computational state with a Z-phase built
    from CX ladders and an Rz; the diffuser uses H/X conjugation around
    the same multi-controlled phase pattern (Toffoli-decomposed).
    """
    c = Circuit(n, name=f"grover_n{n}_i{iterations}")
    marked = int(rng.integers(0, 2**n))
    for q in range(n):
        c.h(q)
    for _ in range(iterations):
        _phase_oracle(c, n, marked)
        for q in range(n):
            c.h(q)
            c.x(q)
        _controlled_z_ladder(c, n)
        for q in range(n):
            c.x(q)
            c.h(q)
    return c


def _phase_oracle(c: Circuit, n: int, marked: int) -> None:
    flips = [q for q in range(n) if not (marked >> q) & 1]
    for q in flips:
        c.x(q)
    _controlled_z_ladder(c, n)
    for q in flips:
        c.x(q)


def _controlled_z_ladder(c: Circuit, n: int) -> None:
    """Grover-style phase ladder: CZ for n=2, CCZ for n=3, and a Toffoli
    cascade for larger registers.

    For n > 3 this is a structural stand-in for C^{n-1}Z (resource
    benchmarks exercise the same gate families); exactness of the
    algorithm's amplitude amplification is not required here.
    """
    if n == 1:
        c.z(0)
        return
    if n == 2:
        c.cz(0, 1)
        return
    c.h(n - 1)
    c.ccx(0, 1, n - 1)
    for i in range(2, n - 1):
        c.ccx(i - 1, i, n - 1)
    c.h(n - 1)


def random_su4_circuit(n: int, depth: int, rng: np.random.Generator) -> Circuit:
    """Quantum-volume style circuit: random 1q rotations + CX brickwork."""
    c = Circuit(n, name=f"random_su4_n{n}_d{depth}")
    for layer in range(depth):
        offset = layer % 2
        for q in range(n):
            c.rz(float(rng.uniform(0, 2 * math.pi)), q)
            c.ry(float(rng.uniform(0, 2 * math.pi)), q)
            c.rz(float(rng.uniform(0, 2 * math.pi)), q)
        for i in range(offset, n - 1, 2):
            c.cx(i, i + 1)
    return c
