"""Benchmark circuit generators: the paper's 187-circuit evaluation suite."""

from repro.bench_circuits.ft_algorithms import (
    ghz_rotation,
    grover,
    qft,
    qpe,
    random_su4_circuit,
    vqe_hea,
    w_state,
)
from repro.bench_circuits.hamiltonians import hamiltonian_circuit
from repro.bench_circuits.qaoa import qaoa_maxcut
from repro.bench_circuits.suite import (
    BenchmarkCase,
    CATEGORIES,
    benchmark_suite,
    full_suite,
    suite_statistics,
)

__all__ = [
    "BenchmarkCase",
    "CATEGORIES",
    "benchmark_suite",
    "full_suite",
    "ghz_rotation",
    "grover",
    "hamiltonian_circuit",
    "qaoa_maxcut",
    "qft",
    "qpe",
    "random_su4_circuit",
    "suite_statistics",
    "vqe_hea",
    "w_state",
]
