"""Gate-level definitions: exact Clifford+T matrices and the Clifford group."""

from repro.gates.cliffords import CliffordElement, clifford_matrices, cliffords
from repro.gates.exact import EXACT_GATES, ExactUnitary

__all__ = [
    "CliffordElement",
    "EXACT_GATES",
    "ExactUnitary",
    "clifford_matrices",
    "cliffords",
]
