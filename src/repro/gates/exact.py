"""Exact 2x2 unitaries over the ring Z[omega] / sqrt(2)^k.

Every Clifford+T word has a matrix whose entries live in the ring
``D[omega]``.  :class:`ExactUnitary` stores the four numerators (in
Z[omega]) together with a *common* denominator exponent ``k`` so that
the matrix is ``M / sqrt(2)^k``.  This representation supports exact
products, exact equality up to the eight global phases ``omega^j``, and
is the input format of the exact synthesis algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rings.zomega import OMEGA, ZOmega

_W = [ZOmega.omega_power(j) for j in range(8)]

_ZERO = ZOmega(0, 0, 0, 0)
_ONE = ZOmega(0, 0, 0, 1)


@dataclass(frozen=True)
class ExactUnitary:
    """Matrix ``[[z00, z01], [z10, z11]] / sqrt(2)^k`` over Z[omega]."""

    z00: ZOmega
    z01: ZOmega
    z10: ZOmega
    z11: ZOmega
    k: int

    # -- constructors ------------------------------------------------------
    @staticmethod
    def identity() -> "ExactUnitary":
        return ExactUnitary(_ONE, _ZERO, _ZERO, _ONE, 0)

    @staticmethod
    def from_gate(name: str) -> "ExactUnitary":
        try:
            return EXACT_GATES[name]
        except KeyError:
            raise KeyError(f"no exact form for gate {name!r}") from None

    @staticmethod
    def from_gates(names) -> "ExactUnitary":
        """Matrix product of a gate-name sequence (matrix order, left to right)."""
        result = ExactUnitary.identity()
        for name in names:
            result = result @ ExactUnitary.from_gate(name)
        return result.reduce()

    # -- algebra -------------------------------------------------------------
    def __matmul__(self, other: "ExactUnitary") -> "ExactUnitary":
        a, b, c, d = self.z00, self.z01, self.z10, self.z11
        e, f, g, h = other.z00, other.z01, other.z10, other.z11
        return ExactUnitary(
            a * e + b * g,
            a * f + b * h,
            c * e + d * g,
            c * f + d * h,
            self.k + other.k,
        )

    def scale_phase(self, j: int) -> "ExactUnitary":
        """Multiply the whole matrix by the global phase omega^j."""
        w = _W[j % 8]
        return ExactUnitary(
            w * self.z00, w * self.z01, w * self.z10, w * self.z11, self.k
        )

    def dagger(self) -> "ExactUnitary":
        return ExactUnitary(
            self.z00.conj(), self.z10.conj(), self.z01.conj(), self.z11.conj(), self.k
        )

    def entries(self) -> tuple[ZOmega, ZOmega, ZOmega, ZOmega]:
        return (self.z00, self.z01, self.z10, self.z11)

    def reduce(self) -> "ExactUnitary":
        """Divide out common sqrt(2) factors so ``k`` is minimal (the sde)."""
        z = list(self.entries())
        k = self.k
        while k > 0 and all(e.is_divisible_by_sqrt2() for e in z):
            z = [e.div_sqrt2() for e in z]
            k -= 1
        return ExactUnitary(z[0], z[1], z[2], z[3], k)

    # -- canonical form up to global phase ------------------------------------
    def canonical_key(self) -> tuple:
        """Hashable key identifying the matrix up to a phase omega^j.

        The matrix is first reduced to lowest terms; the key is the
        lexicographically smallest coefficient tuple over the eight
        phase rotations, prefixed by the reduced denominator exponent.
        """
        r = self.reduce()
        best = None
        for j in range(8):
            v = r.scale_phase(j)
            flat = []
            for e in v.entries():
                flat.extend((e.a, e.b, e.c, e.d))
            t = tuple(flat)
            if best is None or t < best:
                best = t
        return (r.k,) + best

    def equals_up_to_phase(self, other: "ExactUnitary") -> bool:
        return self.canonical_key() == other.canonical_key()

    # -- numeric view -----------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        s = math.sqrt(2.0) ** self.k
        return (
            np.array(
                [
                    [complex(self.z00), complex(self.z01)],
                    [complex(self.z10), complex(self.z11)],
                ]
            )
            / s
        )

    def is_unitary(self) -> bool:
        """Exact unitarity test: M^dag M == 2^k * I."""
        m = self.dagger() @ self
        two_k = ZOmega(0, 0, 0, 1)
        for _ in range(self.k):
            two_k = two_k * 2
        return (
            m.z00 == two_k
            and m.z11 == two_k
            and m.z01.is_zero()
            and m.z10.is_zero()
        )


EXACT_GATES: dict[str, ExactUnitary] = {
    "I": ExactUnitary.identity(),
    "H": ExactUnitary(_ONE, _ONE, _ONE, -_ONE, 1),
    "T": ExactUnitary(_ONE, _ZERO, _ZERO, OMEGA, 0),
    "Tdg": ExactUnitary(_ONE, _ZERO, _ZERO, ZOmega.omega_power(7), 0),
    "S": ExactUnitary(_ONE, _ZERO, _ZERO, ZOmega.omega_power(2), 0),
    "Sdg": ExactUnitary(_ONE, _ZERO, _ZERO, ZOmega.omega_power(6), 0),
    "Z": ExactUnitary(_ONE, _ZERO, _ZERO, -_ONE, 0),
    "X": ExactUnitary(_ZERO, _ONE, _ONE, _ZERO, 0),
    "Y": ExactUnitary(
        _ZERO, -ZOmega.omega_power(2), ZOmega.omega_power(2), _ZERO, 0
    ),
    "W": ExactUnitary(OMEGA, _ZERO, _ZERO, OMEGA, 0),  # global phase omega
}
