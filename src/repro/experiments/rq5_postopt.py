"""RQ5: can a post-synthesis T-count optimizer level the field? (Figure 14)

Both workflows' synthesized Clifford+T circuits are run through a
post-synthesis optimizer; Figure 14 compares the trasyn-vs-gridsynth
ratios before and after optimization.  The default optimizer is the
commutation-aware DAG fixpoint of
:func:`repro.optimizers.optimize_circuit` (cancel inverses, merge
rotations, fold phases over the dependency DAG) — strictly stronger
than the original :func:`repro.optimizers.fold_phases` stand-in, which
remains selectable via ``optimizer='fold'`` for the paper-faithful
comparison.  The paper's finding — post-optimization cannot reclaim
trasyn's T advantage — holds either way, because synthesis, not
adjacent-phase redundancy, determines T count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.circuits import Circuit, clifford_count, t_count, t_depth
from repro.experiments.rq3_circuits import CircuitComparison
from repro.optimizers import fold_phases, optimize_circuit

#: Named post-optimizers the experiment can run with.
OPTIMIZERS: dict[str, Callable[[Circuit], Circuit]] = {
    "dag": optimize_circuit,
    "fold": fold_phases,
}


@dataclass
class PostOptComparison:
    name: str
    category: str
    t_ratio_before: float
    t_ratio_after: float
    t_depth_ratio_before: float
    t_depth_ratio_after: float
    clifford_ratio_before: float
    clifford_ratio_after: float


def run_rq5(
    rq3_results: list[CircuitComparison], optimizer: str = "dag"
) -> list[PostOptComparison]:
    if optimizer not in OPTIMIZERS:
        raise ValueError(f"optimizer must be one of {sorted(OPTIMIZERS)}")
    opt = OPTIMIZERS[optimizer]
    out = []
    for comp in rq3_results:
        tra_opt = opt(comp.trasyn_flow.circuit)
        grid_opt = opt(comp.gridsynth_flow.circuit)
        out.append(
            PostOptComparison(
                name=comp.name,
                category=comp.category,
                t_ratio_before=comp.t_ratio,
                t_ratio_after=t_count(grid_opt) / max(1, t_count(tra_opt)),
                t_depth_ratio_before=comp.t_depth_ratio,
                t_depth_ratio_after=t_depth(grid_opt)
                / max(1, t_depth(tra_opt)),
                clifford_ratio_before=comp.clifford_ratio,
                clifford_ratio_after=clifford_count(grid_opt)
                / max(1, clifford_count(tra_opt)),
            )
        )
    return out
