"""RQ5: can a post-synthesis T-count optimizer level the field? (Figure 14)

Both workflows' synthesized Clifford+T circuits are run through the
phase-folding optimizer (the PyZX stand-in); Figure 14 compares the
trasyn-vs-gridsynth ratios before and after optimization.  The paper's
finding — post-optimization cannot reclaim trasyn's T advantage — holds
because synthesis, not adjacent-phase redundancy, determines T count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits import clifford_count, t_count, t_depth
from repro.experiments.rq3_circuits import CircuitComparison
from repro.optimizers import fold_phases


@dataclass
class PostOptComparison:
    name: str
    category: str
    t_ratio_before: float
    t_ratio_after: float
    t_depth_ratio_before: float
    t_depth_ratio_after: float
    clifford_ratio_before: float
    clifford_ratio_after: float


def run_rq5(rq3_results: list[CircuitComparison]) -> list[PostOptComparison]:
    out = []
    for comp in rq3_results:
        tra_opt = fold_phases(comp.trasyn_flow.circuit)
        grid_opt = fold_phases(comp.gridsynth_flow.circuit)
        out.append(
            PostOptComparison(
                name=comp.name,
                category=comp.category,
                t_ratio_before=comp.t_ratio,
                t_ratio_after=t_count(grid_opt) / max(1, t_count(tra_opt)),
                t_depth_ratio_before=comp.t_depth_ratio,
                t_depth_ratio_after=t_depth(grid_opt)
                / max(1, t_depth(tra_opt)),
                clifford_ratio_before=comp.clifford_ratio,
                clifford_ratio_after=clifford_count(grid_opt)
                / max(1, clifford_count(tra_opt)),
            )
        )
    return out
