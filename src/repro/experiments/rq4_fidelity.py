"""RQ4: application fidelity under logical errors (Figure 13).

Synthesized circuits from both workflows are simulated with exact
density matrices under depolarizing logical errors on non-Pauli gates at
rates 1e-4 .. 1e-6, using synthesis thresholds derived from the RQ2
square-root law (0.0122, 0.00386, 0.00122 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench_circuits import BenchmarkCase
from repro.experiments.workflows import (
    _SequenceCache,
    matched_thresholds,
    synthesize_circuit_gridsynth,
    synthesize_circuit_trasyn,
)
from repro.sim import NoiseModel, simulate_noisy, state_infidelity

# Paper RQ4: thresholds derived from logical rates via the Fig. 9 fit.
RATE_TO_EPS = {1e-4: 0.0122, 1e-5: 0.00386, 1e-6: 0.00122}


@dataclass
class NoisyComparison:
    name: str
    logical_rate: float
    trasyn_infidelity: float
    gridsynth_infidelity: float
    gate_count_ratio: float

    @property
    def infidelity_ratio(self) -> float:
        """gridsynth / trasyn infidelity; > 1 means trasyn wins."""
        if self.trasyn_infidelity <= 1e-15:
            return float("nan")
        return self.gridsynth_infidelity / self.trasyn_infidelity


def run_rq4(
    cases: list[BenchmarkCase],
    logical_rates: tuple[float, ...] = (1e-4, 1e-5, 1e-6),
    seed: int = 5,
    max_qubits: int = 10,
) -> list[NoisyComparison]:
    rng = np.random.default_rng(seed)
    out = []
    cases = [c for c in cases if c.n_qubits <= max_qubits]
    for rate in logical_rates:
        eps = RATE_TO_EPS.get(rate, 0.004)
        tra_cache = _SequenceCache()
        grid_cache = _SequenceCache()
        for case in cases:
            u3_circ, rz_circ, eps_t, eps_g = matched_thresholds(
                case.circuit, eps
            )
            tra = synthesize_circuit_trasyn(
                u3_circ, eps_t, rng, cache=tra_cache, pre_transpiled=True
            )
            grid = synthesize_circuit_gridsynth(
                rz_circ, eps_g, cache=grid_cache, pre_transpiled=True
            )
            psi_true = case.circuit.statevector()
            noise = NoiseModel.non_pauli_gates(rate)
            rho_t = simulate_noisy(tra.circuit, noise, max_qubits=max_qubits)
            rho_g = simulate_noisy(grid.circuit, noise, max_qubits=max_qubits)
            total_t = len(tra.circuit)
            total_g = len(grid.circuit)
            out.append(
                NoisyComparison(
                    name=case.name,
                    logical_rate=rate,
                    trasyn_infidelity=state_infidelity(rho_t, psi_true),
                    gridsynth_infidelity=state_infidelity(rho_g, psi_true),
                    gate_count_ratio=total_g / max(1, total_t),
                )
            )
    return out
