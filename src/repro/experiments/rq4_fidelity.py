"""RQ4: application fidelity under logical errors (Figure 13).

Synthesized circuits from both workflows are simulated under
depolarizing logical errors on non-Pauli gates at rates 1e-4 .. 1e-6,
using synthesis thresholds derived from the RQ2 square-root law (0.0122,
0.00386, 0.00122 in the paper).

Simulation goes through :mod:`repro.sim.backends`: exact density
matrices for the smallest circuits, Monte-Carlo statevector trajectories
in the mid range, and bond-truncated MPS beyond that — so the evaluation
is no longer capped at the 12-qubit density-matrix wall and
``max_qubits`` is a time budget rather than a hard feasibility limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench_circuits import BenchmarkCase
from repro.experiments.workflows import (
    _SequenceCache,
    evaluate_synthesized,
    matched_thresholds,
    synthesize_circuit_gridsynth,
    synthesize_circuit_trasyn,
)
from repro.sim import NoiseModel

# Paper RQ4: thresholds derived from logical rates via the Fig. 9 fit.
RATE_TO_EPS = {1e-4: 0.0122, 1e-5: 0.00386, 1e-6: 0.00122}


@dataclass
class NoisyComparison:
    name: str
    logical_rate: float
    trasyn_infidelity: float
    gridsynth_infidelity: float
    gate_count_ratio: float
    backend: str = "density"

    @property
    def infidelity_ratio(self) -> float:
        """gridsynth / trasyn infidelity; > 1 means trasyn wins."""
        if self.trasyn_infidelity <= 1e-15:
            return float("nan")
        return self.gridsynth_infidelity / self.trasyn_infidelity


def run_rq4(
    cases: list[BenchmarkCase],
    logical_rates: tuple[float, ...] = (1e-4, 1e-5, 1e-6),
    seed: int = 5,
    max_qubits: int = 16,
    sim_backend: str = "auto",
    trajectories: int | None = None,
    max_bond: int | None = None,
    exact_max_qubits: int = 12,
) -> list[NoisyComparison]:
    """Noisy fidelity comparison of both workflows over ``cases``.

    ``sim_backend``/``trajectories``/``max_bond`` select and configure
    the simulation engine (``'auto'`` dispatches per circuit size).

    The paper's lower rates (1e-5, 1e-6) produce infidelities far below
    Monte-Carlo sampling resolution, so with ``sim_backend='auto'``
    cases up to ``exact_max_qubits`` are pinned to the exact
    density-matrix engine; only larger circuits — unreachable at seed —
    use the stochastic backends.  Pass an explicit ``sim_backend`` to
    override.
    """
    rng = np.random.default_rng(seed)
    out = []
    cases = [c for c in cases if c.n_qubits <= max_qubits]

    def backend_for(case: BenchmarkCase) -> str:
        if sim_backend == "auto" and case.n_qubits <= exact_max_qubits:
            return "density"
        return sim_backend

    # The ideal state per case is rate-independent: compute it once.
    reference_states: dict[str, object] = {}
    for rate in logical_rates:
        eps = RATE_TO_EPS.get(rate, 0.004)
        tra_cache = _SequenceCache()
        grid_cache = _SequenceCache()
        for case in cases:
            u3_circ, rz_circ, eps_t, eps_g = matched_thresholds(
                case.circuit, eps
            )
            tra = synthesize_circuit_trasyn(
                u3_circ, eps_t, rng, cache=tra_cache, pre_transpiled=True
            )
            grid = synthesize_circuit_gridsynth(
                rz_circ, eps_g, cache=grid_cache, pre_transpiled=True
            )
            noise = NoiseModel.non_pauli_gates(rate)
            case_backend = backend_for(case)
            if case.name not in reference_states:
                from repro.sim.backends import select_backend
                from repro.sim.evaluate import make_reference_state

                sim = select_backend(
                    case.n_qubits, noise, backend=case_backend,
                    trajectories=trajectories, max_bond=max_bond,
                    seed=seed,
                )
                reference_states[case.name] = make_reference_state(
                    case.circuit, sim
                )
            ref_state = reference_states[case.name]
            ev_t = evaluate_synthesized(
                case.circuit, tra, noise, backend=case_backend,
                trajectories=trajectories, max_bond=max_bond, seed=seed,
                reference_state=ref_state,
            )
            ev_g = evaluate_synthesized(
                case.circuit, grid, noise, backend=case_backend,
                trajectories=trajectories, max_bond=max_bond, seed=seed,
                reference_state=ref_state,
            )
            total_t = len(tra.circuit)
            total_g = len(grid.circuit)
            out.append(
                NoisyComparison(
                    name=case.name,
                    logical_rate=rate,
                    trasyn_infidelity=ev_t.infidelity,
                    gridsynth_infidelity=ev_g.infidelity,
                    gate_count_ratio=total_g / max(1, total_t),
                    backend=ev_t.backend,
                )
            )
    return out
