"""RQ1: single-qubit unitary synthesis on Haar-random targets.

Regenerates Figure 7 (synthesis error vs T count / Clifford count),
Figure 8 (synthesis time), and Table 1 (reduction statistics at the
0.001 threshold) for trasyn, gridsynth (via three Rz calls, Eq. 1), and
the Synthetiq-style annealing baseline.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.linalg import haar_random_u2
from repro.synthesis import trasyn
from repro.synthesis.annealing import anneal_unitary
from repro.synthesis.gridsynth import gridsynth_u3
from repro.enumeration import get_table
from repro.experiments.reporting import ratio_summary

THRESHOLDS = (0.1, 0.01, 0.001)


@dataclass
class SynthesisPoint:
    method: str
    eps: float
    error: float
    t_count: int
    clifford_count: int
    seconds: float
    succeeded: bool = True


@dataclass
class RQ1Result:
    points: list[SynthesisPoint] = field(default_factory=list)

    def of(self, method: str, eps: float | None = None) -> list[SynthesisPoint]:
        out = [p for p in self.points if p.method == method]
        if eps is not None:
            out = [p for p in out if p.eps == eps]
        return out

    def table1(self, eps: float = 0.001) -> dict[str, dict[str, float]]:
        """Reduction statistics of gridsynth over trasyn (paper Table 1)."""
        tra = self.of("trasyn", eps)
        gri = self.of("gridsynth", eps)
        t_ratios = [g.t_count / max(1, t.t_count) for g, t in zip(gri, tra)]
        c_ratios = [
            g.clifford_count / max(1, t.clifford_count)
            for g, t in zip(gri, tra)
        ]
        return {
            "t_count": ratio_summary(t_ratios),
            "clifford_count": ratio_summary(c_ratios),
        }

    def failures(self, method: str) -> dict[float, int]:
        return {
            eps: sum(1 for p in self.of(method, eps) if not p.succeeded)
            for eps in THRESHOLDS
        }


def run_rq1(
    n_unitaries: int = 50,
    seed: int = 1,
    thresholds: tuple[float, ...] = THRESHOLDS,
    include_annealing: bool = True,
    annealing_time_limit: float = 2.0,
) -> RQ1Result:
    """Synthesize Haar unitaries with every method at every threshold."""
    rng = np.random.default_rng(seed)
    targets = [haar_random_u2(rng) for _ in range(n_unitaries)]
    # Warm the enumeration tables so timings reflect synthesis only.
    for eps in thresholds:
        from repro.synthesis.trasyn import schedule_for_threshold

        for budgets in schedule_for_threshold(eps):
            get_table(max(budgets))
    result = RQ1Result()
    for eps in thresholds:
        for u in targets:
            t0 = time.monotonic()
            seq = trasyn(u, error_threshold=eps, rng=rng)
            result.points.append(
                SynthesisPoint(
                    "trasyn", eps, seq.error, seq.t_count,
                    seq.clifford_count, time.monotonic() - t0,
                )
            )
            t0 = time.monotonic()
            seq = gridsynth_u3(u, eps)
            result.points.append(
                SynthesisPoint(
                    "gridsynth", eps, seq.error, seq.t_count,
                    seq.clifford_count, time.monotonic() - t0,
                )
            )
            if include_annealing:
                t0 = time.monotonic()
                report = anneal_unitary(
                    u, eps, rng=rng, time_limit=annealing_time_limit
                )
                if report.succeeded:
                    s = report.sequence
                    result.points.append(
                        SynthesisPoint(
                            "synthetiq", eps, s.error, s.t_count,
                            s.clifford_count, report.elapsed,
                        )
                    )
                else:
                    result.points.append(
                        SynthesisPoint(
                            "synthetiq", eps, math.nan, 0, 0,
                            report.elapsed, succeeded=False,
                        )
                    )
    return result


def summarize(result: RQ1Result) -> list[tuple]:
    """Figure 7/8 rows: per (method, eps) mean T, Clifford, error, time."""
    rows = []
    for method in ("trasyn", "gridsynth", "synthetiq"):
        for eps in THRESHOLDS:
            pts = [p for p in result.of(method, eps) if p.succeeded]
            if not pts:
                rows.append((method, eps, "-", "-", "-", "-", 0))
                continue
            rows.append(
                (
                    method,
                    eps,
                    float(np.mean([p.t_count for p in pts])),
                    float(np.mean([p.clifford_count for p in pts])),
                    float(np.mean([p.error for p in pts])),
                    float(np.mean([p.seconds for p in pts])),
                    len(pts),
                )
            )
    return rows
