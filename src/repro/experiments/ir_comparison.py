"""IR comparison: Rz vs U3 rotation counts (Figures 3(b) and 6).

Every suite circuit is transpiled into both IRs under all 16 settings
(4 optimization levels x commutation on/off x 2 bases); Figure 3(b)
reports the per-circuit ratio of best-Rz to best-U3 rotation counts,
and Figure 6 counts how often each setting achieves the minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench_circuits import BenchmarkCase
from repro.circuits import rotation_count
from repro.transpiler import transpile

SETTINGS = [
    (basis, level, comm)
    for basis in ("rz", "u3")
    for level in (0, 1, 2, 3)
    for comm in (False, True)
]


@dataclass
class IRComparisonCase:
    name: str
    category: str
    counts: dict[tuple[str, int, bool], int]

    def best(self, basis: str) -> int:
        return min(v for (b, _, _), v in self.counts.items() if b == basis)

    @property
    def ratio(self) -> float:
        """Rz-to-U3 rotation ratio (>= 1 favours the U3 IR)."""
        return self.best("rz") / max(1, self.best("u3"))

    def best_settings(self) -> list[tuple[str, int, bool]]:
        overall = min(self.counts.values())
        return [k for k, v in self.counts.items() if v == overall]


def run_ir_comparison(cases: list[BenchmarkCase]) -> list[IRComparisonCase]:
    out = []
    for case in cases:
        counts = {}
        for basis, level, comm in SETTINGS:
            lowered = transpile(
                case.circuit, basis=basis, optimization_level=level,
                commutation=comm,
            )
            counts[(basis, level, comm)] = rotation_count(lowered)
        out.append(
            IRComparisonCase(name=case.name, category=case.category,
                             counts=counts)
        )
    return out


def figure6_counts(
    results: list[IRComparisonCase],
) -> dict[tuple[str, int, bool], int]:
    """How often each transpile setting attains the minimum (Figure 6)."""
    tally = {k: 0 for k in SETTINGS}
    for case in results:
        for key in case.best_settings():
            tally[key] += 1
    return tally
