"""Plain-text table/series rendering for the benchmark harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return float("nan")
    return float(np.exp(np.mean(np.log(vals))))


def ratio_summary(ratios: Sequence[float]) -> dict[str, float]:
    arr = np.asarray([r for r in ratios if np.isfinite(r)], dtype=float)
    if arr.size == 0:
        return {"min": math.nan, "mean": math.nan, "geomean": math.nan,
                "median": math.nan, "max": math.nan}
    return {
        "min": float(arr.min()),
        "mean": float(arr.mean()),
        "geomean": geomean(arr),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
    }


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(items):
        return "  ".join(s.ljust(w) for s, w in zip(items, widths))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in cells])


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


#: Column set for connectivity/routing tables: identity, swap overhead,
#: post-routing depths, and the per-IR rotation counts with their ratio.
ROUTING_HEADERS = (
    "circuit", "target", "swaps", "depth", "2q depth",
    "rot(u3)", "rot(rz)", "rz/u3",
)


def routing_table(rows: Sequence[Sequence]) -> str:
    """Render routing/connectivity rows under :data:`ROUTING_HEADERS`.

    Rows shorter than the header set (e.g. route-only summaries without
    rotation counts) are padded with blanks.
    """
    padded = [
        list(row) + [""] * (len(ROUTING_HEADERS) - len(row)) for row in rows
    ]
    return format_table(ROUTING_HEADERS, padded)


#: Column set for schedule/ESP validation tables: identity, routing
#: overhead, timing, both ESP predictions, and the measured fidelity.
ESP_HEADERS = (
    "circuit", "target", "swaps", "makespan", "idle",
    "esp(count)", "esp(esp)", "fidelity", "fid-esp",
)


def esp_table(rows: Sequence[Sequence]) -> str:
    """Render ESP-validation rows under :data:`ESP_HEADERS`."""
    padded = [
        list(row) + [""] * (len(ESP_HEADERS) - len(row)) for row in rows
    ]
    return format_table(ESP_HEADERS, padded)


def print_header(title: str) -> None:
    print()
    print("=" * len(title))
    print(title)
    print("=" * len(title))
