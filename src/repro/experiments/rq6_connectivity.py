"""RQ6 (beyond the paper): the IR comparison under connectivity limits.

The paper answers "Clifford+Rz or Clifford+U3?" on all-to-all circuits.
Real machines have coupling maps, and routing inserts SWAPs whose
decomposition feeds the rotation stream differently per IR — so the
question deserves a per-topology answer.  For every benchmark circuit
and every topology this experiment routes once, lowers into both IRs,
and reports rotation counts, swap overhead, and depth inflation; the
Rz/U3 ratio column is Figure 3(b)'s metric with a connectivity axis
bolted on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bench_circuits import BenchmarkCase
from repro.circuits import Circuit, rotation_count
from repro.target import Target, route_circuit
from repro.transpiler import transpile

#: The topology axis swept by default (name -> Target factory on n).
TOPOLOGY_FACTORIES = {
    "all_to_all": Target.all_to_all,
    "line": Target.line,
    "ring": lambda n: Target.ring(max(3, n)),
    "grid": lambda n: _smallest_grid(n),
}

ALL_TOPOLOGIES = tuple(TOPOLOGY_FACTORIES)


def _smallest_grid(n: int) -> Target:
    """The most-square grid with at least ``n`` qubits."""
    rows = max(1, int(math.floor(math.sqrt(n))))
    cols = (n + rows - 1) // rows
    return Target.grid(rows, cols)


def target_for(n_qubits: int, topology: str) -> Target:
    """Instantiate a swept topology sized for an ``n_qubits`` circuit."""
    try:
        factory = TOPOLOGY_FACTORIES[topology]
    except KeyError:
        raise ValueError(
            f"unknown topology {topology!r} "
            f"(expected one of {sorted(TOPOLOGY_FACTORIES)})"
        ) from None
    return factory(n_qubits)


@dataclass
class ConnectivityCase:
    """One (circuit, topology) cell of the comparison."""

    name: str
    category: str
    topology: str
    n_qubits: int
    swaps: int
    depth_before: int
    depth_after: int
    two_qubit_depth_after: int
    rotations: dict[str, int]  # basis -> rotation count after lowering

    @property
    def ratio(self) -> float:
        """Rz-to-U3 rotation ratio (>= 1 favours the U3 IR)."""
        return self.rotations["rz"] / max(1, self.rotations["u3"])


def run_connectivity_comparison(
    cases: list[BenchmarkCase],
    topologies: tuple[str, ...] = ALL_TOPOLOGIES,
    optimization_level: int = 2,
    layout: str = "dense",
) -> list[ConnectivityCase]:
    """Route + lower every case on every topology, both IRs.

    Routing runs once per (circuit, topology); both basis lowerings
    consume the same routed circuit, mirroring how
    :func:`repro.pipeline.compile_circuit` composes the stages.
    """
    out: list[ConnectivityCase] = []
    for case in cases:
        for topology in topologies:
            target = target_for(case.circuit.n_qubits, topology)
            routed = route_circuit(case.circuit, target, layout=layout)
            rotations = {
                basis: rotation_count(
                    transpile(
                        routed.circuit, basis=basis,
                        optimization_level=optimization_level,
                    )
                )
                for basis in ("u3", "rz")
            }
            out.append(
                ConnectivityCase(
                    name=case.name,
                    category=case.category,
                    topology=topology,
                    n_qubits=target.n_qubits,
                    swaps=routed.swaps_inserted,
                    depth_before=routed.metrics.depth_before,
                    depth_after=routed.metrics.depth_after,
                    two_qubit_depth_after=routed.metrics.two_qubit_depth_after,
                    rotations=rotations,
                )
            )
    return out


def connectivity_rows(results: list[ConnectivityCase]) -> list[list]:
    """Table rows for :func:`repro.experiments.reporting.routing_table`."""
    return [
        [
            r.name, r.topology, r.swaps, r.depth_after,
            r.two_qubit_depth_after, r.rotations["u3"], r.rotations["rz"],
            r.ratio,
        ]
        for r in results
    ]


def _demo_cases() -> list[BenchmarkCase]:
    import numpy as np

    from repro.bench_circuits import ft_algorithms as ft
    from repro.bench_circuits.qaoa import qaoa_maxcut

    rng = np.random.default_rng(7)
    demo: list[tuple[str, str, Circuit]] = [
        ("qft_n4", "ft_algorithm", ft.qft(4)),
        ("qft_n6", "ft_algorithm", ft.qft(6)),
        ("qaoa_n6_p1", "qaoa", qaoa_maxcut(6, 1, rng)),
    ]
    return [BenchmarkCase(n, c, circ) for n, c, circ in demo]


def main() -> int:
    from repro.experiments.reporting import (
        print_header,
        routing_table,
    )

    results = run_connectivity_comparison(_demo_cases())
    print_header("RQ6: IR comparison under connectivity constraints")
    print(routing_table(connectivity_rows(results)))
    by_topology: dict[str, list[float]] = {}
    for r in results:
        by_topology.setdefault(r.topology, []).append(r.ratio)
    print()
    for topology, ratios in by_topology.items():
        mean = sum(ratios) / len(ratios)
        print(f"mean Rz/U3 rotation ratio on {topology:10s}: {mean:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
