"""Experiment harness: one module per research question in the paper."""

from repro.experiments.workflows import (
    SynthesizedCircuit,
    best_transpile,
    matched_thresholds,
    synthesize_circuit_gridsynth,
    synthesize_circuit_trasyn,
)

__all__ = [
    "SynthesizedCircuit",
    "best_transpile",
    "matched_thresholds",
    "synthesize_circuit_gridsynth",
    "synthesize_circuit_trasyn",
]
