"""Experiment harness: one module per research question in the paper.

RQ6 (:mod:`repro.experiments.rq6_connectivity`) and RQ7
(:mod:`repro.experiments.rq7_schedule`) go beyond the paper: the
Rz-vs-U3 IR comparison rerun under hardware connectivity constraints
via :mod:`repro.target`, and the validation of the schedule-driven ESP
cost model against noisy simulation.
"""

from repro.experiments.rq6_connectivity import (
    ConnectivityCase,
    run_connectivity_comparison,
    target_for,
)
from repro.experiments.rq7_schedule import (
    ScheduleCase,
    calibrate,
    run_rq7,
)
from repro.experiments.workflows import (
    SynthesizedCircuit,
    best_transpile,
    matched_thresholds,
    synthesize_circuit_gridsynth,
    synthesize_circuit_trasyn,
)

__all__ = [
    "ConnectivityCase",
    "ScheduleCase",
    "SynthesizedCircuit",
    "best_transpile",
    "calibrate",
    "matched_thresholds",
    "run_connectivity_comparison",
    "run_rq7",
    "synthesize_circuit_gridsynth",
    "synthesize_circuit_trasyn",
    "target_for",
]
