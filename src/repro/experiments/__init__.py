"""Experiment harness: one module per research question in the paper.

RQ6 (:mod:`repro.experiments.rq6_connectivity`) goes beyond the paper:
the Rz-vs-U3 IR comparison rerun under hardware connectivity
constraints via :mod:`repro.target`.
"""

from repro.experiments.rq6_connectivity import (
    ConnectivityCase,
    run_connectivity_comparison,
    target_for,
)
from repro.experiments.workflows import (
    SynthesizedCircuit,
    best_transpile,
    matched_thresholds,
    synthesize_circuit_gridsynth,
    synthesize_circuit_trasyn,
)

__all__ = [
    "ConnectivityCase",
    "SynthesizedCircuit",
    "best_transpile",
    "matched_thresholds",
    "run_connectivity_comparison",
    "synthesize_circuit_gridsynth",
    "synthesize_circuit_trasyn",
    "target_for",
]
