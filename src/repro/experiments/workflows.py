"""End-to-end circuit synthesis workflows (paper Figure 3(a)).

Two competing compilation flows from an input circuit to Clifford+T:

* **trasyn / U3 flow**: transpile to CX+U3 (merging rotations), then
  synthesize each nontrivial U3 directly with trasyn.
* **gridsynth / Rz flow**: transpile to CX+H+Rz (Equation (1)), then
  synthesize each nontrivial Rz with gridsynth.

Both flows run through :mod:`repro.pipeline`: lowering uses the preset
pass pipelines, and rotation synthesis is memoized in a shared
:class:`~repro.pipeline.SynthesisCache` (identical angles appear many
times in Trotter/QAOA circuits).  These entry points keep the paper's
shared-RNG semantics; :func:`repro.pipeline.compile_circuit` is the
order-independent deterministic variant.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits import Circuit, rotation_count
from repro.pipeline import (
    DEFAULT_EPS,
    SynthesisCache,
    SynthesizedCircuit,
    best_preset_lowering,
    synthesize_lowered,
)

# Backward-compatible name: the old per-run cache grew into the
# pipeline-level SynthesisCache (same get_or interface).
_SequenceCache = SynthesisCache

__all__ = [
    "DEFAULT_EPS",
    "SynthesizedCircuit",
    "best_transpile",
    "evaluate_synthesized",
    "matched_thresholds",
    "synthesize_circuit_gridsynth",
    "synthesize_circuit_trasyn",
]


def best_transpile(circuit: Circuit, basis: str) -> Circuit:
    """Pick the transpile preset with fewest rotations (Section 3.4)."""
    return best_preset_lowering(circuit, basis)


def synthesize_circuit_trasyn(
    circuit: Circuit,
    eps: float = DEFAULT_EPS,
    rng: np.random.Generator | None = None,
    cache: SynthesisCache | None = None,
    pre_transpiled: bool = False,
) -> SynthesizedCircuit:
    """The U3 workflow: CX+U3 transpilation, trasyn per rotation."""
    if rng is None:
        rng = np.random.default_rng(0)
    if cache is None:
        cache = SynthesisCache()
    start = time.monotonic()
    lowered = circuit if pre_transpiled else best_transpile(circuit, "u3")
    result = synthesize_lowered(
        lowered, "u3", eps, cache,
        rng_for=lambda key: rng,
        name=circuit.name + "_trasyn",
    )
    result.wall_time = time.monotonic() - start
    return result


def synthesize_circuit_gridsynth(
    circuit: Circuit,
    eps: float = DEFAULT_EPS,
    cache: SynthesisCache | None = None,
    pre_transpiled: bool = False,
) -> SynthesizedCircuit:
    """The Rz workflow: CX+H+Rz transpilation, gridsynth per rotation."""
    if cache is None:
        cache = SynthesisCache()
    start = time.monotonic()
    lowered = circuit if pre_transpiled else best_transpile(circuit, "rz")
    result = synthesize_lowered(
        lowered, "rz", eps, cache,
        rng_for=lambda key: np.random.default_rng(0),
        name=circuit.name + "_gridsynth",
    )
    result.wall_time = time.monotonic() - start
    return result


def evaluate_synthesized(
    reference: Circuit,
    synthesized: SynthesizedCircuit | Circuit,
    noise=None,
    *,
    backend: str = "auto",
    trajectories: int | None = None,
    max_bond: int | None = None,
    seed: int = 0,
    reference_state=None,
):
    """Fidelity evaluation of a synthesized circuit against its source.

    Runs through the :mod:`repro.sim.backends` protocol, so circuits
    beyond the 12-qubit density-matrix wall are evaluated with
    statevector trajectories or MPS as appropriate.  Returns a
    :class:`repro.sim.FidelityEvaluation`.  ``reference_state`` lets
    callers evaluating many synthesized variants of one source circuit
    precompute the ideal state once.
    """
    from repro.sim.evaluate import evaluate_fidelity

    circuit = (
        synthesized.circuit
        if isinstance(synthesized, SynthesizedCircuit)
        else synthesized
    )
    return evaluate_fidelity(
        circuit,
        reference=reference,
        noise=noise,
        backend=backend,
        trajectories=trajectories,
        max_bond=max_bond,
        seed=seed,
        reference_state=reference_state,
    )


def matched_thresholds(
    circuit: Circuit, base_eps: float = DEFAULT_EPS
) -> tuple[Circuit, Circuit, float, float]:
    """Transpile both IRs and match circuit-level error budgets.

    Following the paper's RQ3 setup: trasyn synthesizes U3 rotations at
    ``base_eps``; gridsynth's per-rotation threshold is scaled by the
    rotation-count ratio so both flows land at the same circuit-level
    error budget (n_u3 * base_eps).
    """
    u3_circ = best_transpile(circuit, "u3")
    rz_circ = best_transpile(circuit, "rz")
    n_u3 = max(1, rotation_count(u3_circ))
    n_rz = max(1, rotation_count(rz_circ))
    grid_eps = base_eps * n_u3 / n_rz
    return u3_circ, rz_circ, base_eps, grid_eps
