"""End-to-end circuit synthesis workflows (paper Figure 3(a)).

Two competing compilation flows from an input circuit to Clifford+T:

* **trasyn / U3 flow**: transpile to CX+U3 (merging rotations), then
  synthesize each nontrivial U3 directly with trasyn.
* **gridsynth / Rz flow**: transpile to CX+H+Rz (Equation (1)), then
  synthesize each nontrivial Rz with gridsynth.

Both flows share the rotation caches (identical angles appear many
times in Trotter/QAOA circuits) and report the paper's metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.circuits import (
    Circuit,
    clifford_count,
    is_trivial_angle,
    rotation_count,
    t_count,
    t_depth,
)
from repro.circuits.circuit import Gate
from repro.synthesis import GateSequence, trasyn
from repro.synthesis.gridsynth import gridsynth_rz
from repro.synthesis.gridsynth.exact_synthesis import t_power_tokens
from repro.transpiler import transpile

# Gate-name mapping from synthesis tokens to the circuit IR.
_TOKEN_TO_IR = {
    "H": "h", "S": "s", "Sdg": "sdg", "T": "t", "Tdg": "tdg",
    "X": "x", "Y": "y", "Z": "z", "I": "i",
}

DEFAULT_EPS = 0.007  # the paper's RQ3 per-rotation threshold


@dataclass
class SynthesizedCircuit:
    """A Clifford+T circuit with synthesis provenance."""

    circuit: Circuit
    n_rotations: int
    total_synthesis_error: float  # additive upper bound over rotations
    wall_time: float

    @property
    def t_count(self) -> int:
        return t_count(self.circuit)

    @property
    def t_depth(self) -> int:
        return t_depth(self.circuit)

    @property
    def clifford_count(self) -> int:
        return clifford_count(self.circuit)


def _append_sequence(circuit: Circuit, seq_gates, qubit: int) -> None:
    """Splice a matrix-ordered gate sequence onto one wire (time order)."""
    for token in reversed(list(seq_gates)):
        name = _TOKEN_TO_IR[token]
        if name != "i":
            circuit.append(name, qubit)


def best_transpile(circuit: Circuit, basis: str) -> Circuit:
    """Pick the transpile setting with fewest rotations (Section 3.4)."""
    best = None
    for level in (0, 1, 2, 3):
        for commutation in (False, True):
            cand = transpile(
                circuit, basis=basis, optimization_level=level,
                commutation=commutation,
            )
            n = rotation_count(cand)
            if best is None or n < best[0]:
                best = (n, cand)
    return best[1]


class _SequenceCache:
    """Memoizes synthesized rotations across a whole circuit/suite run."""

    def __init__(self):
        self._store: dict = {}

    def get_or(self, key, compute):
        if key not in self._store:
            self._store[key] = compute()
        return self._store[key]


def synthesize_circuit_trasyn(
    circuit: Circuit,
    eps: float = DEFAULT_EPS,
    rng: np.random.Generator | None = None,
    cache: _SequenceCache | None = None,
    pre_transpiled: bool = False,
) -> SynthesizedCircuit:
    """The U3 workflow: CX+U3 transpilation, trasyn per rotation."""
    if rng is None:
        rng = np.random.default_rng(0)
    if cache is None:
        cache = _SequenceCache()
    start = time.monotonic()
    lowered = circuit if pre_transpiled else best_transpile(circuit, "u3")
    out = Circuit(lowered.n_qubits, name=circuit.name + "_trasyn")
    n_rot = 0
    total_err = 0.0
    for g in lowered.gates:
        if g.name == "u3":
            q = g.qubits[0]
            if all(is_trivial_angle(p) for p in g.params):
                seq = _trivial_u3_sequence(g)
                _append_sequence(out, seq.gates, q)
                continue
            n_rot += 1
            key = ("u3", round(g.params[0], 12), round(g.params[1], 12),
                   round(g.params[2], 12), eps)
            target = g.matrix()
            seq = cache.get_or(
                key, lambda: trasyn(target, error_threshold=eps, rng=rng)
            )
            total_err += seq.error
            _append_sequence(out, seq.gates, q)
        elif g.name in ("rx", "ry", "rz"):
            raise ValueError("u3 flow expects a CX+U3 circuit")
        else:
            out.gates.append(g)
    return SynthesizedCircuit(
        circuit=out,
        n_rotations=n_rot,
        total_synthesis_error=total_err,
        wall_time=time.monotonic() - start,
    )


def _trivial_u3_sequence(g: Gate) -> GateSequence:
    """Exact Clifford+T word for a U3 whose angles are pi/4 multiples."""
    from repro.enumeration import get_table
    from repro.synthesis.trasyn import synthesize

    table = get_table(2)
    res = synthesize(g.matrix(), [2], table=table,
                     rng=np.random.default_rng(0))
    return res.sequence


def synthesize_circuit_gridsynth(
    circuit: Circuit,
    eps: float = DEFAULT_EPS,
    cache: _SequenceCache | None = None,
    pre_transpiled: bool = False,
) -> SynthesizedCircuit:
    """The Rz workflow: CX+H+Rz transpilation, gridsynth per rotation."""
    if cache is None:
        cache = _SequenceCache()
    start = time.monotonic()
    lowered = circuit if pre_transpiled else best_transpile(circuit, "rz")
    out = Circuit(lowered.n_qubits, name=circuit.name + "_gridsynth")
    n_rot = 0
    total_err = 0.0
    for g in lowered.gates:
        if g.name == "rz":
            q = g.qubits[0]
            theta = g.params[0]
            if is_trivial_angle(theta):
                j = round(theta / (np.pi / 4))
                _append_sequence(out, t_power_tokens(j), q)
                continue
            n_rot += 1
            key = ("rz", round(theta, 12), eps)
            seq = cache.get_or(key, lambda: gridsynth_rz(theta, eps))
            total_err += seq.error
            _append_sequence(out, seq.gates, q)
        elif g.name in ("rx", "ry", "u3"):
            raise ValueError("rz flow expects a CX+H+Rz circuit")
        else:
            out.gates.append(g)
    return SynthesizedCircuit(
        circuit=out,
        n_rotations=n_rot,
        total_synthesis_error=total_err,
        wall_time=time.monotonic() - start,
    )


def matched_thresholds(
    circuit: Circuit, base_eps: float = DEFAULT_EPS
) -> tuple[Circuit, Circuit, float, float]:
    """Transpile both IRs and match circuit-level error budgets.

    Following the paper's RQ3 setup: trasyn synthesizes U3 rotations at
    ``base_eps``; gridsynth's per-rotation threshold is scaled by the
    rotation-count ratio so both flows land at the same circuit-level
    error budget (n_u3 * base_eps).
    """
    u3_circ = best_transpile(circuit, "u3")
    rz_circ = best_transpile(circuit, "rz")
    n_u3 = max(1, rotation_count(u3_circ))
    n_rz = max(1, rotation_count(rz_circ))
    grid_eps = base_eps * n_u3 / n_rz
    return u3_circ, rz_circ, base_eps, grid_eps
