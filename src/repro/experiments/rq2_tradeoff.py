"""RQ2: the synthesis-error / logical-error tradeoff (Figure 9).

Random Rz gates are decomposed with gridsynth under synthesis thresholds
from 1e-1 to 1e-5; each sequence is then evaluated as a noisy channel
with depolarizing logical errors on T gates only (the paper's most
conservative model).  For every logical rate there is an optimal
synthesis threshold; fitting optimal-threshold vs logical-rate exposes
the square-root relationship of Figure 9(b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.linalg import rz
from repro.sim.fidelity import sequence_process_infidelity
from repro.synthesis.gridsynth import gridsynth_rz

DEFAULT_THRESHOLDS = tuple(10.0**e for e in (-1, -1.5, -2, -2.5, -3, -3.5, -4))
DEFAULT_LOGICAL_RATES = (1e-7, 1e-6, 1e-5, 1e-4, 1e-3)


@dataclass
class RQ2Result:
    thresholds: tuple[float, ...]
    logical_rates: tuple[float, ...]
    # infidelity[i][j]: mean process infidelity at thresholds[i], rates[j]
    infidelity: np.ndarray
    mean_t_counts: np.ndarray

    def optimal_thresholds(self) -> dict[float, float]:
        """argmin over synthesis threshold per logical rate (Fig 9a)."""
        out = {}
        for j, rate in enumerate(self.logical_rates):
            i = int(np.argmin(self.infidelity[:, j]))
            out[rate] = self.thresholds[i]
        return out

    def sqrt_fit(self) -> tuple[float, float]:
        """Fit optimal_eps = c * rate^alpha; returns (c, alpha).

        The paper's Figure 9(b) reports eps* ~ 1.22 sqrt(rate), i.e.
        alpha ~ 0.5.
        """
        opt = self.optimal_thresholds()
        rates = np.array(sorted(opt))
        eps = np.array([opt[r] for r in rates])
        coeffs = np.polyfit(np.log(rates), np.log(eps), 1)
        alpha = float(coeffs[0])
        c = float(math.exp(coeffs[1]))
        return c, alpha


def run_rq2(
    n_angles: int = 30,
    seed: int = 2,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    logical_rates: tuple[float, ...] = DEFAULT_LOGICAL_RATES,
) -> RQ2Result:
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0.15, 2 * math.pi - 0.15, size=n_angles)
    infid = np.zeros((len(thresholds), len(logical_rates)))
    tmeans = np.zeros(len(thresholds))
    for i, eps in enumerate(thresholds):
        sequences = []
        for theta in angles:
            seq = gridsynth_rz(float(theta), eps)
            sequences.append((seq, rz(float(theta))))
        tmeans[i] = float(np.mean([s.t_count for s, _ in sequences]))
        for j, rate in enumerate(logical_rates):
            vals = [
                sequence_process_infidelity(seq.gates, target, rate)
                for seq, target in sequences
            ]
            infid[i, j] = float(np.mean(vals))
    return RQ2Result(
        thresholds=tuple(thresholds),
        logical_rates=tuple(logical_rates),
        infidelity=infid,
        mean_t_counts=tmeans,
    )
