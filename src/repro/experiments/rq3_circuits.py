"""RQ3: circuit-level comparison of the trasyn and gridsynth workflows.

Regenerates Figure 10 (T count / T depth / Clifford ratios by category),
Figure 11 (absolute circuit infidelities), Figure 12 (vs the
BQSKit-style block-resynthesis flow), and the Figure 2 aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench_circuits import BenchmarkCase
from repro.circuits import rotation_count
from repro.experiments.reporting import geomean
from repro.experiments.workflows import (
    DEFAULT_EPS,
    SynthesizedCircuit,
    _SequenceCache,
    evaluate_synthesized,
    matched_thresholds,
    synthesize_circuit_gridsynth,
    synthesize_circuit_trasyn,
)
from repro.optimizers import resynthesize


@dataclass
class CircuitComparison:
    name: str
    category: str
    n_qubits: int
    trasyn_flow: SynthesizedCircuit
    gridsynth_flow: SynthesizedCircuit
    trasyn_infidelity: float | None = None
    gridsynth_infidelity: float | None = None

    @property
    def t_ratio(self) -> float:
        return self.gridsynth_flow.t_count / max(1, self.trasyn_flow.t_count)

    @property
    def t_depth_ratio(self) -> float:
        return self.gridsynth_flow.t_depth / max(1, self.trasyn_flow.t_depth)

    @property
    def clifford_ratio(self) -> float:
        return self.gridsynth_flow.clifford_count / max(
            1, self.trasyn_flow.clifford_count
        )


def _state_infidelity(
    case_circuit, synthesized, max_qubits: int, backend: str = "auto"
) -> float | None:
    """Noiseless synthesis infidelity through the backend protocol.

    Dispatch means circuits past the dense-statevector range fall back
    to MPS instead of being skipped; ``max_qubits`` stays as a
    wall-clock bound for time-boxed runs.
    """
    if case_circuit.n_qubits > max_qubits:
        return None
    ev = evaluate_synthesized(case_circuit, synthesized, backend=backend)
    return ev.infidelity


def run_rq3(
    cases: list[BenchmarkCase],
    base_eps: float = DEFAULT_EPS,
    seed: int = 3,
    fidelity_max_qubits: int = 16,
    sim_backend: str = "auto",
) -> list[CircuitComparison]:
    rng = np.random.default_rng(seed)
    tra_cache = _SequenceCache()
    grid_cache = _SequenceCache()
    out = []
    for case in cases:
        u3_circ, rz_circ, eps_t, eps_g = matched_thresholds(
            case.circuit, base_eps
        )
        tra = synthesize_circuit_trasyn(
            u3_circ, eps_t, rng, cache=tra_cache, pre_transpiled=True
        )
        grid = synthesize_circuit_gridsynth(
            rz_circ, eps_g, cache=grid_cache, pre_transpiled=True
        )
        comp = CircuitComparison(
            name=case.name, category=case.category,
            n_qubits=case.n_qubits, trasyn_flow=tra, gridsynth_flow=grid,
        )
        comp.trasyn_infidelity = _state_infidelity(
            case.circuit, tra.circuit, fidelity_max_qubits, sim_backend
        )
        comp.gridsynth_infidelity = _state_infidelity(
            case.circuit, grid.circuit, fidelity_max_qubits, sim_backend
        )
        out.append(comp)
    return out


def category_summary(results: list[CircuitComparison]) -> dict[str, dict[str, float]]:
    """Figure 10 aggregates: geomean ratios per category."""
    summary = {}
    for cat in sorted({r.category for r in results}):
        group = [r for r in results if r.category == cat]
        summary[cat] = {
            "count": len(group),
            "t_ratio": geomean([r.t_ratio for r in group]),
            "t_depth_ratio": geomean([r.t_depth_ratio for r in group]),
            "clifford_ratio": geomean([r.clifford_ratio for r in group]),
        }
    summary["all"] = {
        "count": len(results),
        "t_ratio": geomean([r.t_ratio for r in results]),
        "t_depth_ratio": geomean([r.t_depth_ratio for r in results]),
        "clifford_ratio": geomean([r.clifford_ratio for r in results]),
    }
    return summary


def figure2_summary(results: list[CircuitComparison]) -> dict[str, float]:
    """Figure 2 headline numbers: geomean and max reduction ratios."""
    infid_ratios = [
        r.gridsynth_infidelity / r.trasyn_infidelity
        for r in results
        if r.trasyn_infidelity and r.gridsynth_infidelity
        and r.trasyn_infidelity > 1e-12
    ]
    return {
        "t_ratio_geomean": geomean([r.t_ratio for r in results]),
        "t_ratio_max": max(r.t_ratio for r in results),
        "clifford_ratio_geomean": geomean([r.clifford_ratio for r in results]),
        "clifford_ratio_max": max(r.clifford_ratio for r in results),
        "infidelity_ratio_geomean": geomean(infid_ratios) if infid_ratios else float("nan"),
    }


# ---------------------------------------------------------------------------
# Figure 12: trasyn vs BQSKit+gridsynth
# ---------------------------------------------------------------------------

@dataclass
class ResynthComparison:
    name: str
    rotations_direct: int
    rotations_resynth: int
    t_direct: int
    t_resynth: int

    @property
    def rotation_ratio(self) -> float:
        return self.rotations_resynth / max(1, self.rotations_direct)

    @property
    def t_ratio(self) -> float:
        return self.t_resynth / max(1, self.t_direct)


def run_figure12(
    cases: list[BenchmarkCase],
    base_eps: float = DEFAULT_EPS,
    seed: int = 4,
) -> list[ResynthComparison]:
    """Compare the trasyn flow against block-resynthesis + gridsynth."""
    rng = np.random.default_rng(seed)
    tra_cache = _SequenceCache()
    grid_cache = _SequenceCache()
    out = []
    for case in cases:
        u3_circ, _, eps_t, _ = matched_thresholds(case.circuit, base_eps)
        tra = synthesize_circuit_trasyn(
            u3_circ, eps_t, rng, cache=tra_cache, pre_transpiled=True
        )
        blocked = resynthesize(case.circuit)
        _, rz_circ2, _, eps_g2 = matched_thresholds(blocked, base_eps)
        grid = synthesize_circuit_gridsynth(
            rz_circ2, eps_g2, cache=grid_cache, pre_transpiled=True
        )
        out.append(
            ResynthComparison(
                name=case.name,
                rotations_direct=rotation_count(u3_circ),
                rotations_resynth=rotation_count(rz_circ2),
                t_direct=tra.t_count,
                t_resynth=grid.t_count,
            )
        )
    return out
