"""RQ7 (beyond the paper): does predicted ESP track simulated fidelity?

The ESP cost model (:mod:`repro.target.cost`) predicts the probability
that a compiled circuit suffers no error event — per-gate success rates
from the target's calibration times an idle-decoherence penalty from
the timed schedule's slack.  This experiment closes the loop the model
promises: for every (circuit, topology) cell it

1. calibrates the swept topology with a reproducible synthetic
   snapshot (per-edge CX errors, per-gate rates and durations, an idle
   decoherence rate),
2. compiles twice — the PR-4-era baseline (``objective='count'``,
   error-agnostic routing) and the cost-driven ``objective='esp'``
   search — and records both predictions,
3. simulates the ESP-compiled circuit under the *same* calibration
   (idle markers inserted from the schedule, per-edge noise rates) and
   compares measured fidelity against the prediction.

ESP is the no-error branch probability, so simulated fidelity must sit
at or above it (within sampling error); the gap is the residual
overlap of error branches.  The objective search always contains the
baseline variant, so ``esp_objective >= esp_baseline`` cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.bench_circuits import BenchmarkCase
from repro.circuits import Circuit
from repro.experiments.rq6_connectivity import target_for
from repro.pipeline import SynthesisCache, compile_circuit
from repro.schedule import with_idle_noise
from repro.sim import NoiseModel, evaluate_fidelity
from repro.target import Target

#: Synthetic calibration defaults (schedule time units / error rates).
CAL_GATE_DURATIONS = {
    "cx": 3.0, "cz": 3.0, "swap": 9.0, "t": 4.0, "tdg": 4.0,
}
CAL_GATE_ERRORS = {
    "h": 5e-5, "s": 5e-5, "sdg": 5e-5, "t": 2e-4, "tdg": 2e-4,
    "cx": 1e-3, "cz": 1e-3, "swap": 3e-3,
}
CAL_IDLE_RATE = 1e-5


def calibrate(target: Target, seed: int = 0, scale: float = 1.0) -> Target:
    """A reproducible synthetic calibration snapshot of ``target``.

    Per-gate rates/durations come from the module defaults (times
    ``scale``); per-edge CX errors are jittered uniformly in
    [0.5x, 2x] of the CX rate so the cost-aware layout/routing
    tie-breaks have a real gradient to follow.
    """
    rng = np.random.default_rng([seed, target.n_qubits])
    cx = CAL_GATE_ERRORS["cx"] * scale
    edge_errors = {
        (min(a, b), max(a, b)): float(cx * rng.uniform(0.5, 2.0))
        for a, b in target.coupling.edge_pairs()
    }
    return replace(
        target,
        gate_errors={k: v * scale for k, v in CAL_GATE_ERRORS.items()},
        gate_durations=dict(CAL_GATE_DURATIONS),
        edge_errors=edge_errors,
        idle_error_rate=CAL_IDLE_RATE * scale,
    )


@dataclass
class ScheduleCase:
    """One (circuit, topology) cell of the ESP-validation grid."""

    name: str
    topology: str
    n_qubits: int
    swaps: int
    makespan: float
    total_idle: float
    esp_baseline: float  # objective='count', error-agnostic routing
    esp_objective: float  # objective='esp' winning variant
    fidelity: float
    std_error: float | None

    @property
    def delta(self) -> float:
        """Measured minus predicted: the error-branch residue."""
        return self.fidelity - self.esp_objective


def run_rq7(
    cases: list[BenchmarkCase],
    topologies: tuple[str, ...] = ("line", "ring", "grid", "all_to_all"),
    workflow: str = "trasyn",
    eps: float = 0.01,
    optimization_level: int | str = 2,
    seed: int = 7,
    cal_seed: int = 0,
    cal_scale: float = 1.0,
    trajectories: int = 300,
    sim_backend: str = "statevector",
) -> list[ScheduleCase]:
    """Compile + simulate every (circuit, topology) cell (see module doc)."""
    cache = SynthesisCache()
    out: list[ScheduleCase] = []
    for case in cases:
        for topology in topologies:
            target = calibrate(
                target_for(case.circuit.n_qubits, topology),
                seed=cal_seed, scale=cal_scale,
            )
            # cost_aware=False pins the error-agnostic PR-4 router so
            # esp_baseline measures exactly the pre-cost-model stack.
            baseline = compile_circuit(
                case.circuit, workflow=workflow, eps=eps, cache=cache,
                seed=seed, optimization_level=optimization_level,
                target=target, cost_aware=False,
            )
            tuned = compile_circuit(
                case.circuit, workflow=workflow, eps=eps, cache=cache,
                seed=seed, optimization_level=optimization_level,
                target=target, objective="esp",
            )
            noise = NoiseModel.from_target(target)
            marked, noise = with_idle_noise(tuned.circuit, target, noise)
            ev = evaluate_fidelity(
                marked, noise=noise, backend=sim_backend,
                trajectories=trajectories, seed=seed,
            )
            out.append(
                ScheduleCase(
                    name=case.name,
                    topology=topology,
                    n_qubits=target.n_qubits,
                    swaps=tuned.routing.swaps_inserted,
                    makespan=tuned.makespan,
                    total_idle=tuned.schedule.total_idle,
                    esp_baseline=baseline.esp,
                    esp_objective=tuned.esp,
                    fidelity=ev.fidelity,
                    std_error=ev.std_error,
                )
            )
    return out


def esp_rows(results: list[ScheduleCase]) -> list[list]:
    """Table rows for :func:`repro.experiments.reporting.esp_table`."""
    return [
        [
            r.name, r.topology, r.swaps, r.makespan, r.total_idle,
            r.esp_baseline, r.esp_objective, r.fidelity, r.delta,
        ]
        for r in results
    ]


def _demo_cases() -> list[BenchmarkCase]:
    import numpy as np

    from repro.bench_circuits import ft_algorithms as ft
    from repro.bench_circuits.qaoa import qaoa_maxcut

    rng = np.random.default_rng(11)
    demo: list[tuple[str, str, Circuit]] = [
        ("qft_n4", "ft_algorithm", ft.qft(4)),
        ("qaoa_n4_p1", "qaoa", qaoa_maxcut(4, 1, rng)),
    ]
    return [BenchmarkCase(n, c, circ) for n, c, circ in demo]


def main() -> int:
    from repro.experiments.reporting import esp_table, print_header

    results = run_rq7(_demo_cases())
    print_header("RQ7: predicted ESP vs simulated fidelity")
    print(esp_table(esp_rows(results)))
    print()
    worst = min(results, key=lambda r: r.esp_objective)
    print(
        f"lowest predicted ESP: {worst.esp_objective:.4f} "
        f"({worst.name} on {worst.topology}), measured {worst.fidelity:.4f}"
    )
    gains = [r.esp_objective - r.esp_baseline for r in results]
    print(f"mean ESP gain of the objective search: {np.mean(gains):+.4f}")
    bad = [r for r in results if r.esp_objective < r.esp_baseline - 1e-12]
    if bad:
        raise SystemExit(
            f"objective search lost to baseline on {len(bad)} cells"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
