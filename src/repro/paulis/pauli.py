"""Pauli strings: the term language of the Hamiltonian benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import numpy as np

_PAULI_MATS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


@dataclass(frozen=True)
class PauliString:
    """A tensor product of Paulis, e.g. ``PauliString("XIZY")``."""

    label: str

    def __post_init__(self):
        if not self.label or any(c not in "IXYZ" for c in self.label):
            raise ValueError(f"invalid Pauli label {self.label!r}")

    @property
    def n_qubits(self) -> int:
        return len(self.label)

    @property
    def support(self) -> tuple[int, ...]:
        """Qubits on which the string acts nontrivially."""
        return tuple(i for i, c in enumerate(self.label) if c != "I")

    @property
    def weight(self) -> int:
        return len(self.support)

    def is_identity(self) -> bool:
        return self.weight == 0

    def is_diagonal(self) -> bool:
        """True for Z/I-only strings (classical Hamiltonian terms)."""
        return all(c in "IZ" for c in self.label)

    def commutes_with(self, other: "PauliString") -> bool:
        if self.n_qubits != other.n_qubits:
            raise ValueError("mismatched lengths")
        anti = sum(
            1
            for a, b in zip(self.label, other.label)
            if a != "I" and b != "I" and a != b
        )
        return anti % 2 == 0

    def matrix(self) -> np.ndarray:
        """Dense matrix; qubit 0 is the most significant tensor factor."""
        return reduce(np.kron, (_PAULI_MATS[c] for c in self.label))

    def __str__(self) -> str:
        return self.label


def pauli_matrix(label: str) -> np.ndarray:
    return PauliString(label).matrix()
