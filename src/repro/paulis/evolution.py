"""Compiling exp(-i theta/2 P) terms into CX + 1q circuits.

This is the Rustiq-substitute Pauli-network compiler: each term becomes
basis changes (H for X, Sdg-H for Y), a CNOT parity ladder onto a pivot
qubit, one Rz, and the inverse ladder.  A greedy term ordering groups
terms with shared support so the transpiler's merge/commute passes can
fuse the resulting rotations — the merging opportunity the paper's U3
workflow exploits on quantum Hamiltonians.
"""

from __future__ import annotations

from repro.circuits import Circuit
from repro.paulis.pauli import PauliString


def evolution_circuit(
    pauli: PauliString, theta: float, circuit: Circuit | None = None
) -> Circuit:
    """Append exp(-i theta/2 * P) to ``circuit`` (created if omitted)."""
    if circuit is None:
        circuit = Circuit(pauli.n_qubits)
    if pauli.n_qubits > circuit.n_qubits:
        raise ValueError("circuit too small for Pauli string")
    support = pauli.support
    if not support:
        return circuit  # global phase only
    if len(support) == 1:
        # Weight-1 terms compile to native axis rotations (as Rustiq
        # emits them) — the form the commutation/merge passes exploit.
        q = support[0]
        axis = pauli.label[q]
        if axis == "X":
            circuit.rx(theta, q)
        elif axis == "Y":
            circuit.ry(theta, q)
        else:
            circuit.rz(theta, q)
        return circuit
    # Basis changes into the Z eigenbasis.
    for q in support:
        c = pauli.label[q]
        if c == "X":
            circuit.h(q)
        elif c == "Y":
            # Rotate Y to Z: Sdg then H maps the Y axis onto Z.
            circuit.sdg(q)
            circuit.h(q)
    # Pivot on the lowest support qubit: in ascending-chain term orders
    # this leaves each wire's last gadget touch on the CX *target* side,
    # where axis rotations commute in for merging.
    pivot = support[0]
    for q in support[1:]:
        circuit.cx(q, pivot)
    circuit.rz(theta, pivot)
    for q in reversed(support[1:]):
        circuit.cx(q, pivot)
    for q in support:
        c = pauli.label[q]
        if c == "X":
            circuit.h(q)
        elif c == "Y":
            circuit.h(q)
            circuit.s(q)
    return circuit


def _greedy_order(terms: list[tuple[PauliString, float]]) -> list[tuple[PauliString, float]]:
    """Order terms so consecutive ones share support (more merges)."""
    remaining = list(terms)
    if not remaining:
        return []
    ordered = [remaining.pop(0)]
    while remaining:
        last = ordered[-1][0]
        last_support = set(last.support)

        def overlap(item):
            p = item[0]
            shared = len(last_support & set(p.support))
            same_axis = sum(
                1
                for q in p.support
                if q in last_support and p.label[q] == last.label[q]
            )
            return (shared, same_axis)

        best = max(range(len(remaining)), key=lambda i: overlap(remaining[i]))
        ordered.append(remaining.pop(best))
    return ordered


def trotter_circuit(
    terms: list[tuple[PauliString, float]],
    time: float = 1.0,
    steps: int = 1,
    n_qubits: int | None = None,
    order_terms: bool = True,
) -> Circuit:
    """First-order Trotterization of H = sum_j c_j P_j.

    Each step applies ``exp(-i c_j (time/steps) P_j)`` for every term.
    The per-term rotation angle passed to Rz is ``2 c_j time / steps``
    (matching exp(-i theta/2 Z) conventions).
    """
    if not terms:
        raise ValueError("empty Hamiltonian")
    n = n_qubits or terms[0][0].n_qubits
    circuit = Circuit(n)
    ordered = _greedy_order(terms) if order_terms else list(terms)
    dt = time / steps
    for _ in range(steps):
        for pauli, coeff in ordered:
            evolution_circuit(pauli, 2.0 * coeff * dt, circuit)
    return circuit
