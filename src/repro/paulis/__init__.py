"""Pauli strings and Hamiltonian-evolution compilation (Rustiq substitute)."""

from repro.paulis.pauli import PauliString, pauli_matrix
from repro.paulis.evolution import evolution_circuit, trotter_circuit

__all__ = ["PauliString", "evolution_circuit", "pauli_matrix", "trotter_circuit"]
