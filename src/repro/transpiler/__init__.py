"""Circuit transpilation passes: the paper's Rz-vs-U3 IR machinery."""

from repro.transpiler.passes import (
    cancel_inverse_pairs,
    commute_rotations,
    decompose_to_rz_basis,
    merge_1q_runs,
    snap_trivial_rotations,
    transpile,
)

__all__ = [
    "cancel_inverse_pairs",
    "commute_rotations",
    "decompose_to_rz_basis",
    "merge_1q_runs",
    "snap_trivial_rotations",
    "transpile",
]
