"""Transpiler passes over the circuit IR (the Qiskit-transpiler substitute).

The paper's central compilation question — *which IR is better,
Clifford+Rz or Clifford+U3?* — is answered by combining these passes:

* :func:`merge_1q_runs` fuses maximal runs of single-qubit gates into
  one U3 (the merge opportunities Section 3.4 describes),
* :func:`commute_rotations` moves Rz through CX controls and Rx through
  CX targets so that previously-separated rotations become adjacent
  (the optional commutation pass of Figure 6),
* :func:`decompose_to_rz_basis` lowers every 1q unitary to the
  ``Rz . H . Rz . H . Rz`` pattern of Equation (1),
* :func:`transpile` bundles them into optimization levels 0-3 for both
  target IRs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import (
    ONE_QUBIT_GATES,
    Circuit,
    Gate,
)
from repro.circuits.metrics import is_trivial_angle
from repro.linalg import zyz_angles

_SELF_INVERSE = frozenset({"h", "x", "y", "z", "cx", "cz", "swap"})
_INVERSE_PAIRS = {("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t")}
_QUARTER = math.pi / 4.0


def merge_1q_runs(circuit: Circuit, drop_identities: bool = True) -> Circuit:
    """Fuse maximal runs of adjacent 1q gates per wire into single U3 gates."""
    out = Circuit(circuit.n_qubits, name=circuit.name)
    pending: dict[int, np.ndarray] = {}

    def flush(q: int) -> None:
        m = pending.pop(q, None)
        if m is None:
            return
        gate = _matrix_to_gate(m, q, drop_identities)
        if gate is not None:
            out.gates.append(gate)

    for g in circuit.gates:
        if g.name in ONE_QUBIT_GATES:
            q = g.qubits[0]
            acc = pending.get(q)
            pending[q] = g.matrix() @ acc if acc is not None else g.matrix()
        else:
            for q in g.qubits:
                flush(q)
            out.gates.append(g)
    for q in sorted(pending):
        flush(q)
    return out


def _matrix_to_gate(m: np.ndarray, q: int, drop_identity: bool) -> Gate | None:
    theta, phi, lam, _ = zyz_angles(m)
    if drop_identity and abs(theta) < 1e-12 and is_trivial_angle(phi + lam):
        # The merged run is a pure phase times a power of S — but only a
        # *global* phase can be dropped outright.
        if abs(math.remainder(phi + lam, 2 * math.pi)) < 1e-12:
            return None
    return Gate("u3", (q,), (theta, phi, lam))


def commute_rotations(circuit: Circuit) -> Circuit:
    """Relocate axis rotations rightward to meet their merge partners.

    Each Rz/Rx travels forward past every gate on *other* wires and
    every two-qubit gate it commutes with on its own wire (Rz past CX
    controls and CZ; Rx past CX targets), stopping just before the first
    blocking gate on its wire.  When that blocker is a single-qubit
    gate, the pair becomes adjacent on the wire and a subsequent merge
    pass fuses them — the commutation pass of Section 3.4 / Figure 6.
    The circuit unitary is preserved exactly.
    """
    out = list(circuit.gates)
    # Right-to-left sweep: each rotation is relocated exactly once, and
    # moves only affect indices to its right, so the pass terminates in
    # a single pass with no displacement cycles.
    for i in range(len(out) - 1, -1, -1):
        g = out[i]
        if g.name not in ("rx", "rz"):
            continue
        q = g.qubits[0]
        j = i + 1
        blocked_on_wire = False
        while j < len(out):
            other = out[j]
            if q in other.qubits:
                if len(other.qubits) == 1 or not _rotation_commutes(g, other):
                    blocked_on_wire = True
                    break
            j += 1
        if blocked_on_wire and j > i + 1:
            out.pop(i)
            out.insert(j - 1, g)
    out = _relocate_left(out)
    return Circuit(circuit.n_qubits, out, circuit.name)


def _relocate_left(out: list[Gate]) -> list[Gate]:
    """Mirror sweep: move rotations leftward toward a 1q merge partner.

    Only rotations that did *not* end up adjacent to a same-wire 1q gate
    on their right are moved, so the leftward pass never undoes a merge
    the rightward pass arranged.
    """
    out = list(out)
    for i in range(len(out)):
        g = out[i]
        if g.name not in ("rx", "rz"):
            continue
        q = g.qubits[0]
        # Skip when the next same-wire gate to the right is 1q (mergeable).
        partner_right = False
        for k in range(i + 1, len(out)):
            if q in out[k].qubits:
                partner_right = len(out[k].qubits) == 1
                break
        if partner_right:
            continue
        j = i - 1
        blocked_on_wire = False
        while j >= 0:
            other = out[j]
            if q in other.qubits:
                if len(other.qubits) == 1 or not _rotation_commutes(g, other):
                    blocked_on_wire = True
                    break
            j -= 1
        if blocked_on_wire and j < i - 1 and len(out[j].qubits) == 1:
            out.pop(i)
            out.insert(j + 1, g)
    return out


def _rotation_commutes(rot: Gate, other: Gate) -> bool:
    """Does the axis rotation commute with a 2q gate sharing its wire?"""
    q = rot.qubits[0]
    if rot.name == "rz" and other.name == "cx":
        return q == other.qubits[0]  # control commutes with Rz
    if rot.name == "rx" and other.name == "cx":
        return q == other.qubits[1]  # target commutes with Rx
    if rot.name == "rz" and other.name == "cz":
        return True
    return False


def cancel_inverse_pairs(circuit: Circuit, max_passes: int = 8) -> Circuit:
    """Remove adjacent self-inverse duplicates and inverse pairs."""
    gates = list(circuit.gates)
    for _ in range(max_passes):
        changed = False
        out: list[Gate] = []
        i = 0
        while i < len(gates):
            if i + 1 < len(gates) and _is_inverse_pair(gates[i], gates[i + 1]):
                i += 2
                changed = True
                continue
            out.append(gates[i])
            i += 1
        gates = out
        if not changed:
            break
    return Circuit(circuit.n_qubits, gates, circuit.name)


def _is_inverse_pair(a: Gate, b: Gate) -> bool:
    if a.qubits != b.qubits:
        return False
    if a.name == b.name and a.name in _SELF_INVERSE:
        return True
    if (a.name, b.name) in _INVERSE_PAIRS:
        return True
    if a.name == b.name and a.name in ("rx", "ry", "rz"):
        return abs(math.remainder(a.params[0] + b.params[0], 2 * math.pi)) < 1e-12
    return False


def snap_trivial_rotations(circuit: Circuit, tol: float = 1e-9) -> Circuit:
    """Round rotation angles that are within ``tol`` of pi/4 multiples."""
    out = Circuit(circuit.n_qubits, name=circuit.name)
    for g in circuit.gates:
        if g.name in ("rx", "ry", "rz"):
            theta = g.params[0]
            snapped = _QUARTER * round(theta / _QUARTER)
            if abs(math.remainder(theta - snapped, 2 * math.pi)) <= tol:
                theta = snapped
            out.gates.append(Gate(g.name, g.qubits, (theta,)))
        else:
            out.gates.append(g)
    return out


def decompose_to_rz_basis(circuit: Circuit) -> Circuit:
    """Lower every 1q gate to {H, Rz} + discrete Cliffords (Equation (1)).

    Discrete 1q gates pass through untouched; rz stays; rx/ry/u3 become
    ``Rz(lam - pi/2) -> H -> Rz(theta) -> H -> Rz(phi + pi/2)`` in time
    order, with trivial flanking rotations snapped and dropped.
    """
    out = Circuit(circuit.n_qubits, name=circuit.name)
    for g in circuit.gates:
        if g.name in ("u3", "rx", "ry"):
            theta, phi, lam, _ = zyz_angles(g.matrix())
            q = g.qubits[0]
            _emit_rz(out, lam - math.pi / 2, q)
            out.h(q)
            _emit_rz(out, theta, q)
            out.h(q)
            _emit_rz(out, phi + math.pi / 2, q)
        elif g.name == "rz":
            _emit_rz(out, g.params[0], g.qubits[0])
        else:
            out.gates.append(g)
    return out


def _emit_rz(circuit: Circuit, theta: float, q: int) -> None:
    theta = math.remainder(theta, 4 * math.pi)
    if abs(math.remainder(theta, 2 * math.pi)) < 1e-12:
        return
    circuit.rz(theta, q)


def transpile(
    circuit: Circuit,
    basis: str = "u3",
    optimization_level: int = 1,
    commutation: bool = False,
    target=None,
    layout="dense",
    validate: str = "off",
) -> Circuit:
    """Lower ``circuit`` to the chosen IR at an optimization level (0-4).

    ``basis='u3'`` produces CX+U3 (the trasyn workflow input);
    ``basis='rz'`` produces CX+H+Rz (the gridsynth workflow input).
    ``commutation`` additionally runs the Rz/Rx-through-CX pass before
    merging, which is where the U3 IR gains most (Figure 6).  Level 4
    extends the paper's level 3 with the commutation-aware DAG fixpoint
    (cancel inverses / merge rotations / fold phases) of
    :mod:`repro.optimizers.dag_passes`.

    ``target`` (a :class:`repro.target.Target`) makes the lowering
    connectivity-constrained: the circuit is placed (``layout`` =
    ``'trivial'``/``'dense'``/a ``Layout``), SABRE-routed, and
    direction-fixed before optimization, so every 2q gate of the output
    lies on a coupling edge.

    ``validate`` (``"off"``/``"structural"``/``"full"``) verifies the
    IR and each pass's contract between passes; see
    :class:`repro.pipeline.PassManager`.

    The pass sequence per level lives in
    :mod:`repro.pipeline.presets`; this function is sugar for
    ``preset_pipeline(basis, optimization_level, commutation).run(...)``.
    """
    # Imported lazily: repro.pipeline wraps this module's pass functions.
    from repro.pipeline.presets import preset_pipeline

    return preset_pipeline(
        basis, optimization_level, commutation, target=target,
        layout=layout, validate=validate,
    ).run(circuit)


def _isolate_1q(circuit: Circuit) -> Circuit:
    """Convert each 1q gate to U3 individually (no fusion, level 0)."""
    out = Circuit(circuit.n_qubits, name=circuit.name)
    for g in circuit.gates:
        if g.name in ONE_QUBIT_GATES and g.name != "u3":
            theta, phi, lam, _ = zyz_angles(g.matrix())
            out.gates.append(Gate("u3", g.qubits, (theta, phi, lam)))
        else:
            out.gates.append(g)
    return out
