"""Fault-tolerant resource estimation from synthesized circuits.

The paper's motivation (§1-2): T gates dominate FT cost because each
consumes a distilled magic state, and near-term machines are
qubit-starved, so T *count* converts directly into execution time.
This module provides the standard first-order surface-code model used
by resource-estimation studies (Gidney-Ekera style):

* code distance ``d`` from the target logical error budget,
* physical qubits per logical qubit = 2 d^2,
* one T gate consumed per factory cycle; factories produce states at a
  throughput set by the distillation depth.

The numbers are order-of-magnitude planning estimates — exactly how the
paper frames the benefit of a 1.4-3.5x T-count reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits import Circuit, t_count, t_depth


@dataclass(frozen=True)
class SurfaceCodeModel:
    """First-order surface-code cost model."""

    physical_error_rate: float = 1e-3
    cycle_time_us: float = 1.0
    factory_count: int = 2
    factory_cycles_per_state: int = 6  # 15-to-1 distillation rounds (in d units)

    def code_distance(self, logical_error_budget: float, n_logical: int,
                      n_cycles: int) -> int:
        """Smallest odd distance meeting the logical error budget.

        Uses the standard scaling p_L ~ 0.1 (100 p / p_th)^((d+1)/2) with
        p_th = 1e-2, accumulated over qubits and cycles.
        """
        if logical_error_budget <= 0:
            raise ValueError("error budget must be positive")
        volume = max(1, n_logical * n_cycles)
        per_cell = logical_error_budget / volume
        ratio = self.physical_error_rate / 1e-2
        if ratio >= 1:
            raise ValueError("physical error rate above threshold")
        d = 3
        while 0.1 * ratio ** ((d + 1) / 2) > per_cell:
            d += 2
            if d > 99:
                raise ValueError(
                    f"no surface-code distance <= 99 meets the logical "
                    f"error budget {logical_error_budget:g} over "
                    f"{n_logical} qubits x {n_cycles} cycles at physical "
                    f"rate {self.physical_error_rate:g}; relax the budget "
                    f"or improve the physical error rate"
                )
        return d


@dataclass(frozen=True)
class ResourceEstimate:
    """Planning estimate for one synthesized Clifford+T circuit."""

    t_count: int
    t_depth: int
    code_distance: int
    logical_qubits: int
    physical_qubits: int
    execution_cycles: int
    execution_seconds: float
    magic_states: int

    def summary(self) -> str:
        return (
            f"T={self.t_count} (depth {self.t_depth}), d={self.code_distance}, "
            f"{self.logical_qubits} logical / {self.physical_qubits} physical "
            f"qubits, {self.magic_states} magic states, "
            f"~{self.execution_seconds:.3g}s"
        )


def estimate_resources(
    circuit: Circuit,
    logical_error_budget: float = 1e-2,
    model: SurfaceCodeModel | None = None,
) -> ResourceEstimate:
    """Estimate surface-code resources for a Clifford+T circuit.

    Execution time is T-limited: the circuit advances one T *layer* per
    batch of available magic states (the paper's 'T gates dictate
    execution time' premise); Clifford layers ride along for free.
    """
    if model is None:
        model = SurfaceCodeModel()
    n_t = t_count(circuit)
    n_td = t_depth(circuit)
    n_logical = circuit.n_qubits
    # Rough cycle count to size the distance: T depth times d cycles each.
    d_guess = 15
    cycles_guess = max(1, n_td) * d_guess
    d = model.code_distance(logical_error_budget, n_logical, cycles_guess)
    # Factory-limited throughput: states per d-cycle block.
    states_per_block = model.factory_count / model.factory_cycles_per_state
    blocks = math.ceil(n_t / max(states_per_block, 1e-9)) if n_t else 0
    cycles = max(blocks, n_td) * d
    seconds = cycles * model.cycle_time_us * 1e-6
    factory_qubits = model.factory_count * 2 * (2 * d) ** 2
    physical = n_logical * 2 * d * d + factory_qubits
    return ResourceEstimate(
        t_count=n_t,
        t_depth=n_td,
        code_distance=d,
        logical_qubits=n_logical,
        physical_qubits=physical,
        execution_cycles=cycles,
        execution_seconds=seconds,
        magic_states=n_t,
    )


def compare_estimates(
    a: ResourceEstimate, b: ResourceEstimate
) -> dict[str, float]:
    """Resource ratios b/a — the planning view of a T-count reduction."""
    return {
        "t_count": b.t_count / max(1, a.t_count),
        "execution_time": b.execution_seconds / max(1e-12, a.execution_seconds),
        "magic_states": b.magic_states / max(1, a.magic_states),
    }
