"""Phase folding: the T-count optimizer used as the PyZX stand-in (RQ5).

Diagonal phase gates (T, S, Z, their daggers, Rz) commute through CX
networks as rotations on *parity terms* of the wire labels.  Tracking
each wire's parity (and an X-conjugation sign), phase gates that land on
the same parity term within the same H-free region merge into a single
rotation — the class of rewrites responsible for nearly all of PyZX's
T-count gains on synthesized 1q sequences.

The pass is sound for the full IR: any gate it cannot track (H, Y,
rx/ry/u3, cz, swap) simply refreshes the wire labels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.circuits.circuit import Circuit, Gate

_PHASE_ANGLE = {
    "t": math.pi / 4, "tdg": -math.pi / 4,
    "s": math.pi / 2, "sdg": -math.pi / 2,
    "z": math.pi,
}
_QUARTER = math.pi / 4


@dataclass
class _PhaseSlot:
    position: int  # index in output list (placeholder)
    qubit: int
    angle: float  # accumulated rotation on the parity term itself
    negated_at_slot: bool  # X-conjugation state of the wire at emission


def fold_phases(circuit: Circuit) -> Circuit:
    """Merge same-parity phase gates; unitary preserved up to global phase."""
    n = circuit.n_qubits
    next_var = n
    parity: list[frozenset[int]] = [frozenset([q]) for q in range(n)]
    negated: list[bool] = [False] * n
    out: list[Gate | _PhaseSlot] = []
    slots: dict[frozenset[int], _PhaseSlot] = {}

    def refresh(q: int) -> None:
        nonlocal next_var
        parity[q] = frozenset([next_var])
        negated[q] = False
        next_var += 1

    for gate in circuit.gates:
        name = gate.name
        if name in _PHASE_ANGLE or name == "rz":
            q = gate.qubits[0]
            theta = _PHASE_ANGLE.get(name, gate.params[0] if gate.params else 0.0)
            if negated[q]:
                theta = -theta
            key = parity[q]
            slot = slots.get(key)
            if slot is None:
                slot = _PhaseSlot(
                    position=len(out), qubit=q, angle=theta,
                    negated_at_slot=negated[q],
                )
                slots[key] = slot
                out.append(slot)
            else:
                slot.angle += theta
            continue
        if name == "cx":
            c, t = gate.qubits
            parity[t] = parity[c] ^ parity[t]
            negated[t] = negated[c] ^ negated[t]
            out.append(gate)
            continue
        if name == "x":
            q = gate.qubits[0]
            negated[q] = not negated[q]
            out.append(gate)
            continue
        if name in ("i", "z"):
            out.append(gate)
            continue
        # Anything else breaks the parity tracking on its qubits.
        for q in gate.qubits:
            refresh(q)
            # Invalidate any open slot keyed by a parity that used q's
            # old variable?  Not needed: old parities remain valid keys
            # for *earlier* positions; later gates get fresh labels.
        out.append(gate)

    result = Circuit(n, name=circuit.name)
    for item in out:
        if isinstance(item, _PhaseSlot):
            emitted = -item.angle if item.negated_at_slot else item.angle
            result.gates.extend(_emit_phase(emitted, item.qubit))
        else:
            result.gates.append(item)
    return result


def _emit_phase(theta: float, q: int) -> list[Gate]:
    """Minimal gate list for a diagonal phase rotation by ``theta``.

    Memoized on ``(theta, q)``: phase folding re-emits every slot on
    every fixpoint round, and the words repeat heavily (a handful of
    Clifford+T angle classes per wire).  Gates are immutable, so the
    cached word is returned as a fresh list over shared Gate values.
    """
    return list(_emit_phase_cached(theta, q))


@lru_cache(maxsize=65536)
def _emit_phase_cached(theta: float, q: int) -> tuple[Gate, ...]:
    theta = math.remainder(theta, 2 * math.pi)
    if abs(theta) < 1e-12:
        return ()
    steps = theta / _QUARTER
    if abs(steps - round(steps)) < 1e-9:
        k = round(steps) % 8
        names = {0: [], 1: ["t"], 2: ["s"], 3: ["s", "t"], 4: ["z"],
                 5: ["z", "t"], 6: ["sdg"], 7: ["tdg"]}[k]
        return tuple(Gate(nm, (q,)) for nm in names)
    return (Gate("rz", (q,), (theta,)),)
