"""Block resynthesis: the BQSKit-substitute workflow of Figure 12.

The circuit is greedily partitioned into two-qubit blocks; each block's
unitary is re-instantiated from scratch via the KAK decomposition into
local U3 gates plus XX/YY/ZZ interaction evolutions.  Like BQSKit's
numerical instantiation, this *regularizes* the circuit structure at the
cost of re-introducing generic rotations — three Euler angles per local
factor — which is precisely the rotation inflation the paper measures
against the trasyn workflow.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.metrics import is_trivial_angle
from repro.linalg import zyz_angles
from repro.optimizers.kak import kak_decompose
from repro.paulis import PauliString, evolution_circuit


def partition_two_qubit_blocks(circuit: Circuit) -> list[tuple[tuple[int, int], list[Gate]]]:
    """Greedy maximal blocks: consecutive gates on one qubit pair.

    1q gates join the open block of any pair containing their qubit;
    2q gates open a new block when their pair differs from the open one.
    Returns blocks in executable order.
    """
    open_blocks: dict[tuple[int, int], list[Gate]] = {}
    order: list[tuple[int, int]] = []
    qubit_to_pair: dict[int, tuple[int, int]] = {}
    blocks: list[tuple[tuple[int, int], list[Gate]]] = []

    def close(pair: tuple[int, int]) -> None:
        gates = open_blocks.pop(pair, None)
        if gates:
            blocks.append((pair, gates))
            order.remove(pair)
        for q in pair:
            if qubit_to_pair.get(q) == pair:
                del qubit_to_pair[q]

    for g in circuit.gates:
        if len(g.qubits) == 2:
            pair = tuple(sorted(g.qubits))
            for q in pair:
                other = qubit_to_pair.get(q)
                if other is not None and other != pair:
                    close(other)
            if pair not in open_blocks:
                open_blocks[pair] = []
                order.append(pair)
                for q in pair:
                    qubit_to_pair[q] = pair
            open_blocks[pair].append(g)
        else:
            q = g.qubits[0]
            pair = qubit_to_pair.get(q)
            if pair is None:
                # Standalone 1q gate: park it in a degenerate block.
                blocks.append(((q, q), [g]))
            else:
                open_blocks[pair].append(g)
    for pair in list(order):
        close(pair)
    return blocks


def resynthesize(circuit: Circuit, dag_blocks: bool = False) -> Circuit:
    """Re-instantiate every two-qubit block through KAK (BQSKit analogue).

    ``dag_blocks=True`` collects blocks through the dependency-aware
    traversal of
    :func:`repro.optimizers.dag_passes.collect_two_qubit_blocks`, which
    groups same-pair gates that the flat gate list interleaves with
    independent wires — fewer, larger blocks, same unitary.
    """
    if dag_blocks:
        from repro.circuits.dag import CircuitDAG
        from repro.optimizers.dag_passes import collect_two_qubit_blocks

        blocks = collect_two_qubit_blocks(CircuitDAG.from_circuit(circuit))
    else:
        blocks = partition_two_qubit_blocks(circuit)
    out = Circuit(circuit.n_qubits, name=circuit.name + "_resynth")
    rng = np.random.default_rng(11)
    for pair, gates in blocks:
        if pair[0] == pair[1]:
            _emit_local(out, _product_1q(gates), pair[0])
            continue
        block = Circuit(2)
        remap = {pair[0]: 0, pair[1]: 1}
        for g in gates:
            block.gates.append(
                Gate(g.name, tuple(remap[q] for q in g.qubits), g.params)
            )
        u = block.unitary()
        try:
            d = kak_decompose(u, rng)
        except ArithmeticError:
            for g in gates:  # fall back to the original gates
                out.gates.append(g)
            continue
        _emit_local(out, d.b1, pair[0])
        _emit_local(out, d.b2, pair[1])
        for coeff, ops in zip(d.coefficients, ("XX", "YY", "ZZ")):
            if abs(coeff) < 1e-10:
                continue
            label = ["I", "I"]
            label[0], label[1] = ops[0], ops[1]
            sub = evolution_circuit(PauliString("".join(label)), -2.0 * coeff)
            for g in sub.gates:
                out.gates.append(
                    Gate(g.name, tuple(pair[q] for q in g.qubits), g.params)
                )
        _emit_local(out, d.a1, pair[0])
        _emit_local(out, d.a2, pair[1])
    return out


def _product_1q(gates: list[Gate]) -> np.ndarray:
    m = np.eye(2, dtype=complex)
    for g in gates:
        m = g.matrix() @ m
    return m


def _emit_local(out: Circuit, u: np.ndarray, qubit: int) -> None:
    theta, phi, lam, _ = zyz_angles(u)
    if (
        abs(theta) < 1e-10
        and is_trivial_angle(phi + lam)
        and abs(np.remainder(phi + lam, 2 * np.pi)) < 1e-10
    ):
        return
    out.u3(theta, phi, lam, qubit)
