"""Vectorized optimization kernels over the columnar :class:`DAGTable`.

Each kernel is the struct-of-arrays twin of a stack-based pass in
:mod:`repro.optimizers.dag_passes` and produces **byte-identical**
output (same removed gates, same fused parameters, same minted ids) —
the property tests in ``tests/test_dag_table.py`` hold them to it.
Instead of walking ``DAGNode`` objects one at a time, a kernel gathers
whole candidate populations with boolean masks over the opcode and
successor columns, then resolves the few data-dependent decisions
(overlapping cancellation chains, exact float fusion) on the shrunken
candidate set:

* :func:`cancel_inverses_table` — one gather-and-compare finds every
  wire-adjacent inverse pair (self-inverse set, inverse-pair table,
  symmetric-2q and Rz(a)·Rz(−a) masks); the found heads then seed the
  reference's exact stack traversal (fresh successor check at pop time,
  spliced neighbors pushed on top) run over the flat int columns, so
  newly-formed pairs take precedence over stale snapshot pairs exactly
  as the reference stack order dictates.
* :func:`merge_rotations_table` — the rotation-run candidates are found
  vectorized, then each wire's run folds right-to-left with the exact
  scalar :func:`~repro.optimizers.dag_passes._fuse_1q` (pairwise
  ``math.remainder`` arithmetic is not associative, so a segmented sum
  would drift off the reference bit pattern).
* :func:`fold_phases_table` — the PR-8 uint64 bit-matrix phase folding,
  ported onto flat columns (python-list snapshots of the hot columns,
  no per-node objects).
* :func:`collect_two_qubit_blocks_table` — the pair-preferring Kahn
  scan over int arrays and ready-heaps instead of node objects.

:func:`optimize_table` replaces the rescan-everything fixpoint loop:
each kernel reports the wires it touched, and subsequent rounds seed
the cancel/merge scans from those dirty wires only, so fixpoint cost is
proportional to the work done, not to DAG size.  Soundness: a pair or
run that was absent at a kernel's previous fixpoint can only appear on
a wire some later rewrite touched, so scanning dirty wires finds
exactly what a full rescan would.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import Gate
from repro.circuits.dag_table import BOUNDARY, GATE_NAMES, OPCODE, DAGTable
from repro.optimizers.phase_folding import _PHASE_ANGLE, _emit_phase_cached

_TOL = 1e-12
_TWO_PI = 2 * math.pi

_N_OPS = len(GATE_NAMES)
_OP_I = OPCODE["i"]
_OP_CX = OPCODE["cx"]
_OP_RZ = OPCODE["rz"]
_OP_X = OPCODE["x"]
_OP_U3 = OPCODE["u3"]

#: Self-inverse gates (H·H = CX·CX = ... = identity).
_SELF_INV = np.zeros(_N_OPS, dtype=bool)
for _name in ("h", "x", "y", "z", "cx", "cz", "swap"):
    _SELF_INV[OPCODE[_name]] = True

#: opcode -> the opcode it cancels with (s<->sdg, t<->tdg), else -1.
_INV_PARTNER = np.full(_N_OPS, -1, dtype=np.int16)
for _a, _b in (("s", "sdg"), ("t", "tdg")):
    _INV_PARTNER[OPCODE[_a]] = OPCODE[_b]
    _INV_PARTNER[OPCODE[_b]] = OPCODE[_a]

#: Single-axis rotations (cancel when angles sum to 0 mod 2π).
_AXIS_ROT = np.zeros(_N_OPS, dtype=bool)
for _name in ("rx", "ry", "rz"):
    _AXIS_ROT[OPCODE[_name]] = True

#: All rotation gates (merge_rotations candidates).
_ROT = np.zeros(_N_OPS, dtype=bool)
for _name in ("rx", "ry", "rz", "u3"):
    _ROT[OPCODE[_name]] = True

#: Diagonal phase gates fold_phases accumulates (plus rz, handled apart).
_PHASE_OP_ANGLE: dict[int, float] = {
    OPCODE[_name]: _theta for _name, _theta in _PHASE_ANGLE.items()
}
_IS_PHASE = np.zeros(_N_OPS, dtype=bool)
for _name in _PHASE_ANGLE:
    _IS_PHASE[OPCODE[_name]] = True

#: Gates fold_phases tracks through without refreshing wires.
_TRANSPARENT = np.zeros(_N_OPS, dtype=bool)
for _name in ("rz", "cx", "x", "i"):
    _TRANSPARENT[OPCODE[_name]] = True

# fold_phases_table traversal kinds: every opcode maps to exactly one
# branch of the hot loop, precomputed so the loop never consults a dict.
_K_PHASE, _K_CX, _K_X, _K_SKIP, _K_REFRESH = range(5)
_FOLD_KIND = np.full(_N_OPS, _K_REFRESH, dtype=np.int8)
for _name in _PHASE_ANGLE:
    _FOLD_KIND[OPCODE[_name]] = _K_PHASE
_FOLD_KIND[_OP_RZ] = _K_PHASE
_FOLD_KIND[_OP_CX] = _K_CX
_FOLD_KIND[_OP_X] = _K_X
_FOLD_KIND[_OP_I] = _K_SKIP

#: Fixed-angle phase opcodes and their angles (rz keeps its param).
_HAS_FIXED_ANGLE = _IS_PHASE
_ANGLE_BY_OP = np.zeros(_N_OPS, dtype=np.float64)
for _name, _theta in _PHASE_ANGLE.items():
    _ANGLE_BY_OP[OPCODE[_name]] = _theta


def _fuse_1q_exact(a: Gate, b: Gate) -> Gate | None:
    """Deferred import of the shared scalar fuser (avoids a cycle)."""
    from repro.optimizers.dag_passes import _fuse_1q

    return _fuse_1q(a, b)


# ---------------------------------------------------------------------------
# cancel_inverses
# ---------------------------------------------------------------------------

def _find_inverse_pairs(
    table: DAGTable, cand: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All wire-adjacent inverse pairs ``(i, succ)`` among ``cand`` rows.

    One gather over the successor columns per candidate population:
    a row's partner is its successor on *every* wire it touches (for 2q
    rows that means ``succ0 == succ1``, which also forces equal qubit
    sets), and the pair cancels when an opcode mask says so — exactly
    the cases of :func:`~repro.optimizers.dag_passes._is_inverse_pair`.
    Rotation pairs pass a coarse vectorized filter first and the exact
    ``math.remainder`` test scalar-side, keeping float semantics
    bit-identical to the reference.
    """
    op, q0, q1 = table.op, table.q0, table.q1
    s0, s1 = table.succ0, table.succ1
    two = q1[cand] >= 0
    j = np.where(
        two,
        np.where(s0[cand] == s1[cand], s0[cand], BOUNDARY),
        s0[cand],
    )
    ok = j >= 0
    a, j = cand[ok], j[ok]
    if a.size == 0:
        return a, j
    oa, oj = op[a], op[j]
    same = oa == oj
    self_inv = same & _SELF_INV[oa]
    # CX is orientation-sensitive: same qubit *tuple* required.
    self_inv &= np.where(oa == _OP_CX, q0[a] == q0[j], True)
    inv_pair = (_INV_PARTNER[oa] >= 0) & (_INV_PARTNER[oa] == oj)
    rot = same & _AXIS_ROT[oa]
    mask = self_inv | inv_pair | rot
    a, j = a[mask], j[mask]
    rot = (rot & ~(self_inv | inv_pair))[mask]
    if rot.any():
        params = table.params
        keep = np.ones(a.size, dtype=bool)
        for k in np.nonzero(rot)[0].tolist():
            theta = params[a[k], 0] + params[j[k], 0]
            keep[k] = abs(math.remainder(theta, _TWO_PI)) < _TOL
        a, j = a[keep], j[keep]
    return a, j


def _pair_cancels(table: DAGTable, i: int, s: int) -> bool:
    """Scalar :func:`~repro.optimizers.dag_passes._is_inverse_pair` on
    rows already known to be wire-adjacent on every wire of ``i`` (which
    forces equal qubit sets; CX orientation still needs the q0 check)."""
    oi = int(table.op[i])
    os_ = int(table.op[s])
    if oi == os_:
        if _SELF_INV[oi]:
            if oi == _OP_CX:
                return bool(table.q0[i] == table.q0[s])
            return True
        if _AXIS_ROT[oi]:
            theta = float(table.params[i, 0]) + float(table.params[s, 0])
            return abs(math.remainder(theta, _TWO_PI)) < _TOL
        return False
    return bool(_INV_PARTNER[oi] == os_)


def _distinct_sorted(a: int, b: int) -> list[int]:
    """Non-boundary wire-link ids, deduplicated, ascending (the order
    :meth:`CircuitDAG.predecessors`/``successors`` returns)."""
    if b == BOUNDARY or b == a:
        return [a] if a != BOUNDARY else []
    if a == BOUNDARY:
        return [b]
    return [a, b] if a < b else [b, a]


def cancel_inverses_table(
    table: DAGTable, wires: set[int] | None = None
) -> tuple[int, set[int]]:
    """Adjacent-inverse cancellation, byte-identical to the reference.

    One vectorized gather finds every identity row and inverse-pair
    head up front; when that scan comes back empty (the common case in
    dirty-wire fixpoint rounds) the kernel returns without touching the
    table.  Otherwise the found rows seed the reference pass's exact
    stack traversal — seeds ordered by the deterministic Kahn rank
    :meth:`CircuitDAG.topological` uses, each pop re-checking the
    *current* wire successor, spliced neighbors pushed on top — so a
    pair newly formed by an earlier removal is consumed before any
    stale snapshot pair, exactly as the reference stack dictates
    (chains like ``sdg s s sdg sdg`` keep the same surviving ids).
    ``wires`` restricts the seed scan to rows on those wires (the
    dirty-wire fast path of :func:`optimize_table`; sound because a
    pair absent at the kernel's previous fixpoint can only appear on a
    wire some later rewrite touched); ``None`` scans everything.

    Returns ``(gates_removed, wires_touched)``.
    """
    removed = 0
    touched: set[int] = set()
    alive = table.alive
    if wires is None:
        cand = np.nonzero(alive)[0]
    else:
        cand = table.ids_on_wires(wires)
    if cand.size == 0:
        return removed, touched
    ident = cand[table.op[cand] == _OP_I]
    heads, _ = _find_inverse_pairs(table, cand)
    if ident.size == 0 and heads.size == 0:
        return removed, touched

    # Any row whose pair status can change is pushed by the traversal
    # when the enabling removal happens, so seeding with only the rows
    # that *currently* act (identities + pair heads) visits the same
    # action sequence as the reference's full-stack walk.
    rank = {i: k for k, i in enumerate(table.linear_order())}
    seeds = set(ident.tolist()) | set(heads.tolist())
    work = sorted(seeds, key=rank.__getitem__)
    op, q0, q1 = table.op, table.q0, table.q1
    p0, p1 = table.pred0, table.pred1
    s0, s1 = table.succ0, table.succ1
    while work:
        i = work.pop()
        if not alive[i]:
            continue
        if op[i] == _OP_I:
            # Identity rows are 1q: the lone pred rejoins the walk.
            neighbors = _distinct_sorted(int(p0[i]), BOUNDARY)
            touched.add(int(q0[i]))
            table.remove(i)
            removed += 1
            work.extend(neighbors)
            continue
        if q1[i] >= 0:
            s = int(s0[i]) if s0[i] == s1[i] else BOUNDARY
        else:
            s = int(s0[i])
        if s == BOUNDARY or not _pair_cancels(table, i, s):
            continue
        two = q1[i] >= 0
        neighbors = _distinct_sorted(
            int(p0[i]), int(p1[i]) if two else BOUNDARY
        )
        neighbors += [
            x
            for x in _distinct_sorted(
                int(s0[s]), int(s1[s]) if q1[s] >= 0 else BOUNDARY
            )
            if x != i
        ]
        touched.add(int(q0[i]))
        if two:
            touched.add(int(q1[i]))
        table.remove(s)
        table.remove(i)
        removed += 2
        work.extend(n for n in neighbors if alive[n])
    return removed, touched


# ---------------------------------------------------------------------------
# merge_rotations
# ---------------------------------------------------------------------------

def merge_rotations_table(
    table: DAGTable, wires: set[int] | None = None
) -> tuple[int, set[int]]:
    """Batch rotation fusion: rz·rz → rz, u3·u3 → u3 (per-wire runs).

    Candidate rows — rotations whose wire successor is also a rotation —
    are found in one vectorized gather; each wire's candidates then fold
    right-to-left (latest run first, the reference stack order) with the
    exact scalar fuser.  Same-axis pairs add angles through
    ``math.remainder``; pairs involving a u3 take the scalar ZYZ
    fallback; a fused identity deletes both rows and re-exposes the
    predecessor.  Returns ``(gates_removed, wires_touched)``.
    """
    removed = 0
    touched: set[int] = set()
    alive = table.alive
    op, q0 = table.op, table.q0
    succ0, pred0 = table.succ0, table.pred0
    if wires is None:
        base = np.nonzero(alive & _ROT[op])[0]
    else:
        base = table.ids_on_wires(wires)
        base = base[_ROT[op[base]]]
    if base.size == 0:
        return removed, touched
    j = succ0[base]
    ok = j >= 0
    ok[ok] = _ROT[op[j[ok]]]
    cand = base[ok]
    if cand.size == 0:
        return removed, touched
    # Independent per-wire worklists, latest candidates popped first.
    order = np.lexsort((table.pos[cand], q0[cand]))
    cand = cand[order]
    wire_of = q0[cand]
    starts = np.nonzero(
        np.concatenate(([True], wire_of[1:] != wire_of[:-1]))
    )[0].tolist()
    bounds = starts + [cand.size]
    cand_l = cand.tolist()
    for w in range(len(starts)):
        stack = cand_l[bounds[w]: bounds[w + 1]]
        while stack:
            i = stack.pop()
            if not alive[i] or not _ROT[op[i]]:
                continue
            s = int(succ0[i])
            if s == BOUNDARY or not _ROT[op[s]]:
                continue
            same_axis = op[s] == op[i] != _OP_U3
            if not same_axis and _OP_U3 not in (int(op[i]), int(op[s])):
                continue  # mixed axes stay (synthesis handles them better)
            fused = _fuse_1q_exact(table.gate(i), table.gate(s))
            table.remove(s)
            removed += 1
            touched.add(int(q0[i]))
            if fused is None:
                p = int(pred0[i])
                table.remove(i)
                removed += 1
                if p != BOUNDARY:
                    stack.append(p)
            else:
                table.set_gate(i, fused)
                stack.append(i)
    return removed, touched


# ---------------------------------------------------------------------------
# fold_phases
# ---------------------------------------------------------------------------

def fold_phases_table(table: DAGTable) -> tuple[int, set[int]]:
    """Parity-tracked phase folding over the table (bit-mask form).

    The bit-parallel formulation of
    :func:`~repro.optimizers.dag_passes.fold_phases_dag_reference`: each
    wire's parity term is an arbitrary-width python int with one bit per
    parity variable, so the CX update is a single bigint XOR and the
    fold key is the mask itself (parity-set equality is bitmask equality
    under the shared variable numbering).  The traversal snapshots the
    hot columns into flat python lists — no ``DAGNode`` objects, no
    per-node attribute chasing.  Folds exactly the same phases and
    mints exactly the same substitute ids as the set-based reference.
    Returns ``(gates_removed, wires_touched)``.
    """
    n = table.n_qubits
    order = table.linear_order()
    ids = np.asarray(order, dtype=np.int64)
    parity: list[int] = [1 << q for q in range(n)]
    negated: list[bool] = [False] * n
    next_var = n
    # parity bitmask -> [slot row id, accumulated angle, negated, qubit]
    slots: dict[int, list] = {}
    before = len(table)
    removed_wires: set[int] = set()

    # Pre-classify every row and pre-merge its phase angle (fixed phase
    # opcodes and rz params share one theta column), so the traversal
    # below is pure branch-on-int with no per-node dict lookups.
    ops = table.op[ids] if ids.size else np.zeros(0, dtype=np.int16)
    kind_l = _FOLD_KIND[ops].tolist()
    theta_l = np.where(
        _HAS_FIXED_ANGLE[ops],
        _ANGLE_BY_OP[ops],
        table.params[ids, 0] if ids.size else 0.0,
    ).tolist()
    q0_l = table.q0[ids].tolist() if ids.size else []
    q1_l = table.q1[ids].tolist() if ids.size else []
    remove = table.remove

    for k, i in enumerate(order):
        kind = kind_l[k]
        if kind == _K_PHASE:
            q = q0_l[k]
            theta = theta_l[k]
            if negated[q]:
                theta = -theta
            key = parity[q]
            slot = slots.get(key)
            if slot is None:
                slots[key] = [i, theta, negated[q], q]
            else:
                slot[1] += theta
                remove(i)
                removed_wires.add(q)
        elif kind == _K_CX:
            c, t = q0_l[k], q1_l[k]
            parity[t] ^= parity[c]
            negated[t] ^= negated[c]
        elif kind == _K_REFRESH:
            parity[q0_l[k]] = 1 << next_var
            negated[q0_l[k]] = False
            next_var += 1
            q1 = q1_l[k]
            if q1 >= 0:
                parity[q1] = 1 << next_var
                negated[q1] = False
                next_var += 1
        elif kind == _K_X:
            q = q0_l[k]
            negated[q] = not negated[q]
        # _K_SKIP ("i"): tracked through, nothing to do

    # Every slot re-emits unconditionally (even when the word equals the
    # original gate): the minted ids must match the reference pass,
    # because ids break linearization ties downstream.  Two live slots
    # are never wire-adjacent (phase gates between them would share the
    # parity key and have merged), so the whole batch substitutes in one
    # bulk column write.
    subs: list[tuple[int, tuple[Gate, ...]]] = []
    for node_id, angle, negated_at_slot, q in slots.values():
        emitted = -angle if negated_at_slot else angle
        subs.append((node_id, _emit_phase_cached(float(emitted), q)))
        removed_wires.add(q)
    table.substitute_1q_bulk(subs)
    return before - len(table), removed_wires


# ---------------------------------------------------------------------------
# collect_two_qubit_blocks
# ---------------------------------------------------------------------------

def collect_two_qubit_blocks_table(
    table: DAGTable,
) -> list[tuple[tuple[int, int], list[Gate]]]:
    """Pair-preferring Kahn scan over int arrays (no node objects).

    Mirrors :func:`~repro.optimizers.dag_passes
    .collect_two_qubit_blocks_reference` exactly — among all ready rows
    it executes the minimum of ``(0 if fits-open-pair else 1, id)`` —
    but replaces the reference's O(ready²) rescans with two lazy
    min-heaps (all ready rows / currently-fitting rows) plus an
    ``open_pair`` int array per qubit, invalidated lazily.
    """
    from repro.optimizers.resynth import partition_two_qubit_blocks

    import heapq

    from repro.circuits.circuit import Circuit

    n_rows = table.size
    alive = table.alive
    q0_l = table.q0.tolist()
    q1_l = table.q1.tolist()
    p0, p1 = table.pred0, table.pred1
    s0_l = table.succ0.tolist()
    s1_l = table.succ1.tolist()
    indeg = ((p0 >= 0).astype(np.int64) + ((p1 >= 0) & (p1 != p0))).tolist()

    # open pair per qubit as the partner qubit (-1 = none), matching the
    # reference's stale ``open_pair`` dict semantics exactly.
    partner = [-1] * table.n_qubits
    in_ready = np.zeros(n_rows, dtype=bool)
    by_qubit: list[set[int]] = [set() for _ in range(table.n_qubits)]
    all_heap: list[int] = []
    fit_heap: list[int] = []

    def fits(i: int) -> bool:
        q1i = q1_l[i]
        if q1i < 0:
            return partner[q0_l[i]] >= 0
        return partner[q0_l[i]] == q1i and partner[q1i] == q0_l[i]

    def make_ready(i: int) -> None:
        in_ready[i] = True
        heapq.heappush(all_heap, i)
        by_qubit[q0_l[i]].add(i)
        if q1_l[i] >= 0:
            by_qubit[q1_l[i]].add(i)
        if fits(i):
            heapq.heappush(fit_heap, i)

    for i in np.nonzero(alive)[0].tolist():
        if indeg[i] == 0:
            make_ready(i)

    ordered: list[Gate] = []
    remaining = len(table)
    while remaining:
        while fit_heap and not (in_ready[fit_heap[0]] and fits(fit_heap[0])):
            heapq.heappop(fit_heap)
        if fit_heap:
            i = heapq.heappop(fit_heap)
        else:
            while not in_ready[all_heap[0]]:
                heapq.heappop(all_heap)
            i = heapq.heappop(all_heap)
        in_ready[i] = False
        by_qubit[q0_l[i]].discard(i)
        q1i = q1_l[i]
        if q1i >= 0:
            by_qubit[q1i].discard(i)
        ordered.append(table.gate(i))
        remaining -= 1
        if q1i >= 0:
            a, b = q0_l[i], q1i
            partner[a], partner[b] = b, a
            # The new open pair may make previously non-fitting ready
            # rows on these wires fit; re-evaluate just those buckets.
            for q in (a, b):
                for r in by_qubit[q]:
                    if fits(r):
                        heapq.heappush(fit_heap, r)
        s0 = s0_l[i]
        if s0 != BOUNDARY:
            indeg[s0] -= 1
            if indeg[s0] == 0:
                make_ready(s0)
        s1 = s1_l[i]
        if s1 != BOUNDARY and s1 != s0:
            indeg[s1] -= 1
            if indeg[s1] == 0:
                make_ready(s1)
    reordered = Circuit(table.n_qubits, ordered, table.name)
    return partition_two_qubit_blocks(reordered)


# ---------------------------------------------------------------------------
# the incremental fixpoint driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OptimizeStats:
    """Outcome of one :func:`optimize_table`/``optimize_dag`` run.

    ``converged`` is False when the round cap cut the fixpoint short —
    the driver has already issued a :class:`UserWarning` in that case,
    and :class:`~repro.pipeline.passes.PassManager` surfaces the flag in
    per-pass metrics.
    """

    removed: int
    rounds: int
    converged: bool
    per_pass: dict[str, int] = field(default_factory=dict)

    def __int__(self) -> int:  # legacy: optimize_dag used to return int
        return self.removed


def optimize_table(table: DAGTable, max_rounds: int = 8) -> OptimizeStats:
    """Dirty-wire fixpoint of cancel → merge → fold over the table.

    Round 1 scans everything; afterwards each kernel's scan is seeded
    with only the wires rewritten since *its own* last fixpoint (work
    found elsewhere would contradict that fixpoint), so iteration cost
    tracks the work actually done.  Phase folding is global by nature
    (parities flow across wires) and runs in full each round.  Honest
    convergence: the stats record whether a zero-work round was reached
    before the cap, and hitting the cap warns once.
    """
    removed = 0
    rounds = 0
    converged = False
    per_pass = {"cancel_inverses": 0, "merge_rotations": 0, "fold_phases": 0}
    cancel_wires: set[int] | None = None
    merge_wires: set[int] | None = None
    for _ in range(max_rounds):
        rounds += 1
        c, t_cancel = cancel_inverses_table(table, cancel_wires)
        if merge_wires is not None:
            merge_wires |= t_cancel
        m, t_merge = merge_rotations_table(table, merge_wires)
        f, t_fold = fold_phases_table(table)
        per_pass["cancel_inverses"] += c
        per_pass["merge_rotations"] += m
        per_pass["fold_phases"] += f
        step = c + m + f
        removed += step
        if step == 0:
            converged = True
            break
        cancel_wires = t_merge | t_fold
        merge_wires = set(t_fold)
    if not converged:
        warnings.warn(
            f"optimize_dag stopped at the round cap ({max_rounds}) before "
            "reaching a fixpoint; rerun with a higher max_rounds to finish",
            UserWarning,
            stacklevel=3,
        )
    return OptimizeStats(
        removed=removed, rounds=rounds, converged=converged, per_pass=per_pass
    )
