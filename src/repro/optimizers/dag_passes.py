"""Commutation-aware optimization passes over the dependency DAG.

Where the list-based passes of :mod:`repro.transpiler.passes` see only
textual adjacency, these passes see *wire* adjacency: two gates are
neighbors when no gate on a shared qubit separates them, no matter how
many gates on independent wires sit between them in the flat list.

* :func:`cancel_inverses` — adjacent-inverse gate cancellation along
  wires (H·H, CX·CX, S·Sdg, Rz(a)·Rz(-a), ...), iterated to fixpoint.
* :func:`merge_rotations` — same-axis rotation merging (rz·rz → rz) and
  general u3·u3 fusion through the ZYZ decomposition.
* :func:`fold_phases_dag` — parity-tracked phase folding over a
  topological traversal: diagonal phases merge onto the first gate with
  the same CX-parity term, commuting across independent wires.
* :func:`collect_two_qubit_blocks` — dependency-aware maximal 2q-block
  collection feeding the KAK resynthesis of
  :mod:`repro.optimizers.resynth`.
* :func:`optimize_circuit` — the fixpoint driver combining the above;
  the post-synthesis optimizer behind ``optimization_level=4`` and the
  RQ5 comparison.

Every pass preserves the circuit unitary up to global phase.

Each public pass dispatches between two engines producing
**byte-identical** output (same removed gates, same fused params, same
minted ids):

* ``"columnar"`` (default) — the vectorized kernels of
  :mod:`repro.optimizers.columnar` over a :class:`DAGTable` imported
  from the caller's DAG and written back after the rewrite.
* ``"reference"`` — the original per-node loops, retained as the
  readable specification under ``*_reference`` names.

Select with :func:`set_dag_engine` or the ``REPRO_DAG_ENGINE``
environment variable.  Circuits containing gates outside the fixed
16-opcode IR vocabulary fall back to the reference path automatically.
"""

from __future__ import annotations

import math
import os
import warnings

from repro.circuits.circuit import ROTATION_GATES, Circuit, Gate
from repro.circuits.dag import BOUNDARY, CircuitDAG, DAGNode
from repro.circuits.dag_table import DAGTable
from repro.linalg import zyz_angles
from repro.optimizers.columnar import (
    OptimizeStats,
    cancel_inverses_table,
    collect_two_qubit_blocks_table,
    fold_phases_table,
    merge_rotations_table,
    optimize_table,
)
from repro.optimizers.phase_folding import _PHASE_ANGLE, _emit_phase

_SELF_INVERSE = frozenset({"h", "x", "y", "z", "cx", "cz", "swap"})
_INVERSE_PAIRS = {("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t")}
#: 2q gates invariant under qubit exchange (CX is not).
_SYMMETRIC_2Q = frozenset({"cz", "swap"})
_AXIS_ROTATIONS = frozenset({"rx", "ry", "rz"})
_TOL = 1e-12


def _wire_successor(dag: CircuitDAG, node: DAGNode) -> DAGNode | None:
    """The single node following ``node`` on *every* one of its wires."""
    ids = {node.succs[q] for q in node.gate.qubits}
    if len(ids) != 1:
        return None
    (i,) = ids
    return None if i == BOUNDARY else dag.node(i)


def _is_inverse_pair(a: Gate, b: Gate) -> bool:
    if a.name == b.name and a.name in _SYMMETRIC_2Q:
        return set(a.qubits) == set(b.qubits)
    if a.qubits != b.qubits:
        return False
    if a.name == b.name and a.name in _SELF_INVERSE:
        return True
    if (a.name, b.name) in _INVERSE_PAIRS:
        return True
    if a.name == b.name and a.name in _AXIS_ROTATIONS:
        return abs(math.remainder(a.params[0] + b.params[0], 2 * math.pi)) < _TOL
    return False


# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------

_ENGINES = ("columnar", "reference")
_engine = os.environ.get("REPRO_DAG_ENGINE", "columnar")
if _engine not in _ENGINES:
    _engine = "columnar"


def dag_engine() -> str:
    """The active pass engine: ``"columnar"`` or ``"reference"``."""
    return _engine


def set_dag_engine(name: str) -> str:
    """Select the pass engine; returns the previous selection."""
    global _engine
    if name not in _ENGINES:
        raise ValueError(
            f"unknown DAG engine {name!r}; expected one of {_ENGINES}"
        )
    previous = _engine
    _engine = name
    return previous


def _import_table(dag: CircuitDAG) -> DAGTable | None:
    """Columnar import of ``dag``, or None when it must stay on the
    reference path (exotic gates outside the interned vocabulary)."""
    try:
        return DAGTable.from_dag(dag)
    except ValueError:
        return None


def cancel_inverses(dag: CircuitDAG) -> int:
    """Remove wire-adjacent inverse pairs (and bare identity gates).

    A pair cancels when the two nodes are adjacent on **all** wires they
    share and compose to the identity (up to global phase for
    rotations).  Removal re-exposes the spliced neighbors, so chains
    like ``H X X H`` collapse fully in one call.  Returns the number of
    gates removed.
    """
    if _engine == "columnar":
        table = _import_table(dag)
        if table is not None:
            removed, _ = cancel_inverses_table(table)
            table.write_back(dag)
            return removed
    return cancel_inverses_reference(dag)


def cancel_inverses_reference(dag: CircuitDAG) -> int:
    """Per-node reference implementation of :func:`cancel_inverses`."""
    removed = 0
    work = [n.id for n in dag.topological()]
    while work:
        i = work.pop()
        if i not in dag:
            continue
        node = dag.node(i)
        if node.gate.name == "i":
            neighbors = [p.id for p in dag.predecessors(i)]
            dag.remove_node(i)
            removed += 1
            work.extend(neighbors)
            continue
        succ = _wire_successor(dag, node)
        if succ is None or not _is_inverse_pair(node.gate, succ.gate):
            continue
        neighbors = [p.id for p in dag.predecessors(i)]
        neighbors += [s.id for s in dag.successors(succ.id) if s.id != i]
        dag.remove_node(succ.id)
        dag.remove_node(i)
        removed += 2
        work.extend(n for n in neighbors if n in dag)
    return removed


def _fuse_1q(a: Gate, b: Gate) -> Gate | None:
    """One gate equal to ``b . a`` on the wire, or None for identity."""
    if a.name == b.name and a.name in _AXIS_ROTATIONS:
        theta = math.remainder(a.params[0] + b.params[0], 2 * math.pi)
        if abs(theta) < _TOL:
            return None
        return Gate(a.name, a.qubits, (theta,))
    theta, phi, lam, _ = zyz_angles(b.matrix() @ a.matrix())
    if abs(theta) < _TOL and abs(math.remainder(phi + lam, 2 * math.pi)) < _TOL:
        return None
    return Gate("u3", a.qubits, (theta, phi, lam))


def merge_rotations(dag: CircuitDAG) -> int:
    """Fuse wire-adjacent rotation pairs: rz·rz → rz, u3·u3 → u3.

    Same-axis pairs merge exactly by angle addition; mixed rotation
    pairs involving a u3 fuse through the ZYZ decomposition.  A fused
    pair that is the identity (up to global phase) disappears entirely.
    Returns the number of gates eliminated.
    """
    if _engine == "columnar":
        table = _import_table(dag)
        if table is not None:
            removed, _ = merge_rotations_table(table)
            table.write_back(dag)
            return removed
    return merge_rotations_reference(dag)


def merge_rotations_reference(dag: CircuitDAG) -> int:
    """Per-node reference implementation of :func:`merge_rotations`."""
    removed = 0
    work = [n.id for n in dag.topological()]
    while work:
        i = work.pop()
        if i not in dag:
            continue
        node = dag.node(i)
        if node.gate.name not in ROTATION_GATES:
            continue
        succ = _wire_successor(dag, node)
        if succ is None or succ.gate.name not in ROTATION_GATES:
            continue
        if succ.gate.qubits != node.gate.qubits:
            continue
        same_axis = succ.gate.name == node.gate.name != "u3"
        if not same_axis and "u3" not in (node.gate.name, succ.gate.name):
            continue  # mixed axes stay (synthesis handles them better)
        fused = _fuse_1q(node.gate, succ.gate)
        dag.remove_node(succ.id)
        removed += 1
        if fused is None:
            neighbors = [p.id for p in dag.predecessors(i)]
            dag.remove_node(i)
            removed += 1
            work.extend(n for n in neighbors if n in dag)
        else:
            dag.set_gate(i, fused)
            work.append(i)
    return removed


def fold_phases_dag(dag: CircuitDAG) -> int:
    """Parity-tracked phase folding over the DAG (commutation-aware).

    Diagonal phase gates (T, S, Z, daggers, Rz) rotate a *parity term*
    of the CX network; every phase landing on an already-seen parity
    merges into the first occurrence, then each accumulated angle is
    re-emitted as the minimal Clifford+T/Rz word in place.  Gates that
    break the tracking (H, Y, rx/ry/u3, cz, swap) refresh only their
    own wires — phases keep folding across independent wires.  Returns
    the number of gates eliminated (net of re-emission).

    The columnar engine tracks parities as arbitrary-width python
    integer bitmasks over flat column snapshots
    (:func:`~repro.optimizers.columnar.fold_phases_table`);
    :func:`fold_phases_dag_reference` is the set-based specification.
    Both fold exactly the same phases and mint identical ids.
    """
    if _engine == "columnar":
        table = _import_table(dag)
        if table is not None:
            before = len(dag)
            fold_phases_table(table)
            table.write_back(dag)
            return before - len(dag)
    return fold_phases_dag_reference(dag)


def fold_phases_dag_reference(dag: CircuitDAG) -> int:
    """Set-based reference formulation of :func:`fold_phases_dag`.

    Folds exactly the same phases as the columnar bitmask kernel
    (parity-set equality is bitmask equality under the shared variable
    numbering); kept for equivalence testing and as the readable
    specification.
    """
    n = dag.n_qubits
    next_var = n
    parity: list[frozenset[int]] = [frozenset([q]) for q in range(n)]
    negated: list[bool] = [False] * n
    # parity term -> [slot node id, accumulated angle, negated-at-slot, qubit]
    slots: dict[frozenset[int], list] = {}
    before = len(dag)

    for node in list(dag.topological()):
        name = node.gate.name
        if name in _PHASE_ANGLE or name == "rz":
            q = node.gate.qubits[0]
            theta = _PHASE_ANGLE.get(name)
            if theta is None:
                theta = node.gate.params[0] if node.gate.params else 0.0
            if negated[q]:
                theta = -theta
            key = parity[q]
            slot = slots.get(key)
            if slot is None:
                slots[key] = [node.id, theta, negated[q], q]
            else:
                slot[1] += theta
                dag.remove_node(node.id)
            continue
        if name == "cx":
            c, t = node.gate.qubits
            parity[t] = parity[c] ^ parity[t]
            negated[t] = negated[c] ^ negated[t]
            continue
        if name == "x":
            negated[node.gate.qubits[0]] = not negated[node.gate.qubits[0]]
            continue
        if name == "i":
            continue
        for q in node.gate.qubits:
            parity[q] = frozenset([next_var])
            negated[q] = False
            next_var += 1

    for node_id, angle, negated_at_slot, q in slots.values():
        emitted = -angle if negated_at_slot else angle
        dag.substitute_1q(node_id, _emit_phase(emitted, q))
    return before - len(dag)


def collect_two_qubit_blocks(
    dag: CircuitDAG,
) -> list[tuple[tuple[int, int], list[Gate]]]:
    """Dependency-aware maximal 2q blocks, in executable order.

    A modified Kahn traversal prefers, among all ready gates, one whose
    qubits lie inside the currently open pair of some wire — so gates
    of the same interaction group contiguously even when the original
    gate list interleaves them with independent wires.  The reordered
    stream (a valid topological order, hence the same circuit) is then
    partitioned by the greedy scan of
    :func:`repro.optimizers.resynth.partition_two_qubit_blocks`.
    """
    if _engine == "columnar":
        table = _import_table(dag)
        if table is not None:
            return collect_two_qubit_blocks_table(table)
    return collect_two_qubit_blocks_reference(dag)


def collect_two_qubit_blocks_reference(
    dag: CircuitDAG,
) -> list[tuple[tuple[int, int], list[Gate]]]:
    """Per-node reference implementation of
    :func:`collect_two_qubit_blocks`."""
    from repro.optimizers.resynth import partition_two_qubit_blocks

    pending = {
        n.id: len({p for p in n.preds.values() if p != BOUNDARY})
        for n in dag.nodes()
    }
    # The min-scan over (fits-open-pair, id) fully determines each pick,
    # so the ready list needs no ordering of its own.
    ready = [i for i, deg in pending.items() if deg == 0]
    open_pair: dict[int, tuple[int, int]] = {}
    ordered: list[Gate] = []
    while ready:
        best = None
        for idx, i in enumerate(ready):
            qs = dag.node(i).gate.qubits
            pairs = {open_pair.get(q) for q in qs}
            fits = len(pairs) == 1 and None not in pairs and set(qs) <= set(
                next(iter(pairs))
            )
            key = (0 if fits else 1, i)
            if best is None or key < best[0]:
                best = (key, idx, i)
        _, idx, i = best
        ready.pop(idx)
        node = dag.node(i)
        ordered.append(node.gate)
        if len(node.gate.qubits) == 2:
            pair = tuple(sorted(node.gate.qubits))
            for q in pair:
                open_pair[q] = pair
        for succ in dag.successors(i):
            pending[succ.id] -= 1
            if pending[succ.id] == 0:
                ready.append(succ.id)
    reordered = Circuit(dag.n_qubits, ordered, dag.name)
    return partition_two_qubit_blocks(reordered)


def optimize_dag(dag: CircuitDAG, max_rounds: int = 8) -> OptimizeStats:
    """Run cancel/merge/fold rounds on ``dag`` until a fixpoint.

    Each pass exposes work for the next: folding a phase chain to zero
    makes its flanking H·H pair wire-adjacent, cancellation brings
    rotations together, merging re-exposes inverse pairs.  Returns an
    :class:`~repro.optimizers.columnar.OptimizeStats` whose ``removed``
    counts eliminated gates (``int(stats)`` for the legacy count) and
    whose ``converged`` flag reports whether a zero-work round was
    reached; hitting the round cap first warns once via
    :class:`UserWarning`.

    On the columnar engine the DAG is imported once and the dirty-wire
    driver (:func:`~repro.optimizers.columnar.optimize_table`) iterates
    on flat columns, so fixpoint cost is proportional to work done, not
    DAG size.
    """
    if _engine == "columnar":
        table = _import_table(dag)
        if table is not None:
            stats = optimize_table(table, max_rounds=max_rounds)
            table.write_back(dag)
            return stats
    return optimize_dag_reference(dag, max_rounds=max_rounds)


def optimize_dag_reference(
    dag: CircuitDAG, max_rounds: int = 8
) -> OptimizeStats:
    """Rescan-everything fixpoint over the reference pass loops."""
    removed = 0
    rounds = 0
    converged = False
    per_pass = {"cancel_inverses": 0, "merge_rotations": 0, "fold_phases": 0}
    for _ in range(max_rounds):
        rounds += 1
        c = cancel_inverses_reference(dag)
        m = merge_rotations_reference(dag)
        f = fold_phases_dag_reference(dag)
        per_pass["cancel_inverses"] += c
        per_pass["merge_rotations"] += m
        per_pass["fold_phases"] += f
        step = c + m + f
        removed += step
        if step == 0:
            converged = True
            break
    if not converged:
        warnings.warn(
            f"optimize_dag stopped at the round cap ({max_rounds}) before "
            "reaching a fixpoint; rerun with a higher max_rounds to finish",
            UserWarning,
            stacklevel=3,
        )
    return OptimizeStats(
        removed=removed, rounds=rounds, converged=converged, per_pass=per_pass
    )


def optimize_circuit(circuit: Circuit, max_rounds: int = 8) -> Circuit:
    """The DAG post-synthesis optimizer (unitary preserved up to phase).

    Builds the dependency IR once, iterates
    :func:`cancel_inverses` → :func:`merge_rotations` →
    :func:`fold_phases_dag` to a fixpoint, and linearizes back.  On
    Clifford+T synthesis output this strictly subsumes
    :func:`repro.optimizers.phase_folding.fold_phases`: the same parity
    merges plus the cancellations they unlock.

    The columnar engine skips the node-object DAG entirely
    (``Circuit`` → :class:`DAGTable` → ``Circuit``); circuits with
    exotic gates take the reference path.
    """
    if _engine == "columnar":
        try:
            table = DAGTable.from_circuit(circuit)
        except ValueError:
            table = None
        if table is not None:
            optimize_table(table, max_rounds=max_rounds)
            return table.to_circuit()
    dag = CircuitDAG.from_circuit(circuit)
    optimize_dag_reference(dag, max_rounds=max_rounds)
    return dag.to_circuit()
