"""Commutation-aware optimization passes over the dependency DAG.

Where the list-based passes of :mod:`repro.transpiler.passes` see only
textual adjacency, these passes see *wire* adjacency: two gates are
neighbors when no gate on a shared qubit separates them, no matter how
many gates on independent wires sit between them in the flat list.

* :func:`cancel_inverses` — adjacent-inverse gate cancellation along
  wires (H·H, CX·CX, S·Sdg, Rz(a)·Rz(-a), ...), iterated to fixpoint.
* :func:`merge_rotations` — same-axis rotation merging (rz·rz → rz) and
  general u3·u3 fusion through the ZYZ decomposition.
* :func:`fold_phases_dag` — parity-tracked phase folding over a
  topological traversal: diagonal phases merge onto the first gate with
  the same CX-parity term, commuting across independent wires.
* :func:`collect_two_qubit_blocks` — dependency-aware maximal 2q-block
  collection feeding the KAK resynthesis of
  :mod:`repro.optimizers.resynth`.
* :func:`optimize_circuit` — the fixpoint driver combining the above;
  the post-synthesis optimizer behind ``optimization_level=4`` and the
  RQ5 comparison.

Every pass preserves the circuit unitary up to global phase.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import ROTATION_GATES, Circuit, Gate
from repro.circuits.dag import BOUNDARY, CircuitDAG, DAGNode
from repro.linalg import zyz_angles
from repro.optimizers.phase_folding import _PHASE_ANGLE, _emit_phase

_SELF_INVERSE = frozenset({"h", "x", "y", "z", "cx", "cz", "swap"})
_INVERSE_PAIRS = {("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t")}
#: 2q gates invariant under qubit exchange (CX is not).
_SYMMETRIC_2Q = frozenset({"cz", "swap"})
_AXIS_ROTATIONS = frozenset({"rx", "ry", "rz"})
_TOL = 1e-12


def _wire_successor(dag: CircuitDAG, node: DAGNode) -> DAGNode | None:
    """The single node following ``node`` on *every* one of its wires."""
    ids = {node.succs[q] for q in node.gate.qubits}
    if len(ids) != 1:
        return None
    (i,) = ids
    return None if i == BOUNDARY else dag.node(i)


def _is_inverse_pair(a: Gate, b: Gate) -> bool:
    if a.name == b.name and a.name in _SYMMETRIC_2Q:
        return set(a.qubits) == set(b.qubits)
    if a.qubits != b.qubits:
        return False
    if a.name == b.name and a.name in _SELF_INVERSE:
        return True
    if (a.name, b.name) in _INVERSE_PAIRS:
        return True
    if a.name == b.name and a.name in _AXIS_ROTATIONS:
        return abs(math.remainder(a.params[0] + b.params[0], 2 * math.pi)) < _TOL
    return False


def cancel_inverses(dag: CircuitDAG) -> int:
    """Remove wire-adjacent inverse pairs (and bare identity gates).

    A pair cancels when the two nodes are adjacent on **all** wires they
    share and compose to the identity (up to global phase for
    rotations).  Removal re-exposes the spliced neighbors, so chains
    like ``H X X H`` collapse fully in one call.  Returns the number of
    gates removed.
    """
    removed = 0
    work = [n.id for n in dag.topological()]
    while work:
        i = work.pop()
        if i not in dag:
            continue
        node = dag.node(i)
        if node.gate.name == "i":
            neighbors = [p.id for p in dag.predecessors(i)]
            dag.remove_node(i)
            removed += 1
            work.extend(neighbors)
            continue
        succ = _wire_successor(dag, node)
        if succ is None or not _is_inverse_pair(node.gate, succ.gate):
            continue
        neighbors = [p.id for p in dag.predecessors(i)]
        neighbors += [s.id for s in dag.successors(succ.id) if s.id != i]
        dag.remove_node(succ.id)
        dag.remove_node(i)
        removed += 2
        work.extend(n for n in neighbors if n in dag)
    return removed


def _fuse_1q(a: Gate, b: Gate) -> Gate | None:
    """One gate equal to ``b . a`` on the wire, or None for identity."""
    if a.name == b.name and a.name in _AXIS_ROTATIONS:
        theta = math.remainder(a.params[0] + b.params[0], 2 * math.pi)
        if abs(theta) < _TOL:
            return None
        return Gate(a.name, a.qubits, (theta,))
    theta, phi, lam, _ = zyz_angles(b.matrix() @ a.matrix())
    if abs(theta) < _TOL and abs(math.remainder(phi + lam, 2 * math.pi)) < _TOL:
        return None
    return Gate("u3", a.qubits, (theta, phi, lam))


def merge_rotations(dag: CircuitDAG) -> int:
    """Fuse wire-adjacent rotation pairs: rz·rz → rz, u3·u3 → u3.

    Same-axis pairs merge exactly by angle addition; mixed rotation
    pairs involving a u3 fuse through the ZYZ decomposition.  A fused
    pair that is the identity (up to global phase) disappears entirely.
    Returns the number of gates eliminated.
    """
    removed = 0
    work = [n.id for n in dag.topological()]
    while work:
        i = work.pop()
        if i not in dag:
            continue
        node = dag.node(i)
        if node.gate.name not in ROTATION_GATES:
            continue
        succ = _wire_successor(dag, node)
        if succ is None or succ.gate.name not in ROTATION_GATES:
            continue
        if succ.gate.qubits != node.gate.qubits:
            continue
        same_axis = succ.gate.name == node.gate.name != "u3"
        if not same_axis and "u3" not in (node.gate.name, succ.gate.name):
            continue  # mixed axes stay (synthesis handles them better)
        fused = _fuse_1q(node.gate, succ.gate)
        dag.remove_node(succ.id)
        removed += 1
        if fused is None:
            neighbors = [p.id for p in dag.predecessors(i)]
            dag.remove_node(i)
            removed += 1
            work.extend(n for n in neighbors if n in dag)
        else:
            dag.set_gate(i, fused)
            work.append(i)
    return removed


#: Gate names :func:`fold_phases_dag` tracks without refreshing wires.
_FOLD_TRANSPARENT = frozenset({"rz", "cx", "x", "i"})


def fold_phases_dag(dag: CircuitDAG) -> int:
    """Parity-tracked phase folding over the DAG (commutation-aware).

    Diagonal phase gates (T, S, Z, daggers, Rz) rotate a *parity term*
    of the CX network; every phase landing on an already-seen parity
    merges into the first occurrence, then each accumulated angle is
    re-emitted as the minimal Clifford+T/Rz word in place.  Gates that
    break the tracking (H, Y, rx/ry/u3, cz, swap) refresh only their
    own wires — phases keep folding across independent wires.  Returns
    the number of gates eliminated (net of re-emission).

    Parity terms live in a ``(n_qubits, words)`` uint64 bit-matrix —
    one bit per parity variable, one row per wire — so the CX update is
    a vectorized row XOR and the fold key is the row's raw bytes,
    instead of per-gate frozenset unions whose cost grows with the
    parity width.  :func:`fold_phases_dag_reference` retains the
    set-based formulation; both fold exactly the same phases.
    """
    n = dag.n_qubits
    nodes = list(dag.topological())
    # Every tracking-breaking gate mints one fresh variable per wire it
    # touches; sizing the bit-matrix needs the total upfront.
    n_vars = n + sum(
        len(node.gate.qubits)
        for node in nodes
        if node.gate.name not in _PHASE_ANGLE
        and node.gate.name not in _FOLD_TRANSPARENT
    )
    words = max(1, (n_vars + 63) >> 6)
    parity = np.zeros((n, words), dtype=np.uint64)
    for q in range(n):
        parity[q, q >> 6] = np.uint64(1) << np.uint64(q & 63)
    negated = np.zeros(n, dtype=bool)
    next_var = n
    # parity row bytes -> [slot node id, accumulated angle, negated, qubit]
    slots: dict[bytes, list] = {}
    before = len(dag)

    for node in nodes:
        name = node.gate.name
        if name in _PHASE_ANGLE or name == "rz":
            q = node.gate.qubits[0]
            theta = _PHASE_ANGLE.get(name)
            if theta is None:
                theta = node.gate.params[0] if node.gate.params else 0.0
            if negated[q]:
                theta = -theta
            key = parity[q].tobytes()
            slot = slots.get(key)
            if slot is None:
                slots[key] = [node.id, theta, bool(negated[q]), q]
            else:
                slot[1] += theta
                dag.remove_node(node.id)
            continue
        if name == "cx":
            c, t = node.gate.qubits
            parity[t] ^= parity[c]
            negated[t] ^= negated[c]
            continue
        if name == "x":
            q = node.gate.qubits[0]
            negated[q] = not negated[q]
            continue
        if name == "i":
            continue
        for q in node.gate.qubits:
            parity[q] = 0
            parity[q, next_var >> 6] = np.uint64(1) << np.uint64(next_var & 63)
            negated[q] = False
            next_var += 1

    for node_id, angle, negated_at_slot, q in slots.values():
        emitted = -angle if negated_at_slot else angle
        dag.substitute_1q(node_id, _emit_phase(emitted, q))
    return before - len(dag)


def fold_phases_dag_reference(dag: CircuitDAG) -> int:
    """Set-based reference formulation of :func:`fold_phases_dag`.

    Folds exactly the same phases as the bit-matrix pass (parity-set
    equality is bitmask equality under the shared variable numbering);
    kept for equivalence testing and as the readable specification.
    """
    n = dag.n_qubits
    next_var = n
    parity: list[frozenset[int]] = [frozenset([q]) for q in range(n)]
    negated: list[bool] = [False] * n
    # parity term -> [slot node id, accumulated angle, negated-at-slot, qubit]
    slots: dict[frozenset[int], list] = {}
    before = len(dag)

    for node in list(dag.topological()):
        name = node.gate.name
        if name in _PHASE_ANGLE or name == "rz":
            q = node.gate.qubits[0]
            theta = _PHASE_ANGLE.get(name)
            if theta is None:
                theta = node.gate.params[0] if node.gate.params else 0.0
            if negated[q]:
                theta = -theta
            key = parity[q]
            slot = slots.get(key)
            if slot is None:
                slots[key] = [node.id, theta, negated[q], q]
            else:
                slot[1] += theta
                dag.remove_node(node.id)
            continue
        if name == "cx":
            c, t = node.gate.qubits
            parity[t] = parity[c] ^ parity[t]
            negated[t] = negated[c] ^ negated[t]
            continue
        if name == "x":
            negated[node.gate.qubits[0]] = not negated[node.gate.qubits[0]]
            continue
        if name == "i":
            continue
        for q in node.gate.qubits:
            parity[q] = frozenset([next_var])
            negated[q] = False
            next_var += 1

    for node_id, angle, negated_at_slot, q in slots.values():
        emitted = -angle if negated_at_slot else angle
        dag.substitute_1q(node_id, _emit_phase(emitted, q))
    return before - len(dag)


def collect_two_qubit_blocks(
    dag: CircuitDAG,
) -> list[tuple[tuple[int, int], list[Gate]]]:
    """Dependency-aware maximal 2q blocks, in executable order.

    A modified Kahn traversal prefers, among all ready gates, one whose
    qubits lie inside the currently open pair of some wire — so gates
    of the same interaction group contiguously even when the original
    gate list interleaves them with independent wires.  The reordered
    stream (a valid topological order, hence the same circuit) is then
    partitioned by the greedy scan of
    :func:`repro.optimizers.resynth.partition_two_qubit_blocks`.
    """
    from repro.optimizers.resynth import partition_two_qubit_blocks

    pending = {
        n.id: len({p for p in n.preds.values() if p != BOUNDARY})
        for n in dag.nodes()
    }
    # The min-scan over (fits-open-pair, id) fully determines each pick,
    # so the ready list needs no ordering of its own.
    ready = [i for i, deg in pending.items() if deg == 0]
    open_pair: dict[int, tuple[int, int]] = {}
    ordered: list[Gate] = []
    while ready:
        best = None
        for idx, i in enumerate(ready):
            qs = dag.node(i).gate.qubits
            pairs = {open_pair.get(q) for q in qs}
            fits = len(pairs) == 1 and None not in pairs and set(qs) <= set(
                next(iter(pairs))
            )
            key = (0 if fits else 1, i)
            if best is None or key < best[0]:
                best = (key, idx, i)
        _, idx, i = best
        ready.pop(idx)
        node = dag.node(i)
        ordered.append(node.gate)
        if len(node.gate.qubits) == 2:
            pair = tuple(sorted(node.gate.qubits))
            for q in pair:
                open_pair[q] = pair
        for succ in dag.successors(i):
            pending[succ.id] -= 1
            if pending[succ.id] == 0:
                ready.append(succ.id)
    reordered = Circuit(dag.n_qubits, ordered, dag.name)
    return partition_two_qubit_blocks(reordered)


def optimize_dag(dag: CircuitDAG, max_rounds: int = 8) -> int:
    """Run cancel/merge/fold rounds on ``dag`` until a fixpoint.

    Each pass exposes work for the next: folding a phase chain to zero
    makes its flanking H·H pair wire-adjacent, cancellation brings
    rotations together, merging re-exposes inverse pairs.  Returns the
    total number of gates eliminated.
    """
    removed = 0
    for _ in range(max_rounds):
        step = cancel_inverses(dag)
        step += merge_rotations(dag)
        step += fold_phases_dag(dag)
        removed += step
        if step == 0:
            break
    return removed


def optimize_circuit(circuit: Circuit, max_rounds: int = 8) -> Circuit:
    """The DAG post-synthesis optimizer (unitary preserved up to phase).

    Builds the dependency DAG once, iterates
    :func:`cancel_inverses` → :func:`merge_rotations` →
    :func:`fold_phases_dag` to a fixpoint, and linearizes back.  On
    Clifford+T synthesis output this strictly subsumes
    :func:`repro.optimizers.phase_folding.fold_phases`: the same parity
    merges plus the cancellations they unlock.
    """
    dag = CircuitDAG.from_circuit(circuit)
    optimize_dag(dag, max_rounds=max_rounds)
    return dag.to_circuit()
