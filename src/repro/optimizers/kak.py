"""KAK (Cartan) decomposition of two-qubit unitaries.

Any U in U(4) factors as

    U = phase . (A1 x A2) . exp(i (cx XX + cy YY + cz ZZ)) . (B1 x B2)

The algorithm works in the magic basis, where SU(2) x SU(2) becomes
SO(4) and the canonical interaction becomes diagonal: diagonalizing the
symmetric unitary ``M^T M`` with a real orthogonal eigenbasis splits the
left/right local factors from the interaction angles.  Used by the
BQSKit-substitute block resynthesis (:mod:`repro.optimizers.resynth`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_MAGIC = np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=complex,
) / np.sqrt(2.0)


@dataclass(frozen=True)
class KAKDecomposition:
    """U = phase * (a1 x a2) * exp(i sum_k c_k P_k) * (b1 x b2)."""

    a1: np.ndarray
    a2: np.ndarray
    b1: np.ndarray
    b2: np.ndarray
    coefficients: tuple[float, float, float]  # (cx, cy, cz)
    phase: complex

    def reconstruct(self) -> np.ndarray:
        return (
            self.phase
            * np.kron(self.a1, self.a2)
            @ _canonical_matrix(*self.coefficients)
            @ np.kron(self.b1, self.b2)
        )


def _canonical_matrix(cx: float, cy: float, cz: float) -> np.ndarray:
    xx = np.kron(_PAULI["X"], _PAULI["X"])
    yy = np.kron(_PAULI["Y"], _PAULI["Y"])
    zz = np.kron(_PAULI["Z"], _PAULI["Z"])
    # XX, YY, ZZ commute, so the exponential splits exactly.
    from scipy.linalg import expm

    return expm(1j * (cx * xx + cy * yy + cz * zz))


_PAULI = {
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def _orthogonal_diagonalize(m: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Real orthogonal P with P^T m P diagonal, for symmetric unitary m.

    Real and imaginary parts of a symmetric unitary are commuting real
    symmetric matrices; a random linear combination separates degenerate
    eigenvalues with probability one (retry loop guards the measure-zero
    failures).
    """
    re, im = m.real, m.imag
    for _ in range(16):
        w = rng.normal()
        _, p = np.linalg.eigh(re + w * im)
        d = p.T @ m @ p
        if np.allclose(d, np.diag(np.diagonal(d)), atol=1e-9):
            return p
    raise ArithmeticError("failed to diagonalize symmetric unitary")


def _nearest_kron_factors(m: np.ndarray) -> tuple[np.ndarray, np.ndarray, complex]:
    """Factor a tensor-product unitary into (a, b, residual phase)."""
    blocks = m.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    u, s, vh = np.linalg.svd(blocks)
    a = u[:, 0].reshape(2, 2) * np.sqrt(s[0])
    b = vh[0, :].reshape(2, 2) * np.sqrt(s[0])
    # Normalize both factors to determinant 1 and absorb the phase.
    phase = 1.0 + 0j
    out = []
    for f in (a, b):
        det = f[0, 0] * f[1, 1] - f[0, 1] * f[1, 0]
        root = np.sqrt(det)
        out.append(f / root)
        phase *= root
    return out[0], out[1], phase


def kak_decompose(
    u: np.ndarray, rng: np.random.Generator | None = None
) -> KAKDecomposition:
    """Cartan decomposition of a 4x4 unitary (verified by reconstruction)."""
    if rng is None:
        rng = np.random.default_rng(7)
    u = np.asarray(u, dtype=complex)
    det = np.linalg.det(u)
    global_phase = det ** 0.25
    su = u / global_phase
    m = _MAGIC.conj().T @ su @ _MAGIC
    mtm = m.T @ m
    p = _orthogonal_diagonalize(mtm, rng)
    if np.linalg.det(p) < 0:
        p[:, 0] = -p[:, 0]
    diag = np.diagonal(p.T @ mtm @ p)
    thetas = np.angle(diag) / 2.0
    # Q = m P e^{-i theta} must be real orthogonal; fix the branch so
    # det(e^{i theta}) matches det(m) (which is +-1 for su in SU(4)).
    q = m @ p @ np.diag(np.exp(-1j * thetas))
    if np.linalg.norm(q.imag) > 1e-8:
        # Flip one theta branch by pi (sqrt ambiguity) and retry.
        for flip in range(4):
            t2 = thetas.copy()
            t2[flip] += np.pi
            q2 = m @ p @ np.diag(np.exp(-1j * t2))
            if np.linalg.norm(q2.imag) < 1e-8:
                thetas, q = t2, q2
                break
        else:
            raise ArithmeticError("no real branch for orthogonal factor")
    q = q.real
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
        thetas[0] += np.pi
        q = (m @ p @ np.diag(np.exp(-1j * thetas))).real
    # thetas relate to canonical coefficients through the magic-basis
    # diagonal: exp(i(cx XX + cy YY + cz ZZ)) is diagonal in the magic
    # basis with phases (cx-cy+cz, cx+cy-cz, -cx-cy-cz, -cx+cy+cz).
    tx = 0.5 * (thetas[0] + thetas[1])
    ty = 0.5 * (thetas[1] + thetas[3])
    tz = 0.5 * (thetas[0] + thetas[3])
    coeffs = (tx, ty, tz)
    left = _MAGIC @ q @ _MAGIC.conj().T
    right = _MAGIC @ p.T @ _MAGIC.conj().T
    a1, a2, ph_l = _nearest_kron_factors(left)
    b1, b2, ph_r = _nearest_kron_factors(right)
    decomp = KAKDecomposition(
        a1=a1, a2=a2, b1=b1, b2=b2,
        coefficients=coeffs,
        phase=global_phase * ph_l * ph_r,
    )
    # Self-check; adjust overall phase from any residual mismatch.
    rebuilt = decomp.reconstruct()
    corr = np.trace(rebuilt.conj().T @ u) / 4.0
    corr /= abs(corr)
    decomp = KAKDecomposition(
        a1=a1, a2=a2, b1=b1, b2=b2, coefficients=coeffs,
        phase=decomp.phase * corr,
    )
    rebuilt = decomp.reconstruct()
    if np.linalg.norm(rebuilt - u) > 1e-6:
        raise ArithmeticError("KAK reconstruction failed")
    return decomp
