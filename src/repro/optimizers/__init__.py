"""Post-synthesis circuit optimizers: the PyZX and BQSKit substitutes.

The list-based :func:`fold_phases` remains as the paper's original
PyZX stand-in; the DAG passes of :mod:`repro.optimizers.dag_passes`
(:func:`optimize_circuit` and friends) are the stronger
commutation-aware optimizer built on :class:`repro.circuits.CircuitDAG`.
By default they run on the columnar engine — the vectorized kernels of
:mod:`repro.optimizers.columnar` over the struct-of-arrays
:class:`repro.circuits.DAGTable` — with the original per-node loops
retained as byte-identical ``*_reference`` implementations
(:func:`set_dag_engine` / ``REPRO_DAG_ENGINE`` switch engines).
"""

from repro.optimizers.columnar import (
    OptimizeStats,
    cancel_inverses_table,
    collect_two_qubit_blocks_table,
    fold_phases_table,
    merge_rotations_table,
    optimize_table,
)
from repro.optimizers.dag_passes import (
    cancel_inverses,
    cancel_inverses_reference,
    collect_two_qubit_blocks,
    collect_two_qubit_blocks_reference,
    dag_engine,
    fold_phases_dag,
    fold_phases_dag_reference,
    merge_rotations,
    merge_rotations_reference,
    optimize_circuit,
    optimize_dag,
    optimize_dag_reference,
    set_dag_engine,
)
from repro.optimizers.kak import KAKDecomposition, kak_decompose
from repro.optimizers.phase_folding import fold_phases
from repro.optimizers.resynth import partition_two_qubit_blocks, resynthesize

__all__ = [
    "KAKDecomposition",
    "OptimizeStats",
    "cancel_inverses",
    "cancel_inverses_reference",
    "cancel_inverses_table",
    "collect_two_qubit_blocks",
    "collect_two_qubit_blocks_reference",
    "collect_two_qubit_blocks_table",
    "dag_engine",
    "fold_phases",
    "fold_phases_dag",
    "fold_phases_dag_reference",
    "fold_phases_table",
    "kak_decompose",
    "merge_rotations",
    "merge_rotations_reference",
    "merge_rotations_table",
    "optimize_circuit",
    "optimize_dag",
    "optimize_dag_reference",
    "optimize_table",
    "partition_two_qubit_blocks",
    "resynthesize",
    "set_dag_engine",
]
