"""Post-synthesis circuit optimizers: the PyZX and BQSKit substitutes.

The list-based :func:`fold_phases` remains as the paper's original
PyZX stand-in; the DAG passes of :mod:`repro.optimizers.dag_passes`
(:func:`optimize_circuit` and friends) are the stronger
commutation-aware optimizer built on :class:`repro.circuits.CircuitDAG`.
"""

from repro.optimizers.dag_passes import (
    cancel_inverses,
    collect_two_qubit_blocks,
    fold_phases_dag,
    merge_rotations,
    optimize_circuit,
    optimize_dag,
)
from repro.optimizers.kak import KAKDecomposition, kak_decompose
from repro.optimizers.phase_folding import fold_phases
from repro.optimizers.resynth import partition_two_qubit_blocks, resynthesize

__all__ = [
    "KAKDecomposition",
    "cancel_inverses",
    "collect_two_qubit_blocks",
    "fold_phases",
    "fold_phases_dag",
    "kak_decompose",
    "merge_rotations",
    "optimize_circuit",
    "optimize_dag",
    "partition_two_qubit_blocks",
    "resynthesize",
]
