"""Post-synthesis circuit optimizers: the PyZX and BQSKit substitutes."""

from repro.optimizers.kak import KAKDecomposition, kak_decompose
from repro.optimizers.phase_folding import fold_phases
from repro.optimizers.resynth import partition_two_qubit_blocks, resynthesize

__all__ = [
    "KAKDecomposition",
    "fold_phases",
    "kak_decompose",
    "partition_two_qubit_blocks",
    "resynthesize",
]
