"""Meet-in-the-middle pair refinement for trasyn.

For two adjacent tensor slots with environment ``E`` (a unitary), the
amplitude of choices (A, B) is ``Tr(E A B)``; maximizing it over both
slots jointly is a nearest-neighbour problem: ``A B`` should approximate
``E^dag`` up to phase, i.e. ``B ~ A^dag E^dag``.

The search uses the quaternion geometry of SU(2): after dividing out the
determinant phase, a 2x2 special unitary ``[[a, -conj(b)], [b, conj(a)]]``
maps to the unit 4-vector ``q = (Re a, Im a, Re b, Im b)``, and

    Tr(U^dag V) = 2 <q_U, q_V>

exactly.  Maximizing |Tr| is therefore a max-|dot| query, served by a
Euclidean k-d tree over ``{+q, -q}`` of every table candidate.  One pair
sweep finds the *jointly* optimal two-slot assignment (up to quaternion
sign degeneracies resolved by exact rescoring), which is what lets the
search reach the information-theoretic error floor of its total T budget.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree


def to_quaternions(mats: np.ndarray) -> np.ndarray:
    """Map a batch of U(2) matrices (N, 2, 2) to unit quaternions (N, 4).

    The result is defined up to sign; callers must treat ``q`` and ``-q``
    as the same rotation.
    """
    det = mats[:, 0, 0] * mats[:, 1, 1] - mats[:, 0, 1] * mats[:, 1, 0]
    phase = np.sqrt(det)
    su = mats / phase[:, None, None]
    q = np.stack(
        [su[:, 0, 0].real, su[:, 0, 0].imag, su[:, 1, 0].real, su[:, 1, 0].imag],
        axis=1,
    )
    return q


class QuaternionIndex:
    """k-d tree over the +-quaternions of a candidate matrix set."""

    def __init__(self, mats: np.ndarray):
        self.mats = mats
        q = to_quaternions(mats)
        self._tree = cKDTree(np.concatenate([q, -q], axis=0))
        self._n = mats.shape[0]

    def nearest(self, targets: np.ndarray, k: int = 2) -> np.ndarray:
        """Candidate indices (M, k) maximizing |<q_target, q_candidate>|."""
        q = to_quaternions(targets)
        _, idx = self._tree.query(q, k=k)
        return idx % self._n


def refine_pairs(
    target: np.ndarray,
    mats: list[np.ndarray],
    choice: np.ndarray,
    indexes: list[QuaternionIndex],
    neighbours: int = 4,
    max_sweeps: int = 4,
) -> tuple[np.ndarray, complex]:
    """Sweep jointly-optimal updates over adjacent slot pairs.

    ``indexes[i]`` must be the :class:`QuaternionIndex` of ``mats[i]``.
    Returns the improved choice vector and its exact amplitude.
    """
    choice = np.array(choice, dtype=np.int64)
    n_slots = len(mats)
    udag = target.conj().T
    best_amp = _amplitude(udag, mats, choice)
    for _ in range(max_sweeps):
        improved = False
        for i in range(n_slots - 1):
            left = np.eye(2, dtype=complex)
            for j in range(i):
                left = left @ mats[j][choice[j]]
            right = np.eye(2, dtype=complex)
            for j in range(i + 2, n_slots):
                right = right @ mats[j][choice[j]]
            env = right @ udag @ left  # amplitude = Tr(env A B)
            env_dag = env.conj().T
            # For every A in slot i, the ideal B is A^dag env^dag.
            a_mats = mats[i]
            targets_b = np.einsum("sji,jk->sik", a_mats.conj(), env_dag)
            cand_b = indexes[i + 1].nearest(targets_b, k=neighbours)
            # Exact rescoring: Tr(env A B) for the k nearest B per A.
            ea = np.einsum("ij,sjk->sik", env, a_mats)  # (N, 2, 2)
            b_sel = mats[i + 1][cand_b]  # (N, k, 2, 2)
            scores = np.abs(np.einsum("sab,sjba->sj", ea, b_sel))
            flat = int(np.argmax(scores))
            s_a, s_b = np.unravel_index(flat, scores.shape)
            amp = np.trace(env @ a_mats[s_a] @ mats[i + 1][cand_b[s_a, s_b]])
            if abs(amp) > abs(best_amp) + 1e-12:
                choice[i] = int(s_a)
                choice[i + 1] = int(cand_b[s_a, s_b])
                best_amp = complex(amp)
                improved = True
        if not improved:
            break
    return choice, best_amp


def _amplitude(udag: np.ndarray, mats: list[np.ndarray], choice) -> complex:
    prod = udag.copy()
    for j, m in enumerate(mats):
        prod = prod @ m[choice[j]]
    return complex(np.trace(prod))
