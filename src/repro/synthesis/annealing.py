"""Synthetiq-style stochastic search over fixed-length gate sequences.

The paper's second baseline, Synthetiq (Paradis et al., OOPSLA 2024),
synthesizes discrete-gate-set circuits by randomized local search over
gate assignments.  This module reproduces that strategy for the
single-qubit case: a template of ``length`` slots over
{I, H, S, Sdg, T, Tdg, X, Z} is improved by coordinate descent (best
single-slot replacement) from random restarts until the error threshold
or the time limit is hit.

Its characteristic behaviour — good solutions at loose thresholds,
frequent timeouts at tight ones (paper Figures 7-8) — emerges from the
same mechanics: the local-move landscape turns glassy once the target
precision outgrows what single-gate edits can express.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.linalg import GATES
from repro.synthesis.sequences import GateSequence

_ALPHABET = ("I", "H", "S", "Sdg", "T", "Tdg", "X", "Z")


@dataclass(frozen=True)
class AnnealingReport:
    """Outcome of one search run (sequence is None on timeout)."""

    sequence: GateSequence | None
    iterations: int
    restarts: int
    elapsed: float
    succeeded: bool


def anneal_unitary(
    target: np.ndarray,
    eps: float,
    length: int | None = None,
    rng: np.random.Generator | None = None,
    time_limit: float = 10.0,
) -> AnnealingReport:
    """Search for a Clifford+T word within ``eps`` of ``target``.

    Returns a report rather than raising on failure: timeouts are part
    of the measured behaviour in the RQ1 comparison.  The default
    template length scales with the information-theoretic sequence
    length for the requested accuracy.
    """
    if rng is None:
        rng = np.random.default_rng()
    if length is None:
        length = int(14 + 10 * math.log10(1.0 / max(eps, 1e-9)))
    target = np.asarray(target, dtype=complex)
    gate_mats = np.stack([GATES[g] for g in _ALPHABET])
    n_gates = len(_ALPHABET)
    start = time.monotonic()
    total_iters = 0
    restarts = 0
    best_global: tuple[float, list[int]] | None = None

    def out_of_time() -> bool:
        return time.monotonic() - start >= time_limit

    while not out_of_time():
        restarts += 1
        word = list(rng.integers(0, n_gates, size=length))
        # Prefix/suffix products make single-slot rescoring O(1).
        improved = True
        dist = _distance(target, word, gate_mats)
        while improved and not out_of_time():
            improved = False
            prefixes = _prefix_products(word, gate_mats)
            suffixes = _suffix_products(word, gate_mats)
            for pos in rng.permutation(length):
                env = (suffixes[pos + 1] @ target.conj().T @ prefixes[pos])
                scores = np.abs(np.einsum("ab,gba->g", env, gate_mats))
                g_best = int(np.argmax(scores))
                if g_best != word[pos]:
                    new_dist = _tv_to_dist(scores[g_best] / 2.0)
                    if new_dist < dist - 1e-15:
                        word[pos] = g_best
                        dist = new_dist
                        improved = True
                        prefixes = _prefix_products(word, gate_mats)
                        suffixes = _suffix_products(word, gate_mats)
                total_iters += 1
        if best_global is None or dist < best_global[0]:
            best_global = (dist, list(word))
        if best_global[0] <= eps:
            gates = tuple(
                _ALPHABET[g] for g in best_global[1] if _ALPHABET[g] != "I"
            )
            return AnnealingReport(
                sequence=GateSequence(gates=gates, error=best_global[0]),
                iterations=total_iters,
                restarts=restarts,
                elapsed=time.monotonic() - start,
                succeeded=True,
            )
    return AnnealingReport(
        sequence=None,
        iterations=total_iters,
        restarts=restarts,
        elapsed=time.monotonic() - start,
        succeeded=False,
    )


def _prefix_products(word, gate_mats) -> list[np.ndarray]:
    out = [np.eye(2, dtype=complex)]
    for g in word:
        out.append(out[-1] @ gate_mats[g])
    return out


def _suffix_products(word, gate_mats) -> list[np.ndarray]:
    out = [np.eye(2, dtype=complex)] * (len(word) + 1)
    acc = np.eye(2, dtype=complex)
    for i in range(len(word) - 1, -1, -1):
        acc = gate_mats[word[i]] @ acc
        out[i] = acc
    return out


def _tv_to_dist(tv: float) -> float:
    return math.sqrt(max(0.0, 1.0 - min(tv, 1.0) ** 2))


def _distance(target, word, gate_mats) -> float:
    m = np.eye(2, dtype=complex)
    for g in word:
        m = m @ gate_mats[g]
    tv = abs(np.trace(target.conj().T @ m)) / 2.0
    return _tv_to_dist(tv)
