"""trasyn: tensor-network-guided synthesis of arbitrary 1q unitaries.

The four steps of the paper's Section 3.3:

* **Step 0** (:mod:`repro.enumeration`): enumerate unique Clifford+T
  matrices per T count, with minimal sequences and a lookup table.
* **Step 1** (:class:`repro.tensornet.TraceMPS`): stack one table slice
  per tensor slot, attach the target, and canonicalize, so the MPS
  implicitly holds the trace value of every composite sequence.
* **Step 2**: perfect sampling from the squared trace values —
  error-aware sampling whose amplitudes come out for free.
* **Step 3** (:func:`simplify_sequence`): peephole-replace suboptimal
  subsequences using the exact lookup table.

:func:`trasyn` is the paper's Algorithm 1: it wraps the single-shot
:func:`synthesize` in an outer loop over tensor counts and retry
attempts, optionally stopping at an error threshold (Equation (4)).
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass

import numpy as np

from repro.enumeration import UnitaryTable, get_table
from repro.gates.exact import ExactUnitary
from repro.synthesis.meet import QuaternionIndex, refine_pairs
from repro.synthesis.sequences import GateSequence, t_count_of
from repro.tensornet import TraceMPS

DEFAULT_TENSOR_BUDGET = 6

# QuaternionIndex instances are deterministic per table slice; memoize
# per live table.  Keying by the table object (weakly) rather than
# ``id(table)`` matters: id values are reused after garbage collection,
# so an id-keyed cache can silently serve a stale index built from a
# different, freed table.  The WeakKeyDictionary drops a table's slice
# indexes the moment the table itself is collected.
_INDEX_CACHE: "weakref.WeakKeyDictionary[UnitaryTable, dict[tuple[int, int], QuaternionIndex]]" = (
    weakref.WeakKeyDictionary()
)


def _slot_index(table: UnitaryTable, lo: int, hi: int) -> QuaternionIndex:
    per_table = _INDEX_CACHE.setdefault(table, {})
    key = (lo, hi)
    if key not in per_table:
        idx = table.indices_for_t_range(lo, hi)
        per_table[key] = QuaternionIndex(table.mats[idx])
    return per_table[key]


def _amp_to_error(amplitude: complex) -> float:
    """Unitary distance from a trace value Tr(U^dag V) of a 2x2 product."""
    tv = min(abs(amplitude) / 2.0, 1.0)
    return math.sqrt(max(0.0, 1.0 - tv * tv))


@dataclass(frozen=True)
class TrasynResult:
    """Output of one synthesis call, with sampling diagnostics."""

    sequence: GateSequence
    n_tensors: int
    samples_drawn: int
    raw_t_count: int  # before step-3 post-processing


def synthesize(
    target: np.ndarray,
    t_budgets: list[int | tuple[int, int]],
    n_samples: int = 1000,
    rng: np.random.Generator | None = None,
    table: UnitaryTable | None = None,
    use_beam: bool = True,
    postprocess: bool = True,
    refine: bool = True,
) -> TrasynResult:
    """One pass of steps 1-3 for a fixed tensor layout (paper `Synthesize`).

    Parameters
    ----------
    target:
        2x2 unitary to approximate.
    t_budgets:
        One entry per tensor slot; an int ``m`` means T counts ``0..m``,
        a pair ``(lo, hi)`` selects that exact range.
    n_samples:
        Number of error-aware samples drawn from the MPS.
    use_beam:
        Also run the deterministic beam-search decode and keep the best
        of both (an extension the tensor representation makes cheap).
    """
    if rng is None:
        rng = np.random.default_rng()
    ranges = [(0, b) if isinstance(b, int) else (int(b[0]), int(b[1]))
              for b in t_budgets]
    max_hi = max(hi for _, hi in ranges)
    if table is None:
        table = get_table(max_hi)
    if table.budget < max_hi:
        raise ValueError(
            f"table budget {table.budget} below requested T budget {max_hi}"
        )
    slot_indices = [table.indices_for_t_range(lo, hi) for lo, hi in ranges]

    if len(ranges) == 1:
        choice, amp = _exhaustive_best(target, table, slot_indices[0])
        table_indices = [choice]
        best_amp = amp
        samples_drawn = 0
    else:
        mats = [table.mats[idx] for idx in slot_indices]
        mps = TraceMPS(target, mats)
        choices, amps = mps.sample(n_samples, rng)
        best = int(np.argmax(np.abs(amps)))
        best_choice, best_amp = choices[best], amps[best]
        if use_beam:
            beam_choice, beam_amp = mps.best_first()
            if abs(beam_amp) > abs(best_amp):
                best_choice, best_amp = beam_choice, beam_amp
        best_choice, best_amp = _refine_sweeps(target, mats, best_choice)
        if refine:
            indexes = [_slot_index(table, lo, hi) for lo, hi in ranges]
            best_choice, best_amp = refine_pairs(
                target, mats, best_choice, indexes
            )
        table_indices = [
            int(slot_indices[i][best_choice[i]]) for i in range(len(ranges))
        ]
        samples_drawn = n_samples

    gates: list[str] = []
    for idx in table_indices:
        gates.extend(table.sequence(idx))
    raw_t = t_count_of(gates)
    if postprocess:
        gates = simplify_sequence(gates, table)
    error = _amp_to_error(best_amp)
    return TrasynResult(
        sequence=GateSequence(gates=tuple(gates), error=error),
        n_tensors=len(ranges),
        samples_drawn=samples_drawn,
        raw_t_count=raw_t,
    )


def _refine_sweeps(
    target: np.ndarray,
    mats: list[np.ndarray],
    choice: np.ndarray,
    max_sweeps: int = 8,
) -> tuple[np.ndarray, complex]:
    """Alternating per-slot exhaustive improvement of a sampled sequence.

    Holding all slots but one fixed, the best candidate for the free
    slot maximizes |Tr((R U^dag L) M_s)| — a single vectorized pass over
    that slot's table slice.  Sweeping until a fixed point polishes the
    sampled solution to a strong local optimum at negligible cost
    (the DMRG-flavoured counterpart of the paper's sampling step).
    """
    choice = np.array(choice, dtype=np.int64)
    n_slots = len(mats)
    udag = target.conj().T
    best_amp = _amplitude_of(udag, mats, choice)
    for _ in range(max_sweeps):
        improved = False
        for i in range(n_slots):
            left = np.eye(2, dtype=complex)
            for j in range(i):
                left = left @ mats[j][choice[j]]
            right = np.eye(2, dtype=complex)
            for j in range(i + 1, n_slots):
                right = right @ mats[j][choice[j]]
            env = right @ udag @ left  # Tr(env @ M_s) is the amplitude
            scores = np.einsum("sij,ji->s", mats[i], env)
            s = int(np.argmax(np.abs(scores)))
            if abs(scores[s]) > abs(best_amp) + 1e-12:
                choice[i] = s
                best_amp = complex(scores[s])
                improved = True
        if not improved:
            break
    return choice, best_amp


def _amplitude_of(
    udag: np.ndarray, mats: list[np.ndarray], choice: np.ndarray
) -> complex:
    prod = udag.copy()
    for j, m in enumerate(mats):
        prod = prod @ m[choice[j]]
    return complex(np.trace(prod))


def _exhaustive_best(
    target: np.ndarray, table: UnitaryTable, indices: np.ndarray
) -> tuple[int, complex]:
    """Single-slot synthesis: the MPS degenerates to a table scan.

    For T budgets within the precomputed table this returns the provably
    optimal solution (paper RQ1 discussion).
    """
    mats = table.mats[indices]
    amps = np.einsum("nij,ji->n", mats, target.conj().T)
    order = np.lexsort((table.t_counts[indices], -np.abs(amps)))
    best = order[0]
    return int(indices[best]), complex(amps[best])


# ---------------------------------------------------------------------------
# Step 3: exact peephole simplification
# ---------------------------------------------------------------------------

def simplify_sequence(
    gates, table: UnitaryTable, max_window_t: int | None = None
) -> list[str]:
    """Replace subsequences with cheaper table equivalents (paper step 3).

    Slides windows over the sequence, computes each window's product in
    exact arithmetic, and substitutes the stored minimal sequence when
    it improves (T count, Clifford count, length) lexicographically.
    Repeats until a fixed point.  The whole-sequence matrix is preserved
    up to global phase.
    """
    if max_window_t is None:
        max_window_t = table.budget
    gates = list(gates)
    changed = True
    while changed:
        changed = False
        n = len(gates)
        i = 0
        while i < n:
            window = ExactUnitary.from_gate(gates[i])
            window_t = 1 if gates[i] in ("T", "Tdg") else 0
            best_rewrite = None
            j = i + 1
            end = i + 1
            while j < n:
                g = gates[j]
                window = window @ ExactUnitary.from_gate(g)
                window_t += 1 if g in ("T", "Tdg") else 0
                j += 1
                if window_t > max_window_t:
                    break
                if j - i < 2:
                    continue
                idx = table.lookup(window)
                if idx is None:
                    continue
                old_cost = _segment_cost(gates[i:j])
                new_seq = table.sequence(idx)
                new_cost = _segment_cost(new_seq)
                if new_cost < old_cost:
                    best_rewrite = list(new_seq)
                    end = j
            if best_rewrite is not None:
                gates[i:end] = best_rewrite
                changed = True
                n = len(gates)
            else:
                i += 1
    return [g for g in gates if g != "I"]


def _segment_cost(gates) -> tuple[int, int, int]:
    t = sum(1 for g in gates if g in ("T", "Tdg"))
    cliff = sum(1 for g in gates if g in ("H", "S", "Sdg"))
    return (t, cliff, len(gates))


# ---------------------------------------------------------------------------
# Algorithm 1: the public entry point
# ---------------------------------------------------------------------------

# Escalating tensor layouts (CPU-scaled stand-in for the paper's A100
# configuration of three 10-T tensors with 40k samples).  Each entry is a
# budget list handed to :func:`synthesize`; later entries reach lower
# errors at higher cost.  Approximate per-layout error floors for Haar
# targets: 0.09, 7e-3, 2.5e-3, 1e-3, 7e-4.
DEFAULT_SCHEDULE: tuple[tuple[int, ...], ...] = (
    (8,),
    (10, 6),
    (10, 10),
    (12, 12),
    (12, 12, 8),
)


def schedule_for_threshold(error_threshold: float | None) -> list[list[int]]:
    """Budget-list ladder matched to a target synthesis error."""
    if error_threshold is None:
        return [list(b) for b in DEFAULT_SCHEDULE[:3]]
    # Conservative (90th-percentile) error floors per rung: the rung
    # listed is only trusted to *reliably* reach its floor, so a given
    # threshold pulls in one rung deeper than the mean floors suggest.
    floors = (0.12, 1.2e-2, 4e-3, 1.3e-3, 9e-4)
    ladder: list[list[int]] = []
    for budgets, floor in zip(DEFAULT_SCHEDULE, floors):
        # Skip rungs that essentially never meet the threshold.
        if floor > 40 * error_threshold:
            continue
        ladder.append(list(budgets))
        if floor <= error_threshold:
            break
    if not ladder:
        ladder.append(list(DEFAULT_SCHEDULE[-1]))
    return ladder


def trasyn(
    target: np.ndarray,
    t_budgets: list[int] | None = None,
    error_threshold: float | None = None,
    min_tensors: int = 1,
    attempts: int = 1,
    n_samples: int = 500,
    rng: np.random.Generator | None = None,
    table: UnitaryTable | None = None,
    schedule: list[list[int]] | None = None,
) -> GateSequence:
    """Synthesize ``target`` into Clifford+T (paper Algorithm 1).

    The search walks a ladder of tensor layouts from small T budgets
    upward, running ``attempts`` sampling rounds per layout.  With an
    ``error_threshold`` the walk stops as soon as the threshold is met
    (Equation (4) mode); otherwise every layout is explored and the best
    sequence wins (Equation (3) mode).

    ``t_budgets`` reproduces the paper interface exactly: the ladder is
    then ``t_budgets[:min_tensors], ..., t_budgets[:len(t_budgets)]``.
    """
    if rng is None:
        rng = np.random.default_rng()
    if t_budgets is not None:
        schedule = [
            list(t_budgets[:i]) for i in range(min_tensors, len(t_budgets) + 1)
        ]
    elif schedule is None:
        schedule = schedule_for_threshold(error_threshold)
    if table is None:
        max_budget = max(_hi(b) for budgets in schedule for b in budgets)
        table = get_table(max_budget)
    best: GateSequence | None = None
    for budgets in schedule:
        for _ in range(attempts):
            result = synthesize(
                target, budgets, n_samples=n_samples, rng=rng, table=table
            )
            cand = result.sequence
            if best is None or _quality(cand) < _quality(best):
                best = cand
            if error_threshold is not None and best.error < error_threshold:
                return best
    if best is None:
        # An empty schedule yields no candidates; raise rather than
        # assert (asserts vanish under ``python -O``).
        raise RuntimeError("trasyn schedule produced no candidate sequence")
    return best


def _hi(budget) -> int:
    return budget if isinstance(budget, int) else int(budget[1])


def _quality(seq: GateSequence) -> tuple[float, int, int]:
    return (seq.error, seq.t_count, seq.clifford_count)
