"""The Solovay-Kitaev algorithm (Dawson-Nielsen formulation).

Included as the classic baseline the paper's related-work positions
trasyn against: sequence lengths scale as ``O(log^c(1/eps))`` with
``c > 3``, far from the information-theoretic bound, and extra budget
does not improve solution quality — both properties visible in the
benchmark harness.

The base case approximates with the exact Clifford+T enumeration table
(:mod:`repro.enumeration`); recursion improves precision via balanced
group commutators.
"""

from __future__ import annotations

import math

import numpy as np

from repro.enumeration import UnitaryTable, get_table
from repro.linalg import trace_distance
from repro.synthesis.sequences import GateSequence

_DAGGER = {"H": "H", "S": "Sdg", "Sdg": "S", "T": "Tdg", "Tdg": "T",
           "X": "X", "Y": "Y", "Z": "Z", "I": "I"}


def _dagger_seq(gates: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(_DAGGER[g] for g in reversed(gates))


def _base_approx(u: np.ndarray, table: UnitaryTable) -> tuple[np.ndarray, tuple[str, ...]]:
    amps = np.einsum("nij,ji->n", table.mats, u.conj().T)
    idx = int(np.argmax(np.abs(amps)))
    return table.mats[idx], table.sequence(idx)


def _su2_of(u: np.ndarray) -> np.ndarray:
    det = u[0, 0] * u[1, 1] - u[0, 1] * u[1, 0]
    return u / np.sqrt(det)


def _group_factor(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Balanced commutator factors V, W with U = V W V^dag W^dag.

    Standard Dawson-Nielsen construction: a rotation by angle phi about
    any axis is the commutator of rotations by 2 arcsin(sqrt(sin(phi/2)/2)...)
    about orthogonal axes; here the X/Y axis choice follows the usual
    similarity-transform recipe.
    """
    su = _su2_of(u)
    cos_half = min(1.0, max(-1.0, su[0, 0].real))
    phi = 2.0 * math.acos(cos_half)
    sin_phi_half = math.sin(phi / 2.0)
    theta = 2.0 * math.asin(min(1.0, (sin_phi_half / 2.0) ** 0.5))
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    v = np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)  # Rx(theta)
    w = np.array([[c, -s], [s, c]], dtype=complex)  # Ry(theta)
    # Axis alignment: find similarity S with U = S (VWV'W') S^dag.
    commutator = v @ w @ v.conj().T @ w.conj().T
    s_mat = _axis_alignment(su, commutator)
    v = s_mat @ v @ s_mat.conj().T
    w = s_mat @ w @ s_mat.conj().T
    return v, w


def _axis_alignment(target: np.ndarray, source: np.ndarray) -> np.ndarray:
    """Unitary S with S source S^dag having the same rotation axis as target."""

    def axis_of(m: np.ndarray) -> np.ndarray:
        su = _su2_of(m)
        nx = -su[0, 1].imag - su[1, 0].imag
        ny = su[1, 0].real - su[0, 1].real
        nz = -2 * su[0, 0].imag
        vec = np.array([nx, ny, nz])
        nrm = np.linalg.norm(vec)
        return vec / nrm if nrm > 1e-12 else np.array([0.0, 0.0, 1.0])

    a = axis_of(source)
    b = axis_of(target)
    cross = np.cross(a, b)
    dot = float(np.dot(a, b))
    if np.linalg.norm(cross) < 1e-12:
        if dot > 0:
            return np.eye(2, dtype=complex)
        cross = np.array([0.0, 0.0, 1.0]) if abs(a[2]) < 0.9 else np.array([1.0, 0.0, 0.0])
        cross = cross - a * np.dot(a, cross)
        cross /= np.linalg.norm(cross)
        angle = math.pi
    else:
        angle = math.atan2(float(np.linalg.norm(cross)), dot)
        cross = cross / np.linalg.norm(cross)
    nx, ny, nz = cross
    sigma = (
        nx * np.array([[0, 1], [1, 0]])
        + ny * np.array([[0, -1j], [1j, 0]])
        + nz * np.array([[1, 0], [0, -1]])
    )
    return (
        math.cos(angle / 2) * np.eye(2) - 1j * math.sin(angle / 2) * sigma
    ).astype(complex)


def solovay_kitaev(
    target: np.ndarray,
    depth: int = 3,
    table: UnitaryTable | None = None,
    base_budget: int = 8,
) -> GateSequence:
    """Approximate ``target`` with recursive commutator refinement."""
    if table is None:
        table = get_table(base_budget)

    def recurse(u: np.ndarray, n: int) -> tuple[np.ndarray, tuple[str, ...]]:
        if n == 0:
            return _base_approx(u, table)
        um1, seq_um1 = recurse(u, n - 1)
        v, w = _group_factor(u @ um1.conj().T)
        vm1, seq_v = recurse(v, n - 1)
        wm1, seq_w = recurse(w, n - 1)
        approx = vm1 @ wm1 @ vm1.conj().T @ wm1.conj().T @ um1
        seq = (
            seq_v + seq_w + _dagger_seq(seq_v) + _dagger_seq(seq_w) + seq_um1
        )
        return approx, seq

    approx, seq = recurse(np.asarray(target, dtype=complex), depth)
    return GateSequence(gates=seq, error=trace_distance(target, approx))
