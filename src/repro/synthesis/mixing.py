"""Probabilistic unitary mixing on top of trasyn (paper §5 extension).

The paper's related-work section notes that "using trasyn as a blackbox
algorithm, mixing unitaries [Campbell 2017; Hastings 2016] can reduce
the error quadratically": a *random mixture* of Clifford+T
approximations turns coherent synthesis error into incoherent error.

For a candidate V = U exp(i delta . sigma), the first-order (coherent)
error is the rotation vector ``delta``; choosing mixture weights p_i on
the probability simplex that cancel ``sum_i p_i delta_i`` leaves only
second-order error, so the channel infidelity drops from O(eps^2) to
O(eps^4) — quadratic improvement in distance terms.  The weights are
found with nonnegative least squares on the stacked error vectors.
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

from repro.enumeration import UnitaryTable, get_table
from repro.sim.fidelity import choi_of_sequence
from repro.synthesis.sequences import GateSequence
from repro.synthesis.trasyn import _amp_to_error
from repro.tensornet import TraceMPS

_PAULI = [
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
]


def error_vector(target: np.ndarray, approx: np.ndarray) -> np.ndarray:
    """Rotation vector of the residual W = U^dag V (length = half-angle).

    The residual is phase-normalized into SU(2); the returned 3-vector
    is axis * sin(half-angle), the first-order coherent error.
    """
    w = target.conj().T @ approx
    det = w[0, 0] * w[1, 1] - w[0, 1] * w[1, 0]
    w = w / cmath.sqrt(det)
    if w[0, 0].real + w[1, 1].real < 0:
        w = -w
    return np.array(
        [
            0.5 * (w[0, 1] + w[1, 0]).imag,
            0.5 * (w[0, 1] - w[1, 0]).real,
            0.5 * (w[0, 0] - w[1, 1]).imag,
        ]
    )


def top_candidates(
    target: np.ndarray,
    t_budgets: list[int],
    n_candidates: int = 8,
    n_samples: int = 600,
    table: UnitaryTable | None = None,
    rng: np.random.Generator | None = None,
) -> list[GateSequence]:
    """Diverse low-error candidates from one error-aware sampling pass."""
    if rng is None:
        rng = np.random.default_rng()
    max_hi = max(t_budgets)
    if table is None:
        table = get_table(max_hi)
    slot_indices = [table.indices_for_t_range(0, b) for b in t_budgets]
    seen: dict[tuple, complex] = {}
    if len(t_budgets) == 1:
        mats = table.mats[slot_indices[0]]
        amps = np.einsum("nij,ji->n", mats, target.conj().T)
        order = np.argsort(-np.abs(amps))[: n_candidates * 4]
        for idx in order:
            seen[(int(slot_indices[0][idx]),)] = complex(amps[idx])
    else:
        mps = TraceMPS(target, [table.mats[i] for i in slot_indices])
        choices, amps = mps.sample(n_samples, rng)
        for c, a in zip(choices, amps):
            key = tuple(int(slot_indices[i][c[i]]) for i in range(len(c)))
            seen.setdefault(key, complex(a))
    ranked = sorted(seen.items(), key=lambda kv: -abs(kv[1]))
    out = []
    for key, amp in ranked[:n_candidates]:
        gates: list[str] = []
        for idx in key:
            gates.extend(table.sequence(idx))
        out.append(GateSequence(gates=tuple(gates), error=_amp_to_error(amp)))
    return out


def mixing_weights(vectors: np.ndarray) -> np.ndarray:
    """Simplex weights minimizing |sum_i p_i v_i| (coherent cancellation)."""
    n = vectors.shape[0]
    if n == 1:
        return np.ones(1)
    # min ||A p|| with sum p = 1, p >= 0: augment with a heavily weighted
    # normalization row and solve NNLS.
    scale = max(np.abs(vectors).max(), 1e-12)
    kappa = 100.0 * scale
    a = np.vstack([vectors.T, kappa * np.ones((1, n))])
    b = np.concatenate([np.zeros(3), [kappa]])
    p, _ = nnls(a, b)
    total = p.sum()
    if total <= 0:
        return np.full(n, 1.0 / n)
    return p / total


def choi_trace_distance(choi: np.ndarray, target: np.ndarray) -> float:
    """Trace distance between Choi states (diamond-distance lower bound).

    For a *unitary* channel V this equals 2 sqrt(1 - |Tr(U^dag V)|^2/4)
    — twice the paper's unitary distance — so it is the right scale on
    which to see the quadratic gain of coherent-error cancellation.
    """
    phi = np.zeros(4, dtype=complex)
    phi[0] = phi[3] = 1.0 / np.sqrt(2.0)
    phi_u = np.kron(target, np.eye(2)) @ phi
    target_choi = np.outer(phi_u, phi_u.conj())
    eigs = np.linalg.eigvalsh(choi - target_choi)
    return float(np.abs(eigs).sum())


@dataclass(frozen=True)
class MixedSynthesis:
    """A probabilistic mixture of Clifford+T approximations."""

    sequences: list[GateSequence]
    probabilities: np.ndarray
    coherent_distance: float  # best single candidate, Choi trace distance
    mixed_distance: float  # the mixture channel, Choi trace distance

    @property
    def improvement(self) -> float:
        if self.mixed_distance <= 0:
            return float("inf")
        return self.coherent_distance / self.mixed_distance

    @property
    def expected_t_count(self) -> float:
        return float(
            sum(p * s.t_count
                for p, s in zip(self.probabilities, self.sequences))
        )


def trasyn_mixed(
    target: np.ndarray,
    t_budgets: list[int],
    n_candidates: int = 8,
    n_samples: int = 600,
    table: UnitaryTable | None = None,
    rng: np.random.Generator | None = None,
    error_window: float = 2.5,
) -> MixedSynthesis:
    """Synthesize a *channel* mixing trasyn candidates.

    Candidates within ``error_window`` times the best error are mixed
    with weights that cancel the summed coherent-error vector, turning
    coherent error into incoherent error: the worst-case (diamond-scale)
    distance drops quadratically while the expected T count stays at the
    single-candidate level.
    """
    candidates = top_candidates(
        target, t_budgets, n_candidates * 3, n_samples, table, rng
    )
    best_err = min(c.error for c in candidates)
    pool = [c for c in candidates if c.error <= error_window * best_err]
    pool = pool[: max(n_candidates, 2)]
    vectors = np.stack([error_vector(target, c.matrix()) for c in pool])
    probs = mixing_weights(vectors)
    keep = probs > 1e-9
    pool = [c for c, k in zip(pool, keep) if k]
    probs = probs[keep]
    probs = probs / probs.sum()
    choi = sum(p * choi_of_sequence(c.gates) for p, c in zip(probs, pool))
    mixed_dist = choi_trace_distance(choi, target)
    best = min(pool, key=lambda c: c.error)
    best_dist = choi_trace_distance(
        choi_of_sequence(best.gates), target
    )
    return MixedSynthesis(
        sequences=pool,
        probabilities=probs,
        coherent_distance=best_dist,
        mixed_distance=mixed_dist,
    )
