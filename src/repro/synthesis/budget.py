"""Criticality-weighted allocation of a circuit-level accuracy budget.

The paper's RQ2 sweeps a single flat per-rotation threshold and shows
synthesis accuracy trading off against T count (and therefore against
schedule length and noisy-execution fidelity).  This module re-runs
that tradeoff *per gate*: given one circuit-level error budget, each
nontrivial rotation receives a slice in inverse proportion to its
schedule criticality.  Rotations on the critical path (zero slack) get
the tightest epsilon — their synthesis error cannot be compensated and
their T sequences stretch the makespan anyway — while slack-rich
rotations get loose, cheap thresholds, shortening the schedule where
it is free to shrink.

The additive union bound the flat scheme relies on is preserved: the
slices sum to the requested budget, so
``SynthesizedCircuit.total_synthesis_error`` stays bounded by it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.dag import CircuitDAG
from repro.circuits.metrics import is_trivial_angle
from repro.schedule import node_slacks

#: Synthesis thresholds outside this band are useless (gridsynth and
#: trasyn both expect eps well below 1; absurdly tight slices only
#: burn time without affecting the union bound).
EPS_FLOOR = 1e-10
EPS_CEIL = 0.45
#: Cap on the loosest-to-tightest slice ratio.  Unbounded ``1/c``
#: weights hand near-zero epsilons to critical-path rotations the
#: moment a few slack-rich rotations inflate the normalizer — and
#: synthesis cost explodes as eps shrinks (the RQ2 law), so the spread
#: is clamped to a factor the synthesizers absorb gracefully.
MAX_WEIGHT_RATIO = 4.0


def is_budgeted_rotation(gate: Gate) -> bool:
    """Whether :func:`repro.pipeline.synthesize_lowered` synthesizes it.

    Matches the synthesizer's own skip logic: trivial-angle rotations
    lower to exact Clifford+T words and consume no budget.
    """
    if gate.name == "u3":
        return not all(is_trivial_angle(p) for p in gate.params)
    if gate.name in ("rx", "ry", "rz"):
        return not is_trivial_angle(gate.params[0])
    return False


def rotation_criticalities(
    lowered: Circuit,
    target=None,
    durations: Mapping[str, float] | None = None,
) -> list[float]:
    """Criticality in (0, 1] of each budgeted rotation, in gate order.

    A rotation's criticality is the length of the longest schedule path
    through it divided by the makespan — equivalently ``1 - slack /
    makespan`` with slack from the ASAP/ALAP spread.  Critical-path
    rotations score 1.0.
    """
    dag = CircuitDAG.from_circuit(lowered)
    makespan, slacks = node_slacks(dag, target, durations)
    out: list[float] = []
    for node in dag.nodes():
        if not is_budgeted_rotation(node.gate):
            continue
        if makespan <= 0:
            out.append(1.0)
            continue
        crit = 1.0 - slacks[node.id] / makespan
        out.append(min(1.0, max(crit, 1.0 / (1.0 + makespan))))
    return out


def allocate_eps_budget(
    lowered: Circuit,
    budget: float,
    target=None,
    durations: Mapping[str, float] | None = None,
) -> list[float]:
    """Split a circuit-level accuracy budget across rotations.

    Returns one epsilon per budgeted rotation (flat gate order, the
    order :func:`repro.pipeline.synthesize_lowered` consumes them in):
    ``eps_i = budget * (1/c_i) / sum_j (1/c_j)`` with ``c_i`` the
    schedule criticality — slack-rich rotations take the big, cheap
    slices; critical ones are synthesized tightest.  Weights are
    clamped to a spread of :data:`MAX_WEIGHT_RATIO` and slices to
    ``[EPS_FLOOR, EPS_CEIL]`` (clipping only ever lowers the total, so
    the additive union bound still holds).
    """
    if budget <= 0.0:
        raise ValueError("accuracy budget must be positive")
    crits = rotation_criticalities(lowered, target, durations)
    if not crits:
        return []
    weights = [min(1.0 / c, MAX_WEIGHT_RATIO) for c in crits]
    total = sum(weights)
    return [
        min(EPS_CEIL, max(EPS_FLOOR, budget * w / total)) for w in weights
    ]


def flat_eps_schedule(lowered: Circuit, eps: float) -> list[float]:
    """The flat baseline: every budgeted rotation at the same eps."""
    return [eps for g in lowered.gates if is_budgeted_rotation(g)]


def eps_schedule_total(eps_schedule: Sequence[float]) -> float:
    """The additive error bound a schedule commits to."""
    return float(sum(eps_schedule))
