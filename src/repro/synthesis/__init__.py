"""Single-qubit fault-tolerant synthesis algorithms.

The package's primary contribution (:func:`trasyn`) plus every baseline
the paper evaluates against: gridsynth (number-theoretic Rz synthesis),
the gridsynth-based U3 workflow, a Synthetiq-style simulated-annealing
search, and the classic Solovay-Kitaev algorithm.
"""

from repro.synthesis.sequences import GateSequence, clifford_count_of, t_count_of
from repro.synthesis.trasyn import TrasynResult, simplify_sequence, synthesize, trasyn

__all__ = [
    "GateSequence",
    "TrasynResult",
    "clifford_count_of",
    "simplify_sequence",
    "synthesize",
    "t_count_of",
    "trasyn",
]
