"""Single-qubit fault-tolerant synthesis algorithms.

The package's primary contribution (:func:`trasyn`) plus every baseline
the paper evaluates against: gridsynth (number-theoretic Rz synthesis),
the gridsynth-based U3 workflow, a Synthetiq-style simulated-annealing
search, and the classic Solovay-Kitaev algorithm.
"""

from repro.synthesis.budget import (
    allocate_eps_budget,
    eps_schedule_total,
    flat_eps_schedule,
    is_budgeted_rotation,
    rotation_criticalities,
)
from repro.synthesis.sequences import GateSequence, clifford_count_of, t_count_of
from repro.synthesis.trasyn import TrasynResult, simplify_sequence, synthesize, trasyn

__all__ = [
    "GateSequence",
    "TrasynResult",
    "allocate_eps_budget",
    "clifford_count_of",
    "eps_schedule_total",
    "flat_eps_schedule",
    "is_budgeted_rotation",
    "rotation_criticalities",
    "simplify_sequence",
    "synthesize",
    "t_count_of",
    "trasyn",
]
