"""Gate-sequence representation shared by every synthesizer.

A sequence is a tuple of gate names in *matrix product order*: the
product ``seq[0] @ seq[1] @ ... @ seq[-1]`` is the synthesized operator.
(Circuit time order is the reverse; :meth:`GateSequence.circuit_order`
converts.)  Costs follow the paper's metrics: T count is the number of
T/Tdg gates, Clifford count excludes Pauli gates (free under error
correction).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import numpy as np

from repro.linalg import GATES, trace_distance

_T_GATES = frozenset({"T", "Tdg"})
_CLIFFORD_GATES = frozenset({"H", "S", "Sdg"})
_PAULI_GATES = frozenset({"X", "Y", "Z", "I"})


def t_count_of(gates) -> int:
    return sum(1 for g in gates if g in _T_GATES)


def clifford_count_of(gates) -> int:
    """Non-Pauli Clifford gates (H, S, Sdg) in the sequence."""
    return sum(1 for g in gates if g in _CLIFFORD_GATES)


def matrix_of(gates) -> np.ndarray:
    """Dense product of the named gates (matrix order)."""
    return reduce(lambda acc, g: acc @ GATES[g], gates, np.eye(2, dtype=complex))


@dataclass(frozen=True)
class GateSequence:
    """A synthesized Clifford+T approximation of a target unitary."""

    gates: tuple[str, ...]
    error: float  # unitary distance to the target (paper Eq. 2)

    @property
    def t_count(self) -> int:
        return t_count_of(self.gates)

    @property
    def clifford_count(self) -> int:
        return clifford_count_of(self.gates)

    @property
    def total_gates(self) -> int:
        return len(self.gates)

    def matrix(self) -> np.ndarray:
        return matrix_of(self.gates)

    def circuit_order(self) -> tuple[str, ...]:
        """Gate names in execution order (first applied first)."""
        return tuple(reversed(self.gates))

    def verify(self, target: np.ndarray, atol: float = 1e-6) -> bool:
        """Check the recorded error against a fresh computation."""
        return abs(trace_distance(target, self.matrix()) - self.error) <= atol
