"""Solving the norm equation t^dag t = xi over Z[omega] (Ross-Selinger §6).

Given a doubly-positive ``xi`` in Z[sqrt(2)], the completion of a grid
candidate ``u`` to a unitary requires ``t`` with ``t * conj(t) = xi``.
The solver factors the rational norm ``N(xi)``, lifts each prime to
Z[sqrt(2)] and then to Z[omega] according to its residue class mod 8:

* ``p = 2``            — xi contains powers of sqrt(2); lift via delta = 1 + omega.
* ``p = +-1 (mod 8)``  — p splits in Z[sqrt(2)]; each factor splits again in
  Z[omega] (found with gcd against ``x - i`` where ``x^2 = -1 mod p``).
* ``p = 3 (mod 8)``    — p inert in Z[sqrt(2)] but splits as s * conj(s)
  (gcd against ``x - i sqrt(2)`` where ``x^2 = -2 mod p``).
* ``p = 5, 7 (mod 8)`` — the prime must divide xi to even order and lifts
  as a rational/real power.

Residual units are doubly positive, hence even powers of lambda, and are
absorbed by multiplying ``t`` with lambda^(j).  Failure at any step
(including a factoring work-bound) returns None and the synthesis loop
moves on to the next candidate — the same behaviour as gridsynth.
"""

from __future__ import annotations

import math

from repro.rings import zomega as zo
from repro.rings import zsqrt2 as zs2
from repro.rings.zomega import ZOmega
from repro.rings.zsqrt2 import LAMBDA, LAMBDA_INV, SQRT2, ZSqrt2
from repro.synthesis.gridsynth.number_theory import (
    factorize,
    sqrt_mod_prime,
)

_DELTA = ZOmega(0, 0, 1, 1)  # 1 + omega; conj(delta) * delta = lambda * sqrt(2)
_I_OMEGA = ZOmega(0, 1, 0, 0)  # omega^2 = i
_SQRT2_OMEGA = ZOmega(-1, 0, 1, 0)  # omega - omega^3 = sqrt(2)


def solve_norm_equation(xi: ZSqrt2, factor_steps: int = 200_000) -> ZOmega | None:
    """Find t in Z[omega] with conj(t) * t == xi, or None.

    ``xi`` must be doubly positive; the function verifies its output, so
    a non-None return value is always correct.
    """
    if xi.is_zero():
        return ZOmega(0, 0, 0, 0)
    if not xi.is_doubly_positive():
        return None
    n = xi.norm()
    if n < 0:
        return None
    factors = factorize(n, max_steps=factor_steps)
    if factors is None:
        return None
    t = ZOmega(0, 0, 0, 1)
    remaining = xi
    for p, exp in sorted(factors.items()):
        lifted = _lift_prime(p, exp, remaining)
        if lifted is None:
            return None
        t_part, remaining = lifted
        t = t * t_part
    # remaining is now a unit; doubly positive => even power of lambda.
    unit_fix = _unit_sqrt(xi, t)
    if unit_fix is None:
        return None
    t = t * unit_fix
    if (t.conj() * t).to_zsqrt2() == xi:
        return t
    return None


def _lift_prime(
    p: int, n_exp: int, xi: ZSqrt2
) -> tuple[ZOmega, ZSqrt2] | None:
    """Remove every factor above ``p`` from xi; return (t_part, reduced xi)."""
    if p == 2:
        return _lift_two(xi)
    r = p % 8
    if r in (1, 7):
        return _lift_split(p, xi)
    if r == 3:
        return _lift_three(p, xi)
    # r == 5: inert in Z[sqrt2] but splits in Z[i] (-1 is a QR mod p).
    return _lift_five(p, xi)


def _extract(xi: ZSqrt2, eta: ZSqrt2) -> tuple[int, ZSqrt2]:
    """Largest e with eta^e | xi, plus the quotient."""
    e = 0
    while True:
        q, r = xi.divmod(eta)
        if not r.is_zero():
            return e, xi
        xi = q
        e += 1


def _lift_two(xi: ZSqrt2) -> tuple[ZOmega, ZSqrt2] | None:
    e, reduced = _extract(xi, SQRT2)
    # sqrt(2) = unit * conj(delta) delta with delta = 1 + omega.
    return _DELTA**e, reduced


def _lift_split(p: int, xi: ZSqrt2) -> tuple[ZOmega, ZSqrt2] | None:
    """p = +-1 or 7 (mod 8): p splits in Z[sqrt2] as eta * eta_conj."""
    r2 = sqrt_mod_prime(2, p)
    if r2 is None:
        return None
    eta = zs2.gcd(ZSqrt2(p, 0), ZSqrt2(r2, 1))
    if abs(eta.norm()) != p:
        eta = zs2.gcd(ZSqrt2(p, 0), ZSqrt2(r2, -1))
        if abs(eta.norm()) != p:
            return None
    eta_conj = eta.conj()
    e1, xi = _extract(xi, eta)
    e2, xi = _extract(xi, eta_conj)
    if p % 8 == 7:
        # eta does not split in Z[omega]; exponents must be even.
        if e1 % 2 or e2 % 2:
            return None
        t = ZOmega.from_zsqrt2(eta ** (e1 // 2) * eta_conj ** (e2 // 2))
        return t, xi
    # p = +-1 (mod 8): eta = conj(s) s up to unit, with s = gcd(eta, x - i).
    x = sqrt_mod_prime(p - 1, p)
    if x is None:
        return None
    s = zo.gcd(ZOmega.from_zsqrt2(eta), ZOmega(0, -1, 0, x))
    if abs(s.norm()) != p:
        return None
    s_conj_adj = s.adj2()
    t = s**e1 * s_conj_adj**e2
    return t, xi


def _lift_three(p: int, xi: ZSqrt2) -> tuple[ZOmega, ZSqrt2] | None:
    """p = 3 (mod 8): inert in Z[sqrt2], splits in Z[omega] via -2 root."""
    e, xi = _extract(xi, ZSqrt2(p, 0))
    if e == 0:
        return ZOmega(0, 0, 0, 1), xi
    x = sqrt_mod_prime(p - 2, p)  # x^2 = -2 (mod p)
    if x is None:
        return None
    target = ZOmega(0, 0, 0, x) - _I_OMEGA * _SQRT2_OMEGA
    s = zo.gcd(ZOmega(0, 0, 0, p), target)
    if abs(s.norm()) != p * p:
        return None
    return s**e, xi


def _lift_five(p: int, xi: ZSqrt2) -> tuple[ZOmega, ZSqrt2] | None:
    """p = 5 (mod 8): inert in Z[sqrt2]; lift via a Gaussian prime a + bi."""
    e, xi = _extract(xi, ZSqrt2(p, 0))
    if e == 0:
        return ZOmega(0, 0, 0, 1), xi
    x = sqrt_mod_prime(p - 1, p)  # x^2 = -1 (mod p)
    if x is None:
        return None
    s = zo.gcd(ZOmega(0, 0, 0, p), ZOmega(0, 0, 0, x) - _I_OMEGA)
    if abs(s.norm()) != p * p:
        return None
    return s**e, xi


def _unit_sqrt(xi: ZSqrt2, t: ZOmega) -> ZOmega | None:
    """Unit v with (t v)^dag (t v) == xi, assuming t is correct up to a unit."""
    tt = (t.conj() * t).to_zsqrt2()
    if tt.is_zero():
        return None
    try:
        u = xi.exact_div(tt)
    except ValueError:
        return None
    if not u.is_doubly_positive() or abs(u.norm()) != 1:
        return None
    fu = float(u)
    if fu <= 0:
        return None
    j2 = round(math.log(fu) / math.log(1.0 + math.sqrt(2.0)))
    if j2 % 2:
        return None
    j = j2 // 2
    lam_j = (LAMBDA if j >= 0 else LAMBDA_INV) ** abs(j)
    if lam_j * lam_j != u:
        return None
    return ZOmega.from_zsqrt2(lam_j)
