"""gridsynth: optimal-ancilla-free Clifford+T approximation of Rz gates.

The Ross-Selinger pipeline, assembled from this package's parts:

1. For increasing denominator exponents ``k``, enumerate lattice
   candidates ``u`` in the epsilon slice around ``z = e^{-i theta/2}``
   (:mod:`grid_problem`), best approximation first.
2. For each candidate, try to complete it to a unitary by solving the
   norm equation ``t^dag t = 2^k - |zu|^2`` (:mod:`diophantine`).
3. Exactly synthesize the completed matrix into Clifford+T
   (:mod:`exact_synthesis`).

The first success at the smallest ``k`` gives a near-optimal T count of
about ``3 log2(1/eps)``, the scaling the paper's baselines exhibit.
Angles within ``eps`` of a multiple of pi/4 short-circuit to an exact
(at most one-T) sequence — the paper's "trivial rotations".
"""

from __future__ import annotations

import math

import numpy as np

from repro.gates.exact import ExactUnitary
from repro.linalg import rz as rz_matrix
from repro.linalg import trace_distance
from repro.rings.zsqrt2 import ZSqrt2
from repro.synthesis.gridsynth.diophantine import solve_norm_equation
from repro.synthesis.gridsynth.exact_synthesis import (
    exact_synthesize,
    t_power_tokens,
)
from repro.synthesis.gridsynth.grid_problem import enumerate_candidates
from repro.synthesis.sequences import GateSequence

_QUARTER = math.pi / 4.0


class GridsynthError(RuntimeError):
    """No decomposition found within the search limits."""


def rz_distance(theta: float, phi: float) -> float:
    """Unitary distance between Rz(theta) and Rz(phi)."""
    return abs(math.sin((theta - phi) / 2.0))


def gridsynth_rz(
    theta: float,
    eps: float,
    max_k: int | None = None,
    factor_steps: int = 50_000,
    candidate_limit: int = 64,
) -> GateSequence:
    """Approximate Rz(theta) to unitary distance <= eps in Clifford+T."""
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must be in (0, 1)")
    theta = math.remainder(theta, 4.0 * math.pi)
    # Trivial rotations: integer multiples of pi/4 synthesize exactly.
    j = round(theta / _QUARTER)
    snapped = rz_distance(theta, j * _QUARTER)
    if snapped <= eps:
        tokens = t_power_tokens(j)
        return GateSequence(gates=tuple(tokens), error=snapped)

    if max_k is None:
        max_k = 12 + int(3.5 * math.log2(1.0 / eps))
    target = rz_matrix(theta)
    for k in range(max_k + 1):
        tried = 0
        for cand in enumerate_candidates(theta, eps, k):
            if tried >= candidate_limit:
                break
            tried += 1
            two_k = ZSqrt2(2**k, 0)
            xi = two_k - cand.zu.norm_zs2()
            zt = solve_norm_equation(xi, factor_steps=factor_steps)
            if zt is None:
                continue
            u = ExactUnitary(
                cand.zu, -zt.conj(), zt, cand.zu.conj(), k
            ).reduce()
            tokens = exact_synthesize(u)
            err = trace_distance(target, GateSequence(tuple(tokens), 0.0).matrix())
            if err <= eps + 1e-12:
                return GateSequence(gates=tuple(tokens), error=err)
    raise GridsynthError(
        f"no Clifford+T approximation of Rz({theta}) at eps={eps} "
        f"within k <= {max_k}"
    )


def gridsynth_u3(
    u3_target: np.ndarray,
    eps: float,
    **kwargs,
) -> GateSequence:
    """Synthesize an arbitrary 1q unitary with three Rz calls (paper Eq. 1).

    ``U = phase . Rz(phi + pi/2) H Rz(theta) H Rz(lam - pi/2)``; each Rz
    is synthesized at ``eps / 3`` so the combined error is below ``eps``
    (errors add at first order).  This is exactly the gridsynth-based
    workflow the paper compares against.
    """
    from repro.linalg import zyz_angles

    theta, phi, lam, _ = zyz_angles(u3_target)
    per_gate = eps / 3.0
    parts = [
        gridsynth_rz(phi + math.pi / 2.0, per_gate, **kwargs),
        gridsynth_rz(theta, per_gate, **kwargs),
        gridsynth_rz(lam - math.pi / 2.0, per_gate, **kwargs),
    ]
    tokens = (
        parts[0].gates + ("H",) + parts[1].gates + ("H",) + parts[2].gates
    )
    seq = GateSequence(gates=tokens, error=0.0)
    err = trace_distance(u3_target, seq.matrix())
    return GateSequence(gates=tokens, error=err)
