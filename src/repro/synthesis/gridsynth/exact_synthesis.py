"""Exact synthesis of D[omega] unitaries into Clifford+T words.

Any exactly-representable unitary (entries in Z[omega] / sqrt(2)^k) is a
Clifford+T circuit; this module recovers a word of near-minimal T count
by driving the denominator exponent (sde) to zero (Kliuchnikov-Maslov-
Mosca 2012 / Giles-Selinger style column reduction):

    U = T^{m_1} H  .  T^{m_2} H  .  ...  .  C

At each step the algorithm searches the eight syllables ``T^m H`` for
one whose inverse application reduces the sde, with a depth-first
fallback (visited-set memoized) for the residue classes where the sde
stalls for one step.  At sde 0 the matrix is a monomial phase matrix,
emitted as (optional) X and a T^m power; global phase is discarded.

The output is verified exactly (up to global phase) before returning,
so a successful return is mathematically correct, not float-correct.
"""

from __future__ import annotations

from repro.gates.exact import EXACT_GATES, ExactUnitary
from repro.rings.zomega import ZOmega

_H = EXACT_GATES["H"]
_TDG_POWERS: list[ExactUnitary] = []
_t = ExactUnitary.identity()
for _ in range(8):
    _TDG_POWERS.append(_t)
    _t = (_t @ EXACT_GATES["Tdg"]).reduce()
del _t


class ExactSynthesisError(RuntimeError):
    """The reduction failed — the input was not a D[omega] unitary."""


def t_power_tokens(m: int) -> list[str]:
    """Minimal token list for the diagonal phase gate T^m (m mod 8)."""
    m %= 8
    tokens = []
    if m >= 4:
        tokens.append("Z")
        m -= 4
    if m >= 2:
        tokens.append("S")
        m -= 2
    if m:
        tokens.append("T")
    return tokens


def _omega_exponent(z: ZOmega) -> int | None:
    for j in range(8):
        if z == ZOmega.omega_power(j):
            return j
    return None


def _monomial_tokens(u: ExactUnitary) -> list[str]:
    """Tokens for an sde-0 unitary (always a phase-monomial matrix)."""
    if not u.z00.is_zero():
        i = _omega_exponent(u.z00)
        j = _omega_exponent(u.z11)
        if i is None or j is None or not u.z01.is_zero() or not u.z10.is_zero():
            raise ExactSynthesisError("sde-0 matrix is not monomial")
        return t_power_tokens(j - i)
    i = _omega_exponent(u.z01)
    j = _omega_exponent(u.z10)
    if i is None or j is None or not u.z00.is_zero() or not u.z11.is_zero():
        raise ExactSynthesisError("sde-0 matrix is not monomial")
    # U = X . diag(w^j, w^i)
    return ["X"] + t_power_tokens(i - j)


def exact_synthesize(u: ExactUnitary, max_steps: int | None = None) -> list[str]:
    """Gate tokens (matrix order) whose product equals ``u`` up to phase."""
    u = u.reduce()
    if not u.is_unitary():
        raise ExactSynthesisError("input matrix is not unitary")
    if max_steps is None:
        max_steps = 8 * u.k + 64

    tokens: list[str] = []
    visited: set[tuple] = set()
    current = u
    steps = 0
    while current.k > 0:
        if steps > max_steps:
            raise ExactSynthesisError("sde reduction did not terminate")
        steps += 1
        visited.add(current.canonical_key())
        best_m = None
        best_next = None
        for m in range(8):
            cand = (_H @ _TDG_POWERS[m] @ current).reduce()
            if cand.k >= current.k + 1:
                continue
            if cand.k == current.k and cand.canonical_key() in visited:
                continue
            if best_next is None or cand.k < best_next.k:
                best_m, best_next = m, cand
        if best_next is None:
            raise ExactSynthesisError("stuck: no syllable reduces the sde")
        # current = T^m H best_next
        tokens.extend(t_power_tokens(best_m))
        tokens.append("H")
        current = best_next
    tokens.extend(_monomial_tokens(current))

    produced = ExactUnitary.from_gates(tokens) if tokens else ExactUnitary.identity()
    if not produced.equals_up_to_phase(u):
        raise ExactSynthesisError("verification failed")
    return tokens
