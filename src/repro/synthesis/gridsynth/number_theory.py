"""Integer number theory for the Diophantine step of gridsynth.

Provides deterministic Miller-Rabin primality (valid far beyond 2^64),
Pollard-rho factorization with a work bound (the synthesis loop treats a
factoring timeout as "skip this candidate", exactly like the reference
gridsynth implementation), and Tonelli-Shanks square roots mod p.
"""

from __future__ import annotations

import math
import random

# Deterministic Miller-Rabin witnesses for n < 3.3 * 10^24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


def is_probable_prime(n: int) -> bool:
    """Miller-Rabin primality test (deterministic for n < 3.3e24)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _pollard_rho(n: int, rng: random.Random, max_steps: int) -> int | None:
    """One Pollard-rho attempt; returns a nontrivial factor or None."""
    if n % 2 == 0:
        return 2
    c = rng.randrange(1, n)
    x = rng.randrange(2, n)
    y = x
    d = 1
    steps = 0
    while d == 1:
        if steps >= max_steps:
            return None
        x = (x * x + c) % n
        y = (y * y + c) % n
        y = (y * y + c) % n
        d = math.gcd(abs(x - y), n)
        steps += 1
    return d if d != n else None


def factorize(n: int, max_steps: int = 200_000) -> dict[int, int] | None:
    """Prime factorization of ``n`` as {prime: multiplicity}.

    Returns None when the work bound is exceeded (caller should skip the
    candidate; the synthesis search simply tries the next grid point).
    """
    if n <= 0:
        raise ValueError("factorize expects a positive integer")
    rng = random.Random(0xC0FFEE ^ n)
    factors: dict[int, int] = {}
    stack = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        for p in _SMALL_PRIMES:
            while m % p == 0:
                factors[p] = factors.get(p, 0) + 1
                m //= p
        if m == 1:
            continue
        if is_probable_prime(m):
            factors[m] = factors.get(m, 0) + 1
            continue
        d = None
        for _ in range(8):
            d = _pollard_rho(m, rng, max_steps)
            if d is not None:
                break
        if d is None:
            return None
        stack.append(d)
        stack.append(m // d)
    return factors


def sqrt_mod_prime(a: int, p: int) -> int | None:
    """Square root of ``a`` modulo an odd prime ``p`` (Tonelli-Shanks)."""
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if pow(a, (p - 1) // 2, p) != 1:
        return None
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks for p = 1 mod 4.
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while pow(z, (p - 1) // 2, p) != p - 1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        t2 = t
        i = 0
        while t2 != 1:
            t2 = t2 * t2 % p
            i += 1
            if i == m:
                return None
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t = t * c % p
        r = r * b % p
    return r
