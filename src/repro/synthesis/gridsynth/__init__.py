"""gridsynth baseline: number-theoretic Rz synthesis (Ross-Selinger)."""

from repro.synthesis.gridsynth.exact_synthesis import (
    ExactSynthesisError,
    exact_synthesize,
)
from repro.synthesis.gridsynth.rz_approx import (
    GridsynthError,
    gridsynth_rz,
    gridsynth_u3,
    rz_distance,
)

__all__ = [
    "ExactSynthesisError",
    "GridsynthError",
    "exact_synthesize",
    "gridsynth_rz",
    "gridsynth_u3",
    "rz_distance",
]
