"""One- and two-dimensional grid problems for gridsynth (Ross-Selinger).

The Rz approximation task reduces to enumerating points ``u`` of the
scaled lattice ``Z[omega] / sqrt(2)^k`` that fall inside the epsilon
slice

    A = { u : |u| <= 1,  Re(conj(z) u) >= 1 - eps^2 / 2 },   z = e^{-i theta/2}

while the sqrt(2)-conjugate ``u^bullet`` falls in the unit disk (needed
for the norm equation to be solvable).  Splitting ``u`` into real and
imaginary parts turns this into two coupled one-dimensional grid
problems over ``(1/sqrt(2)) Z[sqrt(2)]`` with a parity constraint.

The 1D solver enumerates ``x = p + q sqrt(2)`` with ``x`` in interval I
and the conjugate in interval J; rescaling by the fundamental unit
``lambda = 1 + sqrt(2)`` balances the intervals so the enumeration is
output-sensitive (Ross-Selinger, Section 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.rings.zomega import ZOmega
from repro.rings.zsqrt2 import LAMBDA, LAMBDA_INV, ZSqrt2

_SQRT2 = math.sqrt(2.0)
_LOG_LAMBDA = math.log(1.0 + _SQRT2)
_TOL = 1e-9


def solve_1d_grid(
    ix: tuple[float, float], jy: tuple[float, float]
) -> list[ZSqrt2]:
    """All x in Z[sqrt2] with x in ``ix`` and x.conj() in ``jy``.

    Output-sensitive: the interval pair is rebalanced with powers of the
    fundamental unit so the scan length is O(solutions + 1).
    """
    x0, x1 = ix
    y0, y1 = jy
    if x1 < x0 or y1 < y0:
        return []
    # Rebalance so the two interval lengths are comparable.
    len_i = max(x1 - x0, 1e-300)
    len_j = max(y1 - y0, 1e-300)
    m = int(round(math.log(math.sqrt(len_j / len_i)) / _LOG_LAMBDA))
    m = max(-200, min(200, m))
    lam_m = (1.0 + _SQRT2) ** m
    lam_conj_m = (1.0 - _SQRT2) ** m  # == (lambda^bullet)^m
    sx0, sx1 = x0 * lam_m, x1 * lam_m
    sy0, sy1 = y0 * lam_conj_m, y1 * lam_conj_m
    if sy1 < sy0:
        sy0, sy1 = sy1, sy0
    unscale = LAMBDA_INV**m if m >= 0 else LAMBDA ** (-m)
    out: list[ZSqrt2] = []
    q_lo = math.ceil((sx0 - sy1) / (2 * _SQRT2) - _TOL)
    q_hi = math.floor((sx1 - sy0) / (2 * _SQRT2) + _TOL)
    for q in range(q_lo, q_hi + 1):
        p_lo = math.ceil(max(sx0 - q * _SQRT2, sy0 + q * _SQRT2) - _TOL)
        p_hi = math.floor(min(sx1 - q * _SQRT2, sy1 + q * _SQRT2) + _TOL)
        for p in range(p_lo, p_hi + 1):
            cand = ZSqrt2(p, q) * unscale
            f = float(cand)
            fc = float(cand.conj())
            if x0 - _TOL <= f <= x1 + _TOL and y0 - _TOL <= fc <= y1 + _TOL:
                out.append(cand)
    return out


def solve_1d_grid_offset(
    ix: tuple[float, float],
    jy: tuple[float, float],
    offset: float,
    offset_conj: float,
) -> list[tuple[ZSqrt2, float, float]]:
    """Grid solutions of the coset ``Z[sqrt2] + offset``.

    Returns ``(x, value, conj_value)`` triples where ``value = x + offset``
    lies in ``ix`` and ``x.conj() + offset_conj`` lies in ``jy``.
    """
    base = solve_1d_grid(
        (ix[0] - offset, ix[1] - offset), (jy[0] - offset_conj, jy[1] - offset_conj)
    )
    return [(x, float(x) + offset, float(x.conj()) + offset_conj) for x in base]


@dataclass(frozen=True)
class Candidate:
    """A lattice point u = zu / sqrt(2)^k inside the epsilon region."""

    zu: ZOmega
    k: int
    quality: float  # Re(conj(z) u); higher is a closer approximation


def _halfplane_y_interval(
    x: float, cos_half: float, sin_half: float, bound: float
) -> tuple[float, float] | None:
    """Admissible Im(u) range for fixed Re(u) = x inside the slice."""
    disk = 1.0 - x * x
    if disk < 0.0:
        return None
    ylim = math.sqrt(disk)
    ylo, yhi = -ylim, ylim
    # Constraint: x cos - y sin >= bound.
    if abs(sin_half) < 1e-14:
        if x * cos_half < bound:
            return None
    elif sin_half > 0:
        yhi = min(yhi, (x * cos_half - bound) / sin_half)
    else:
        ylo = max(ylo, (x * cos_half - bound) / sin_half)
    if yhi < ylo:
        return None
    return ylo, yhi


def enumerate_candidates(theta: float, eps: float, k: int) -> Iterator[Candidate]:
    """Lattice points of denominator exponent ``k`` in the epsilon slice.

    Yields candidates in descending quality order.  Points divisible by
    sqrt(2) are skipped — they already appeared at level ``k - 1``.
    """
    cos_half = math.cos(theta / 2.0)
    sin_half = math.sin(theta / 2.0)
    bound = 1.0 - eps * eps / 2.0
    scale = _SQRT2**k

    # Bounding interval for x = Re(u): the slice lives inside the unit
    # disk and within distance eps of z = e^{-i theta/2}.
    x_center = cos_half
    x0 = max(-1.0, x_center - eps)
    x1 = min(1.0, x_center + eps)
    found: list[Candidate] = []
    # Real part v = d + e / sqrt(2); parity of e selects the coset.
    for e_parity in (0, 1):
        off = 0.0 if e_parity == 0 else 1.0 / _SQRT2
        vs = solve_1d_grid_offset(
            (x0 * scale, x1 * scale), (-scale, scale), off, -off
        )
        for v_elem, v_val, v_conj in vs:
            x = v_val / scale
            ybounds = _halfplane_y_interval(x, cos_half, sin_half, bound)
            if ybounds is None:
                continue
            # Conjugate disk: w_conj^2 <= 2^k - v_conj^2.
            rem = scale * scale - v_conj * v_conj
            if rem < 0.0:
                continue
            wlim = math.sqrt(rem)
            woff = 0.0 if e_parity == 0 else 1.0 / _SQRT2
            ws = solve_1d_grid_offset(
                (ybounds[0] * scale, ybounds[1] * scale),
                (-wlim, wlim),
                woff,
                -woff,
            )
            for w_elem, w_val, _w_conj in ws:
                zu = _assemble(v_elem, w_elem, e_parity)
                if k > 0 and zu.is_divisible_by_sqrt2():
                    continue
                y = w_val / scale
                quality = x * cos_half - y * sin_half
                if quality < bound - _TOL:
                    continue
                if x * x + y * y > 1.0 + _TOL:
                    continue
                found.append(Candidate(zu=zu, k=k, quality=quality))
    found.sort(key=lambda c: -c.quality)
    yield from found


def _assemble(v: ZSqrt2, w: ZSqrt2, parity: int) -> ZOmega:
    """Rebuild zu from real part d + e/sqrt2 and imaginary part b + f/sqrt2.

    ``v = d + (e // 2) sqrt2 (+ 1/sqrt2 if parity)`` encodes e = 2*v.b +
    parity, and similarly for w; then a = (f - e) / 2, c = (f + e) / 2.
    """
    d = v.a
    e = 2 * v.b + parity
    b = w.a
    f = 2 * w.b + parity
    a = (f - e) // 2
    c = (f + e) // 2
    return ZOmega(a, b, c, d)
