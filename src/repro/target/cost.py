"""The ESP cost model: estimated success probability of a compiled circuit.

ESP is the compiler-side prediction of what the noisy simulators
measure: the probability that a circuit execution suffers *no* error
event at all,

    ESP = prod_gates (1 - err(g)) * prod_qubits exp(-idle_rate * idle_q)

where per-gate errors come from the target's calibration tables
(per-edge rates for 2q gates when available, per-gate-name rates
otherwise) and idle exposure comes from the ASAP schedule
(:mod:`repro.schedule`).  Under the depolarizing trajectory unravelling
the no-error branch has fidelity 1 and probability exactly ESP, so
simulated fidelity satisfies ``fidelity >= ESP`` with the gap equal to
the (small) residual overlap of error branches — the relation
``experiments/rq7_schedule.py`` validates.

This is the objective ``compile_circuit(objective='esp')`` maximizes,
closing the loop between the target model, the optimizer stack, and
the simulators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.circuits.circuit import (
    Circuit,
    Gate,
    canonical_gate_name,
    is_idle_marker,
)
from repro.schedule import Schedule, schedule_circuit
from repro.target.target import Target


def gate_error(target: Target, gate: Gate) -> float:
    """Calibrated error rate of one gate occurrence on ``target``.

    2q gates on an edge listed in the per-edge table use that rate;
    any other gate uses its own per-gate entry (a swap never inherits
    the ``cx`` rate).  Idle markers use the target's idle rate scaled
    by their duration.  Uncalibrated gates are error-free.  This is
    exactly the resolution order
    :meth:`repro.sim.NoiseModel.from_target` injects with, so the ESP
    prediction stays a lower bound on what the simulators measure.
    """
    if is_idle_marker(gate):
        rate = target.idle_error_rate
        return -math.expm1(-rate * gate.params[0]) if rate > 0 else 0.0
    name = canonical_gate_name(gate.name)
    if len(gate.qubits) == 2:
        a, b = gate.qubits
        hit = target.edge_errors.get((min(a, b), max(a, b)))
        # Zero/absent edge entries fall through to the name table,
        # mirroring from_target's positive-rate filter.
        if hit is not None and hit > 0.0:
            return hit
    return target.gate_errors.get(name, 0.0)


def gate_success(target: Target, gate: Gate) -> float:
    """No-error probability of one gate occurrence.

    The noise model applies one depolarizing channel per *qubit* of a
    noisy gate (:meth:`NoiseModel.noisy_qubits`), so a 2q gate at rate
    ``p`` survives with probability ``(1-p)^2`` — the exponent keeps
    the prediction aligned with what the simulators actually inject.
    Idle markers are single events regardless of duration.
    """
    err = gate_error(target, gate)
    if err <= 0.0:
        return 1.0
    if is_idle_marker(gate):
        return 1.0 - err
    return max(0.0, 1.0 - err) ** len(gate.qubits)


@dataclass(frozen=True)
class EspEstimate:
    """Breakdown of one ESP prediction."""

    esp: float
    gate_success: float  # product over gate events
    idle_success: float  # exp(-idle_rate * total idle)
    n_noisy_gates: int
    total_idle: float
    makespan: float

    @property
    def log_esp(self) -> float:
        return math.log(self.esp) if self.esp > 0 else -math.inf

    def summary(self) -> str:
        return (
            f"ESP {self.esp:.4f} (gates {self.gate_success:.4f} x "
            f"idle {self.idle_success:.4f}; {self.n_noisy_gates} noisy "
            f"gates, idle {self.total_idle:g} over makespan "
            f"{self.makespan:g})"
        )


def estimate_esp(
    circuit: Circuit,
    target: Target,
    schedule: Schedule | None = None,
    durations: Mapping[str, float] | None = None,
    include_idle: bool = True,
) -> EspEstimate:
    """Predicted success probability of ``circuit`` on ``target``.

    The gate term multiplies per-gate survival probabilities from the
    calibration tables; the idle term charges ``exp(-idle_error_rate *
    slack)`` per qubit, with slack read off the ASAP schedule
    (computed here unless one is passed in).  Idle markers already
    present in the circuit are charged as gates, not double-counted
    through the schedule.
    """
    gate_term = 1.0
    n_noisy = 0
    has_markers = False
    for g in circuit.gates:
        if is_idle_marker(g):
            has_markers = True
        success = gate_success(target, g)
        if success < 1.0:
            gate_term *= success
            n_noisy += 1
    idle_term = 1.0
    total_idle = 0.0
    if schedule is None:
        schedule = schedule_circuit(circuit, target, durations)
    if include_idle and not has_markers and target.idle_error_rate > 0.0:
        total_idle = schedule.total_idle
        idle_term = math.exp(-target.idle_error_rate * total_idle)
    return EspEstimate(
        esp=gate_term * idle_term,
        gate_success=gate_term,
        idle_success=idle_term,
        n_noisy_gates=n_noisy,
        total_idle=total_idle,
        makespan=schedule.makespan,
    )
