"""Qubit connectivity graphs for hardware targets.

A :class:`CouplingMap` is the adjacency structure of a device: which
physical qubit pairs can host a two-qubit gate.  It precomputes neighbor
sets and (lazily) an all-pairs BFS distance matrix — the two queries the
layout and routing stages hammer.  Maps are undirected by default
(``cx`` both ways); a *directed* map restricts the native ``cx``
orientation, which :func:`repro.target.routing.fix_gate_directions`
repairs with Hadamard conjugation after routing.

Standard topologies (line / ring / grid / heavy-hex / all-to-all) are
provided as constructors so experiments can sweep connectivity as an
axis, the way they already sweep IRs and optimization levels.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

Edge = tuple[int, int]


class CouplingMap:
    """Connectivity between ``n_qubits`` physical qubits.

    ``edges`` lists allowed two-qubit-gate placements.  When
    ``directed`` is False (default) every edge is usable in both
    orientations; when True the listed orientation is the native one
    (``allows`` distinguishes, ``has_edge``/``distance`` do not —
    routing always works on the symmetrized graph because SWAPs are
    direction-agnostic after H conjugation).
    """

    def __init__(
        self,
        n_qubits: int,
        edges: Iterable[Edge],
        directed: bool = False,
    ):
        if n_qubits < 1:
            raise ValueError("a coupling map needs at least one qubit")
        self.n_qubits = int(n_qubits)
        self.directed = bool(directed)
        directed_edges: set[Edge] = set()
        undirected: set[Edge] = set()
        for a, b in edges:
            a, b = int(a), int(b)
            if not (0 <= a < n_qubits and 0 <= b < n_qubits):
                raise ValueError(f"edge ({a}, {b}) out of range")
            if a == b:
                raise ValueError(f"self-loop edge on qubit {a}")
            directed_edges.add((a, b))
            if not self.directed:
                directed_edges.add((b, a))
            undirected.add((min(a, b), max(a, b)))
        self._directed_edges = frozenset(directed_edges)
        self.edges: tuple[Edge, ...] = tuple(sorted(undirected))
        neighbors: list[set[int]] = [set() for _ in range(self.n_qubits)]
        for a, b in self.edges:
            neighbors[a].add(b)
            neighbors[b].add(a)
        self._neighbors = tuple(tuple(sorted(s)) for s in neighbors)
        self._dist: np.ndarray | None = None
        self._edges_np: np.ndarray | None = None
        self._incident: tuple[np.ndarray, ...] | None = None
        self._incident_pad: np.ndarray | None = None

    # -- queries ------------------------------------------------------------
    def neighbors(self, q: int) -> tuple[int, ...]:
        """Physical qubits sharing an edge with ``q`` (either direction)."""
        return self._neighbors[q]

    def degree(self, q: int) -> int:
        return len(self._neighbors[q])

    def has_edge(self, a: int, b: int) -> bool:
        """True when (a, b) is coupled in either orientation."""
        return b in self._neighbors[a]

    def allows(self, a: int, b: int) -> bool:
        """True when a native gate may point from ``a`` to ``b``."""
        return (a, b) in self._directed_edges

    @property
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path lengths (-1 if disconnected).

        Cached ``(n_qubits, n_qubits)`` int64 array, computed by a
        level-synchronous BFS over the boolean adjacency matrix — one
        matrix-vector sweep per BFS level instead of a python queue per
        source, so the routing/layout stages can gather whole batches of
        distances in single numpy indexing operations.
        """
        if self._dist is None:
            n = self.n_qubits
            adj = np.zeros((n, n), dtype=bool)
            for a, b in self.edges:
                adj[a, b] = adj[b, a] = True
            dist = np.full((n, n), -1, dtype=np.int64)
            np.fill_diagonal(dist, 0)
            frontier = np.eye(n, dtype=bool)
            reached = frontier.copy()
            level = 0
            while frontier.any():
                level += 1
                frontier = (frontier @ adj) & ~reached
                dist[frontier] = level
                reached |= frontier
            dist.setflags(write=False)
            self._dist = dist
        return self._dist

    def distance(self, a: int, b: int) -> int:
        d = int(self.distance_matrix[a, b])
        if d < 0:
            raise ValueError(f"qubits {a} and {b} are disconnected")
        return d

    @property
    def edges_array(self) -> np.ndarray:
        """``self.edges`` as a read-only ``(n_edges, 2)`` int array."""
        if self._edges_np is None:
            arr = np.asarray(self.edges, dtype=np.intp).reshape(-1, 2)
            arr.setflags(write=False)
            self._edges_np = arr
        return self._edges_np

    def incident_edges(self, q: int) -> np.ndarray:
        """Indices into :attr:`edges_array` of the edges touching ``q``.

        Ascending edge index, so gathering and uniquing incident-edge
        ids over a set of qubits reproduces the lexicographic edge
        order of ``sorted(set(...))`` — the contract the routing
        candidate enumeration relies on.
        """
        if self._incident is None:
            by_qubit: list[list[int]] = [[] for _ in range(self.n_qubits)]
            for e, (a, b) in enumerate(self.edges):
                by_qubit[a].append(e)
                by_qubit[b].append(e)
            self._incident = tuple(
                np.asarray(ids, dtype=np.intp) for ids in by_qubit
            )
        return self._incident[q]

    @property
    def incident_matrix(self) -> np.ndarray:
        """Incident-edge ids padded to a dense ``(n_qubits, max_deg)``.

        Row ``q`` holds the ascending edge ids touching ``q``, padded
        with the sentinel ``len(self.edges)`` so a single fancy gather
        enumerates the incident edges of a whole qubit batch; callers
        drop the sentinel slot afterwards.
        """
        if self._incident_pad is None:
            sentinel = len(self.edges)
            width = max(
                (self.degree(q) for q in range(self.n_qubits)), default=0
            )
            pad = np.full(
                (self.n_qubits, max(width, 1)), sentinel, dtype=np.intp
            )
            for q in range(self.n_qubits):
                ids = self.incident_edges(q)
                pad[q, : ids.size] = ids
            pad.setflags(write=False)
            self._incident_pad = pad
        return self._incident_pad

    def shortest_path(self, a: int, b: int) -> list[int]:
        """One shortest path from ``a`` to ``b`` (inclusive), by BFS.

        Deterministic: neighbor expansion follows ascending qubit index.
        """
        if a == b:
            return [a]
        prev = {a: a}
        queue = deque([a])
        while queue:
            u = queue.popleft()
            for v in self._neighbors[u]:
                if v not in prev:
                    prev[v] = u
                    if v == b:
                        path = [b]
                        while path[-1] != a:
                            path.append(prev[path[-1]])
                        return path[::-1]
                    queue.append(v)
        raise ValueError(f"qubits {a} and {b} are disconnected")

    def is_connected(self) -> bool:
        return bool((self.distance_matrix[0] >= 0).all())

    def diameter(self) -> int:
        if not self.is_connected():
            raise ValueError("coupling map is disconnected")
        return int(self.distance_matrix.max())

    # -- standard topologies -------------------------------------------------
    @classmethod
    def line(cls, n: int) -> "CouplingMap":
        """An open chain: 0-1-2-...-(n-1)."""
        return cls(n, [(i, i + 1) for i in range(n - 1)])

    @classmethod
    def ring(cls, n: int) -> "CouplingMap":
        """A closed chain; needs at least 3 qubits to differ from a line."""
        if n < 3:
            raise ValueError("a ring needs at least 3 qubits")
        edges = [(i, (i + 1) % n) for i in range(n)]
        return cls(n, edges)

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        """A rows x cols lattice, qubit (r, c) numbered r*cols + c."""
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be positive")
        edges: list[Edge] = []
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        return cls(rows * cols, edges)

    @classmethod
    def heavy_hex(cls, rows: int, cols: int | None = None) -> "CouplingMap":
        """An IBM-style heavy-hex lattice.

        ``rows`` horizontal chains of ``cols`` qubits (row-major ids),
        joined by degree-2 *bridge* qubits between consecutive rows.
        Bridges in gap ``g`` sit at columns ``c % 4 == 0`` (even gaps)
        or ``c % 4 == 2`` (odd gaps), giving the sparse degree-<=3
        pattern of IBM's heavy-hex devices.  ``cols`` defaults to
        ``2*rows - 1``.
        """
        if rows < 2:
            raise ValueError("heavy_hex needs at least 2 rows")
        if cols is None:
            cols = 2 * rows - 1
        if cols < 3:
            raise ValueError("heavy_hex needs at least 3 columns")
        edges: list[Edge] = []
        for r in range(rows):
            for c in range(cols - 1):
                edges.append((r * cols + c, r * cols + c + 1))
        next_id = rows * cols
        for g in range(rows - 1):
            offset = 0 if g % 2 == 0 else 2
            for c in range(offset, cols, 4):
                bridge = next_id
                next_id += 1
                edges.append((g * cols + c, bridge))
                edges.append((bridge, (g + 1) * cols + c))
        return cls(next_id, edges)

    @classmethod
    def all_to_all(cls, n: int) -> "CouplingMap":
        """Full connectivity (the unconstrained baseline)."""
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        return cls(n, edges) if n > 1 else cls(n, [])

    # -- dunder --------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, CouplingMap):
            return NotImplemented
        return (
            self.n_qubits == other.n_qubits
            and self.directed == other.directed
            and self._directed_edges == other._directed_edges
        )

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"CouplingMap(n_qubits={self.n_qubits}, "
            f"edges={len(self.edges)}, {kind})"
        )

    def edge_pairs(self) -> Sequence[Edge]:
        """The native (possibly directed) edge list, sorted."""
        return tuple(sorted(self._directed_edges))
