"""The hardware target model: connectivity plus gate-level calibration.

A :class:`Target` is everything the compiler needs to know about a
device: qubit count, a :class:`~repro.target.coupling.CouplingMap`, the
native basis-gate vocabulary, and optional per-gate error/duration
tables (plus per-edge two-qubit error rates for error-aware layout).
Targets serialize to JSON so real-device calibration snapshots can be
fed to the CLI, and :func:`parse_target` implements the compact target
string grammar (``line:8``, ``grid:3x3``, ``ring:12``,
``heavy_hex:3``, ``all_to_all:5``, or a ``*.json`` path).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field

from repro.circuits.circuit import canonical_gate_name
from repro.target.coupling import CouplingMap

#: The circuit-IR gate vocabulary a target may restrict.
DEFAULT_BASIS_GATES = ("cx", "cz", "swap", "u3", "rz", "h")

_GRID_RE = re.compile(r"^(\d+)x(\d+)$")


@dataclass(frozen=True)
class Target:
    """A compilation target: coupling map, basis gates, calibration."""

    coupling: CouplingMap
    name: str = ""
    basis_gates: tuple[str, ...] = DEFAULT_BASIS_GATES
    #: Per-gate depolarizing error rates (gate name -> rate), feeding
    #: :meth:`repro.sim.NoiseModel.from_target` and the ESP cost model
    #: (:func:`repro.target.cost.estimate_esp`).
    gate_errors: dict[str, float] = field(default_factory=dict)
    #: Per-gate durations in schedule time units, consumed by the
    #: ASAP/ALAP schedulers (:mod:`repro.schedule`); unlisted gates
    #: fall back to arity-based defaults.
    gate_durations: dict[str, float] = field(default_factory=dict)
    #: Per-undirected-edge two-qubit error rates, used by the
    #: error-aware dense layout.  Keys are ``(min(a,b), max(a,b))``.
    edge_errors: dict[tuple[int, int], float] = field(default_factory=dict)
    #: T1-style decoherence rate per schedule time unit while a qubit
    #: idles: an idle period of duration ``d`` survives with
    #: probability ``exp(-idle_error_rate * d)`` in the ESP model.
    idle_error_rate: float = 0.0

    def __post_init__(self):
        # Calibration JSON written by vendors uses spellings like
        # ``CX``/``Tdg``; canonicalize table keys once at construction
        # (exactly as NoiseModel.rate_for canonicalizes lookups) so a
        # circuit gate can never miss its calibration entry.
        for table_name in ("gate_errors", "gate_durations"):
            table = getattr(self, table_name)
            if any(k != canonical_gate_name(k) for k in table):
                object.__setattr__(
                    self,
                    table_name,
                    {
                        canonical_gate_name(k): float(v)
                        for k, v in table.items()
                    },
                )

    @property
    def n_qubits(self) -> int:
        return self.coupling.n_qubits

    def edge_error(self, a: int, b: int) -> float:
        """Calibrated per-edge 2q error on edge (a, b), 0 if unlisted.

        Deliberately *no* fallback to the per-gate table: a swap/cz off
        the edge table must keep its own ``gate_errors`` rate, not
        inherit the ``cx`` one (the cost model and
        :meth:`repro.sim.NoiseModel.from_target` both resolve
        edge-then-name in that order).
        """
        return self.edge_errors.get((min(a, b), max(a, b)), 0.0)

    @property
    def is_calibrated(self) -> bool:
        """Whether any error calibration is attached at all."""
        return bool(
            self.gate_errors or self.edge_errors or self.idle_error_rate > 0
        )

    # -- standard topologies -------------------------------------------------
    @classmethod
    def line(cls, n: int, **kwargs) -> "Target":
        return cls(CouplingMap.line(n), name=f"line:{n}", **kwargs)

    @classmethod
    def ring(cls, n: int, **kwargs) -> "Target":
        return cls(CouplingMap.ring(n), name=f"ring:{n}", **kwargs)

    @classmethod
    def grid(cls, rows: int, cols: int, **kwargs) -> "Target":
        return cls(
            CouplingMap.grid(rows, cols), name=f"grid:{rows}x{cols}", **kwargs
        )

    @classmethod
    def heavy_hex(cls, rows: int, cols: int | None = None, **kwargs) -> "Target":
        cmap = CouplingMap.heavy_hex(rows, cols)
        label = f"heavy_hex:{rows}" if cols is None else f"heavy_hex:{rows}x{cols}"
        return cls(cmap, name=label, **kwargs)

    @classmethod
    def all_to_all(cls, n: int, **kwargs) -> "Target":
        return cls(CouplingMap.all_to_all(n), name=f"all_to_all:{n}", **kwargs)

    # -- JSON interchange ----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_qubits": self.n_qubits,
            "directed": self.coupling.directed,
            "edges": [list(e) for e in self.coupling.edge_pairs()],
            "basis_gates": list(self.basis_gates),
            "gate_errors": dict(self.gate_errors),
            "gate_durations": dict(self.gate_durations),
            "edge_errors": [
                [a, b, err] for (a, b), err in sorted(self.edge_errors.items())
            ],
            "idle_error_rate": self.idle_error_rate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Target":
        try:
            coupling = CouplingMap(
                int(data["n_qubits"]),
                [tuple(e) for e in data["edges"]],
                directed=bool(data.get("directed", False)),
            )
        except KeyError as exc:
            raise ValueError(f"target JSON missing field {exc.args[0]!r}") from exc
        edge_errors = {
            (min(int(a), int(b)), max(int(a), int(b))): float(err)
            for a, b, err in data.get("edge_errors", [])
        }
        return cls(
            coupling,
            name=str(data.get("name", "")),
            basis_gates=tuple(data.get("basis_gates", DEFAULT_BASIS_GATES)),
            gate_errors={
                str(k): float(v)
                for k, v in data.get("gate_errors", {}).items()
            },
            gate_durations={
                str(k): float(v)
                for k, v in data.get("gate_durations", {}).items()
            },
            edge_errors=edge_errors,
            idle_error_rate=float(data.get("idle_error_rate", 0.0)),
        )

    def save(self, path: str) -> None:
        # A crash mid-write must never corrupt an existing calibration
        # file; atomic_write_json serializes first, then publishes via
        # a unique temp file + os.replace.
        from repro.analysis.atomic_io import atomic_write_json

        atomic_write_json(
            path, self.to_dict(),
            indent=2, sort_keys=True, trailing_newline=True,
        )

    @classmethod
    def load(cls, path: str) -> "Target":
        with open(path) as f:
            return cls.from_dict(json.load(f))

    def __repr__(self) -> str:
        return (
            f"Target({self.name or '<unnamed>'}, n_qubits={self.n_qubits}, "
            f"edges={len(self.coupling.edges)})"
        )


def parse_target(spec: str) -> Target:
    """Build a target from the CLI string grammar.

    Accepted forms::

        line:N  ring:N  all_to_all:N      one integer parameter
        grid:RxC                           rows x columns
        heavy_hex:R  heavy_hex:RxC        rows (columns optional)
        path/to/target.json                a saved Target snapshot

    Raises ``ValueError`` for anything else.
    """
    spec = spec.strip()
    if spec.endswith(".json") or os.path.exists(spec):
        return Target.load(spec)
    kind, sep, arg = spec.partition(":")
    if not sep or not arg:
        raise ValueError(
            f"bad target spec {spec!r}: expected kind:param "
            "(line:8, ring:12, grid:3x3, heavy_hex:3, all_to_all:5) "
            "or a .json path"
        )
    grid_match = _GRID_RE.match(arg)
    try:
        if kind == "grid":
            if not grid_match:
                raise ValueError(f"grid target needs RxC, got {arg!r}")
            return Target.grid(int(grid_match.group(1)), int(grid_match.group(2)))
        if kind == "heavy_hex":
            if grid_match:
                return Target.heavy_hex(
                    int(grid_match.group(1)), int(grid_match.group(2))
                )
            return Target.heavy_hex(int(arg))
        if kind in ("line", "ring", "all_to_all"):
            return getattr(Target, kind)(int(arg))
    except ValueError as exc:
        # Re-wrap int() parse failures with the offending spec attached.
        raise ValueError(f"bad target spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"unknown target kind {kind!r} "
        "(expected line, ring, grid, heavy_hex, or all_to_all)"
    )
