"""Initial placement of circuit wires onto physical qubits.

A :class:`Layout` is a bijection between *virtual* wires (the circuit's
qubits, padded with idle ancilla wires up to the device size) and
physical qubits.  Two initial-placement strategies are provided:

* :func:`trivial_layout` — virtual wire ``v`` on physical qubit ``v``,
* :func:`dense_layout` — a degree/error-aware greedy placement that
  drops the circuit's interaction graph onto the best-connected,
  lowest-error region of the device, growing outward from the busiest
  logical qubit (the DenseLayout idea of mainstream transpilers).

Routing (:mod:`repro.target.routing`) then mutates a copy of the
initial layout swap by swap; the final layout *is* the output
permutation reported to callers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

import numpy as np

from repro.circuits.circuit import Circuit
from repro.target.target import Target


class Layout:
    """A virtual-wire -> physical-qubit bijection of device size."""

    def __init__(self, l2p):
        l2p = [int(p) for p in l2p]
        if sorted(l2p) != list(range(len(l2p))):
            raise ValueError("layout must be a permutation of 0..n-1")
        self._l2p = l2p
        self._p2l = [0] * len(l2p)
        for v, p in enumerate(l2p):
            self._p2l[p] = v
        # numpy mirror of _l2p, kept in sync by swap_physical, so the
        # vectorized swap scorer can gather through it without
        # rebuilding an array on every call.
        self._l2p_arr = np.asarray(l2p, dtype=np.intp)

    @classmethod
    def trivial(cls, n: int) -> "Layout":
        return cls(range(n))

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, int], n: int) -> "Layout":
        """Place logical qubits per ``mapping``; ancillas fill the rest.

        ``mapping`` maps logical wire -> physical qubit for the wires
        the circuit actually uses; remaining virtual wires take the
        unused physical qubits in ascending order.
        """
        used = set(mapping.values())
        if len(used) != len(mapping):
            raise ValueError("mapping assigns one physical qubit twice")
        free = iter(p for p in range(n) if p not in used)
        l2p = [mapping[v] if v in mapping else next(free) for v in range(n)]
        return cls(l2p)

    def __len__(self) -> int:
        return len(self._l2p)

    def physical(self, v: int) -> int:
        """The physical qubit currently holding virtual wire ``v``."""
        return self._l2p[v]

    def virtual(self, p: int) -> int:
        """The virtual wire currently on physical qubit ``p``."""
        return self._p2l[p]

    def swap_physical(self, p: int, q: int) -> None:
        """Record a SWAP between physical qubits ``p`` and ``q``."""
        a, b = self._p2l[p], self._p2l[q]
        self._p2l[p], self._p2l[q] = b, a
        self._l2p[a], self._l2p[b] = q, p
        self._l2p_arr[a] = q
        self._l2p_arr[b] = p

    def copy(self) -> "Layout":
        return Layout(self._l2p)

    def as_list(self) -> tuple[int, ...]:
        """The full virtual->physical permutation."""
        return tuple(self._l2p)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._l2p == other._l2p

    def __repr__(self) -> str:
        return f"Layout({self._l2p})"


def trivial_layout(circuit: Circuit, target: Target) -> Layout:
    """Virtual wire ``v`` on physical qubit ``v`` (identity placement)."""
    _check_fits(circuit, target)
    return Layout.trivial(target.n_qubits)


def dense_layout(circuit: Circuit, target: Target) -> Layout:
    """Degree/error-aware greedy placement of the interaction graph.

    The busiest logical qubit lands on the physical qubit with the
    highest degree (ties broken toward lower incident two-qubit error,
    then lower index); each subsequent logical qubit — picked by total
    interaction weight with already-placed ones — goes to the free
    physical qubit minimizing the distance-weighted sum to its placed
    partners.  Deterministic throughout.

    On targets carrying a per-edge error table the tie-break order is
    cost-aware: among equal-pull spots, low incident error beats high
    degree, steering the interaction graph onto the device's
    best-calibrated region.  Uncalibrated targets (where the incident
    error is uniformly zero) order exactly as before.
    """
    _check_fits(circuit, target)
    cmap = target.coupling
    error_first = bool(target.edge_errors)
    weight: dict[tuple[int, int], int] = defaultdict(int)
    activity: dict[int, int] = defaultdict(int)
    for g in circuit.gates:
        if len(g.qubits) == 2:
            a, b = g.qubits
            weight[(min(a, b), max(a, b))] += 1
            activity[a] += 1
            activity[b] += 1
    if not weight:
        return Layout.trivial(target.n_qubits)

    # Per-qubit calibration cost, computed once: the greedy loop below
    # consults it O(n^2) times and the mean is loop-invariant.
    qcost = [
        (
            sum(target.edge_error(p, q) for q in cmap.neighbors(p))
            / cmap.degree(p)
            if cmap.degree(p)
            else 0.0
        )
        for p in range(target.n_qubits)
    ]

    partners: dict[int, dict[int, int]] = defaultdict(dict)
    for (a, b), w in weight.items():
        partners[a][b] = w
        partners[b][a] = w

    def spot_rank(p: int) -> tuple:
        # Cost-aware order puts calibration quality ahead of degree;
        # with no per-edge table qubit_cost is constant and the order
        # degrades to the original degree-first rule.
        if error_first:
            return (qcost[p], -cmap.degree(p), p)
        return (-cmap.degree(p), qcost[p], p)

    dist = cmap.distance_matrix
    placed: dict[int, int] = {}  # logical -> physical
    free = set(range(target.n_qubits))
    seed = max(activity, key=lambda q: (activity[q], -q))
    best = min(free, key=spot_rank)
    placed[seed] = best
    free.discard(best)
    remaining = set(activity) - {seed}
    while remaining:
        nxt = max(
            remaining,
            key=lambda q: (
                sum(w for o, w in partners[q].items() if o in placed),
                activity[q],
                -q,
            ),
        )
        anchors = [
            (placed[o], w) for o, w in partners[nxt].items() if o in placed
        ]
        if anchors:
            # One integer gather+matvec scores every free spot at once;
            # spot_rank only tie-breaks the (usually few) minima, so the
            # pick is identical to the scalar min over (pull, rank).
            free_arr = np.fromiter(free, dtype=np.intp, count=len(free))
            a_idx = np.asarray([a for a, _ in anchors], dtype=np.intp)
            w_arr = np.asarray([w for _, w in anchors], dtype=np.int64)
            pull = dist[np.ix_(free_arr, a_idx)] @ w_arr
            tied = free_arr[pull == pull.min()]
            spot = int(min(tied, key=spot_rank))
        else:
            spot = min(free, key=spot_rank)
        placed[nxt] = spot
        free.discard(spot)
        remaining.discard(nxt)
    return Layout.from_mapping(placed, target.n_qubits)


def apply_layout(circuit: Circuit, layout: Layout) -> Circuit:
    """Relabel a circuit onto physical wires per an initial layout.

    The result lives on ``len(layout)`` wires with every gate's qubits
    mapped through ``layout.physical``; routing the relabeled circuit
    with a trivial layout equals routing the original with ``layout``.
    """
    from repro.circuits.circuit import Gate

    if circuit.n_qubits > len(layout):
        raise ValueError("layout is smaller than the circuit")
    out = Circuit(len(layout), name=circuit.name)
    out.gates = [
        Gate(g.name, tuple(layout.physical(q) for q in g.qubits), g.params)
        for g in circuit.gates
    ]
    return out


#: Named layout strategies accepted wherever a layout is configurable.
LAYOUT_METHODS = {
    "trivial": trivial_layout,
    "dense": dense_layout,
}


def resolve_layout(
    layout: str | Layout | None, circuit: Circuit, target: Target
) -> Layout:
    """Turn a layout argument (name, Layout, or None) into a Layout."""
    if layout is None:
        layout = "dense"
    if isinstance(layout, Layout):
        if len(layout) != target.n_qubits:
            raise ValueError(
                f"layout covers {len(layout)} qubits, target has "
                f"{target.n_qubits}"
            )
        _check_fits(circuit, target)
        return layout.copy()
    try:
        method = LAYOUT_METHODS[layout]
    except KeyError:
        raise ValueError(
            f"unknown layout method {layout!r} "
            f"(expected one of {sorted(LAYOUT_METHODS)})"
        ) from None
    return method(circuit, target)


def _check_fits(circuit: Circuit, target: Target) -> None:
    if circuit.n_qubits > target.n_qubits:
        raise ValueError(
            f"circuit has {circuit.n_qubits} qubits but target "
            f"{target.name or '<unnamed>'} has only {target.n_qubits}"
        )
