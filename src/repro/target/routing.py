"""Connectivity-constrained routing over the dependency DAG.

:func:`route_dag` is a SABRE-style lookahead swap router: it keeps the
DAG's front layer of ready gates, executes everything already on a
coupling edge, and otherwise greedily inserts the SWAP that most
reduces the layout-mapped distance of the front layer plus a discounted
*extended set* of upcoming two-qubit gates.  A stall guard force-routes
the oldest blocked gate along a shortest path, so routing always
terminates.  The router emits a routed DAG on *physical* wires, the
final virtual->physical permutation, and swap/depth metrics.

:func:`naive_route` is the adjacent-transposition baseline (bring the
qubits together along a shortest path, apply, swap all the way back) —
the strategy :class:`repro.tensornet.circuit_mps.CircuitMPS` used to
hard-code, kept as the comparison point the lookahead router has to
beat.

Semantics: let ``L0``/``Lf`` be the initial/final layouts.  The routed
circuit ``R`` on ``n_phys`` wires satisfies ``R = P(Lf) (C ⊗ I)
P(L0)^{-1}`` exactly (no global phase is introduced by routing alone),
where ``P(L)`` permutes virtual wire ``v`` onto physical wire
``L[v]``.  :func:`permute_statevector` applies ``P(L)`` to a dense
state so tests and callers can verify equivalence directly.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.dag import BOUNDARY, CircuitDAG
from repro.circuits.metrics import depth as circuit_depth
from repro.circuits.metrics import two_qubit_depth
from repro.target.layout import Layout, resolve_layout
from repro.target.target import Target

#: Discount applied to the extended (lookahead) set in the swap score.
DEFAULT_LOOKAHEAD_WEIGHT = 0.5
#: How many upcoming 2q gates the extended set may contain.
DEFAULT_LOOKAHEAD = 20


@dataclass
class RoutingMetrics:
    """Accounting for one routing run."""

    swaps_inserted: int
    depth_before: int
    depth_after: int
    two_qubit_depth_before: int
    two_qubit_depth_after: int
    direction_fixes: int = 0


@dataclass
class RoutingResult:
    """A routed circuit plus the permutation story and metrics."""

    circuit: Circuit
    target: Target
    initial_layout: Layout
    final_layout: Layout
    metrics: RoutingMetrics

    @property
    def swaps_inserted(self) -> int:
        return self.metrics.swaps_inserted

    @property
    def permutation(self) -> tuple[int, ...]:
        """Final virtual->physical map: wire ``v`` ends on ``perm[v]``."""
        return self.final_layout.as_list()


def route_dag(
    dag: CircuitDAG,
    target: Target,
    layout: Layout | None = None,
    lookahead: int = DEFAULT_LOOKAHEAD,
    lookahead_weight: float = DEFAULT_LOOKAHEAD_WEIGHT,
    cost_aware: bool | None = None,
    scorer: str = "vector",
) -> tuple[CircuitDAG, Layout, int]:
    """SABRE-style swap routing of ``dag`` onto ``target``.

    Returns ``(routed_dag, final_layout, swaps_inserted)``; the routed
    DAG lives on ``target.n_qubits`` physical wires and every 2q gate
    lies on a coupling edge.  ``layout`` is the initial placement
    (trivial when omitted) and is not mutated.

    ``cost_aware`` enables error-aware tie-breaking: among swap
    candidates with equal lookahead-distance scores, the one on the
    lowest-error coupling edge wins, so swap chains drift toward the
    well-calibrated region of the device.  ``None`` (default) enables
    it exactly when the target carries a per-edge error table — on
    uncalibrated targets the tie-break is a no-op and routing is
    byte-identical to the error-agnostic router.

    ``scorer`` selects the candidate-swap scoring implementation:
    ``"vector"`` (default) batches every candidate's lookahead score
    into one numpy gather over the coupling map's distance matrix;
    ``"reference"`` is the original per-candidate python closure, kept
    for property testing and as the perf-harness baseline.  Both pick
    byte-identical swaps.
    """
    if scorer not in ("vector", "reference"):
        raise ValueError(
            f"unknown scorer {scorer!r} (expected 'vector' or 'reference')"
        )
    cmap = target.coupling
    if cost_aware is None:
        cost_aware = bool(target.edge_errors)
    n_phys = target.n_qubits
    if dag.n_qubits > n_phys:
        raise ValueError(
            f"circuit has {dag.n_qubits} qubits but target has {n_phys}"
        )
    if not cmap.is_connected():
        raise ValueError("cannot route on a disconnected coupling map")
    lay = Layout.trivial(n_phys) if layout is None else layout.copy()
    out = CircuitDAG(n_phys, dag.name)
    # Scalar fast paths for the per-gate loop: a live alias of the
    # layout list (swap_physical mutates it in place) and the distance
    # matrix as nested python lists — scalar list indexing beats ndarray
    # item access for the one-pair adjacency checks done per gate.
    l2p = lay._l2p
    dist_list = cmap.distance_matrix.tolist()

    pending = {
        n.id: len({p for p in n.preds.values() if p != BOUNDARY})
        for n in dag.nodes()
    }
    # The input DAG never changes while routing, so resolve each node's
    # successor ids once up front instead of re-deriving them on every
    # completion and every lookahead expansion.
    succ_map = {
        n.id: [s.id for s in dag.successors(n.id)] for n in dag.nodes()
    }
    ready = [i for i, deg in pending.items() if deg == 0]
    heapq.heapify(ready)
    blocked: list[int] = []  # ready 2q gates not on an edge (id order)

    def complete(node_id: int) -> None:
        for sid in succ_map[node_id]:
            pending[sid] -= 1
            if pending[sid] == 0:
                heapq.heappush(ready, sid)

    def emit_mapped(gate: Gate) -> None:
        out.add_gate(
            Gate(gate.name, tuple(l2p[q] for q in gate.qubits),
                 gate.params)
        )

    def emit_swap(p: int, q: int) -> None:
        out.add_gate(Gate("swap", (min(p, q), max(p, q))))
        lay.swap_physical(p, q)

    swaps = 0
    stall = 0
    last_swap: tuple[int, int] | None = None
    # Front/extended qubit pairs depend only on the blocked id set, which
    # is unchanged across consecutive swap attempts; cache them so the
    # per-swap work is just scoring, not re-deriving the lookahead set.
    cache_key: tuple[int, ...] | None = None
    cache_front = []  # pair list (reference) or (F, 2) array (vector)
    cache_extended = []  # likewise, (E, 2) for the vector scorer
    best_swap = _best_swap if scorer == "vector" else _best_swap_reference
    # Hard ceiling: any run needing more swaps than this is a router bug.
    max_swaps = 4 * (len(dag) + 1) * max(1, cmap.diameter()) + 4 * n_phys

    def force_route() -> None:
        # Force-route the oldest blocked gate along a shortest path so
        # termination never hinges on the heuristic.
        nonlocal swaps, stall
        node = dag.node(blocked[0])
        a, b = node.gate.qubits
        path = cmap.shortest_path(lay.physical(a), lay.physical(b))
        for k in range(len(path) - 2):
            emit_swap(path[k], path[k + 1])
            swaps += 1
        stall = 0

    while ready or blocked:
        progressed = False
        while ready:
            i = heapq.heappop(ready)
            node = dag.node(i)
            if len(node.gate.qubits) == 1:
                emit_mapped(node.gate)
                complete(i)
                progressed = True
                continue
            a, b = node.gate.qubits
            if dist_list[l2p[a]][l2p[b]] == 1:
                emit_mapped(node.gate)
                complete(i)
                progressed = True
            else:
                blocked.append(i)
        if progressed:
            stall = 0
            last_swap = None
            if ready or not blocked:
                continue
        if not blocked:
            break
        blocked.sort()
        key = tuple(blocked)
        if key != cache_key:
            cache_key = key
            cache_front = [dag.node(i).gate.qubits for i in blocked]
            cache_extended = _extended_set(
                dag, blocked, pending, lookahead, succ_map
            )
            if scorer == "vector":
                # The vector scorer gathers through arrays; build them
                # once per blocked set instead of once per swap.
                cache_front = np.asarray(cache_front, dtype=np.intp)
                cache_extended = np.asarray(
                    cache_extended, dtype=np.intp
                ).reshape(-1, 2)
        if stall > 2 * n_phys:
            force_route()
        else:
            edge = best_swap(
                cmap, lay, cache_front, cache_extended,
                lookahead_weight, last_swap,
                target if cost_aware else None,
            )
            if edge is None:
                # Oscillation guard: the only candidate would undo the
                # previous swap (a degree-1 corridor); skip straight to
                # the shortest-path fallback instead of ping-ponging
                # until the stall counter trips.
                force_route()
            else:
                emit_swap(*edge)
                last_swap = edge
                swaps += 1
                stall += 1
        if swaps > max_swaps:
            raise RuntimeError(
                "router exceeded its swap budget (internal error)"
            )
        # The layout changed: every blocked gate is worth re-checking.
        for i in blocked:
            heapq.heappush(ready, i)
        blocked.clear()
    return out, lay, swaps


def _swap_candidates(
    cmap,
    lay: Layout,
    front: list[tuple[int, int]],
    last_swap: tuple[int, int] | None,
) -> list[tuple[int, int]] | None:
    """Candidate swap edges adjacent to the front layer, sorted.

    ``last_swap`` is excluded so the router never immediately undoes
    itself.  Returns ``None`` when the *only* candidate is
    ``last_swap`` (a degree-1 corridor): picking it would oscillate, so
    the caller must fall back to shortest-path force-routing instead.
    """
    active = {lay.physical(q) for pair in front for q in pair}
    candidates = sorted(
        {
            (min(p, q), max(p, q))
            for p in active
            for q in cmap.neighbors(p)
        }
    )
    if last_swap in candidates:
        if len(candidates) == 1:
            return None
        candidates.remove(last_swap)
    return candidates


def _best_swap(
    cmap,
    lay: Layout,
    front: list[tuple[int, int]],
    extended: list[tuple[int, int]],
    lookahead_weight: float,
    last_swap: tuple[int, int] | None,
    cost_target: Target | None = None,
) -> tuple[int, int] | None:
    """The candidate SWAP minimizing the lookahead distance score.

    Vectorized scorer: every candidate's front and extended-set
    distances come from one numpy gather over the coupling map's cached
    distance matrix, replacing the per-candidate python closure of
    :func:`_best_swap_reference`.  Distance sums are exact integers and
    the float combination mirrors the reference expression term for
    term, so the chosen edge is byte-identical (property-tested).

    With ``cost_target`` set, equal-score candidates are tie-broken
    toward the lowest-error coupling edge (the router's cost-aware
    mode).  Only the tie-break changes, but a different tie winner
    still shifts the layout, so downstream swap choices — and the
    total swap count — may diverge from the error-agnostic router on
    calibrated targets; with no per-edge table the tie-break is a
    constant and routing is byte-identical.
    """
    dist = cmap.distance_matrix
    # Layout keeps this numpy mirror in sync with every swap, so no
    # per-call list->array conversion is needed.
    l2p = lay._l2p_arr
    front_phys = l2p[np.asarray(front, dtype=np.intp)]
    # Candidate edges: everything incident to an active (front) qubit,
    # enumerated by one padded gather + membership mask.  flatnonzero
    # yields ascending edge ids and cmap.edges is lexicographically
    # sorted, so this reproduces sorted(set(...)) exactly.
    edges = cmap.edges_array
    touched = cmap.incident_matrix[front_phys.ravel()]
    mask = np.zeros(edges.shape[0] + 1, dtype=bool)
    mask[touched.ravel()] = True
    mask[-1] = False  # padding sentinel
    cand = edges[np.flatnonzero(mask)]
    if last_swap is not None:
        keep = ~((cand[:, 0] == last_swap[0]) & (cand[:, 1] == last_swap[1]))
        if not keep.all():
            if cand.shape[0] == 1:
                return None  # sole candidate undoes the previous swap
            cand = cand[keep]
    cp = cand[:, 0]
    cq = cand[:, 1]

    # Front pairs are wire-disjoint (two ready gates never share a
    # qubit), so each physical qubit sits in at most one front pair and
    # a candidate swap (p, q) shifts the integer front-distance sum by
    # an O(1) delta: re-gather only the pairs containing p or q.  The
    # sums stay exact integers, so dividing them reproduces the
    # reference scorer's floats bit for bit.
    fa = front_phys[:, 0]
    fb = front_phys[:, 1]
    n = dist.shape[0]
    opp = np.full(n, -1, dtype=np.intp)
    opp[fa] = fb
    opp[fb] = fa
    op_p = opp[cp]
    op_q = opp[cq]
    # A -1 sentinel indexes the last column harmlessly; np.where drops it.
    delta = np.where(
        op_p >= 0, dist[cq, op_p] - dist[cp, op_p], 0
    ) + np.where(op_q >= 0, dist[cp, op_q] - dist[cq, op_q], 0)
    # A front pair lying exactly on the candidate edge keeps its
    # distance under the swap, but the two endpoint terms above each
    # subtracted it; add both back.  (The router never scores such a
    # pair — an on-edge gate executes instead of blocking — but the
    # scorer stays correct for arbitrary inputs.)
    delta = delta + np.where(op_p == cq, 2 * dist[cp, cq], 0)
    front_sums = int(dist[fa, fb].sum()) + delta
    scores = front_sums / len(front)
    if len(extended):
        # Extended pairs may repeat qubits, so map them densely; the
        # (C, E) block is small (E is capped by the lookahead depth).
        ext_phys = l2p[np.asarray(extended, dtype=np.intp)]
        a = ext_phys[:, 0][None, :]
        b = ext_phys[:, 1][None, :]
        p = cp[:, None]
        q = cq[:, None]
        ma = np.where(a == p, q, np.where(a == q, p, a))
        mb = np.where(b == p, q, np.where(b == q, p, b))
        ext_sums = dist[ma, mb].sum(axis=1)
        scores = scores + (lookahead_weight * ext_sums) / len(extended)
    best = np.flatnonzero(scores == scores.min())
    if cost_target is not None and best.size > 1:
        errs = np.asarray(
            [
                cost_target.edge_error(int(cand[i, 0]), int(cand[i, 1]))
                for i in best
            ]
        )
        best = best[errs == errs.min()]
    winner = cand[int(best[0])]
    return (int(winner[0]), int(winner[1]))


def _best_swap_reference(
    cmap,
    lay: Layout,
    front: list[tuple[int, int]],
    extended: list[tuple[int, int]],
    lookahead_weight: float,
    last_swap: tuple[int, int] | None,
    cost_target: Target | None = None,
) -> tuple[int, int] | None:
    """The original closure-based scorer (see :func:`_best_swap`).

    Kept as the byte-for-byte baseline: the property suite asserts the
    vectorized scorer picks identical edges, and the perf harness times
    it as the pre-vectorization comparison point.
    """
    candidates = _swap_candidates(cmap, lay, front, last_swap)
    if candidates is None:
        return None

    def score(edge: tuple[int, int]) -> float:
        p, q = edge

        def mapped(v: int) -> int:
            phys = lay.physical(v)
            if phys == p:
                return q
            if phys == q:
                return p
            return phys

        total = sum(
            cmap.distance(mapped(a), mapped(b)) for a, b in front
        ) / len(front)
        if extended:
            total += lookahead_weight * sum(
                cmap.distance(mapped(a), mapped(b)) for a, b in extended
            ) / len(extended)
        return total

    if cost_target is not None:
        return min(
            candidates,
            key=lambda e: (score(e), cost_target.edge_error(*e), e),
        )
    return min(candidates, key=lambda e: (score(e), e))


def _extended_set(
    dag: CircuitDAG,
    blocked: list[int],
    pending: dict[int, int],
    lookahead: int,
    succ_map: dict[int, list[int]] | None = None,
) -> list[tuple[int, int]]:
    """Qubit pairs of the next ``lookahead`` 2q gates past the front.

    ``succ_map`` optionally supplies precomputed successor-id lists
    (the routing loop builds one; standalone callers may omit it).
    """
    out: list[tuple[int, int]] = []
    seen = set(blocked)
    queue = deque(blocked)
    while queue and len(out) < lookahead:
        nid = queue.popleft()
        succ_ids = (
            succ_map[nid]
            if succ_map is not None
            else [s.id for s in dag.successors(nid)]
        )
        for sid in succ_ids:
            if sid in seen or pending.get(sid) is None:
                continue
            seen.add(sid)
            queue.append(sid)
            qubits = dag.node(sid).gate.qubits
            if len(qubits) == 2:
                out.append(qubits)
                if len(out) >= lookahead:
                    break
    return out


def route_circuit(
    circuit: Circuit,
    target: Target,
    layout: str | Layout | None = "dense",
    lookahead: int = DEFAULT_LOOKAHEAD,
    lookahead_weight: float = DEFAULT_LOOKAHEAD_WEIGHT,
    cost_aware: bool | None = None,
    scorer: str = "vector",
) -> RoutingResult:
    """Route a circuit onto ``target``: layout + SABRE swaps + metrics.

    ``layout`` picks the initial placement: ``"trivial"``, ``"dense"``
    (default), or an explicit :class:`Layout`.  ``cost_aware`` controls
    error-aware swap tie-breaking and ``scorer`` the swap-scoring
    implementation (see :func:`route_dag`).
    """
    initial = resolve_layout(layout, circuit, target)
    dag = CircuitDAG.from_circuit(circuit)
    routed_dag, final, swaps = route_dag(
        dag, target, initial, lookahead, lookahead_weight,
        cost_aware=cost_aware, scorer=scorer,
    )
    routed = routed_dag.to_circuit()
    metrics = RoutingMetrics(
        swaps_inserted=swaps,
        depth_before=circuit_depth(circuit),
        depth_after=circuit_depth(routed),
        two_qubit_depth_before=two_qubit_depth(circuit),
        two_qubit_depth_after=two_qubit_depth(routed),
    )
    return RoutingResult(
        circuit=routed,
        target=target,
        initial_layout=initial,
        final_layout=final,
        metrics=metrics,
    )


def naive_route(
    circuit: Circuit,
    target: Target,
    layout: str | Layout | None = "trivial",
) -> RoutingResult:
    """Adjacent-transposition baseline: route there, apply, route back.

    Every non-adjacent 2q gate pays ``2 * (distance - 1)`` swaps and the
    layout is restored after each gate (final layout == initial layout).
    This is exactly the swap-chain strategy the MPS simulator hard-coded
    before the lookahead router existed.
    """
    initial = resolve_layout(layout, circuit, target)
    lay = initial.copy()
    cmap = target.coupling
    if not cmap.is_connected():
        raise ValueError("cannot route on a disconnected coupling map")
    out = Circuit(target.n_qubits, name=circuit.name)
    swaps = 0
    for g in circuit.gates:
        if len(g.qubits) == 1:
            out.gates.append(Gate(g.name, (lay.physical(g.qubits[0]),),
                                  g.params))
            continue
        a, b = g.qubits
        path = cmap.shortest_path(lay.physical(a), lay.physical(b))
        chain = [(path[k], path[k + 1]) for k in range(len(path) - 2)]
        for p, q in chain:
            out.gates.append(Gate("swap", (min(p, q), max(p, q))))
            lay.swap_physical(p, q)
            swaps += 1
        out.gates.append(
            Gate(g.name, (lay.physical(a), lay.physical(b)), g.params)
        )
        for p, q in reversed(chain):
            out.gates.append(Gate("swap", (min(p, q), max(p, q))))
            lay.swap_physical(p, q)
            swaps += 1
    metrics = RoutingMetrics(
        swaps_inserted=swaps,
        depth_before=circuit_depth(circuit),
        depth_after=circuit_depth(out),
        two_qubit_depth_before=two_qubit_depth(circuit),
        two_qubit_depth_after=two_qubit_depth(out),
    )
    return RoutingResult(
        circuit=out,
        target=target,
        initial_layout=initial,
        final_layout=lay,
        metrics=metrics,
    )


def fix_gate_directions(circuit: Circuit, target: Target) -> tuple[Circuit, int]:
    """Repair CX orientation on a directed coupling map.

    A routed ``cx(a, b)`` whose native direction is ``b -> a`` becomes
    ``H a; H b; cx(b, a); H a; H b`` (exact, no global phase).  CZ and
    SWAP are direction-symmetric and pass through.  Returns the fixed
    circuit and the number of reversals; on undirected targets this is
    the identity.  Raises ``ValueError`` for a 2q gate off the coupling
    map entirely (i.e. an unrouted circuit).
    """
    cmap = target.coupling
    out = Circuit(circuit.n_qubits, name=circuit.name)
    fixes = 0
    for g in circuit.gates:
        if g.name != "cx" or len(g.qubits) != 2:
            if len(g.qubits) == 2 and not cmap.has_edge(*g.qubits):
                raise ValueError(
                    f"2q gate on ({g.qubits[0]}, {g.qubits[1]}) is off the "
                    "coupling map; route the circuit first"
                )
            out.gates.append(g)
            continue
        a, b = g.qubits
        if cmap.allows(a, b):
            out.gates.append(g)
        elif cmap.allows(b, a):
            out.h(a).h(b)
            out.gates.append(Gate("cx", (b, a)))
            out.h(a).h(b)
            fixes += 1
        else:
            raise ValueError(
                f"cx on ({a}, {b}) is off the coupling map; route the "
                "circuit first"
            )
    return out, fixes


def on_coupling_edges(circuit: Circuit, target: Target) -> bool:
    """True when every 2q gate of ``circuit`` lies on a coupling edge."""
    return all(
        target.coupling.has_edge(*g.qubits)
        for g in circuit.gates
        if len(g.qubits) == 2
    )


def permute_statevector(psi: np.ndarray, l2p) -> np.ndarray:
    """Apply the layout permutation ``P(L)`` to a dense state.

    Virtual axis ``v`` of ``psi`` moves to physical axis ``l2p[v]``;
    the result is the state as physical wires see it.
    """
    l2p = list(l2p)
    n = len(l2p)
    arr = np.asarray(psi, dtype=complex).reshape((2,) * n)
    return np.moveaxis(arr, list(range(n)), l2p).reshape(-1)


def routed_statevector_equivalent(
    original: Circuit, result: RoutingResult, atol: float = 1e-9
) -> bool:
    """Check ``R|0..0> == P(Lf) (C ⊗ I)|0..0>`` for a routing result.

    Embeds the original state with |0> ancillas on the extra physical
    wires, applies the final-layout permutation, and compares against
    the routed circuit's statevector exactly (routing introduces no
    global phase).
    """
    n_phys = result.circuit.n_qubits
    psi = original.statevector()
    pad = n_phys - original.n_qubits
    if pad:
        anc = np.zeros(2**pad, dtype=complex)
        anc[0] = 1.0
        psi = np.kron(psi, anc)
    expected = permute_statevector(psi, result.final_layout.as_list())
    got = result.circuit.statevector()
    return bool(np.allclose(got, expected, atol=atol))
