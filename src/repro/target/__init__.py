"""Hardware target model and connectivity-constrained compilation.

The compiler-facing view of a device: :class:`Target` (qubit count,
:class:`CouplingMap`, basis gates, error/duration tables), initial
placement (:func:`trivial_layout` / :func:`dense_layout`), SABRE-style
swap routing (:func:`route_dag` / :func:`route_circuit`), the naive
adjacent-transposition baseline (:func:`naive_route`), and CX
direction fixing for directed couplings.  ``parse_target`` implements
the CLI target-string grammar (``line:8``, ``grid:3x3``, ``ring:12``,
``heavy_hex:3``, ``all_to_all:5``, ``*.json``).
"""

from repro.target.cost import (
    EspEstimate,
    estimate_esp,
    gate_error,
    gate_success,
)
from repro.target.coupling import CouplingMap
from repro.target.layout import (
    LAYOUT_METHODS,
    Layout,
    apply_layout,
    dense_layout,
    resolve_layout,
    trivial_layout,
)
from repro.target.routing import (
    RoutingMetrics,
    RoutingResult,
    fix_gate_directions,
    naive_route,
    on_coupling_edges,
    permute_statevector,
    route_circuit,
    route_dag,
    routed_statevector_equivalent,
)
from repro.target.target import DEFAULT_BASIS_GATES, Target, parse_target

__all__ = [
    "CouplingMap",
    "DEFAULT_BASIS_GATES",
    "EspEstimate",
    "LAYOUT_METHODS",
    "Layout",
    "RoutingMetrics",
    "RoutingResult",
    "Target",
    "apply_layout",
    "dense_layout",
    "estimate_esp",
    "fix_gate_directions",
    "gate_error",
    "gate_success",
    "naive_route",
    "on_coupling_edges",
    "parse_target",
    "permute_statevector",
    "resolve_layout",
    "route_circuit",
    "route_dag",
    "routed_statevector_equivalent",
    "trivial_layout",
]
