"""Exact enumeration of unique Clifford+T unitaries (trasyn step 0)."""

from repro.enumeration.clifford_t import (
    UnitaryTable,
    build_table,
    expected_unique_count,
    get_table,
)

__all__ = ["UnitaryTable", "build_table", "expected_unique_count", "get_table"]
