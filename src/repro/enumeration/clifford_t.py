"""Step 0 of trasyn: enumerate unique Clifford+T matrices per T count.

Every single-qubit Clifford+T unitary with T count exactly ``t`` can be
written (Matsumoto-Amano normal form) as ``P . M`` where ``P`` is one of
the syllables ``T``, ``HT``, ``SHT`` and ``M`` has T count ``t - 1``.
Starting from the 24 Cliffords, a breadth-first sweep therefore
discovers every unique matrix (up to the eight global phases) at each T
count, together with a minimal-cost gate sequence producing it.

The number of unique matrices obeys the law ``24 * (3 * 2^t - 2)``
(Matsumoto & Amano 2008), which the test suite verifies — an end-to-end
check of the exact arithmetic, canonicalization, and search.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.enumeration import vectorized as vec
from repro.gates.cliffords import cliffords
from repro.gates.exact import ExactUnitary

# Syllables in increasing H/S cost so that first-seen deduplication keeps
# the cheapest sequence (T count is already minimal by level order).
_SYLLABLES: tuple[tuple[str, tuple[str, ...], int], ...] = (
    ("T", ("T",), 0),
    ("HT", ("H", "T"), 1),
    ("SHT", ("S", "H", "T"), 2),
)


def expected_unique_count(budget: int) -> int:
    """Theoretical count of unique matrices with T count <= budget."""
    return 24 * (3 * 2**budget - 2)


@dataclass(eq=False)  # identity hash/eq: tables are cached per object
class UnitaryTable:
    """Lookup table of unique Clifford+T matrices up to a T-count budget.

    Attributes
    ----------
    budget:
        Maximum T count enumerated.
    coeffs, karr:
        Exact matrices (see :mod:`repro.enumeration.vectorized`).
    mats:
        Float matrices (N, 2, 2) complex, same order.
    t_counts, hs_costs:
        Per-matrix T count and Clifford (H/S) sequence cost.
    parents, prefixes:
        Sequence encoding: entry i is ``SYLLABLE[prefixes[i]] . parents[i]``;
        Clifford roots have ``parents[i] == -1`` and ``prefixes[i]`` indexing
        the Clifford group element.
    """

    budget: int
    coeffs: np.ndarray
    karr: np.ndarray
    mats: np.ndarray
    t_counts: np.ndarray
    hs_costs: np.ndarray
    parents: np.ndarray
    prefixes: np.ndarray
    key_to_index: dict[bytes, int] = field(repr=False)

    def __len__(self) -> int:
        return self.coeffs.shape[0]

    # -- sequence reconstruction -----------------------------------------
    def sequence(self, index: int) -> tuple[str, ...]:
        """Gate names (matrix product order) whose product is mats[index]."""
        tokens: list[str] = []
        i = int(index)
        while self.parents[i] >= 0:
            tokens.extend(_SYLLABLES[self.prefixes[i]][1])
            i = int(self.parents[i])
        tokens.extend(cliffords()[self.prefixes[i]].sequence)
        return tuple(tokens)

    # -- queries ------------------------------------------------------------
    def indices_for_t_range(self, lo: int, hi: int) -> np.ndarray:
        """Indices of matrices with T count in [lo, hi]."""
        return np.nonzero((self.t_counts >= lo) & (self.t_counts <= hi))[0]

    def lookup(self, u: ExactUnitary) -> int | None:
        """Index of the stored matrix equal to ``u`` up to phase, or None."""
        coeffs, k = vec.exact_to_coeffs(u.reduce())
        key = vec.canonical_keys(coeffs[None], np.array([k]))[0]
        return self.key_to_index.get(key)

    def exact(self, index: int) -> ExactUnitary:
        return vec.coeffs_to_exact(self.coeffs[index], int(self.karr[index]))

    def level_sizes(self) -> list[int]:
        return [int((self.t_counts == t).sum()) for t in range(self.budget + 1)]


def build_table(budget: int) -> UnitaryTable:
    """Enumerate all unique Clifford+T matrices with T count <= budget."""
    if budget < 0:
        raise ValueError("budget must be nonnegative")
    cliffs = cliffords()
    coeffs_list = []
    karr_list = []
    t_list = []
    cost_list = []
    parent_list = []
    prefix_list = []
    key_to_index: dict[bytes, int] = {}

    # Level 0: the 24 Cliffords.
    c0 = np.stack([vec.exact_to_coeffs(c.exact)[0] for c in cliffs])
    k0 = np.array([c.exact.k for c in cliffs], dtype=np.int64)
    c0, k0 = vec.reduce_batch(c0, k0)
    keys0 = vec.canonical_keys(c0, k0)
    for i, key in enumerate(keys0):
        key_to_index[key] = i
        coeffs_list.append(c0[i])
        karr_list.append(int(k0[i]))
        t_list.append(0)
        cost_list.append(cliffs[i].hs_cost)
        parent_list.append(-1)
        prefix_list.append(i)

    frontier = np.arange(len(cliffs))
    for t in range(1, budget + 1):
        fr_coeffs = np.stack([coeffs_list[i] for i in frontier])
        fr_karr = np.array([karr_list[i] for i in frontier], dtype=np.int64)
        # Visit cheaper parents first so ties keep cheap sequences.
        order = np.argsort([cost_list[i] for i in frontier], kind="stable")
        fr_coeffs, fr_karr = fr_coeffs[order], fr_karr[order]
        frontier = frontier[order]
        # Generate candidates for all three syllables, then deduplicate in
        # ascending total-cost order so the cheapest sequence is kept.
        batches = []
        for syl_idx, (_name, tokens, syl_cost) in enumerate(_SYLLABLES):
            gate = ExactUnitary.from_gates(tokens)
            cand, cand_k = vec.left_multiply(gate, fr_coeffs, fr_karr)
            cand, cand_k = vec.reduce_batch(cand, cand_k)
            keys = vec.canonical_keys(cand, cand_k)
            costs = np.array(
                [cost_list[p] + syl_cost for p in frontier], dtype=np.int64
            )
            batches.append((syl_idx, cand, cand_k, keys, costs))
        all_costs = np.concatenate([b[4] for b in batches])
        order = np.argsort(all_costs, kind="stable")
        sizes = [len(b[3]) for b in batches]
        offsets = np.cumsum([0] + sizes)
        new_indices: list[int] = []
        for flat in order:
            batch_no = int(np.searchsorted(offsets, flat, side="right")) - 1
            j = int(flat - offsets[batch_no])
            syl_idx, cand, cand_k, keys, costs = batches[batch_no]
            key = keys[j]
            if key in key_to_index:
                continue
            idx = len(coeffs_list)
            key_to_index[key] = idx
            coeffs_list.append(cand[j])
            karr_list.append(int(cand_k[j]))
            t_list.append(t)
            cost_list.append(int(costs[j]))
            parent_list.append(int(frontier[j]))
            prefix_list.append(syl_idx)
            new_indices.append(idx)
        frontier = np.array(new_indices, dtype=np.int64)

    coeffs = np.stack(coeffs_list)
    karr = np.array(karr_list, dtype=np.int64)
    table = UnitaryTable(
        budget=budget,
        coeffs=coeffs,
        karr=karr,
        mats=vec.batch_to_complex(coeffs, karr),
        t_counts=np.array(t_list, dtype=np.int64),
        hs_costs=np.array(cost_list, dtype=np.int64),
        parents=np.array(parent_list, dtype=np.int64),
        prefixes=np.array(prefix_list, dtype=np.int64),
        key_to_index=key_to_index,
    )
    return table


# ---------------------------------------------------------------------------
# Cached access: tables are deterministic per budget, so memoize in-process
# and (optionally) on disk for reuse across benchmark invocations.
# ---------------------------------------------------------------------------

_TABLE_CACHE: dict[int, UnitaryTable] = {}
# Serializes cold builds: concurrent compile_batch workers must not each
# run build_table (seconds of CPU and a full table of memory per worker).
_TABLE_LOCK = threading.Lock()


def get_table(budget: int, use_disk_cache: bool = True) -> UnitaryTable:
    """Memoized :func:`build_table` (in-process and on-disk caches)."""
    if budget in _TABLE_CACHE:
        return _TABLE_CACHE[budget]
    with _TABLE_LOCK:
        if budget in _TABLE_CACHE:
            return _TABLE_CACHE[budget]
        path = _cache_path(budget)
        if use_disk_cache and path and os.path.exists(path):
            table = _load_table(path, budget)
            if table is not None:
                _TABLE_CACHE[budget] = table
                return table
        table = build_table(budget)
        _TABLE_CACHE[budget] = table
        if use_disk_cache and path:
            _save_table(table, path)
        return table


def _cache_path(budget: int) -> str | None:
    root = os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(os.path.expanduser("~"), ".cache", "repro")
    )
    try:
        os.makedirs(root, exist_ok=True)
    except OSError:
        return None
    return os.path.join(root, f"clifford_t_table_v1_b{budget}.npz")


def _save_table(table: UnitaryTable, path: str) -> None:
    # Write-then-rename: a concurrent reader (another process) must
    # never observe a truncated npz at the final path.
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        np.savez_compressed(
            tmp,
            budget=table.budget,
            coeffs=table.coeffs,
            karr=table.karr,
            t_counts=table.t_counts,
            hs_costs=table.hs_costs,
            parents=table.parents,
            prefixes=table.prefixes,
        )
        # savez appends .npz when the filename lacks the suffix.
        os.replace(f"{tmp}.npz", path)
    except OSError:
        # Disk cache is best-effort, but never leave a partial temp
        # file behind to accumulate in the cache directory.
        try:
            os.unlink(f"{tmp}.npz")
        except OSError:
            pass


def _load_table(path: str, budget: int) -> UnitaryTable | None:
    try:
        data = np.load(path)
    except (OSError, ValueError):
        return None
    if int(data["budget"]) != budget:
        return None
    coeffs = data["coeffs"]
    karr = data["karr"]
    keys = vec.canonical_keys(coeffs, karr)
    return UnitaryTable(
        budget=budget,
        coeffs=coeffs,
        karr=karr,
        mats=vec.batch_to_complex(coeffs, karr),
        t_counts=data["t_counts"],
        hs_costs=data["hs_costs"],
        parents=data["parents"],
        prefixes=data["prefixes"],
        key_to_index={k: i for i, k in enumerate(keys)},
    )
