"""Vectorized exact arithmetic on batches of Z[omega] 2x2 matrices.

A batch is an int64 array of shape (N, 2, 2, 4) holding the omega-basis
coefficients (a, b, c, d) of every matrix entry (value = a*w^3 + b*w^2 +
c*w + d), plus an (N,) array of denominator exponents ``k`` (matrix =
coeffs / sqrt(2)^k).  All operations are exact; no floats are involved
until :func:`batch_to_complex`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gates.exact import ExactUnitary
from repro.rings.zomega import ZOmega

_OMEGA_POWERS = np.array(
    [np.exp(1j * math.pi / 4) ** p for p in (3, 2, 1, 0)], dtype=complex
)


def zmul(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Product of Z[omega] elements held in trailing-4 coefficient axes."""
    a, b, c, d = (x[..., i] for i in range(4))
    e, f, g, h = (y[..., i] for i in range(4))
    return np.stack(
        [
            a * h + b * g + c * f + d * e,
            b * h + c * g + d * f - a * e,
            c * h + d * g - a * f - b * e,
            d * h - a * g - b * f - c * e,
        ],
        axis=-1,
    )


def omega_shift(x: np.ndarray) -> np.ndarray:
    """Multiply by omega: (a, b, c, d) -> (b, c, d, -a)."""
    return np.stack([x[..., 1], x[..., 2], x[..., 3], -x[..., 0]], axis=-1)


def mul_sqrt2(x: np.ndarray) -> np.ndarray:
    """Multiply by sqrt(2) = w - w^3: (a,b,c,d) -> (b-d, a+c, b+d, c-a)."""
    a, b, c, d = (x[..., i] for i in range(4))
    return np.stack([b - d, a + c, b + d, c - a], axis=-1)


def div_sqrt2(x: np.ndarray) -> np.ndarray:
    """Exact division by sqrt(2); caller must ensure divisibility."""
    return mul_sqrt2(x) // 2


def divisible_by_sqrt2(x: np.ndarray) -> np.ndarray:
    """Elementwise divisibility test, reduced over matrix entries.

    Input (N, 2, 2, 4); output (N,) bool — True when *all four* entries
    of the matrix are divisible by sqrt(2).
    """
    ac = (x[..., 0] + x[..., 2]) % 2 == 0
    bd = (x[..., 1] + x[..., 3]) % 2 == 0
    return (ac & bd).reshape(x.shape[0], -1).all(axis=1)


def exact_to_coeffs(u: ExactUnitary) -> tuple[np.ndarray, int]:
    """Convert an ExactUnitary to a (2, 2, 4) coefficient array and k."""
    m = np.empty((2, 2, 4), dtype=np.int64)
    for idx, e in zip(((0, 0), (0, 1), (1, 0), (1, 1)), u.entries()):
        m[idx] = (e.a, e.b, e.c, e.d)
    return m, u.k


def coeffs_to_exact(coeffs: np.ndarray, k: int) -> ExactUnitary:
    """Inverse of :func:`exact_to_coeffs`."""
    zs = [
        ZOmega(int(coeffs[i, j, 0]), int(coeffs[i, j, 1]),
               int(coeffs[i, j, 2]), int(coeffs[i, j, 3]))
        for i in (0, 1)
        for j in (0, 1)
    ]
    return ExactUnitary(zs[0], zs[1], zs[2], zs[3], int(k))


def left_multiply(gate: ExactUnitary, coeffs: np.ndarray, karr: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Left-multiply a batch by a fixed exact gate: G @ M for every M."""
    g, gk = exact_to_coeffs(gate)
    out = np.empty_like(coeffs)
    for i in (0, 1):
        for j in (0, 1):
            out[:, i, j] = zmul(g[i, 0], coeffs[:, 0, j]) + zmul(
                g[i, 1], coeffs[:, 1, j]
            )
    return out, karr + gk


def reduce_batch(coeffs: np.ndarray, karr: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Divide out common sqrt(2) factors per matrix (lowest terms)."""
    coeffs = coeffs.copy()
    karr = karr.copy()
    while True:
        mask = (karr > 0) & divisible_by_sqrt2(coeffs)
        if not mask.any():
            return coeffs, karr
        coeffs[mask] = div_sqrt2(coeffs[mask])
        karr[mask] -= 1


def canonical_keys(coeffs: np.ndarray, karr: np.ndarray) -> list[bytes]:
    """Per-matrix keys identifying matrices up to global phase omega^j.

    Matrices must already be in lowest terms.  The key is ``k`` plus the
    lexicographically smallest flattened coefficient tuple over the
    eight phase rotations, encoded order-preservingly as bytes.
    """
    n = coeffs.shape[0]
    flat = coeffs.reshape(n, 16)
    variants = np.empty((8, n, 16), dtype=np.int64)
    variants[0] = flat
    cur = coeffs
    for j in range(1, 8):
        cur = omega_shift(cur)
        variants[j] = cur.reshape(n, 16)
    # Order-preserving byte encoding: shift to unsigned, big-endian.  The
    # bound is fixed so keys are comparable across independent batches.
    bound = 2**30
    if int(np.abs(variants).max(initial=0)) >= bound:
        raise OverflowError("coefficients exceed the encodable range")
    enc = (variants + bound).astype(">u4")
    as_bytes = np.ascontiguousarray(enc).view("S64")[..., 0]
    smallest = as_bytes[0]
    for j in range(1, 8):
        cand = as_bytes[j]
        smaller = cand < smallest
        if smaller.any():
            smallest = np.where(smaller, cand, smallest)
    karr8 = karr.astype(np.uint8)
    smallest_list = smallest.tolist()
    return [bytes([karr8[i]]) + smallest_list[i] for i in range(n)]


def batch_to_complex(coeffs: np.ndarray, karr: np.ndarray) -> np.ndarray:
    """Convert an exact batch to float matrices (N, 2, 2) complex."""
    vals = coeffs @ _OMEGA_POWERS
    scale = math.sqrt(2.0) ** (-karr.astype(float))
    return vals * scale[:, None, None]
