"""Synthesis-cache benchmarks: tiers, process pools, and cold starts.

Times :func:`repro.pipeline.compile_batch` over a synthesis-heavy batch
in the regimes the two-tier cache design distinguishes:

* ``cold/serial`` / ``cold/thread-N`` / ``cold/process-N`` — every
  rotation must be synthesized.  gridsynth is pure-Python CPU-bound
  work, so threads cannot exceed one core of miss throughput; the
  process pool is the path that scales with cores.  On a single-core
  host the pool only adds overhead — ``host_cpus`` is recorded so the
  committed numbers are read in context (the >=3x pool speedup target
  applies at >=8 cores).
* ``warm/memory`` — the L1 upper bound: every key hits the in-memory
  LRU.
* ``cold_start/warm_segments`` — a *fresh* process (fresh LRU, fresh
  store handle) over segments precompiled by
  :func:`repro.pipeline.warm.warm_rz_catalog`; the ROADMAP target is
  staying within ~2x of ``warm/memory``.

The batch is compiled at optimization level 0 so the lowering keeps
every Rz angle verbatim (higher levels re-derive angles through
merge_1q_runs' ZYZ decomposition) — the angle grid the precompiler
warmed is then exactly the grid the compile requests, and the timings
isolate cache behaviour from pass behaviour.
"""

from __future__ import annotations

import shutil
import tempfile

from repro.bench.harness import BenchResult, BenchSpec

_N_CIRCUITS = {False: 8, True: 4}
_N_ANGLES = {False: 16, True: 6}
_EPS = {False: 1e-3, True: 1e-2}
#: Pool width for the thread/process entries.  8 is the acceptance
#: point for the pool-vs-thread comparison on multi-core hosts.
_POOL_WORKERS = {False: 8, True: 2}

_OPT_LEVEL = 0


def _angles(quick: bool) -> list[float]:
    from repro.pipeline.warm import catalog_angles

    return catalog_angles(_N_ANGLES[quick])


def _circuits(quick: bool):
    """A batch whose unique-angle set is exactly ``_angles(quick)``."""
    from repro.circuits import Circuit

    angles = _angles(quick)
    circuits = []
    k = 0
    for i in range(_N_CIRCUITS[quick]):
        c = Circuit(2, name=f"bench{i}")
        c.h(0)
        for _ in range(4):
            c.rz(angles[k % len(angles)], 0)
            c.cx(0, 1)
            k += 1
        c.h(1)
        circuits.append(c)
    return circuits


def _compile(circuits, quick: bool, cache, **kwargs):
    from repro.pipeline import compile_batch

    before = cache.stats()
    batch = compile_batch(
        circuits, workflow="gridsynth", eps=_EPS[quick], cache=cache,
        optimization_level=_OPT_LEVEL, **kwargs,
    )
    after = cache.stats()
    # Deltas, not lifetime counters: entries reusing a primed cache
    # (warm/memory) report what *this* compile did.
    extra = {
        "rotations": sum(r.n_rotations for r in batch),
        "l1_hits": after.hits - before.hits,
        "computes": after.computes - before.computes,
    }
    if after.store_attached:
        extra["l2_hits"] = (
            after.l2_hits + after.l2_fallback_hits
            - before.l2_hits - before.l2_fallback_hits
        )
        extra["l2_misses"] = after.l2_misses - before.l2_misses
    return extra


def _params(quick: bool, **overrides):
    params = {
        "n_circuits": _N_CIRCUITS[quick],
        "n_angles": _N_ANGLES[quick],
        "eps": _EPS[quick],
        "optimization_level": _OPT_LEVEL,
        "workflow": "gridsynth",
    }
    params.update(overrides)
    return params


def _cold_serial_spec(quick: bool) -> BenchSpec:
    def setup():
        from repro.pipeline import SynthesisCache

        circuits = _circuits(quick)

        def run():
            return _compile(circuits, quick, SynthesisCache(),
                            max_workers=1)

        return run

    return BenchSpec(
        name="compile_batch/cold/serial",
        params=_params(quick, mode="serial"),
        setup=setup,
    )


def _cold_thread_spec(quick: bool) -> BenchSpec:
    n = _POOL_WORKERS[quick]

    def setup():
        from repro.pipeline import SynthesisCache

        circuits = _circuits(quick)

        def run():
            return _compile(circuits, quick, SynthesisCache(),
                            max_workers=n)

        return run

    return BenchSpec(
        name=f"compile_batch/cold/thread-{n}",
        params=_params(quick, mode="thread", pool_width=n),
        setup=setup,
    )


def _cold_process_spec(quick: bool) -> BenchSpec:
    n = _POOL_WORKERS[quick]

    def setup():
        from repro.pipeline import SynthesisCache

        circuits = _circuits(quick)

        def run():
            # A fresh store directory per repeat keeps the pool cold:
            # the timing covers fork + synthesis + segment publish.
            tmp = tempfile.mkdtemp(prefix="repro-bench-store-")
            try:
                return _compile(circuits, quick, SynthesisCache(),
                                workers=n, cache_dir=tmp)
            finally:
                shutil.rmtree(tmp, ignore_errors=True)

        return run

    return BenchSpec(
        name=f"compile_batch/cold/process-{n}",
        params=_params(quick, mode="process", pool_width=n),
        setup=setup,
    )


def _warm_memory_spec(quick: bool) -> BenchSpec:
    def setup():
        from repro.pipeline import SynthesisCache

        circuits = _circuits(quick)
        cache = SynthesisCache()
        _compile(circuits, quick, cache, max_workers=1)  # prime L1

        def run():
            return _compile(circuits, quick, cache, max_workers=1)

        return run

    return BenchSpec(
        name="compile_batch/warm/memory",
        params=_params(quick, mode="warm-l1"),
        setup=setup,
    )


def _cold_start_spec(quick: bool) -> BenchSpec:
    def setup():
        from repro.pipeline import DiskSynthesisStore, SynthesisCache
        from repro.pipeline.warm import warm_rz_catalog

        circuits = _circuits(quick)
        tmp = tempfile.mkdtemp(prefix="repro-bench-warmseg-")
        warm_rz_catalog(tmp, n_angles=_N_ANGLES[quick],
                        eps_grid=(_EPS[quick],), workers=1)

        def run():
            # Fresh LRU + fresh store handle = a brand-new compiler
            # process; only the precompiled segments are warm.
            cache = SynthesisCache(store=DiskSynthesisStore(tmp))
            return _compile(circuits, quick, cache, max_workers=1)

        return run

    return BenchSpec(
        name="compile_batch/cold_start/warm_segments",
        params=_params(quick, mode="cold-start"),
        setup=setup,
    )


def specs(quick: bool) -> list[BenchSpec]:
    return [
        _cold_serial_spec(quick),
        _cold_thread_spec(quick),
        _cold_process_spec(quick),
        _warm_memory_spec(quick),
        _cold_start_spec(quick),
    ]


def finalize(results: list[BenchResult]) -> None:
    from repro.pipeline import default_num_processes

    by_prefix = {}
    for r in results:
        head = "/".join(r.name.split("/")[:2])
        by_prefix[head] = r
    thread = next((r for r in results
                   if r.name.startswith("compile_batch/cold/thread-")), None)
    process = next((r for r in results
                    if r.name.startswith("compile_batch/cold/process-")), None)
    if thread is not None and process is not None:
        process.extra["host_cpus"] = default_num_processes()
        if process.median_s > 0:
            process.extra["speedup_vs_thread"] = round(
                thread.median_s / process.median_s, 3
            )
    warm = by_prefix.get("compile_batch/warm")
    cold_start = by_prefix.get("compile_batch/cold_start")
    if warm is not None and cold_start is not None and warm.median_s > 0:
        cold_start.extra["slowdown_vs_warm_memory"] = round(
            cold_start.median_s / warm.median_s, 3
        )
