"""Timing discipline and report schema for the standing perf harness.

Every benchmark is a :class:`BenchSpec`: a ``setup`` that builds the
fixture (excluded from timing) and returns the zero-argument thunk to
time.  :func:`run_specs` applies the warmup/repeat/median-and-spread
discipline and :func:`write_report` emits the schema-versioned JSON the
repo keeps at its root (``BENCH_routing.json`` etc.) so every PR can
show its perf delta against the committed numbers.

Report schema (``repro-bench/v1``)
----------------------------------
::

    {
      "schema": "repro-bench/v1",
      "area": "routing",
      "quick": false,
      "warmup": 1,
      "repeats": 5,
      "benchmarks": [
        {
          "name": "route_dag/grid/100q",
          "params": {"topology": "grid", "n_qubits": 100, ...},
          "warmup": 1,
          "repeats": 5,
          "median_s": 0.123,
          "mean_s": 0.125,
          "min_s": 0.120,
          "max_s": 0.131,
          "stdev_s": 0.004,
          "extra": {"swaps": 518}
        }
      ]
    }

``median_s`` is the headline number; ``min``/``max``/``stdev`` record
the spread so noisy runs are visible.  ``extra`` holds benchmark-level
facts (gate counts, derived speedups) that make the report
self-describing.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable

SCHEMA_VERSION = "repro-bench/v1"

#: Fields every benchmark entry must carry (schema validation).
_ENTRY_FIELDS = (
    "name",
    "params",
    "warmup",
    "repeats",
    "median_s",
    "mean_s",
    "min_s",
    "max_s",
    "stdev_s",
    "extra",
)


@dataclass
class BenchSpec:
    """One benchmark: named fixture + the thunk to time.

    ``setup`` runs once, untimed, and returns the callable that is
    timed ``warmup + repeats`` times.  The thunk may return a dict,
    which is merged into the result's ``extra`` (last repeat wins) —
    the cheap way to record output facts like swap counts.
    """

    name: str
    params: dict[str, Any]
    setup: Callable[[], Callable[[], Any]]
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass
class BenchResult:
    """Timing summary of one executed benchmark."""

    name: str
    params: dict[str, Any]
    warmup: int
    repeats: int
    times_s: list[float]
    extra: dict[str, Any]

    @property
    def median_s(self) -> float:
        return statistics.median(self.times_s)

    def as_dict(self) -> dict[str, Any]:
        times = self.times_s
        return {
            "name": self.name,
            "params": self.params,
            "warmup": self.warmup,
            "repeats": self.repeats,
            "median_s": statistics.median(times),
            "mean_s": statistics.fmean(times),
            "min_s": min(times),
            "max_s": max(times),
            "stdev_s": statistics.stdev(times) if len(times) > 1 else 0.0,
            "extra": self.extra,
        }


def run_spec(spec: BenchSpec, warmup: int, repeats: int) -> BenchResult:
    """Time one spec: setup (untimed), ``warmup`` discards, ``repeats``."""
    if repeats < 1:
        raise ValueError("need at least one timed repeat")
    fn = spec.setup()
    extra = dict(spec.extra)
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
        if isinstance(out, dict):
            extra.update(out)
    return BenchResult(
        name=spec.name,
        params=spec.params,
        warmup=warmup,
        repeats=repeats,
        times_s=times,
        extra=extra,
    )


def run_specs(
    specs: list[BenchSpec],
    warmup: int,
    repeats: int,
    progress: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    results = []
    for spec in specs:
        if progress is not None:
            progress(f"  {spec.name} ...")
        results.append(run_spec(spec, warmup, repeats))
        if progress is not None:
            progress(f"  {spec.name}: {results[-1].median_s:.4f}s median")
    return results


def report_dict(
    area: str,
    results: list[BenchResult],
    quick: bool,
    warmup: int,
    repeats: int,
) -> dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "area": area,
        "quick": bool(quick),
        "warmup": warmup,
        "repeats": repeats,
        "benchmarks": [r.as_dict() for r in results],
    }


def write_report(path: str, report: dict[str, Any]) -> None:
    """Atomically write a report via :mod:`repro.analysis.atomic_io`."""
    from repro.analysis.atomic_io import atomic_write_json

    validate_report(report)
    atomic_write_json(path, report, indent=2, trailing_newline=True)


#: Fresh medians may exceed the committed maximum by this fraction
#: before counting as a regression (machine and load variance).
DEFAULT_COMPARE_TOLERANCE = 0.25


def compare_reports(
    committed: dict[str, Any],
    fresh: dict[str, Any],
    tolerance: float = DEFAULT_COMPARE_TOLERANCE,
) -> list[dict[str, Any]]:
    """Diff a fresh report against a committed baseline, entry by entry.

    An entry regresses when its fresh median exceeds the committed
    run's *recorded spread* — ``max_s`` — by more than ``tolerance``
    (so committed noise is not mistaken for a slowdown).  Returns one
    row per committed benchmark::

        {"name", "committed_median_s", "committed_max_s",
         "fresh_median_s",  # None when the benchmark vanished
         "ratio",           # fresh / committed median, None if missing
         "committed_speedup",  # extra.speedup_vs_reference, None if
         "fresh_speedup",      # ...absent — the machine-relative
                               # metric hard gates compare instead of
                               # cross-machine wall clock
         "regressed"}       # bool; a vanished benchmark regresses

    Both reports must cover the same area at the same ``quick`` size,
    otherwise the medians are not comparable and ``ValueError`` is
    raised.
    """
    validate_report(committed)
    validate_report(fresh)
    if committed["area"] != fresh["area"]:
        raise ValueError(
            f"area mismatch: committed {committed['area']!r} "
            f"vs fresh {fresh['area']!r}"
        )
    if bool(committed["quick"]) != bool(fresh["quick"]):
        raise ValueError(
            "quick-mode mismatch: committed and fresh reports time "
            "different problem sizes"
        )
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    fresh_by_name = {e["name"]: e for e in fresh["benchmarks"]}
    rows = []
    for entry in committed["benchmarks"]:
        counterpart = fresh_by_name.get(entry["name"])
        row = {
            "name": entry["name"],
            "committed_median_s": entry["median_s"],
            "committed_max_s": entry["max_s"],
            "fresh_median_s": None,
            "ratio": None,
            "committed_speedup": entry.get("extra", {}).get(
                "speedup_vs_reference"
            ),
            "fresh_speedup": None,
            "regressed": True,
        }
        if counterpart is not None:
            fresh_median = counterpart["median_s"]
            threshold = max(entry["max_s"], entry["median_s"]) * (
                1.0 + tolerance
            )
            row["fresh_median_s"] = fresh_median
            if entry["median_s"] > 0:
                row["ratio"] = fresh_median / entry["median_s"]
            row["fresh_speedup"] = counterpart.get("extra", {}).get(
                "speedup_vs_reference"
            )
            row["regressed"] = fresh_median > threshold
        rows.append(row)
    return rows


def validate_report(report: Any) -> None:
    """Raise ``ValueError`` unless ``report`` matches ``repro-bench/v1``."""
    if not isinstance(report, dict):
        raise ValueError("report must be a JSON object")
    if report.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unknown schema {report.get('schema')!r} "
            f"(expected {SCHEMA_VERSION!r})"
        )
    for key in ("area", "quick", "warmup", "repeats", "benchmarks"):
        if key not in report:
            raise ValueError(f"report missing {key!r}")
    if not isinstance(report["benchmarks"], list) or not report["benchmarks"]:
        raise ValueError("report carries no benchmarks")
    for entry in report["benchmarks"]:
        if not isinstance(entry, dict):
            raise ValueError("benchmark entry must be an object")
        for key in _ENTRY_FIELDS:
            if key not in entry:
                raise ValueError(
                    f"benchmark {entry.get('name', '<unnamed>')!r} "
                    f"missing {key!r}"
                )
        for key in ("median_s", "mean_s", "min_s", "max_s", "stdev_s"):
            value = entry[key]
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"benchmark {entry['name']!r}: {key} must be a "
                    "non-negative number"
                )
