"""``python -m repro.bench`` — run the standing perf harness."""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench import AREAS, compare_reports, run_area
from repro.bench.harness import DEFAULT_COMPARE_TOLERANCE, validate_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Time the compiler's hot paths and write schema-versioned "
            "BENCH_<area>.json reports."
        ),
    )
    parser.add_argument(
        "--area",
        choices=AREAS + ("all",),
        default="all",
        help="which benchmark area to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: small sizes, one unwarmed repeat",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="untimed warmup iterations (default: 1, quick: 0)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timed repeats per benchmark (default: 5, quick: 1)",
    )
    parser.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_<area>.json (default: cwd)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="run and print medians without writing report files",
    )
    parser.add_argument(
        "--compare", action="append", default=None, metavar="REPORT",
        help=(
            "committed BENCH_<area>.json to diff against: re-runs that "
            "area at the report's sizes (no files written) and flags "
            "entries regressing beyond the recorded spread; repeatable; "
            "exits 2 on regression"
        ),
    )
    parser.add_argument(
        "--compare-tolerance", type=float,
        default=DEFAULT_COMPARE_TOLERANCE,
        help=(
            "fraction a fresh median may exceed the committed max "
            f"before flagging (default: {DEFAULT_COMPARE_TOLERANCE})"
        ),
    )
    parser.add_argument(
        "--fail-area", action="append", default=None, metavar="AREA",
        choices=AREAS,
        help=(
            "gate hard on this area: exit 2 only when one of its "
            "entries slows past --fail-ratio (or goes missing); other "
            "areas then merely warn; repeatable.  Without this flag "
            "every compared area gates at the recorded-spread "
            "threshold (legacy behavior)."
        ),
    )
    parser.add_argument(
        "--fail-ratio", type=float, default=1.3,
        help=(
            "fresh/committed median ratio beyond which a --fail-area "
            "entry fails the run (default: 1.3)"
        ),
    )
    return parser


def _run_compare(args: argparse.Namespace) -> int:
    """``--compare`` mode: fresh run per committed report, diff, flag.

    Without ``--fail-area`` every spread-threshold regression is fatal
    (legacy behavior).  With it, only the named areas gate the exit
    code — and at the coarser ``--fail-ratio`` median multiple, which
    tolerates shared-runner noise the per-entry spread cannot — while
    regressions elsewhere print loudly but stay advisory.
    """
    fail_areas = set(args.fail_area or ())
    gated = bool(fail_areas)
    regressed = False
    failed = False
    for path in args.compare:
        with open(path, encoding="utf-8") as fh:
            committed = json.load(fh)
        validate_report(committed)
        area = committed["area"]
        quick = bool(committed["quick"])
        hard = area in fail_areas
        print(f"[bench] compare {path}: area={area} quick={quick}")
        fresh = run_area(
            area,
            quick=quick,
            warmup=args.warmup,
            repeats=args.repeats,
            out_dir=None,
            progress=lambda msg: print(f"[bench]{msg}"),
        )
        rows = compare_reports(
            committed, fresh, tolerance=args.compare_tolerance
        )
        for row in rows:
            if row["fresh_median_s"] is None:
                print(f"[bench]   {row['name']}: MISSING from fresh run")
                regressed = True
                failed = failed or hard
                continue
            fails = hard and row["ratio"] > args.fail_ratio
            flag = "ok"
            if fails:
                flag = f"FAILED (> {args.fail_ratio}x)"
            elif row["regressed"]:
                flag = "REGRESSED"
            print(
                f"[bench]   {row['name']}: committed "
                f"{row['committed_median_s']:.4f}s -> fresh "
                f"{row['fresh_median_s']:.4f}s "
                f"({row['ratio']:.2f}x) {flag}"
            )
            regressed = regressed or row["regressed"]
            failed = failed or fails
    if gated:
        if failed:
            print(
                f"[bench] gated area regression beyond {args.fail_ratio}x "
                f"(areas: {', '.join(sorted(fail_areas))})"
            )
            return 2
        if regressed:
            print(
                "[bench] regressions beyond recorded spread in ungated "
                "areas (advisory only)"
            )
        else:
            print("[bench] no regressions beyond recorded spread")
        return 0
    if regressed:
        print(
            "[bench] regression beyond recorded spread "
            f"(tolerance {args.compare_tolerance})"
        )
        return 2
    print("[bench] no regressions beyond recorded spread")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.compare:
        return _run_compare(args)
    areas = AREAS if args.area == "all" else (args.area,)
    out_dir = None if args.no_write else args.out_dir
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
    for area in areas:
        print(f"[bench] area={area} quick={args.quick}")
        report = run_area(
            area,
            quick=args.quick,
            warmup=args.warmup,
            repeats=args.repeats,
            out_dir=out_dir,
            progress=lambda msg: print(f"[bench]{msg}"),
        )
        for entry in report["benchmarks"]:
            extra = entry["extra"]
            note = f"  {extra}" if extra else ""
            print(
                f"[bench]   {entry['name']}: "
                f"median {entry['median_s']:.4f}s "
                f"(min {entry['min_s']:.4f}, max {entry['max_s']:.4f})"
                f"{note}"
            )
        if out_dir is not None:
            print(f"[bench] wrote {out_dir}/BENCH_{area}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
