"""``python -m repro.bench`` — run the standing perf harness."""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench import AREAS, run_area


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Time the compiler's hot paths and write schema-versioned "
            "BENCH_<area>.json reports."
        ),
    )
    parser.add_argument(
        "--area",
        choices=AREAS + ("all",),
        default="all",
        help="which benchmark area to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: small sizes, one unwarmed repeat",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="untimed warmup iterations (default: 1, quick: 0)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timed repeats per benchmark (default: 5, quick: 1)",
    )
    parser.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_<area>.json (default: cwd)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="run and print medians without writing report files",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    areas = AREAS if args.area == "all" else (args.area,)
    out_dir = None if args.no_write else args.out_dir
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
    for area in areas:
        print(f"[bench] area={area} quick={args.quick}")
        report = run_area(
            area,
            quick=args.quick,
            warmup=args.warmup,
            repeats=args.repeats,
            out_dir=out_dir,
            progress=lambda msg: print(f"[bench]{msg}"),
        )
        for entry in report["benchmarks"]:
            extra = entry["extra"]
            note = f"  {extra}" if extra else ""
            print(
                f"[bench]   {entry['name']}: "
                f"median {entry['median_s']:.4f}s "
                f"(min {entry['min_s']:.4f}, max {entry['max_s']:.4f})"
                f"{note}"
            )
        if out_dir is not None:
            print(f"[bench] wrote {out_dir}/BENCH_{area}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
