"""``python -m repro.bench`` — run the standing perf harness."""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench import AREAS, compare_reports, run_area
from repro.bench.harness import DEFAULT_COMPARE_TOLERANCE, validate_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Time the compiler's hot paths and write schema-versioned "
            "BENCH_<area>.json reports."
        ),
    )
    parser.add_argument(
        "--area",
        choices=AREAS + ("all",),
        default="all",
        help="which benchmark area to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: small sizes, one unwarmed repeat",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="untimed warmup iterations (default: 1, quick: 0)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timed repeats per benchmark (default: 5, quick: 1)",
    )
    parser.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_<area>.json (default: cwd)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="run and print medians without writing report files",
    )
    parser.add_argument(
        "--compare", action="append", default=None, metavar="REPORT",
        help=(
            "committed BENCH_<area>.json to diff against: re-runs that "
            "area at the report's sizes (no files written) and flags "
            "entries regressing beyond the recorded spread; repeatable; "
            "exits 2 on regression"
        ),
    )
    parser.add_argument(
        "--compare-tolerance", type=float,
        default=DEFAULT_COMPARE_TOLERANCE,
        help=(
            "fraction a fresh median may exceed the committed max "
            f"before flagging (default: {DEFAULT_COMPARE_TOLERANCE})"
        ),
    )
    parser.add_argument(
        "--fail-area", action="append", default=None, metavar="AREA",
        choices=AREAS,
        help=(
            "gate hard on this area: exit 2 only when one of its "
            "entries slows past --fail-ratio (or goes missing); other "
            "areas then merely warn; repeatable.  Without this flag "
            "every compared area gates at the recorded-spread "
            "threshold (legacy behavior)."
        ),
    )
    parser.add_argument(
        "--fail-ratio", type=float, default=1.3,
        help=(
            "slowdown multiple beyond which a --fail-area entry fails "
            "the run (default: 1.3); interpreted per --fail-metric"
        ),
    )
    parser.add_argument(
        "--fail-metric", choices=("median", "speedup"), default="median",
        help=(
            "what --fail-ratio gates on: 'median' compares the fresh "
            "wall-clock median against the committed one (meaningful "
            "only on the machine that recorded the baseline); "
            "'speedup' compares each entry's speedup_vs_reference — "
            "both sides of that ratio are timed in the same run, so "
            "absolute machine speed cancels out (use this on CI "
            "runners; default: median)"
        ),
    )
    return parser


def _run_compare(args: argparse.Namespace) -> int:
    """``--compare`` mode: fresh run per committed report, diff, flag.

    Without ``--fail-area`` every spread-threshold regression is fatal
    (legacy behavior).  With it, only the named areas gate the exit
    code — at the coarser ``--fail-ratio`` multiple of the chosen
    ``--fail-metric`` — while regressions elsewhere print loudly but
    stay advisory.  The ``speedup`` metric gates on each entry's
    ``speedup_vs_reference`` dropping past ``fail_ratio`` below the
    committed value: both sides of that ratio are measured in the same
    fresh run, so a uniformly slower (or faster) machine cancels out —
    absolute medians recorded on one machine never fail another.
    """
    fail_areas = set(args.fail_area or ())
    gated = bool(fail_areas)
    regressed = False
    failed = False
    for path in args.compare:
        with open(path, encoding="utf-8") as fh:
            committed = json.load(fh)
        validate_report(committed)
        area = committed["area"]
        quick = bool(committed["quick"])
        hard = area in fail_areas
        print(f"[bench] compare {path}: area={area} quick={quick}")
        fresh = run_area(
            area,
            quick=quick,
            warmup=args.warmup,
            repeats=args.repeats,
            out_dir=None,
            progress=lambda msg: print(f"[bench]{msg}"),
        )
        rows = compare_reports(
            committed, fresh, tolerance=args.compare_tolerance
        )
        for row in rows:
            if row["fresh_median_s"] is None:
                print(f"[bench]   {row['name']}: MISSING from fresh run")
                regressed = True
                failed = failed or hard
                continue
            if args.fail_metric == "speedup":
                # Only entries carrying a committed speedup gate; their
                # reference twins are the denominator of that very
                # ratio, so they are covered implicitly.
                committed_sp = row["committed_speedup"]
                fresh_sp = row["fresh_speedup"]
                fails = (
                    hard
                    and committed_sp is not None
                    and (
                        fresh_sp is None
                        or fresh_sp * args.fail_ratio < committed_sp
                    )
                )
            else:
                fails = hard and row["ratio"] > args.fail_ratio
            flag = "ok"
            if fails:
                flag = f"FAILED (> {args.fail_ratio}x {args.fail_metric})"
            elif row["regressed"]:
                flag = "REGRESSED"
            speedup_note = ""
            if row["committed_speedup"] is not None:
                fresh_sp = row["fresh_speedup"]
                speedup_note = (
                    f" [speedup {row['committed_speedup']:.2f}x -> "
                    + (f"{fresh_sp:.2f}x]" if fresh_sp is not None
                       else "missing]")
                )
            print(
                f"[bench]   {row['name']}: committed "
                f"{row['committed_median_s']:.4f}s -> fresh "
                f"{row['fresh_median_s']:.4f}s "
                f"({row['ratio']:.2f}x){speedup_note} {flag}"
            )
            regressed = regressed or row["regressed"]
            failed = failed or fails
    if gated:
        if failed:
            print(
                f"[bench] gated area regression beyond {args.fail_ratio}x "
                f"{args.fail_metric} "
                f"(areas: {', '.join(sorted(fail_areas))})"
            )
            return 2
        if regressed:
            print(
                "[bench] regressions beyond recorded spread in ungated "
                "areas (advisory only)"
            )
        else:
            print("[bench] no regressions beyond recorded spread")
        return 0
    if regressed:
        print(
            "[bench] regression beyond recorded spread "
            f"(tolerance {args.compare_tolerance})"
        )
        return 2
    print("[bench] no regressions beyond recorded spread")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.compare:
        return _run_compare(args)
    areas = AREAS if args.area == "all" else (args.area,)
    out_dir = None if args.no_write else args.out_dir
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
    for area in areas:
        print(f"[bench] area={area} quick={args.quick}")
        report = run_area(
            area,
            quick=args.quick,
            warmup=args.warmup,
            repeats=args.repeats,
            out_dir=out_dir,
            progress=lambda msg: print(f"[bench]{msg}"),
        )
        for entry in report["benchmarks"]:
            extra = entry["extra"]
            note = f"  {extra}" if extra else ""
            print(
                f"[bench]   {entry['name']}: "
                f"median {entry['median_s']:.4f}s "
                f"(min {entry['min_s']:.4f}, max {entry['max_s']:.4f})"
                f"{note}"
            )
        if out_dir is not None:
            print(f"[bench] wrote {out_dir}/BENCH_{area}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
