"""The standing performance harness (``python -m repro.bench``).

Times the compiler's known hot paths — gridsynth Rz approximation,
trasyn table lookup, SABRE routing across topologies and scales, and
the simulation engines — with warmup/repeat/median-and-spread
discipline, and writes schema-versioned ``BENCH_<area>.json`` reports
at the repo root.  Those files are committed: every PR that moves a hot
path re-runs the affected area and shows its delta against the
checked-in medians (see README, "Benchmark harness").

Areas
-----
``routing``    ``BENCH_routing.json`` — :mod:`repro.bench.routing_suite`
``synthesis``  ``BENCH_synthesis.json`` — :mod:`repro.bench.synthesis_suite`
``sim``        ``BENCH_sim.json`` — :mod:`repro.bench.sim_suite`
``passes``     ``BENCH_passes.json`` — :mod:`repro.bench.passes_suite`
``cache``      ``BENCH_cache.json`` — :mod:`repro.bench.cache_suite`

``python -m repro.bench --compare BENCH_sim.json`` re-runs a committed
report's area at matching sizes and flags entries whose fresh median
regresses beyond the recorded spread (see :func:`compare_reports`).
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro.bench.harness import (
    SCHEMA_VERSION,
    BenchResult,
    BenchSpec,
    compare_reports,
    report_dict,
    run_spec,
    run_specs,
    validate_report,
    write_report,
)

__all__ = [
    "SCHEMA_VERSION",
    "AREAS",
    "BenchResult",
    "BenchSpec",
    "compare_reports",
    "run_area",
    "run_spec",
    "run_specs",
    "report_dict",
    "validate_report",
    "write_report",
]


def _suite(area: str):
    if area == "routing":
        from repro.bench import routing_suite as suite
    elif area == "synthesis":
        from repro.bench import synthesis_suite as suite
    elif area == "sim":
        from repro.bench import sim_suite as suite
    elif area == "passes":
        from repro.bench import passes_suite as suite
    elif area == "cache":
        from repro.bench import cache_suite as suite
    else:
        raise ValueError(
            f"unknown bench area {area!r} (expected one of {AREAS})"
        )
    return suite


AREAS = ("routing", "synthesis", "sim", "passes", "cache")

#: Default timing discipline; ``--quick`` drops to one cold repeat.
DEFAULT_WARMUP = 1
DEFAULT_REPEATS = 5


def run_area(
    area: str,
    quick: bool = False,
    warmup: int | None = None,
    repeats: int | None = None,
    out_dir: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run one area's suite and write ``BENCH_<area>.json``.

    Returns the report dict.  ``out_dir=None`` skips writing (useful
    for tests); ``quick`` shrinks problem sizes and defaults to a
    single unwarmed repeat, for smoke validation rather than numbers.
    """
    suite = _suite(area)
    if warmup is None:
        warmup = 0 if quick else DEFAULT_WARMUP
    if repeats is None:
        repeats = 1 if quick else DEFAULT_REPEATS
    results = run_specs(suite.specs(quick), warmup, repeats, progress)
    finalize = getattr(suite, "finalize", None)
    if finalize is not None:
        finalize(results)
    report = report_dict(area, results, quick, warmup, repeats)
    if out_dir is not None:
        write_report(os.path.join(out_dir, f"BENCH_{area}.json"), report)
    return report
