"""Synthesis benchmarks: gridsynth Rz approximation and trasyn lookup.

gridsynth is timed at two precision points (a fast everyday epsilon and
a tight one) on a fixed irrational-ish angle; trasyn is timed with the
enumeration table prebuilt in setup, so the number isolates the
MPS-sampling table *lookup* the paper's Synthesize step performs —
table construction is a one-off cost amortized by the disk cache.
"""

from __future__ import annotations

import math

from repro.bench.harness import BenchResult, BenchSpec

_THETA = 0.5477  # fixed non-special angle

_GRIDSYNTH_EPS = (1e-3, 1e-5)
_QUICK_GRIDSYNTH_EPS = (1e-2,)

_TRASYN_BUDGET = {False: 6, True: 3}
_TRASYN_SAMPLES = {False: 500, True: 50}


def _gridsynth_spec(eps: float) -> BenchSpec:
    def setup():
        from repro.synthesis.gridsynth import gridsynth_rz

        def run():
            seq = gridsynth_rz(_THETA, eps)
            return {"t_count": seq.t_count}

        return run

    return BenchSpec(
        name=f"gridsynth_rz/eps={eps:g}",
        params={"theta": _THETA, "eps": eps},
        setup=setup,
    )


def _trasyn_spec(budget: int, n_samples: int) -> BenchSpec:
    def setup():
        import numpy as np

        from repro.enumeration import get_table
        from repro.linalg import u3
        from repro.synthesis.trasyn import synthesize

        table = get_table(budget)  # prebuilt: the lookup is what we time
        target = u3(0.3, 0.7, 1.1)

        def run():
            result = synthesize(
                target,
                t_budgets=[budget],
                n_samples=n_samples,
                rng=np.random.default_rng(17),
                table=table,
            )
            return {"t_count": result.sequence.t_count}

        return run

    return BenchSpec(
        name=f"trasyn/lookup/budget={budget}",
        params={
            "t_budget": budget,
            "n_samples": n_samples,
            "u3": [0.3, 0.7, 1.1],
            "seed": 17,
        },
        setup=setup,
    )


def specs(quick: bool) -> list[BenchSpec]:
    eps_points = _QUICK_GRIDSYNTH_EPS if quick else _GRIDSYNTH_EPS
    out = [_gridsynth_spec(eps) for eps in eps_points]
    out.append(
        _trasyn_spec(_TRASYN_BUDGET[quick], _TRASYN_SAMPLES[quick])
    )
    return out


def finalize(results: list[BenchResult]) -> None:
    for r in results:
        if r.name.startswith("gridsynth_rz/"):
            r.extra.setdefault("theta_over_pi", round(_THETA / math.pi, 6))
