"""Simulation benchmarks: statevector layer application and MPS sweeps.

The statevector benchmarks time the trajectory engine's layered batch
application — noiseless (pure layer application, where 1q fusion acts)
and noisy Monte-Carlo trajectories.  The noisy benchmark is paired
with a ``fuse=False`` baseline so the fusion speedup is recorded as a
standing number.  The MPS benchmark sweeps a nearest-neighbor circuit
through the bond-truncated engine.
"""

from __future__ import annotations

import random

from repro.bench.harness import BenchResult, BenchSpec


def _clifford_t_circuit(n_qubits: int, n_gates: int, seed: int):
    """1q-heavy Clifford+T stream, nearest-neighbor 2q gates."""
    from repro.circuits.circuit import Circuit

    rng = random.Random(seed)
    c = Circuit(n_qubits)
    for _ in range(n_gates):
        if rng.random() < 0.8:
            c.append(
                rng.choice(["h", "t", "s", "tdg", "x"]),
                rng.randrange(n_qubits),
            )
        else:
            a = rng.randrange(n_qubits - 1)
            c.append("cx", (a, a + 1))
    return c


def _statevector_spec(
    name: str,
    n_qubits: int,
    n_gates: int,
    trajectories: int,
    noisy: bool,
    fuse: bool,
) -> BenchSpec:
    def setup():
        from repro.sim.backends.statevector import (
            StatevectorTrajectoryBackend,
        )
        from repro.sim.noise import NoiseModel

        circuit = _clifford_t_circuit(n_qubits, n_gates, seed=11)
        noise = NoiseModel.t_gates_only(1e-3) if noisy else None
        backend = StatevectorTrajectoryBackend(
            trajectories=trajectories, seed=5, fuse=fuse
        )

        def run():
            backend.run(circuit, noise)

        return run

    return BenchSpec(
        name=name,
        params={
            "n_qubits": n_qubits,
            "n_gates": n_gates,
            "trajectories": trajectories,
            "noise": "t_gates_only(1e-3)" if noisy else None,
            "fuse": fuse,
            "seed": 11,
        },
        setup=setup,
    )


def _mps_spec(n_qubits: int, n_gates: int, max_bond: int) -> BenchSpec:
    def setup():
        from repro.sim.backends.mps_backend import MPSBackend

        circuit = _clifford_t_circuit(n_qubits, n_gates, seed=13)
        backend = MPSBackend(max_bond=max_bond, trajectories=1, seed=5)

        def run():
            backend.run(circuit)

        return run

    return BenchSpec(
        name=f"mps/sweep/{n_qubits}q",
        params={
            "n_qubits": n_qubits,
            "n_gates": n_gates,
            "max_bond": max_bond,
            "seed": 13,
        },
        setup=setup,
    )


def specs(quick: bool) -> list[BenchSpec]:
    if quick:
        return [
            _statevector_spec(
                "statevector/layers/noiseless", 8, 120, 1,
                noisy=False, fuse=True,
            ),
            _statevector_spec(
                "statevector/trajectories/noisy", 6, 80, 8,
                noisy=True, fuse=True,
            ),
            _mps_spec(8, 80, max_bond=16),
        ]
    return [
        _statevector_spec(
            "statevector/layers/noiseless", 12, 400, 1,
            noisy=False, fuse=True,
        ),
        _statevector_spec(
            "statevector/layers/noiseless/unfused", 12, 400, 1,
            noisy=False, fuse=False,
        ),
        _statevector_spec(
            "statevector/trajectories/noisy", 10, 600, 50,
            noisy=True, fuse=True,
        ),
        _statevector_spec(
            "statevector/trajectories/noisy/unfused", 10, 600, 50,
            noisy=True, fuse=False,
        ),
        _mps_spec(16, 300, max_bond=32),
    ]


def finalize(results: list[BenchResult]) -> None:
    """Record the 1q-fusion speedup from the paired fused/unfused entries.

    Two regimes on purpose: noiseless layers (every 1q gate fuses, the
    upper bound) and t-noisy trajectories (noisy t/tdg gates fence the
    fusion chains, the conservative number).
    """
    by_name = {r.name: r for r in results}
    for fused_name in (
        "statevector/layers/noiseless",
        "statevector/trajectories/noisy",
    ):
        fused = by_name.get(fused_name)
        unfused = by_name.get(f"{fused_name}/unfused")
        if fused is not None and unfused is not None:
            fused.extra["speedup_vs_unfused"] = round(
                unfused.median_s / fused.median_s, 2
            )
            fused.extra["unfused_median_s"] = unfused.median_s
