"""Simulation benchmarks: statevector layer application and MPS sweeps.

The statevector benchmarks time the trajectory engine's layered batch
application — noiseless (pure layer application, where fusion acts)
and noisy Monte-Carlo trajectories.  Each headline benchmark (compiled
program, 1q+2q fusion) is paired with an ``/unfused`` baseline
(compiled, no fusion) and an ``/uncompiled`` baseline (the retained
interpreting reference path in its PR-6 configuration: 1q fusion only)
so the fusion and program-compilation speedups are recorded as
standing numbers.  The MPS benchmark sweeps a nearest-neighbor circuit
through the bond-truncated engine.
"""

from __future__ import annotations

import random

from repro.bench.harness import BenchResult, BenchSpec


def _clifford_t_circuit(n_qubits: int, n_gates: int, seed: int):
    """1q-heavy Clifford+T stream, nearest-neighbor 2q gates."""
    from repro.circuits.circuit import Circuit

    rng = random.Random(seed)
    c = Circuit(n_qubits)
    for _ in range(n_gates):
        if rng.random() < 0.8:
            c.append(
                rng.choice(["h", "t", "s", "tdg", "x"]),
                rng.randrange(n_qubits),
            )
        else:
            a = rng.randrange(n_qubits - 1)
            c.append("cx", (a, a + 1))
    return c


def _statevector_spec(
    name: str,
    n_qubits: int,
    n_gates: int,
    trajectories: int,
    noisy: bool,
    fuse: bool,
    fuse2q: bool = True,
    compiled: bool = True,
) -> BenchSpec:
    def setup():
        from repro.sim.backends.statevector import (
            StatevectorTrajectoryBackend,
        )
        from repro.sim.noise import NoiseModel
        from repro.sim.program import ProgramCache

        circuit = _clifford_t_circuit(n_qubits, n_gates, seed=11)
        noise = NoiseModel.t_gates_only(1e-3) if noisy else None
        # A private cache so a warm program is part of the fixture (the
        # steady state of sweeps) without touching the process cache.
        backend = StatevectorTrajectoryBackend(
            trajectories=trajectories, seed=5,
            fuse=fuse, fuse2q=fuse2q, compiled=compiled,
            program_cache=ProgramCache(),
        )

        def run():
            backend.run(circuit, noise)

        return run

    return BenchSpec(
        name=name,
        params={
            "n_qubits": n_qubits,
            "n_gates": n_gates,
            "trajectories": trajectories,
            "noise": "t_gates_only(1e-3)" if noisy else None,
            "fuse": fuse,
            "fuse2q": fuse2q,
            "compiled": compiled,
            "seed": 11,
        },
        setup=setup,
    )


def _mps_spec(n_qubits: int, n_gates: int, max_bond: int) -> BenchSpec:
    def setup():
        from repro.sim.backends.mps_backend import MPSBackend

        circuit = _clifford_t_circuit(n_qubits, n_gates, seed=13)
        backend = MPSBackend(max_bond=max_bond, trajectories=1, seed=5)

        def run():
            backend.run(circuit)

        return run

    return BenchSpec(
        name=f"mps/sweep/{n_qubits}q",
        params={
            "n_qubits": n_qubits,
            "n_gates": n_gates,
            "max_bond": max_bond,
            "seed": 13,
        },
        setup=setup,
    )


def specs(quick: bool) -> list[BenchSpec]:
    if quick:
        return [
            _statevector_spec(
                "statevector/layers/noiseless", 8, 120, 1,
                noisy=False, fuse=True,
            ),
            _statevector_spec(
                "statevector/trajectories/noisy", 6, 80, 8,
                noisy=True, fuse=True,
            ),
            _statevector_spec(
                "statevector/trajectories/noisy/uncompiled", 6, 80, 8,
                noisy=True, fuse=True, fuse2q=False, compiled=False,
            ),
            _mps_spec(8, 80, max_bond=16),
        ]
    return [
        _statevector_spec(
            "statevector/layers/noiseless", 12, 400, 1,
            noisy=False, fuse=True,
        ),
        _statevector_spec(
            "statevector/layers/noiseless/unfused", 12, 400, 1,
            noisy=False, fuse=False, fuse2q=False,
        ),
        _statevector_spec(
            "statevector/trajectories/noisy", 10, 600, 50,
            noisy=True, fuse=True,
        ),
        _statevector_spec(
            "statevector/trajectories/noisy/unfused", 10, 600, 50,
            noisy=True, fuse=False, fuse2q=False,
        ),
        _statevector_spec(
            "statevector/trajectories/noisy/uncompiled", 10, 600, 50,
            noisy=True, fuse=True, fuse2q=False, compiled=False,
        ),
        _mps_spec(16, 300, max_bond=32),
    ]


def finalize(results: list[BenchResult]) -> None:
    """Record fusion and program-compilation speedups from the pairs.

    ``speedup_vs_unfused`` compares against the compiled-but-unfused
    entry (fusion's contribution); ``speedup_vs_uncompiled`` against
    the interpreting reference path in its PR-6 configuration — 1q
    fusion only, per-chunk channel resolution, every noise outcome
    applied (the program layer's contribution).
    """
    by_name = {r.name: r for r in results}
    for fused_name in (
        "statevector/layers/noiseless",
        "statevector/trajectories/noisy",
    ):
        fused = by_name.get(fused_name)
        if fused is None:
            continue
        unfused = by_name.get(f"{fused_name}/unfused")
        if unfused is not None:
            fused.extra["speedup_vs_unfused"] = round(
                unfused.median_s / fused.median_s, 2
            )
            fused.extra["unfused_median_s"] = unfused.median_s
        uncompiled = by_name.get(f"{fused_name}/uncompiled")
        if uncompiled is not None:
            fused.extra["speedup_vs_uncompiled"] = round(
                uncompiled.median_s / fused.median_s, 2
            )
            fused.extra["uncompiled_median_s"] = uncompiled.median_s
