"""Optimizer-pass benchmarks: DAG phase folding at parity width.

Phase folding's cost is dominated by the parity bookkeeping of the CX
network — wide, CX-heavy circuits grow parity terms toward the variable
count.  The benchmark pairs the shipped bit-matrix pass
(:func:`repro.optimizers.dag_passes.fold_phases_dag`) with its
set-based reference formulation on the same circuit; each entry times
DAG build + fold (the pass as used) and records the fold-only seconds
in ``extra`` so :func:`finalize` can derive the accumulation speedup.
"""

from __future__ import annotations

import random
import time

from repro.bench.harness import BenchResult, BenchSpec


def _parity_heavy_circuit(n_qubits: int, n_gates: int, seed: int):
    """CX-heavy Clifford+T stream with sparse tracking-breaking gates."""
    from repro.circuits.circuit import Circuit

    rng = random.Random(seed)
    c = Circuit(n_qubits)
    for _ in range(n_gates):
        r = rng.random()
        if r < 0.30:
            c.append(rng.choice(["t", "s", "tdg"]), rng.randrange(n_qubits))
        elif r < 0.32:
            c.append("h", rng.randrange(n_qubits))
        else:
            a, b = rng.sample(range(n_qubits), 2)
            c.append("cx", (a, b))
    return c


def _fold_spec(
    name: str, n_qubits: int, n_gates: int, reference: bool
) -> BenchSpec:
    def setup():
        from repro.circuits.dag import CircuitDAG
        from repro.optimizers.dag_passes import (
            fold_phases_dag,
            fold_phases_dag_reference,
        )

        circuit = _parity_heavy_circuit(n_qubits, n_gates, seed=17)
        fold = fold_phases_dag_reference if reference else fold_phases_dag

        def run():
            # Folding mutates the DAG, so each repeat rebuilds it; the
            # fold-only time is recorded separately for finalize().
            dag = CircuitDAG.from_circuit(circuit)
            t0 = time.perf_counter()
            folded = fold(dag)
            return {
                "fold_s": time.perf_counter() - t0,
                "gates_folded": folded,
            }

        return run

    return BenchSpec(
        name=name,
        params={
            "n_qubits": n_qubits,
            "n_gates": n_gates,
            "reference": reference,
            "seed": 17,
        },
        setup=setup,
    )


def specs(quick: bool) -> list[BenchSpec]:
    if quick:
        return [
            _fold_spec("dag/fold_phases/24q", 24, 800, reference=False),
            _fold_spec(
                "dag/fold_phases/24q/reference", 24, 800, reference=True
            ),
        ]
    return [
        _fold_spec("dag/fold_phases/96q", 96, 8000, reference=False),
        _fold_spec(
            "dag/fold_phases/96q/reference", 96, 8000, reference=True
        ),
    ]


def finalize(results: list[BenchResult]) -> None:
    """Derive the parity-accumulation speedup from the paired entries."""
    by_name = {r.name: r for r in results}
    for name, result in by_name.items():
        ref = by_name.get(f"{name}/reference")
        if ref is None:
            continue
        fold_s = result.extra.get("fold_s")
        ref_fold_s = ref.extra.get("fold_s")
        if fold_s and ref_fold_s:
            result.extra["speedup_vs_reference"] = round(
                ref_fold_s / fold_s, 2
            )
