"""Optimizer-pass benchmarks: columnar kernels vs reference loops.

Every DAG pass — cancel_inverses, merge_rotations, fold_phases,
collect_two_qubit_blocks — plus the full ``optimize_dag`` fixpoint is
benchmarked end-to-end as ``optimize_circuit`` drives it: IR build,
kernel, linearize.  Each columnar
:class:`~repro.circuits.dag_table.DAGTable` entry is paired with the
per-node ``*_reference`` loop on :class:`CircuitDAG` over the same
mixed workload, and :func:`finalize` records the pass-only
``speedup_vs_reference`` on the columnar entry.  The
``dag/optimize_fixpoint`` pair is the headline: the incremental
dirty-wire driver vs the rescan-everything reference fixpoint.
"""

from __future__ import annotations

import random

from repro.bench.harness import BenchResult, BenchSpec


def _optimizer_workload(n_qubits: int, n_gates: int, seed: int):
    """Mixed stream exercising every DAG pass: rotations to merge,
    self-inverse runs to cancel, and a CX network to fold across."""
    from repro.circuits.circuit import Circuit

    rng = random.Random(seed)
    c = Circuit(n_qubits)
    for _ in range(n_gates):
        r = rng.random()
        if r < 0.15:
            c.append(
                rng.choice(["rz", "rx", "ry"]),
                rng.randrange(n_qubits),
                (rng.uniform(-3.0, 3.0),),
            )
        elif r < 0.35:
            c.append(rng.choice(["t", "s", "tdg"]), rng.randrange(n_qubits))
        elif r < 0.45:
            c.append(rng.choice(["h", "x", "z"]), rng.randrange(n_qubits))
        else:
            a, b = rng.sample(range(n_qubits), 2)
            c.append("cx", (a, b))
    return c


def _pass_runner(pass_name: str, reference: bool):
    """Build the timed closure factory for one pass/engine pairing."""

    def make(circuit):
        from repro.circuits.dag import CircuitDAG
        from repro.circuits.dag_table import DAGTable
        from repro.optimizers.columnar import (
            cancel_inverses_table,
            collect_two_qubit_blocks_table,
            fold_phases_table,
            merge_rotations_table,
            optimize_table,
        )
        from repro.optimizers.dag_passes import (
            cancel_inverses_reference,
            collect_two_qubit_blocks_reference,
            fold_phases_dag_reference,
            merge_rotations_reference,
            optimize_dag_reference,
        )

        ref_fns = {
            "cancel_inverses": cancel_inverses_reference,
            "merge_rotations": merge_rotations_reference,
            "fold_phases": fold_phases_dag_reference,
            "collect_blocks": collect_two_qubit_blocks_reference,
            "optimize_fixpoint": optimize_dag_reference,
        }
        table_fns = {
            "cancel_inverses": cancel_inverses_table,
            "merge_rotations": merge_rotations_table,
            "fold_phases": fold_phases_table,
            "collect_blocks": collect_two_qubit_blocks_table,
            "optimize_fixpoint": optimize_table,
        }

        def _count(result):
            if pass_name == "collect_blocks":
                return {"blocks": len(result)}
            if pass_name == "optimize_fixpoint":
                return {"removed": result.removed, "rounds": result.rounds}
            if isinstance(result, tuple):  # (removed, touched_wires)
                return {"removed": result[0]}
            return {"removed": result}

        if reference:
            fn = ref_fns[pass_name]

            def run():
                # End-to-end as optimize_circuit drives it: IR build,
                # pass, linearize.  Mutating passes force a rebuild per
                # repeat either way.
                dag = CircuitDAG.from_circuit(circuit)
                result = fn(dag)
                dag.to_circuit()
                return _count(result)

        else:
            fn = table_fns[pass_name]

            def run():
                table = DAGTable.from_circuit(circuit)
                result = fn(table)
                table.to_circuit()
                return _count(result)

        return run

    return make


def _pass_spec(
    pass_name: str, n_qubits: int, n_gates: int, reference: bool
) -> BenchSpec:
    make = _pass_runner(pass_name, reference)

    def setup():
        circuit = _optimizer_workload(n_qubits, n_gates, seed=23)
        return make(circuit)

    suffix = "/reference" if reference else ""
    return BenchSpec(
        name=f"dag/{pass_name}/{n_qubits}q{suffix}",
        params={
            "n_qubits": n_qubits,
            "n_gates": n_gates,
            "reference": reference,
            "seed": 23,
        },
        setup=setup,
    )


#: Every columnar/reference DAG-pass pairing benchmarked.
_PASS_NAMES = (
    "cancel_inverses",
    "merge_rotations",
    "fold_phases",
    "collect_blocks",
    "optimize_fixpoint",
)


def specs(quick: bool) -> list[BenchSpec]:
    out = []
    sizes = ((24, 800),) if quick else ((24, 8000), (96, 8000))
    for pass_name in _PASS_NAMES:
        for n_qubits, n_gates in sizes:
            out.append(
                _pass_spec(pass_name, n_qubits, n_gates, reference=False)
            )
            out.append(
                _pass_spec(pass_name, n_qubits, n_gates, reference=True)
            )
    return out


def finalize(results: list[BenchResult]) -> None:
    """Derive each pair's columnar-vs-reference speedup.

    Pairs ``<name>`` with ``<name>/reference`` and divides the run
    medians — each spec's ``run()`` is exactly the end-to-end pass, so
    ``median_s`` is the pass time and far more repeat-noise-robust
    than any single-repeat extra would be — recording
    ``speedup_vs_reference`` on the columnar entry.
    """
    by_name = {r.name: r for r in results}
    for name, result in by_name.items():
        ref = by_name.get(f"{name}/reference")
        if ref is None:
            continue
        if result.median_s and ref.median_s:
            result.extra["speedup_vs_reference"] = round(
                ref.median_s / result.median_s, 2
            )
