"""Routing benchmarks: SABRE swap insertion across topology and scale.

Times :func:`repro.target.routing.route_dag` — routing proper — with
the dependency DAG and the dense initial layout prebuilt in setup, so
the numbers isolate the swap-search loop the vectorization work
targets.  The grid benchmark at the largest size is also run with
``scorer="reference"`` (the pre-vectorization per-candidate python
closure) and the derived ``speedup_vs_reference`` lands in the vector
entry's ``extra`` — the standing record of the hot-path win.
"""

from __future__ import annotations

import random

from repro.bench.harness import BenchResult, BenchSpec

#: (label, target factory) per benchmark size; actual qubit counts for
#: heavy_hex differ slightly from the nominal size (bridge qubits).
_SIZES = (20, 50, 100, 200)
_QUICK_SIZES = (20,)

_GRID_DIMS = {20: (4, 5), 50: (5, 10), 100: (10, 10), 200: (10, 20)}
_HEAVY_HEX_DIMS = {20: (2, 9), 50: (4, 11), 100: (6, 15), 200: (8, 23)}

#: The size whose grid benchmark carries the reference-scorer baseline.
_REFERENCE_SIZE = {False: 100, True: 20}


def _random_circuit(n_qubits: int, n_gates: int, seed: int):
    from repro.circuits.circuit import Circuit

    rng = random.Random(seed)
    c = Circuit(n_qubits)
    for _ in range(n_gates):
        if rng.random() < 0.5:
            c.append(rng.choice(["h", "t", "s", "x"]), rng.randrange(n_qubits))
        else:
            a, b = rng.sample(range(n_qubits), 2)
            c.append("cx", (a, b))
    return c


def _targets(size: int):
    from repro.target.target import Target

    yield "line", Target.line(size)
    yield "grid", Target.grid(*_GRID_DIMS[size])
    yield "heavy_hex", Target.heavy_hex(*_HEAVY_HEX_DIMS[size])


def _route_spec(
    topology: str, size: int, target, scorer: str
) -> BenchSpec:
    n = target.n_qubits
    n_gates = 3 * n
    suffix = "" if scorer == "vector" else f"/{scorer}-scorer"

    def setup():
        from repro.circuits.dag import CircuitDAG
        from repro.target.layout import dense_layout
        from repro.target.routing import route_dag

        circuit = _random_circuit(n, n_gates, seed=7)
        layout = dense_layout(circuit, target)
        dag = CircuitDAG.from_circuit(circuit)

        def run():
            _, _, swaps = route_dag(
                dag, target, layout=layout, scorer=scorer
            )
            return {"swaps": swaps}

        return run

    return BenchSpec(
        name=f"route_dag/{topology}/{size}q{suffix}",
        params={
            "topology": topology,
            "size": size,
            "n_qubits": n,
            "n_gates": n_gates,
            "layout": "dense",
            "scorer": scorer,
            "seed": 7,
        },
        setup=setup,
    )


def specs(quick: bool) -> list[BenchSpec]:
    sizes = _QUICK_SIZES if quick else _SIZES
    out = []
    for size in sizes:
        for topology, target in _targets(size):
            out.append(_route_spec(topology, size, target, "vector"))
    ref_size = _REFERENCE_SIZE[quick]
    from repro.target.target import Target

    out.append(
        _route_spec(
            "grid", ref_size, Target.grid(*_GRID_DIMS[ref_size]),
            "reference",
        )
    )
    return out


def finalize(results: list[BenchResult]) -> None:
    """Derive the vector-vs-reference speedup from the paired entries."""
    by_name = {r.name: r for r in results}
    for size in _SIZES:
        ref = by_name.get(f"route_dag/grid/{size}q/reference-scorer")
        vec = by_name.get(f"route_dag/grid/{size}q")
        if ref is None or vec is None:
            continue
        vec.extra["speedup_vs_reference"] = round(
            ref.median_s / vec.median_s, 2
        )
        vec.extra["reference_median_s"] = ref.median_s
