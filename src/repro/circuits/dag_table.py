"""Columnar (struct-of-arrays) mirror of :class:`~repro.circuits.dag.CircuitDAG`.

A :class:`DAGTable` stores one gate per *row*: the row index is the node
id, and every per-node attribute lives in a flat numpy column — interned
opcode, padded qubit pair, parameters, per-wire predecessor/successor
ids, and an alive mask.  The optimization passes in
:mod:`repro.optimizers.columnar` run as vectorized kernels over these
columns (gather-and-compare over the successor columns instead of
per-node object chasing), which is what makes ``optimization_level=4``
cheap on wide circuits.

Round-trips are exact in both directions:

* ``DAGTable.from_circuit(c).to_circuit()`` reproduces ``c``'s gate list
  gate for gate (same reason as the DAG: ids ascend in time order and
  linearization breaks ties on id).
* ``DAGTable.from_dag(dag)`` preserves node ids, wire links, and the id
  counter, so ``to_dag()`` / ``write_back(dag)`` reconstruct an
  equivalent :class:`CircuitDAG` — the bridge the engine-dispatching
  wrappers in :mod:`repro.optimizers.dag_passes` use to run columnar
  kernels against caller-owned DAGs.

Beyond the DAG's columns the table maintains a ``pos`` float column: a
wire-monotone timestamp (original gates get 0..n-1; substituted runs get
midpoints between their wire neighbors).  Kernels use it to process
candidates in deterministic wire order, which is what keeps their output
byte-identical to the stack-based reference passes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.circuits.circuit import (
    ONE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    Circuit,
    Gate,
)
from repro.circuits.dag import BOUNDARY, CircuitDAG, DAGNode

#: The fixed gate vocabulary, in a stable order: opcode = index.
GATE_NAMES: tuple[str, ...] = (
    "i", "h", "s", "sdg", "t", "tdg", "x", "y", "z",
    "rx", "ry", "rz", "u3", "cx", "cz", "swap",
)
#: Gate name -> interned opcode.
OPCODE: dict[str, int] = {name: i for i, name in enumerate(GATE_NAMES)}
#: Maximum parameter count in the vocabulary (u3).
MAX_PARAMS = 3

if set(GATE_NAMES) != ONE_QUBIT_GATES | TWO_QUBIT_GATES:
    raise RuntimeError(
        "DAGTable opcode vocabulary out of sync with the circuit gate set"
    )


class DAGTable:
    """Struct-of-arrays dependency DAG with row index == node id.

    Columns (length = :attr:`size`, the id high-water mark; dead rows
    stay in place with ``alive`` False):

    * ``op``      — interned gate opcode (index into :data:`GATE_NAMES`)
    * ``q0``/``q1`` — qubit pair, ``q1 == -1`` for single-qubit gates
    * ``params``/``n_params`` — ``(size, 3)`` float block + used count
    * ``pred0``/``succ0`` — previous/next node id on ``q0``'s wire
    * ``pred1``/``succ1`` — previous/next node id on ``q1``'s wire
    * ``alive``   — row liveness mask
    * ``pos``     — wire-monotone timestamp (see module docstring)

    ``-1`` (:data:`~repro.circuits.dag.BOUNDARY`) marks the wire
    boundary in the link columns, exactly as in the DAG.
    """

    def __init__(self, n_qubits: int, name: str = "", capacity: int = 16):
        capacity = max(capacity, 1)
        self.n_qubits = n_qubits
        self.name = name
        self._size = 0          # id high-water mark (== next fresh id)
        self._n_alive = 0
        self._op = np.full(capacity, -1, dtype=np.int16)
        self._q0 = np.full(capacity, -1, dtype=np.int64)
        self._q1 = np.full(capacity, -1, dtype=np.int64)
        self._params = np.zeros((capacity, MAX_PARAMS), dtype=np.float64)
        self._n_params = np.zeros(capacity, dtype=np.int8)
        self._pred0 = np.full(capacity, BOUNDARY, dtype=np.int64)
        self._pred1 = np.full(capacity, BOUNDARY, dtype=np.int64)
        self._succ0 = np.full(capacity, BOUNDARY, dtype=np.int64)
        self._succ1 = np.full(capacity, BOUNDARY, dtype=np.int64)
        self._alive = np.zeros(capacity, dtype=bool)
        self._pos = np.zeros(capacity, dtype=np.float64)
        self._first = np.full(n_qubits, BOUNDARY, dtype=np.int64)
        self._last = np.full(n_qubits, BOUNDARY, dtype=np.int64)

    # -- column views --------------------------------------------------------
    @property
    def size(self) -> int:
        """Id high-water mark: rows ``0..size-1`` exist (alive or dead)."""
        return self._size

    @property
    def op(self) -> np.ndarray:
        return self._op[: self._size]

    @property
    def q0(self) -> np.ndarray:
        return self._q0[: self._size]

    @property
    def q1(self) -> np.ndarray:
        return self._q1[: self._size]

    @property
    def params(self) -> np.ndarray:
        return self._params[: self._size]

    @property
    def n_params(self) -> np.ndarray:
        return self._n_params[: self._size]

    @property
    def pred0(self) -> np.ndarray:
        return self._pred0[: self._size]

    @property
    def pred1(self) -> np.ndarray:
        return self._pred1[: self._size]

    @property
    def succ0(self) -> np.ndarray:
        return self._succ0[: self._size]

    @property
    def succ1(self) -> np.ndarray:
        return self._succ1[: self._size]

    @property
    def alive(self) -> np.ndarray:
        return self._alive[: self._size]

    @property
    def pos(self) -> np.ndarray:
        return self._pos[: self._size]

    @property
    def first(self) -> np.ndarray:
        return self._first

    @property
    def last(self) -> np.ndarray:
        return self._last

    def __len__(self) -> int:
        return self._n_alive

    def __contains__(self, node_id: int) -> bool:
        return 0 <= node_id < self._size and bool(self._alive[node_id])

    def __repr__(self) -> str:
        return (
            f"DAGTable(n_qubits={self.n_qubits}, gates={self._n_alive}, "
            f"rows={self._size})"
        )

    # -- construction --------------------------------------------------------
    def _ensure_capacity(self, n: int) -> None:
        cap = self._op.shape[0]
        if n <= cap:
            return
        new = max(n, 2 * cap)

        def grow(arr: np.ndarray, fill) -> np.ndarray:
            shape = (new,) + arr.shape[1:]
            out = np.full(shape, fill, dtype=arr.dtype)
            out[:cap] = arr
            return out

        self._op = grow(self._op, -1)
        self._q0 = grow(self._q0, -1)
        self._q1 = grow(self._q1, -1)
        self._params = grow(self._params, 0.0)
        self._n_params = grow(self._n_params, 0)
        self._pred0 = grow(self._pred0, BOUNDARY)
        self._pred1 = grow(self._pred1, BOUNDARY)
        self._succ0 = grow(self._succ0, BOUNDARY)
        self._succ1 = grow(self._succ1, BOUNDARY)
        self._alive = grow(self._alive, False)
        self._pos = grow(self._pos, 0.0)

    @staticmethod
    def _check_gate(gate: Gate) -> None:
        if gate.name not in OPCODE:
            raise ValueError(
                f"gate {gate.name!r} is outside the fixed IR vocabulary; "
                "the columnar engine only handles interned opcodes "
                "(use the reference DAG passes for exotic gates)"
            )
        if len(gate.qubits) not in (1, 2):
            raise ValueError(
                f"gate {gate.name!r} acts on {len(gate.qubits)} qubits; "
                "the table stores padded pairs (1 or 2 qubits)"
            )
        if len(gate.params) > MAX_PARAMS:
            raise ValueError(
                f"gate {gate.name!r} carries {len(gate.params)} params "
                f"(table rows hold at most {MAX_PARAMS})"
            )

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "DAGTable":
        """Build the table from a gate list (ids = positions, exact)."""
        gates = circuit.gates
        n = len(gates)
        table = cls(circuit.n_qubits, circuit.name, capacity=max(n, 1))
        if n == 0:
            return table
        for g in gates:
            cls._check_gate(g)
        table._size = n
        table._n_alive = n
        table._op[:n] = np.fromiter(
            (OPCODE[g.name] for g in gates), dtype=np.int16, count=n
        )
        q0 = np.fromiter((g.qubits[0] for g in gates), dtype=np.int64, count=n)
        q1 = np.fromiter(
            (g.qubits[1] if len(g.qubits) == 2 else -1 for g in gates),
            dtype=np.int64,
            count=n,
        )
        table._q0[:n] = q0
        table._q1[:n] = q1
        for i, g in enumerate(gates):
            if g.params:
                table._params[i, : len(g.params)] = g.params
                table._n_params[i] = len(g.params)
        table._alive[:n] = True
        table._pos[:n] = np.arange(n, dtype=np.float64)

        # Vectorized wire threading: one (qubit, id, slot) record per
        # gate-wire incidence, sorted by (qubit, id); neighbors within a
        # qubit group are the wire links.
        ids = np.arange(n, dtype=np.int64)
        two = q1 >= 0
        w_q = np.concatenate([q0, q1[two]])
        w_id = np.concatenate([ids, ids[two]])
        w_slot = np.concatenate(
            [np.zeros(n, dtype=np.int8), np.ones(int(two.sum()), dtype=np.int8)]
        )
        order = np.lexsort((w_id, w_q))
        sq, si, ss = w_q[order], w_id[order], w_slot[order]
        m = sq.shape[0]
        pred = np.full(m, BOUNDARY, dtype=np.int64)
        succ = np.full(m, BOUNDARY, dtype=np.int64)
        if m > 1:
            same = sq[1:] == sq[:-1]
            pred[1:][same] = si[:-1][same]
            succ[:-1][same] = si[1:][same]
        is0 = ss == 0
        table._pred0[si[is0]] = pred[is0]
        table._succ0[si[is0]] = succ[is0]
        table._pred1[si[~is0]] = pred[~is0]
        table._succ1[si[~is0]] = succ[~is0]
        head = np.ones(m, dtype=bool)
        head[1:] = sq[1:] != sq[:-1]
        tail = np.ones(m, dtype=bool)
        tail[:-1] = sq[:-1] != sq[1:]
        table._first[sq[head]] = si[head]
        table._last[sq[tail]] = si[tail]
        return table

    @classmethod
    def from_dag(cls, dag: CircuitDAG) -> "DAGTable":
        """Id-preserving import of a (possibly rewritten) DAG."""
        size = dag._next_id
        table = cls(dag.n_qubits, dag.name, capacity=max(size, 1))
        table._size = size
        table._n_alive = len(dag)
        for i, node in dag._nodes.items():
            g = node.gate
            cls._check_gate(g)
            table._op[i] = OPCODE[g.name]
            qs = g.qubits
            table._q0[i] = qs[0]
            table._pred0[i] = node.preds[qs[0]]
            table._succ0[i] = node.succs[qs[0]]
            if len(qs) == 2:
                table._q1[i] = qs[1]
                table._pred1[i] = node.preds[qs[1]]
                table._succ1[i] = node.succs[qs[1]]
            if g.params:
                table._params[i, : len(g.params)] = g.params
                table._n_params[i] = len(g.params)
            table._alive[i] = True
        table._first[:] = dag._first
        table._last[:] = dag._last
        # Any linear extension is wire-monotone; the topological index
        # gives every alive row a deterministic timestamp.
        for k, i in enumerate(table.topological_ids()):
            table._pos[i] = float(k)
        return table

    # -- access --------------------------------------------------------------
    def gate(self, node_id: int) -> Gate:
        """Reconstruct the :class:`Gate` value stored in a row."""
        name = GATE_NAMES[self._op[node_id]]
        q1 = int(self._q1[node_id])
        qubits = (
            (int(self._q0[node_id]),)
            if q1 < 0
            else (int(self._q0[node_id]), q1)
        )
        k = int(self._n_params[node_id])
        params = tuple(float(p) for p in self._params[node_id, :k])
        return Gate(name, qubits, params)

    def preds_of(self, node_id: int) -> list[int]:
        """Distinct non-boundary predecessor ids of a row."""
        p0 = int(self._pred0[node_id])
        p1 = int(self._pred1[node_id]) if self._q1[node_id] >= 0 else BOUNDARY
        if p1 == BOUNDARY or p1 == p0:
            return [p0] if p0 != BOUNDARY else []
        if p0 == BOUNDARY:
            return [p1]
        return [p0, p1]

    def ids_on_wires(self, wires: Iterable[int]) -> np.ndarray:
        """Alive row ids touching any wire in ``wires`` (ascending)."""
        mask = np.zeros(self.n_qubits, dtype=bool)
        mask[list(wires)] = True
        n = self._size
        q0, q1 = self._q0[:n], self._q1[:n]
        hit = self._alive[:n] & (mask[q0] | ((q1 >= 0) & mask[np.maximum(q1, 0)]))
        return np.nonzero(hit)[0]

    # -- wire surgery --------------------------------------------------------
    def _set_succ(self, node_id: int, qubit: int, value: int) -> None:
        if self._q0[node_id] == qubit:
            self._succ0[node_id] = value
        else:
            self._succ1[node_id] = value

    def _set_pred(self, node_id: int, qubit: int, value: int) -> None:
        if self._q0[node_id] == qubit:
            self._pred0[node_id] = value
        else:
            self._pred1[node_id] = value

    def remove(self, node_id: int) -> None:
        """Delete a row, splicing its wires (preds link to succs)."""
        if not self._alive[node_id]:
            raise KeyError(node_id)
        q0, q1 = self._q0, self._q1
        p0, p1 = self._pred0, self._pred1
        s0, s1 = self._succ0, self._succ1
        q = q0[node_id]
        second = int(q1[node_id])
        for qq, p, s in (
            ((int(q), int(p0[node_id]), int(s0[node_id])),)
            if second < 0
            else (
                (int(q), int(p0[node_id]), int(s0[node_id])),
                (second, int(p1[node_id]), int(s1[node_id])),
            )
        ):
            if p == BOUNDARY:
                self._first[qq] = s
            elif q0[p] == qq:
                s0[p] = s
            else:
                s1[p] = s
            if s == BOUNDARY:
                self._last[qq] = p
            elif q0[s] == qq:
                p0[s] = p
            else:
                p1[s] = p
        self._alive[node_id] = False
        self._n_alive -= 1

    def set_gate(self, node_id: int, gate: Gate) -> None:
        """Swap a row's gate in place (same qubit set required)."""
        if not self._alive[node_id]:
            raise KeyError(node_id)
        self._check_gate(gate)
        old = {int(self._q0[node_id])}
        if self._q1[node_id] >= 0:
            old.add(int(self._q1[node_id]))
        if set(gate.qubits) != old:
            raise ValueError("replacement gate must act on the same qubits")
        self._op[node_id] = OPCODE[gate.name]
        self._params[node_id, :] = 0.0
        if gate.params:
            self._params[node_id, : len(gate.params)] = gate.params
        self._n_params[node_id] = len(gate.params)
        if len(gate.qubits) == 2 and gate.qubits != (
            int(self._q0[node_id]),
            int(self._q1[node_id]),
        ):
            # Qubit order flipped (cx orientation): swap the wire slots.
            self._q0[node_id], self._q1[node_id] = (
                self._q1[node_id],
                self._q0[node_id],
            )
            self._pred0[node_id], self._pred1[node_id] = (
                self._pred1[node_id],
                self._pred0[node_id],
            )
            self._succ0[node_id], self._succ1[node_id] = (
                self._succ1[node_id],
                self._succ0[node_id],
            )

    def substitute_1q(
        self, node_id: int, gates: Sequence[Gate]
    ) -> list[int]:
        """Replace a 1q row with a time-ordered run on the same wire.

        Fresh ids ascend from the id counter, exactly mirroring
        :meth:`CircuitDAG.substitute_1q`, so a table and a DAG rewritten
        by the same pass mint identical ids.  The new rows get ``pos``
        timestamps strictly between their wire neighbors'.
        """
        if not self._alive[node_id]:
            raise KeyError(node_id)
        if self._q1[node_id] >= 0:
            raise ValueError("substitute_1q requires a single-qubit node")
        q = int(self._q0[node_id])
        prev = int(self._pred0[node_id])
        nxt = int(self._succ0[node_id])
        gates = list(gates)
        for g in gates:
            if g.qubits != (q,):
                raise ValueError("substitute gates must stay on the wire")
            self._check_gate(g)
        self.remove(node_id)
        k = len(gates)
        if k == 0:
            return []
        self._ensure_capacity(self._size + k)
        lo = float(self._pos[prev]) if prev != BOUNDARY else -1.0
        hi = (
            float(self._pos[nxt])
            if nxt != BOUNDARY
            else lo + float(k + 1)
        )
        step = (hi - lo) / (k + 1)
        start = self._size
        new_ids = list(range(start, start + k))
        self._size = start + k
        self._n_alive += k
        end = start + k
        if k == 1:
            # Scalar fast path: the dominant case (a slot re-emitting a
            # single phase gate) skips the slice machinery.
            g = gates[0]
            self._op[start] = OPCODE[g.name]
            self._q0[start] = q
            self._q1[start] = -1
            if g.params:
                self._params[start, : len(g.params)] = g.params
                self._n_params[start] = len(g.params)
            self._pred0[start] = prev
            self._succ0[start] = BOUNDARY
            self._alive[start] = True
            self._pos[start] = lo + step
        else:
            # Bulk column writes for the fresh rows (they are all on one
            # wire, chained to each other), then stitch the two ends.
            self._op[start:end] = [OPCODE[g.name] for g in gates]
            self._q0[start:end] = q
            self._q1[start:end] = -1
            for j, g in enumerate(gates):
                if g.params:
                    self._params[start + j, : len(g.params)] = g.params
                    self._n_params[start + j] = len(g.params)
            self._pred0[start:end] = [prev] + new_ids[:-1]
            self._succ0[start:end] = new_ids[1:] + [BOUNDARY]
            self._alive[start:end] = True
            self._pos[start:end] = [lo + step * (j + 1) for j in range(k)]
        if prev == BOUNDARY:
            self._first[q] = start
        else:
            self._set_succ(prev, q, start)
        tail = end - 1
        # Reconnect the run's tail to the old wire successor.
        if nxt == BOUNDARY:
            self._last[q] = tail
        else:
            self._set_succ(tail, q, nxt)
            self._set_pred(nxt, q, tail)
        return new_ids

    def substitute_1q_bulk(
        self, items: Sequence[tuple[int, Sequence[Gate]]]
    ) -> None:
        """Batch :meth:`substitute_1q` over pairwise non-wire-adjacent rows.

        Semantically identical to calling :meth:`substitute_1q` on each
        ``(node_id, gates)`` pair in order — fresh ids are minted in the
        same sequence — but the new rows' columns are written in bulk.
        The caller must guarantee no two replaced rows are wire-adjacent
        (phase-fold slots satisfy this: a parity-changing survivor
        always separates two live slots); otherwise the stitched links
        would disagree with the sequential semantics.
        """
        if not items:
            return
        m = len(items)
        ids_all = np.fromiter((i for i, _ in items), dtype=np.int64, count=m)
        if not self._alive[ids_all].all():
            raise KeyError("bulk substitution of a dead row")
        if (self._q1[ids_all] >= 0).any():
            raise ValueError("substitute_1q requires single-qubit nodes")
        ks_all = np.fromiter(
            (len(g) for _, g in items), dtype=np.int64, count=m
        )
        q_all = self._q0[ids_all].copy()
        # Neighbors are stable across the whole batch: no item is ever
        # another item's wire neighbor, so reading them up front is
        # equivalent to reading them one splice at a time.
        prev_all = self._pred0[ids_all].copy()
        nxt_all = self._succ0[ids_all].copy()

        # Empty replacement words are plain removals (mint no ids).
        for i in ids_all[ks_all == 0].tolist():
            self.remove(i)
        keep = ks_all > 0
        ids, ks = ids_all[keep], ks_all[keep]
        q, prev, nxt = q_all[keep], prev_all[keep], nxt_all[keep]
        if ids.size == 0:
            return
        m = ids.shape[0]

        total = int(ks.sum())
        base = self._size
        self._ensure_capacity(base + total)
        offs = base + np.concatenate(([0], np.cumsum(ks)[:-1]))

        # Validate and fill opcode/params in one pass over the gates.
        op_new: list[int] = []
        append = op_new.append
        r = base
        for (_node, gates), qi in zip(items, q_all.tolist()):
            for g in gates:
                if g.qubits != (qi,):
                    raise ValueError(
                        "substitute gates must stay on the wire"
                    )
                code = OPCODE.get(g.name)
                if code is None or len(g.params) > MAX_PARAMS:
                    self._check_gate(g)
                append(code)
                if g.params:
                    np_ = len(g.params)
                    self._params[r, :np_] = g.params
                    self._n_params[r] = np_
                r += 1

        end = base + total
        rows = np.arange(base, end, dtype=np.int64)
        first_rel = offs - base
        last_rel = first_rel + ks - 1
        self._op[base:end] = op_new
        self._q0[base:end] = np.repeat(q, ks)
        self._q1[base:end] = -1
        self._alive[base:end] = True
        pred_col = rows - 1
        succ_col = rows + 1
        pred_col[first_rel] = prev
        succ_col[last_rel] = nxt
        self._pred0[base:end] = pred_col
        self._succ0[base:end] = succ_col
        # pos interpolation mirrors the scalar path bit for bit: the
        # elementwise float ops below are the same IEEE operations.
        lo = np.where(prev == BOUNDARY, -1.0, self._pos[np.maximum(prev, 0)])
        hi = np.where(
            nxt == BOUNDARY, lo + (ks + 1.0), self._pos[np.maximum(nxt, 0)]
        )
        step = (hi - lo) / (ks + 1.0)
        jj = rows - np.repeat(offs, ks) + 1.0
        self._pos[base:end] = np.repeat(lo, ks) + np.repeat(step, ks) * jj

        # Stitch the wire neighbors to the run heads/tails.  Duplicate
        # neighbor ids across items land on different wire slots (a 2q
        # neighbor shared by two items is hit once per wire), so the
        # fancy-indexed writes cannot collide.
        heads, tails = offs, offs + ks - 1
        at_head = prev == BOUNDARY
        self._first[q[at_head]] = heads[at_head]
        pm = ~at_head
        p, h = prev[pm], heads[pm]
        is0 = self._q0[p] == q[pm]
        self._succ0[p[is0]] = h[is0]
        self._succ1[p[~is0]] = h[~is0]
        at_tail = nxt == BOUNDARY
        self._last[q[at_tail]] = tails[at_tail]
        nm = ~at_tail
        s, t = nxt[nm], tails[nm]
        is0 = self._q0[s] == q[nm]
        self._pred0[s[is0]] = t[is0]
        self._pred1[s[~is0]] = t[~is0]

        self._alive[ids] = False
        self._size = end
        self._n_alive += total - m

    # -- traversal / export --------------------------------------------------
    def linear_order(self) -> list[int]:
        """Kahn's algorithm with an id-ordered ready heap (see the DAG).

        Returns alive row ids in the same deterministic linear extension
        :meth:`CircuitDAG.topological` yields — smallest ready id first —
        so linearizations of a table and of its DAG twin agree exactly.
        """
        import heapq

        n = self._size
        alive = self._alive[:n]
        p0, p1 = self._pred0[:n], self._pred1[:n]
        s0l = self._succ0[:n].tolist()
        s1l = self._succ1[:n].tolist()
        indeg_arr = (p0 >= 0).astype(np.int64) + ((p1 >= 0) & (p1 != p0))
        indeg = indeg_arr.tolist()
        ready = np.nonzero(alive & (indeg_arr == 0))[0].tolist()
        heapq.heapify(ready)
        out: list[int] = []
        while ready:
            i = heapq.heappop(ready)
            out.append(i)
            s0 = s0l[i]
            if s0 != BOUNDARY:
                indeg[s0] -= 1
                if indeg[s0] == 0:
                    heapq.heappush(ready, s0)
            s1 = s1l[i]
            if s1 != BOUNDARY and s1 != s0:
                indeg[s1] -= 1
                if indeg[s1] == 0:
                    heapq.heappush(ready, s1)
        if len(out) != self._n_alive:
            raise RuntimeError("cycle in DAG table (corrupted wire columns)")
        return out

    def topological_ids(self) -> list[int]:
        """Alias of :meth:`linear_order` (DAG-parity naming)."""
        return self.linear_order()

    def to_circuit(self) -> Circuit:
        """Linearize back to a time-ordered gate list (lossless)."""
        order = self.linear_order()
        ids = np.asarray(order, dtype=np.int64)
        out = Circuit(self.n_qubits, name=self.name)
        if not order:
            return out
        # Bulk row reconstruction: snapshot the columns as python lists
        # once instead of per-gate numpy scalar reads, and share Gate
        # values for repeated parameterless rows (immutable anyway).
        op_l = self._op[ids].tolist()
        q0_l = self._q0[ids].tolist()
        q1_l = self._q1[ids].tolist()
        np_l = self._n_params[ids].tolist()
        pr_l = self._params[ids].tolist()
        names = GATE_NAMES
        memo: dict[tuple[int, int, int], Gate] = {}
        gates: list[Gate] = []
        append = gates.append
        for k in range(len(order)):
            if np_l[k] == 0:
                key = (op_l[k], q0_l[k], q1_l[k])
                g = memo.get(key)
                if g is None:
                    g = Gate(
                        names[key[0]],
                        (key[1],) if key[2] < 0 else (key[1], key[2]),
                    )
                    memo[key] = g
                append(g)
            else:
                append(Gate(
                    names[op_l[k]],
                    (q0_l[k],) if q1_l[k] < 0 else (q0_l[k], q1_l[k]),
                    tuple(pr_l[k][: np_l[k]]),
                ))
        out.gates = gates
        return out

    def write_back(self, dag: CircuitDAG) -> CircuitDAG:
        """Overwrite ``dag``'s nodes/links/counter with this table's state.

        The bridge for in-place pass semantics: wrappers import a
        caller's DAG with :meth:`from_dag`, run a columnar kernel, and
        write the result back so the caller's object reflects the
        rewrite — ids, wire links, and the fresh-id counter all match
        what the reference pass would have produced.
        """
        if dag.n_qubits != self.n_qubits:
            raise ValueError("write_back requires a same-width DAG")
        nodes: dict[int, DAGNode] = {}
        for i in np.nonzero(self._alive[: self._size])[0].tolist():
            g = self.gate(i)
            preds = {int(self._q0[i]): int(self._pred0[i])}
            succs = {int(self._q0[i]): int(self._succ0[i])}
            if self._q1[i] >= 0:
                preds[int(self._q1[i])] = int(self._pred1[i])
                succs[int(self._q1[i])] = int(self._succ1[i])
            nodes[i] = DAGNode(i, g, preds, succs)
        dag._nodes = nodes
        dag._first = [int(x) for x in self._first]
        dag._last = [int(x) for x in self._last]
        dag._next_id = self._size
        return dag

    def to_dag(self) -> CircuitDAG:
        """Export to a fresh :class:`CircuitDAG` (ids preserved)."""
        return self.write_back(CircuitDAG(self.n_qubits, self.name))
