"""Dependency-DAG circuit IR: the structured view behind the optimizers.

A :class:`CircuitDAG` holds one node per gate with explicit *wire edges*:
for every qubit a gate touches, the node records the previous and next
node on that wire.  That gives O(1) predecessor/successor access, cheap
node removal/substitution (splice the wire), topological iteration, and
front-layer (ASAP) scheduling via :meth:`CircuitDAG.as_layers` — the
structure every pass in :mod:`repro.optimizers.dag_passes` and every
longest-path metric in :mod:`repro.circuits.metrics` shares, instead of
each re-deriving dependencies with its own ad-hoc wire scan.

Conversion is lossless both ways: ``CircuitDAG.from_circuit(c)
.to_circuit()`` reproduces ``c``'s gate list exactly, because node ids
are assigned in time order and :meth:`topological` breaks ties on id
(the smallest unemitted id always has all predecessors emitted).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.circuits.circuit import Circuit, Gate

#: Sentinel id for the input/output boundary of a wire.
BOUNDARY = -1


@dataclass
class DAGNode:
    """One gate occurrence with per-qubit wire links.

    ``preds[q]`` / ``succs[q]`` are the node ids of the previous / next
    gate on wire ``q`` (:data:`BOUNDARY` at the circuit edge).
    """

    id: int
    gate: Gate
    preds: dict[int, int] = field(default_factory=dict)
    succs: dict[int, int] = field(default_factory=dict)

    @property
    def qubits(self) -> tuple[int, ...]:
        return self.gate.qubits


class CircuitDAG:
    """Per-qubit wire-edge dependency DAG over a gate list."""

    def __init__(self, n_qubits: int, name: str = ""):
        self.n_qubits = n_qubits
        self.name = name
        self._nodes: dict[int, DAGNode] = {}
        self._first: list[int] = [BOUNDARY] * n_qubits
        self._last: list[int] = [BOUNDARY] * n_qubits
        self._next_id = 0

    # -- construction -------------------------------------------------------
    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "CircuitDAG":
        dag = cls(circuit.n_qubits, circuit.name)
        for gate in circuit.gates:
            dag.add_gate(gate)
        return dag

    def add_gate(self, gate: Gate) -> DAGNode:
        """Append ``gate`` at the end of its wires (time order)."""
        node = DAGNode(self._next_id, gate)
        self._next_id += 1
        for q in gate.qubits:
            prev = self._last[q]
            node.preds[q] = prev
            node.succs[q] = BOUNDARY
            if prev == BOUNDARY:
                self._first[q] = node.id
            else:
                self._nodes[prev].succs[q] = node.id
            self._last[q] = node.id
        self._nodes[node.id] = node
        return node

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node(self, node_id: int) -> DAGNode:
        return self._nodes[node_id]

    def nodes(self) -> Iterator[DAGNode]:
        """All nodes in id (insertion) order — not a topological order
        after rewrites; use :meth:`topological` for that."""
        for i in sorted(self._nodes):
            yield self._nodes[i]

    def pred(self, node_id: int, qubit: int) -> DAGNode | None:
        """The previous node on ``qubit``'s wire, or None at the boundary."""
        i = self._nodes[node_id].preds[qubit]
        return None if i == BOUNDARY else self._nodes[i]

    def succ(self, node_id: int, qubit: int) -> DAGNode | None:
        """The next node on ``qubit``'s wire, or None at the boundary."""
        i = self._nodes[node_id].succs[qubit]
        return None if i == BOUNDARY else self._nodes[i]

    def predecessors(self, node_id: int) -> list[DAGNode]:
        """Distinct direct predecessors across all wires (id order)."""
        ids = {i for i in self._nodes[node_id].preds.values() if i != BOUNDARY}
        return [self._nodes[i] for i in sorted(ids)]

    def successors(self, node_id: int) -> list[DAGNode]:
        """Distinct direct successors across all wires (id order)."""
        ids = {i for i in self._nodes[node_id].succs.values() if i != BOUNDARY}
        return [self._nodes[i] for i in sorted(ids)]

    def wire(self, qubit: int) -> Iterator[DAGNode]:
        """All nodes on one wire, front to back."""
        i = self._first[qubit]
        while i != BOUNDARY:
            node = self._nodes[i]
            yield node
            i = node.succs[qubit]

    def front_layer(self) -> list[DAGNode]:
        """Nodes with no predecessors (every wire pred is the boundary)."""
        out = []
        for node in self._nodes.values():
            if all(p == BOUNDARY for p in node.preds.values()):
                out.append(node)
        return sorted(out, key=lambda n: n.id)

    # -- traversal ----------------------------------------------------------
    def topological(self) -> Iterator[DAGNode]:
        """Kahn's algorithm with an id-ordered ready heap.

        Because ids increase in insertion (time) order, popping the
        smallest ready id emits nodes in the exact original gate order
        for a freshly converted circuit — the lossless-roundtrip
        guarantee — and in a deterministic linear extension after
        rewrites.
        """
        pending = {
            i: len({p for p in n.preds.values() if p != BOUNDARY})
            for i, n in self._nodes.items()
        }
        ready = [i for i, deg in pending.items() if deg == 0]
        heapq.heapify(ready)
        emitted = 0
        while ready:
            i = heapq.heappop(ready)
            node = self._nodes[i]
            emitted += 1
            yield node
            for succ in self.successors(i):
                pending[succ.id] -= 1
                if pending[succ.id] == 0:
                    heapq.heappush(ready, succ.id)
        if emitted != len(self._nodes):
            raise RuntimeError("cycle in circuit DAG (corrupted wire edges)")

    def as_layers(self) -> list[list[DAGNode]]:
        """Front-layer (ASAP) schedule: maximal antichains of ready gates.

        Every node lands in the earliest layer where all its wire
        predecessors are already scheduled; gates within one layer act
        on pairwise-disjoint qubits and therefore commute.
        """
        level: dict[int, int] = {}
        layers: list[list[DAGNode]] = []
        for node in self.topological():
            lv = 0
            for p in node.preds.values():
                if p != BOUNDARY:
                    lv = max(lv, level[p] + 1)
            level[node.id] = lv
            if lv == len(layers):
                layers.append([])
            layers[lv].append(node)
        return layers

    def longest_path(
        self, weight: Callable[[Gate], float]
    ) -> tuple[float, list[DAGNode]]:
        """Heaviest path through the DAG under a per-gate ``weight``.

        The single shared traversal behind ``depth``, ``t_depth``,
        ``two_qubit_depth`` and critical-path extraction: one
        topological sweep computing, per node, the best weight of any
        path ending there.  Returns ``(total_weight, path_nodes)``;
        zero-weight nodes that happen to sit on the winning chain are
        included, so the path is an executable dependency chain.  When
        no node carries positive weight (e.g. the T-path of a T-free
        circuit) the path is empty rather than an arbitrary chain.
        """
        best: dict[int, float] = {}
        back: dict[int, int] = {}
        top: tuple[float, int] | None = None
        for node in self.topological():
            w = 0.0
            prev = BOUNDARY
            for p in node.preds.values():
                if p != BOUNDARY and best[p] > w:
                    w, prev = best[p], p
            w += weight(node.gate)
            best[node.id] = w
            back[node.id] = prev
            if top is None or w > top[0]:
                top = (w, node.id)
        if top is None or top[0] <= 0:
            return 0.0, []
        path: list[DAGNode] = []
        i = top[1]
        while i != BOUNDARY:
            path.append(self._nodes[i])
            i = back[i]
        path.reverse()
        return top[0], path

    # -- mutation -----------------------------------------------------------
    def remove_node(self, node_id: int) -> None:
        """Delete a gate, splicing its wires (preds link to succs)."""
        node = self._nodes.pop(node_id)
        for q in node.gate.qubits:
            p, s = node.preds[q], node.succs[q]
            if p == BOUNDARY:
                self._first[q] = s
            else:
                self._nodes[p].succs[q] = s
            if s == BOUNDARY:
                self._last[q] = p
            else:
                self._nodes[s].preds[q] = p

    def set_gate(self, node_id: int, gate: Gate) -> None:
        """Swap a node's gate in place (same qubit set required)."""
        node = self._nodes[node_id]
        if set(gate.qubits) != set(node.gate.qubits):
            raise ValueError("replacement gate must act on the same qubits")
        node.gate = gate

    def substitute_1q(self, node_id: int, gates: Iterable[Gate]) -> list[int]:
        """Replace a 1q node with a time-ordered run on the same wire.

        An empty ``gates`` just removes the node.  Returns the new ids.
        """
        node = self._nodes[node_id]
        if len(node.gate.qubits) != 1:
            raise ValueError("substitute_1q requires a single-qubit node")
        (q,) = node.gate.qubits
        prev, nxt = node.preds[q], node.succs[q]
        self.remove_node(node_id)
        new_ids: list[int] = []
        for gate in gates:
            if gate.qubits != (q,):
                raise ValueError("substitute gates must stay on the wire")
            fresh = DAGNode(self._next_id, gate)
            self._next_id += 1
            fresh.preds[q] = prev
            fresh.succs[q] = BOUNDARY
            if prev == BOUNDARY:
                self._first[q] = fresh.id
            else:
                self._nodes[prev].succs[q] = fresh.id
            self._nodes[fresh.id] = fresh
            new_ids.append(fresh.id)
            prev = fresh.id
        # Reconnect the tail of the spliced run to the old successor.
        if prev == BOUNDARY:
            self._first[q] = nxt
        elif nxt == BOUNDARY:
            self._last[q] = prev
        else:
            self._nodes[prev].succs[q] = nxt
            self._nodes[nxt].preds[q] = prev
        return new_ids

    # -- export -------------------------------------------------------------
    def to_circuit(self) -> Circuit:
        """Linearize back to a time-ordered gate list (lossless)."""
        out = Circuit(self.n_qubits, name=self.name)
        out.gates = [node.gate for node in self.topological()]
        return out

    def __repr__(self) -> str:
        return (
            f"CircuitDAG(n_qubits={self.n_qubits}, gates={len(self._nodes)})"
        )
