"""A minimal but complete quantum-circuit IR (the Qiskit substitute).

Gates are stored in *time order*: ``gates[0]`` acts first, so the
circuit unitary is ``G_n ... G_2 G_1``.  The gate vocabulary covers
everything the paper's workflows touch:

* 1q discrete: ``i h s sdg t tdg x y z``
* 1q continuous: ``rx ry rz u3`` (``u3`` carries (theta, phi, lam))
* 2q: ``cx cz swap``

Anything else (Toffolis, controlled rotations, multi-controlled phase)
is decomposed by the benchmark generators before reaching the IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.linalg import GATES, rx, ry, rz, u3

ONE_QUBIT_GATES = frozenset(
    {"i", "h", "s", "sdg", "t", "tdg", "x", "y", "z", "rx", "ry", "rz", "u3"}
)
TWO_QUBIT_GATES = frozenset({"cx", "cz", "swap"})
ROTATION_GATES = frozenset({"rx", "ry", "rz", "u3"})

_FIXED_1Q = {
    "i": GATES["I"], "h": GATES["H"], "s": GATES["S"], "sdg": GATES["Sdg"],
    "t": GATES["T"], "tdg": GATES["Tdg"], "x": GATES["X"], "y": GATES["Y"],
    "z": GATES["Z"],
}

_CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
_CZ = np.diag([1, 1, 1, -1]).astype(complex)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)

_DAGGER_NAME = {
    "i": "i", "h": "h", "x": "x", "y": "y", "z": "z",
    "s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
    "cx": "cx", "cz": "cz", "swap": "swap",
}


def is_idle_marker(gate: "Gate") -> bool:
    """True for the scheduler's idle-period markers.

    :func:`repro.schedule.insert_idle_markers` represents a qubit's
    idle slack as an identity gate carrying the idle duration as its
    single parameter (``Gate("i", (q,), (duration,))``).  A plain
    ``"i"`` gate built through :meth:`Circuit.append` never carries
    parameters, so the two cannot be confused.  This predicate is the
    single definition of the marker convention shared by the
    scheduler, the noise models, and the ESP cost model.
    """
    return gate.name == "i" and len(gate.params) == 1


def canonical_gate_name(name: str) -> str:
    """Canonical (lower-case) gate name shared by every table lookup.

    Circuit IR gates are lower-case (``"t"``) while synthesis token
    sequences are capitalized (``"T"``) and calibration JSON may use
    vendor spellings (``"CX"``, ``"Tdg"``); every name-keyed table in
    the noise, fidelity, target, and scheduling layers goes through
    this normalization so a gate can never silently miss its entry
    depending on which layer produced the name.
    """
    return name.lower()


@dataclass(frozen=True)
class Gate:
    """One circuit operation: ``name`` on ``qubits`` with ``params``."""

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()

    def matrix(self) -> np.ndarray:
        """Local matrix (2x2 or 4x4) of the gate."""
        if self.name in _FIXED_1Q:
            return _FIXED_1Q[self.name]
        if self.name == "rx":
            return rx(self.params[0])
        if self.name == "ry":
            return ry(self.params[0])
        if self.name == "rz":
            return rz(self.params[0])
        if self.name == "u3":
            return u3(*self.params)
        if self.name == "cx":
            return _CX
        if self.name == "cz":
            return _CZ
        if self.name == "swap":
            return _SWAP
        raise KeyError(f"unknown gate {self.name!r}")

    def dagger(self) -> "Gate":
        if self.name in _DAGGER_NAME:
            return Gate(_DAGGER_NAME[self.name], self.qubits, ())
        if self.name in ("rx", "ry", "rz"):
            return Gate(self.name, self.qubits, (-self.params[0],))
        if self.name == "u3":
            theta, phi, lam = self.params
            return Gate("u3", self.qubits, (-theta, -lam, -phi))
        raise KeyError(f"cannot invert gate {self.name!r}")


@dataclass
class Circuit:
    """An ordered list of gates on ``n_qubits`` wires (time order)."""

    n_qubits: int
    gates: list[Gate] = field(default_factory=list)
    name: str = ""

    # -- construction helpers ---------------------------------------------
    def append(self, name: str, qubits, params=()) -> "Circuit":
        if isinstance(qubits, int):
            qubits = (qubits,)
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            if not 0 <= q < self.n_qubits:
                raise ValueError(f"qubit {q} out of range for {self.n_qubits}")
        if len(set(qubits)) != len(qubits):
            raise ValueError("duplicate qubits in gate")
        expected = 1 if name in ONE_QUBIT_GATES else 2
        if name not in ONE_QUBIT_GATES and name not in TWO_QUBIT_GATES:
            raise ValueError(f"unknown gate {name!r}")
        if len(qubits) != expected:
            raise ValueError(f"{name} expects {expected} qubits")
        n_params = 3 if name == "u3" else (1 if name in ("rx", "ry", "rz") else 0)
        params = tuple(float(p) for p in params)
        if len(params) != n_params:
            raise ValueError(f"{name} expects {n_params} parameters")
        self.gates.append(Gate(name, qubits, params))
        return self

    def h(self, q): return self.append("h", q)
    def s(self, q): return self.append("s", q)
    def sdg(self, q): return self.append("sdg", q)
    def t(self, q): return self.append("t", q)
    def tdg(self, q): return self.append("tdg", q)
    def x(self, q): return self.append("x", q)
    def y(self, q): return self.append("y", q)
    def z(self, q): return self.append("z", q)
    def rx(self, theta, q): return self.append("rx", q, (theta,))
    def ry(self, theta, q): return self.append("ry", q, (theta,))
    def rz(self, theta, q): return self.append("rz", q, (theta,))

    def u3(self, theta, phi, lam, q):
        return self.append("u3", q, (theta, phi, lam))

    def cx(self, c, t): return self.append("cx", (c, t))
    def cz(self, a, b): return self.append("cz", (a, b))
    def swap(self, a, b): return self.append("swap", (a, b))

    def ccx(self, a, b, c) -> "Circuit":
        """Toffoli via the standard 7-T Clifford+T decomposition."""
        self.h(c)
        self.cx(b, c); self.tdg(c)
        self.cx(a, c); self.t(c)
        self.cx(b, c); self.tdg(c)
        self.cx(a, c)
        self.t(b); self.t(c)
        self.cx(a, b); self.h(c)
        self.t(a); self.tdg(b)
        self.cx(a, b)
        return self

    def cp(self, theta, a, b) -> "Circuit":
        """Controlled phase via two CX and three rotations."""
        self.rz(theta / 2, a)
        self.rz(theta / 2, b)
        self.cx(a, b)
        self.rz(-theta / 2, b)
        self.cx(a, b)
        return self

    def crz(self, theta, a, b) -> "Circuit":
        self.rz(theta / 2, b)
        self.cx(a, b)
        self.rz(-theta / 2, b)
        self.cx(a, b)
        return self

    def cry(self, theta, a, b) -> "Circuit":
        self.ry(theta / 2, b)
        self.cx(a, b)
        self.ry(-theta / 2, b)
        self.cx(a, b)
        return self

    # -- combination ---------------------------------------------------------
    def compose(self, other: "Circuit") -> "Circuit":
        if other.n_qubits > self.n_qubits:
            raise ValueError("composed circuit has more qubits")
        self.gates.extend(other.gates)
        return self

    def inverse(self) -> "Circuit":
        inv = Circuit(self.n_qubits, name=self.name + "_dg")
        inv.gates = [g.dagger() for g in reversed(self.gates)]
        return inv

    def copy(self) -> "Circuit":
        return Circuit(self.n_qubits, list(self.gates), self.name)

    def __len__(self) -> int:
        return len(self.gates)

    # -- semantics ------------------------------------------------------------
    def apply(self, state: np.ndarray) -> np.ndarray:
        """Apply the circuit to a statevector of shape (2**n,)."""
        psi = np.asarray(state, dtype=complex).reshape((2,) * self.n_qubits)
        for gate in self.gates:
            psi = _apply_gate(psi, gate, self.n_qubits)
        return psi.reshape(-1)

    def statevector(self) -> np.ndarray:
        """Run on |0...0>."""
        init = np.zeros(2**self.n_qubits, dtype=complex)
        init[0] = 1.0
        return self.apply(init)

    def unitary(self, max_qubits: int = 12) -> np.ndarray:
        """Dense circuit unitary (guarded against exponential blowups)."""
        if self.n_qubits > max_qubits:
            raise ValueError(
                f"refusing dense unitary on {self.n_qubits} qubits"
            )
        dim = 2**self.n_qubits
        out = np.eye(dim, dtype=complex)
        for col in range(dim):
            out[:, col] = self.apply(np.eye(dim, dtype=complex)[:, col])
        return out


def _apply_gate(psi: np.ndarray, gate: Gate, n: int) -> np.ndarray:
    m = gate.matrix()
    if len(gate.qubits) == 1:
        q = gate.qubits[0]
        psi = np.tensordot(m, psi, axes=([1], [q]))
        return np.moveaxis(psi, 0, q)
    a, b = gate.qubits
    m = m.reshape(2, 2, 2, 2)
    psi = np.tensordot(m, psi, axes=([2, 3], [a, b]))
    return np.moveaxis(psi, (0, 1), (a, b))
