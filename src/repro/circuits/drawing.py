"""ASCII circuit rendering for quick inspection in terminals and docs."""

from __future__ import annotations

from repro.circuits.circuit import Circuit


def draw(circuit: Circuit, max_columns: int = 120) -> str:
    """Render the circuit as fixed-width wire art.

    Columns are packed greedily: a gate starts a new column only when it
    overlaps a qubit already used in the current column.
    """
    columns: list[list] = [[]]
    used: set[int] = set()
    for g in circuit.gates:
        span = set(range(min(g.qubits), max(g.qubits) + 1))
        if used & span:
            columns.append([])
            used = set()
        columns[-1].append(g)
        used |= span

    labels = []
    for g_list in columns:
        col = {}
        for g in g_list:
            col.update(_gate_cells(g))
        labels.append(col)

    width = max((max(len(v) for v in col.values()) for col in labels if col),
                default=1)
    lines = []
    for q in range(circuit.n_qubits):
        parts = [f"q{q}: "]
        for col in labels:
            cell = col.get(q, "─" * width)
            parts.append(cell.center(width, "─"))
            parts.append("─")
        line = "".join(parts)
        lines.append(line[: max_columns])
    return "\n".join(lines)


def _gate_cells(g) -> dict[int, str]:
    if len(g.qubits) == 1:
        name = g.name.upper()
        if g.params:
            name += f"({g.params[0]:.2f})" if len(g.params) == 1 else "(..)"
        return {g.qubits[0]: f"[{name}]"}
    a, b = g.qubits
    if g.name == "cx":
        cells = {a: "●", b: "⊕"}
    elif g.name == "cz":
        cells = {a: "●", b: "●"}
    else:  # swap
        cells = {a: "x", b: "x"}
    for q in range(min(a, b) + 1, max(a, b)):
        cells.setdefault(q, "│")
    return cells
