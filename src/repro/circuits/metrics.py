"""Resource metrics from the paper's evaluation section.

* ``t_count``   — number of T/Tdg gates.
* ``t_depth``   — T count along the critical path (paper metric (2)).
* ``clifford_count`` — single-qubit non-Pauli Cliffords: H, S, Sdg.
  Paulis are free in error-corrected execution, and the two-qubit
  skeleton (CX/CZ/SWAP) is identical across synthesis workflows, so the
  comparison metric tracks the 1q Clifford cost the synthesizers control.
* ``rotation_count`` — "nontrivial" rotations: angles that are not
  integer multiples of pi/4 (those need substantial T sequences; exact
  multiples synthesize with at most one T — paper footnote 3).
"""

from __future__ import annotations

import math

from repro.circuits.circuit import ROTATION_GATES, Circuit, Gate

_T_NAMES = frozenset({"t", "tdg"})
_CLIFFORD_NAMES = frozenset({"h", "s", "sdg"})
_QUARTER = math.pi / 4.0


def t_count(circuit: Circuit) -> int:
    return sum(1 for g in circuit.gates if g.name in _T_NAMES)


def t_depth(circuit: Circuit) -> int:
    """T gates on the critical path (longest chain through the DAG)."""
    depths = [0] * circuit.n_qubits
    for g in circuit.gates:
        d = max(depths[q] for q in g.qubits)
        if g.name in _T_NAMES:
            d += 1
        for q in g.qubits:
            depths[q] = d
    return max(depths, default=0)


def clifford_count(circuit: Circuit) -> int:
    return sum(1 for g in circuit.gates if g.name in _CLIFFORD_NAMES)


def is_trivial_angle(theta: float, tol: float = 1e-9) -> bool:
    """True when theta is an integer multiple of pi/4 (<= one T gate)."""
    return abs(math.remainder(theta, _QUARTER)) <= tol


def _gate_is_nontrivial_rotation(gate: Gate, tol: float) -> bool:
    if gate.name not in ROTATION_GATES:
        return False
    if gate.name in ("rx", "ry", "rz"):
        return not is_trivial_angle(gate.params[0], tol)
    # u3: trivial only if all three Euler angles are pi/4 multiples (a
    # conservative proxy for "is a Clifford+T word with <= 1 T").
    return not all(is_trivial_angle(p, tol) for p in gate.params)


def rotation_count(circuit: Circuit, tol: float = 1e-9) -> int:
    """Number of rotations that require genuine Clifford+T synthesis."""
    return sum(
        1 for g in circuit.gates if _gate_is_nontrivial_rotation(g, tol)
    )
