"""Resource metrics from the paper's evaluation section.

* ``t_count``   — number of T/Tdg gates.
* ``t_depth``   — T gates on the critical path (paper metric (2)).
* ``depth``     — gates on the critical path (circuit depth).
* ``two_qubit_depth`` — 2q gates on the critical path.
* ``clifford_count`` — single-qubit non-Pauli Cliffords: H, S, Sdg.
  Paulis are free in error-corrected execution, and the two-qubit
  skeleton (CX/CZ/SWAP) is identical across synthesis workflows, so the
  comparison metric tracks the 1q Clifford cost the synthesizers control.
* ``rotation_count`` — "nontrivial" rotations: angles that are not
  integer multiples of pi/4 (those need substantial T sequences; exact
  multiples synthesize with at most one T — paper footnote 3).

All depth-family metrics are longest-path queries over the dependency
DAG (:class:`repro.circuits.dag.CircuitDAG`), sharing one traversal
implementation (:meth:`CircuitDAG.longest_path`);
:func:`critical_path` exposes the winning dependency chain itself.
"""

from __future__ import annotations

import math
from typing import Callable

from collections import Counter

from repro.circuits.circuit import (
    ROTATION_GATES,
    Circuit,
    Gate,
    is_idle_marker,
)
from repro.circuits.dag import CircuitDAG

_T_NAMES = frozenset({"t", "tdg"})
_CLIFFORD_NAMES = frozenset({"h", "s", "sdg"})
_QUARTER = math.pi / 4.0

#: Per-gate weights for the longest-path metric family.  Idle markers
#: (scheduler bookkeeping, not gates) weigh nothing everywhere, so a
#: scheduled circuit's metrics match its unmarked original.
_WEIGHTS: dict[str, Callable[[Gate], float]] = {
    "depth": lambda g: 0.0 if is_idle_marker(g) else 1.0,
    "t": lambda g: 1.0 if g.name in _T_NAMES else 0.0,
    "2q": lambda g: 1.0 if len(g.qubits) == 2 else 0.0,
}


def _longest(circuit: Circuit | CircuitDAG, weight: str) -> int:
    dag = (
        circuit
        if isinstance(circuit, CircuitDAG)
        else CircuitDAG.from_circuit(circuit)
    )
    length, _ = dag.longest_path(_WEIGHTS[weight])
    return int(length)


def t_count(circuit: Circuit) -> int:
    return sum(1 for g in circuit.gates if g.name in _T_NAMES)


def gate_counts(circuit: Circuit) -> dict[str, int]:
    """Gate-name histogram, ignoring idle markers.

    Idle markers (``Gate("i", (q,), (duration,))`` from
    :func:`repro.schedule.insert_idle_markers`) are scheduler
    bookkeeping: a scheduled circuit must report the same counts as
    the circuit it was derived from.  Plain ``"i"`` identity gates
    (no duration parameter) still count.
    """
    return dict(
        Counter(g.name for g in circuit.gates if not is_idle_marker(g))
    )


def t_depth(circuit: Circuit | CircuitDAG) -> int:
    """T gates on the critical path: a DAG longest-path query."""
    return _longest(circuit, "t")


def depth(circuit: Circuit | CircuitDAG) -> int:
    """Circuit depth: longest dependency chain counting every gate."""
    return _longest(circuit, "depth")


def two_qubit_depth(circuit: Circuit | CircuitDAG) -> int:
    """2q gates (CX/CZ/SWAP) on the critical path."""
    return _longest(circuit, "2q")


def critical_path(
    circuit: Circuit | CircuitDAG, weight: str = "depth"
) -> list[Gate]:
    """The gates of the heaviest dependency chain.

    ``weight`` selects the metric: ``'depth'`` (every gate), ``'t'``
    (T/Tdg only), or ``'2q'`` (two-qubit gates only).  Zero-weight
    gates on the winning chain are included, so the returned list is an
    executable dependency path.
    """
    if weight not in _WEIGHTS:
        raise ValueError(f"weight must be one of {sorted(_WEIGHTS)}")
    dag = (
        circuit
        if isinstance(circuit, CircuitDAG)
        else CircuitDAG.from_circuit(circuit)
    )
    _, path = dag.longest_path(_WEIGHTS[weight])
    return [node.gate for node in path]


def clifford_count(circuit: Circuit) -> int:
    return sum(1 for g in circuit.gates if g.name in _CLIFFORD_NAMES)


def is_trivial_angle(theta: float, tol: float = 1e-9) -> bool:
    """True when theta is an integer multiple of pi/4 (<= one T gate)."""
    return abs(math.remainder(theta, _QUARTER)) <= tol


def _gate_is_nontrivial_rotation(gate: Gate, tol: float) -> bool:
    if gate.name not in ROTATION_GATES:
        return False
    if gate.name in ("rx", "ry", "rz"):
        return not is_trivial_angle(gate.params[0], tol)
    # u3: trivial only if all three Euler angles are pi/4 multiples (a
    # conservative proxy for "is a Clifford+T word with <= 1 T").
    return not all(is_trivial_angle(p, tol) for p in gate.params)


def rotation_count(circuit: Circuit, tol: float = 1e-9) -> int:
    """Number of rotations that require genuine Clifford+T synthesis."""
    return sum(
        1 for g in circuit.gates if _gate_is_nontrivial_rotation(g, tol)
    )
