"""OpenQASM 2.0 interchange for the circuit IR.

Supports the gate vocabulary of :mod:`repro.circuits.circuit` plus the
aliases common in exported FT circuits (``p``/``u1`` as Rz up to phase,
``u``/``U`` as U3).  This is the interop boundary a downstream user
needs to feed their own circuits into the synthesis workflows.
"""

from __future__ import annotations

import math
import re

from repro.circuits.circuit import Circuit

_EXPORT_NAMES = {
    "i": "id", "h": "h", "s": "s", "sdg": "sdg", "t": "t", "tdg": "tdg",
    "x": "x", "y": "y", "z": "z", "rx": "rx", "ry": "ry", "rz": "rz",
    "u3": "u3", "cx": "cx", "cz": "cz", "swap": "swap",
}
_IMPORT_NAMES = {v: k for k, v in _EXPORT_NAMES.items()}
_IMPORT_NAMES.update({"u": "u3", "U": "u3", "p": "rz", "u1": "rz", "id": "i"})

_GATE_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(?:\(([^)]*)\))?\s+(.+?)\s*;\s*$"
)
_QUBIT_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\[(\d+)\]$")


class QASMError(ValueError):
    """Raised for unsupported or malformed QASM input."""


def to_qasm(circuit: Circuit) -> str:
    """Serialize a circuit as OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.n_qubits}];",
    ]
    for g in circuit.gates:
        name = _EXPORT_NAMES.get(g.name)
        if name is None:
            raise QASMError(f"gate {g.name!r} has no QASM export")
        params = (
            "(" + ",".join(repr(p) for p in g.params) + ")" if g.params else ""
        )
        qubits = ",".join(f"q[{q}]" for q in g.qubits)
        lines.append(f"{name}{params} {qubits};")
    return "\n".join(lines) + "\n"


def from_qasm(text: str) -> Circuit:
    """Parse the supported OpenQASM 2.0 subset back into a circuit."""
    n_qubits = None
    register = None
    gates: list[tuple[str, tuple[int, ...], tuple[float, ...]]] = []
    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if not line:
            continue
        if line.startswith(("OPENQASM", "include")):
            continue
        if line.startswith("qreg"):
            m = re.match(r"qreg\s+([A-Za-z_][A-Za-z0-9_]*)\[(\d+)\]\s*;", line)
            if not m:
                raise QASMError(f"bad qreg line: {raw!r}")
            if n_qubits is not None:
                raise QASMError("multiple qregs are not supported")
            register, n_qubits = m.group(1), int(m.group(2))
            continue
        if line.startswith(("creg", "barrier", "measure")):
            continue
        m = _GATE_RE.match(line)
        if not m:
            raise QASMError(f"cannot parse line: {raw!r}")
        qasm_name, params_text, qubits_text = m.groups()
        name = _IMPORT_NAMES.get(qasm_name)
        if name is None:
            raise QASMError(f"unsupported gate {qasm_name!r}")
        params = tuple(
            _eval_param(p) for p in params_text.split(",")
        ) if params_text else ()
        qubits = []
        for qt in qubits_text.split(","):
            qm = _QUBIT_RE.match(qt.strip())
            if not qm or qm.group(1) != register:
                raise QASMError(f"bad qubit reference {qt!r}")
            qubits.append(int(qm.group(2)))
        if qasm_name in ("p", "u1"):
            # p/u1 equal Rz up to global phase: fine for synthesis flows.
            params = (params[0],)
        gates.append((name, tuple(qubits), params))
    if n_qubits is None:
        raise QASMError("no qreg declaration found")
    circuit = Circuit(n_qubits)
    for name, qubits, params in gates:
        circuit.append(name, qubits, params)
    return circuit


_PARAM_TOKEN = re.compile(r"^[0-9eE+\-.*/() ]*$")


def _eval_param(text: str) -> float:
    """Evaluate a numeric QASM parameter (numbers, pi arithmetic)."""
    text = text.strip().replace("pi", repr(math.pi))
    if not _PARAM_TOKEN.match(text):
        raise QASMError(f"unsupported parameter expression {text!r}")
    try:
        return float(eval(text, {"__builtins__": {}}, {}))
    except (SyntaxError, NameError, TypeError, ValueError,
            ZeroDivisionError, OverflowError) as exc:
        # Only genuine parse/arithmetic failures become QASM errors;
        # anything else (MemoryError, KeyboardInterrupt, ...) must not
        # be swallowed into a generic "bad parameter" message.
        raise QASMError(
            f"cannot evaluate parameter {text!r}: {exc}"
        ) from exc
