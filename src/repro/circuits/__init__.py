"""Quantum circuit intermediate representation and resource metrics."""

from repro.circuits.circuit import Circuit, Gate, is_idle_marker
from repro.circuits.dag import CircuitDAG, DAGNode
from repro.circuits.dag_table import GATE_NAMES, OPCODE, DAGTable
from repro.circuits.drawing import draw
from repro.circuits.metrics import (
    clifford_count,
    critical_path,
    depth,
    gate_counts,
    is_trivial_angle,
    rotation_count,
    t_count,
    t_depth,
    two_qubit_depth,
)
from repro.circuits.qasm import from_qasm, to_qasm

__all__ = [
    "Circuit",
    "CircuitDAG",
    "DAGNode",
    "DAGTable",
    "GATE_NAMES",
    "Gate",
    "OPCODE",
    "clifford_count",
    "critical_path",
    "depth",
    "draw",
    "from_qasm",
    "gate_counts",
    "is_idle_marker",
    "is_trivial_angle",
    "rotation_count",
    "t_count",
    "t_depth",
    "to_qasm",
    "two_qubit_depth",
]
