"""Quantum circuit intermediate representation and resource metrics."""

from repro.circuits.circuit import Circuit, Gate
from repro.circuits.drawing import draw
from repro.circuits.metrics import (
    clifford_count,
    is_trivial_angle,
    rotation_count,
    t_count,
    t_depth,
)
from repro.circuits.qasm import from_qasm, to_qasm

__all__ = [
    "Circuit",
    "Gate",
    "clifford_count",
    "draw",
    "from_qasm",
    "is_trivial_angle",
    "rotation_count",
    "t_count",
    "t_depth",
    "to_qasm",
]
