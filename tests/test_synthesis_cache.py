"""SynthesisCache correctness: determinism, persistence, concurrency."""

import threading
import time

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.qasm import to_qasm
from repro.pipeline import (
    SynthesisCache,
    compile_batch,
    compile_circuit,
    key_rz,
    key_u3,
    rng_for_key,
)
from repro.synthesis.sequences import GateSequence


def _batch_circuits(n: int = 8) -> list[Circuit]:
    """Small circuits with heavily overlapping rotation angles."""
    circuits = []
    for i in range(n):
        c = Circuit(2, name=f"case{i}")
        c.h(0)
        c.rz(0.3 + 0.1 * (i % 3), 0)
        c.cx(0, 1)
        c.rz(0.3, 1)
        c.rx(0.5, 0)
        c.h(1)
        circuits.append(c)
    return circuits


class TestCacheBasics:
    def test_get_or_and_stats(self):
        cache = SynthesisCache()
        seq = GateSequence(gates=("H", "T"), error=0.1)
        calls = []

        def compute():
            calls.append(1)
            return seq

        key = key_rz(0.5, 0.01)
        assert cache.get_or(key, compute) is seq
        assert cache.get_or(key, compute) is seq
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert 0.0 < stats.hit_rate < 1.0

    def test_key_rounding_merges_near_identical_angles(self):
        assert key_rz(0.5, 0.01) == key_rz(0.5 + 1e-14, 0.01)
        assert key_rz(0.5, 0.01) != key_rz(0.5, 0.02)
        assert key_u3(0.1, 0.2, 0.3, 0.01) != key_u3(0.1, 0.2, 0.4, 0.01)

    def test_lru_eviction_bounds_size(self):
        cache = SynthesisCache(maxsize=4)
        for i in range(10):
            cache.put(key_rz(float(i), 0.01),
                      GateSequence(gates=("T",), error=0.0))
        assert len(cache) == 4
        # Oldest keys evicted, newest retained.
        assert key_rz(9.0, 0.01) in cache
        assert key_rz(0.0, 0.01) not in cache

    def test_put_if_absent_keeps_first_value(self):
        cache = SynthesisCache()
        first = GateSequence(gates=("T",), error=0.1)
        second = GateSequence(gates=("H",), error=0.2)
        key = key_rz(1.0, 0.01)
        assert cache.put(key, first) is first
        assert cache.put(key, second) is first

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            SynthesisCache(maxsize=0)

    def test_rng_for_key_is_stable_and_key_sensitive(self):
        a = rng_for_key(0, key_rz(0.5, 0.01)).integers(1 << 30)
        b = rng_for_key(0, key_rz(0.5, 0.01)).integers(1 << 30)
        c = rng_for_key(0, key_rz(0.6, 0.01)).integers(1 << 30)
        d = rng_for_key(1, key_rz(0.5, 0.01)).integers(1 << 30)
        assert a == b
        assert len({a, c, d}) == 3


class TestColdWarmDeterminism:
    @pytest.mark.parametrize("workflow,eps", [("gridsynth", 0.02),
                                              ("trasyn", 0.15)])
    def test_cold_vs_warm_identical(self, workflow, eps):
        c = _batch_circuits(1)[0]
        cache = SynthesisCache()
        cold = compile_circuit(c, workflow=workflow, eps=eps, cache=cache)
        assert cache.stats().misses > 0
        warm = compile_circuit(c, workflow=workflow, eps=eps, cache=cache)
        assert to_qasm(cold.circuit) == to_qasm(warm.circuit)
        assert cold.total_synthesis_error == warm.total_synthesis_error
        assert cold.n_rotations == warm.n_rotations

    def test_disk_round_trip_preserves_results(self, tmp_path):
        c = _batch_circuits(1)[0]
        cache = SynthesisCache()
        cold = compile_circuit(c, workflow="gridsynth", eps=0.02, cache=cache)
        path = tmp_path / "cache.json"
        cache.save(path)

        loaded = SynthesisCache.load(path)
        assert len(loaded) == len(cache)
        warm = compile_circuit(c, workflow="gridsynth", eps=0.02, cache=loaded)
        assert to_qasm(cold.circuit) == to_qasm(warm.circuit)
        assert cold.total_synthesis_error == warm.total_synthesis_error
        # Every rotation came from the loaded cache: zero misses.
        assert loaded.stats().misses == 0
        assert loaded.stats().hits > 0

    def test_failed_save_leaves_previous_cache_intact(
        self, tmp_path, monkeypatch
    ):
        import os

        c = _batch_circuits(1)[0]
        cache = SynthesisCache()
        compile_circuit(c, workflow="gridsynth", eps=0.02, cache=cache)
        path = tmp_path / "cache.json"
        cache.save(path)
        before = path.read_text()

        cache.put(key_rz(1.234, 0.02), GateSequence(("H", "T", "H"), 0.01))

        def boom(src, dst):
            raise OSError("no space left on device")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            cache.save(path)
        monkeypatch.undo()
        # The previous cache file is byte-identical and still loads;
        # no temp files were left behind.
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]
        assert len(SynthesisCache.load(path)) == len(cache) - 1

    def test_merge_from_skips_existing(self, tmp_path):
        cache = SynthesisCache()
        cache.put(key_rz(0.5, 0.01), GateSequence(gates=("T",), error=0.0))
        path = tmp_path / "cache.json"
        cache.save(path)
        assert cache.merge_from(path) == 0
        other = SynthesisCache()
        assert other.merge_from(path) == 1


class TestBatchMatchesSerial:
    @pytest.mark.parametrize("workflow,eps", [("gridsynth", 0.02),
                                              ("trasyn", 0.15)])
    def test_concurrent_equals_serial(self, workflow, eps):
        circuits = _batch_circuits(8)
        serial = compile_batch(circuits, workflow=workflow, eps=eps,
                               max_workers=1)
        parallel = compile_batch(circuits, workflow=workflow, eps=eps,
                                 max_workers=4)
        assert len(serial) == len(parallel) == 8
        for s, p in zip(serial, parallel):
            assert to_qasm(s.circuit) == to_qasm(p.circuit)
            assert s.total_synthesis_error == p.total_synthesis_error

    def test_shared_cache_is_warm_across_batches(self):
        circuits = _batch_circuits(8)
        cache = SynthesisCache()
        compile_batch(circuits, workflow="gridsynth", eps=0.02, cache=cache)
        before = cache.stats()
        second = compile_batch(circuits, workflow="gridsynth", eps=0.02,
                               cache=cache, max_workers=4)
        after = cache.stats()
        assert after.misses == before.misses  # fully warm: no new synthesis
        assert after.hits > before.hits
        assert len(second) == 8

    def test_summary_mentions_every_circuit(self):
        circuits = _batch_circuits(3)
        batch = compile_batch(circuits, workflow="gridsynth", eps=0.05)
        text = batch.summary()
        for c in circuits:
            assert c.name in text


class TestThreadSafety:
    def test_concurrent_get_or_single_canonical_value(self):
        cache = SynthesisCache()
        key = key_rz(0.75, 0.01)
        results = []
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            seq = cache.get_or(
                key, lambda: GateSequence(gates=("T",) * (i + 1), error=0.0)
            )
            results.append(seq)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(r) for r in results}) == 1
        assert len(cache) == 1

    def test_cold_same_key_synthesizes_once(self):
        cache = SynthesisCache()
        key = key_rz(0.9, 0.01)
        calls = []
        barrier = threading.Barrier(6)

        def compute():
            calls.append(1)
            time.sleep(0.05)  # widen the window racers would pile into
            return GateSequence(gates=("T",), error=0.0)

        def worker():
            barrier.wait()
            cache.get_or(key, compute)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # In-flight coordination: one owner computes, the rest wait.
        assert len(calls) == 1
        assert len(cache) == 1

    def test_waiters_recover_from_failed_compute(self):
        cache = SynthesisCache()
        key = key_rz(1.5, 0.01)
        started = threading.Event()
        results = []

        def failing():
            started.set()
            time.sleep(0.05)
            raise RuntimeError("synthesis exploded")

        def owner():
            try:
                cache.get_or(key, failing)
            except RuntimeError:
                pass

        def waiter():
            started.wait()
            results.append(cache.get_or(
                key, lambda: GateSequence(gates=("H",), error=0.0)
            ))

        threads = [threading.Thread(target=owner),
                   threading.Thread(target=waiter)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results and results[0].gates == ("H",)
        assert len(cache) == 1

    def test_concurrent_distinct_keys(self):
        cache = SynthesisCache()
        rng = np.random.default_rng(0)
        angles = rng.uniform(0, 3, size=64)

        def worker(chunk):
            for theta in chunk:
                cache.get_or(
                    key_rz(float(theta), 0.01),
                    lambda: GateSequence(gates=("T",), error=0.0),
                )

        threads = [
            threading.Thread(target=worker, args=(angles[i::4],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == 64
