"""Tests for exact gates, the Clifford group, and step-0 enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration import build_table, expected_unique_count, get_table
from repro.enumeration import vectorized as vec
from repro.gates import EXACT_GATES, ExactUnitary, cliffords
from repro.linalg import GATES, trace_value


class TestExactUnitary:
    def test_gates_match_float(self):
        for name, exact in EXACT_GATES.items():
            if name in GATES:
                assert np.allclose(exact.to_matrix(), GATES[name]), name

    def test_all_exact_gates_unitary(self):
        for name, exact in EXACT_GATES.items():
            assert exact.is_unitary(), name

    def test_product_matches_float(self):
        seq = ("H", "T", "S", "H", "T", "X", "T", "H")
        exact = ExactUnitary.from_gates(seq)
        dense = np.eye(2, dtype=complex)
        for g in seq:
            dense = dense @ GATES[g]
        assert np.allclose(exact.to_matrix(), dense)

    def test_canonical_key_phase_invariant(self):
        u = ExactUnitary.from_gates(("H", "T", "H"))
        for j in range(8):
            assert u.scale_phase(j).canonical_key() == u.canonical_key()

    def test_canonical_key_distinguishes(self):
        a = ExactUnitary.from_gates(("H", "T"))
        b = ExactUnitary.from_gates(("T", "H"))
        assert a.canonical_key() != b.canonical_key()

    def test_dagger(self):
        u = ExactUnitary.from_gates(("H", "T", "S"))
        prod = (u.dagger() @ u).reduce()
        assert prod.equals_up_to_phase(ExactUnitary.identity())

    def test_reduce_lowers_k(self):
        u = ExactUnitary.from_gates(("H", "H"))  # identity at k=2
        assert u.k == 0


class TestCliffordGroup:
    def test_exactly_24(self):
        assert len(cliffords()) == 24

    def test_distinct_up_to_phase(self):
        keys = {c.exact.canonical_key() for c in cliffords()}
        assert len(keys) == 24

    def test_all_unitary_and_t_free(self):
        for c in cliffords():
            assert c.exact.is_unitary()
            assert "T" not in c.sequence and "Tdg" not in c.sequence

    def test_sequences_reproduce(self):
        for c in cliffords():
            rebuilt = ExactUnitary.from_gates(c.sequence)
            assert rebuilt.equals_up_to_phase(c.exact)

    def test_pauli_cost_zero(self):
        costs = sorted(c.hs_cost for c in cliffords())
        assert costs[:4] == [0, 0, 0, 0]  # I, X, Y, Z
        assert max(costs) <= 3

    def test_group_closure(self):
        keys = {c.exact.canonical_key() for c in cliffords()}
        cs = cliffords()
        for a in cs[:6]:
            for b in cs[:6]:
                prod = (a.exact @ b.exact).reduce()
                assert prod.canonical_key() in keys


class TestVectorizedArithmetic:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20)
    def test_zmul_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(-20, 20, size=(5, 4)).astype(np.int64)
        y = rng.integers(-20, 20, size=(5, 4)).astype(np.int64)
        from repro.rings.zomega import ZOmega

        prod = vec.zmul(x, y)
        for i in range(5):
            a = ZOmega(*map(int, x[i]))
            b = ZOmega(*map(int, y[i]))
            c = a * b
            assert tuple(map(int, prod[i])) == (c.a, c.b, c.c, c.d)

    def test_omega_shift_is_omega_multiplication(self):
        from repro.rings.zomega import OMEGA, ZOmega

        x = np.array([[1, -2, 3, 4]], dtype=np.int64)
        shifted = vec.omega_shift(x)
        expected = ZOmega(1, -2, 3, 4) * OMEGA
        assert tuple(map(int, shifted[0])) == (
            expected.a, expected.b, expected.c, expected.d,
        )

    def test_div_mul_sqrt2_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.integers(-50, 50, size=(10, 2, 2, 4)).astype(np.int64)
        assert np.array_equal(vec.div_sqrt2(vec.mul_sqrt2(x)), x)


class TestEnumeration:
    @pytest.mark.parametrize("budget", [0, 1, 2, 3, 4, 5, 6])
    def test_count_law(self, budget):
        table = build_table(budget)
        assert len(table) == expected_unique_count(budget)

    def test_level_sizes(self):
        table = build_table(5)
        sizes = table.level_sizes()
        assert sizes[0] == 24
        for t in range(1, 6):
            assert sizes[t] == 24 * 3 * 2 ** (t - 1)

    def test_sequences_reproduce_matrices(self):
        table = build_table(4)
        rng = np.random.default_rng(0)
        for i in rng.choice(len(table), 40, replace=False):
            seq = table.sequence(int(i))
            exact = ExactUnitary.from_gates(seq)
            assert table.lookup(exact) == int(i)
            assert trace_value(exact.to_matrix(), table.mats[i]) == pytest.approx(1.0)

    def test_t_counts_match_sequences(self):
        table = build_table(4)
        for i in range(0, len(table), 37):
            seq = table.sequence(i)
            n_t = sum(1 for g in seq if g in ("T", "Tdg"))
            assert n_t == table.t_counts[i]

    def test_lookup_miss(self):
        table = build_table(2)
        deep = ExactUnitary.from_gates(("H", "T") * 8)
        # A T-count-8 word may or may not reduce into the table; if the
        # lookup hits, the stored equivalent must match up to phase.
        idx = table.lookup(deep)
        if idx is not None:
            assert table.exact(idx).equals_up_to_phase(deep)

    def test_indices_for_t_range(self):
        table = build_table(4)
        idx = table.indices_for_t_range(2, 3)
        assert set(np.unique(table.t_counts[idx])) == {2, 3}

    def test_get_table_memoized(self):
        t1 = get_table(3)
        t2 = get_table(3)
        assert t1 is t2

    def test_float_matrices_unitary(self):
        table = build_table(3)
        prods = np.einsum("nji,njk->nik", table.mats.conj(), table.mats)
        assert np.allclose(prods, np.eye(2)[None], atol=1e-9)
