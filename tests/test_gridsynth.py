"""Tests for the gridsynth stack: grid problems, Diophantine, exact synthesis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration import get_table
from repro.gates.exact import ExactUnitary
from repro.linalg import haar_random_u2, rz, trace_distance
from repro.rings.zomega import ZOmega
from repro.rings.zsqrt2 import ZSqrt2
from repro.synthesis.gridsynth import exact_synthesize, gridsynth_rz, gridsynth_u3
from repro.synthesis.gridsynth.diophantine import solve_norm_equation
from repro.synthesis.gridsynth.grid_problem import enumerate_candidates, solve_1d_grid
from repro.synthesis.gridsynth.number_theory import (
    factorize,
    is_probable_prime,
    sqrt_mod_prime,
)
from repro.synthesis.sequences import t_count_of


class TestNumberTheory:
    def test_small_primes(self):
        primes = [p for p in range(2, 100) if is_probable_prime(p)]
        assert primes[:10] == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
        assert len(primes) == 25

    def test_large_prime(self):
        assert is_probable_prime(2**61 - 1)
        assert not is_probable_prime(2**67 - 1)  # 193707721 * 761838257287

    @given(st.integers(min_value=2, max_value=10**9))
    @settings(max_examples=50)
    def test_factorize_reconstructs(self, n):
        f = factorize(n)
        assert f is not None
        prod = 1
        for p, e in f.items():
            assert is_probable_prime(p)
            prod *= p**e
        assert prod == n

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50)
    def test_sqrt_mod_prime(self, a):
        p = 1_000_003
        r = sqrt_mod_prime(a, p)
        if r is not None:
            assert r * r % p == a % p
        else:
            assert pow(a % p, (p - 1) // 2, p) == p - 1


class TestGridProblem:
    @given(
        st.floats(-10, 10), st.floats(0.1, 8), st.floats(-10, 10), st.floats(0.1, 8)
    )
    @settings(max_examples=25, deadline=None)
    def test_1d_matches_brute_force(self, x0, lx, y0, ly):
        x1, y1 = x0 + lx, y0 + ly
        sols = {(s.a, s.b) for s in solve_1d_grid((x0, x1), (y0, y1))}
        s2 = math.sqrt(2)
        span = int(max(abs(x0), abs(x1), abs(y0), abs(y1))) + 12
        brute = set()
        for p in range(-span, span + 1):
            for q in range(-span, span + 1):
                if x0 <= p + q * s2 <= x1 and y0 <= p - q * s2 <= y1:
                    brute.add((p, q))
        # Tolerance may add boundary points; it must never lose interior ones.
        assert brute <= sols

    def test_candidates_live_in_region(self):
        theta, eps = 1.234, 0.05
        z = complex(math.cos(theta / 2), -math.sin(theta / 2))
        for k in range(12):
            for cand in enumerate_candidates(theta, eps, k):
                u = complex(cand.zu) / math.sqrt(2) ** k
                assert abs(u) <= 1 + 1e-6
                assert (z.conjugate() * u).real >= 1 - eps**2 / 2 - 1e-6
                uc = complex(cand.zu.adj2()) / (-math.sqrt(2)) ** k
                assert abs(uc) <= 1 + 1e-6

    def test_no_reducible_candidates(self):
        for k in range(2, 12):
            for cand in enumerate_candidates(0.9, 0.1, k):
                assert not cand.zu.is_divisible_by_sqrt2()


class TestDiophantine:
    def test_zero(self):
        assert solve_norm_equation(ZSqrt2(0, 0)) == ZOmega(0, 0, 0, 0)

    def test_rejects_negative(self):
        assert solve_norm_equation(ZSqrt2(-3, 0)) is None
        assert solve_norm_equation(ZSqrt2(1, 1)) is None  # conj negative

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_solutions_verify(self, seed):
        rng = np.random.default_rng(seed)
        t = ZOmega(*[int(x) for x in rng.integers(-12, 13, size=4)])
        xi = (t.conj() * t).to_zsqrt2()
        sol = solve_norm_equation(xi)
        assert sol is not None  # xi is a norm by construction
        assert (sol.conj() * sol).to_zsqrt2() == xi

    def test_unsolvable_odd_power_over_7_mod_8(self):
        # 3 + sqrt(2) is a prime over p = 7 (7 mod 8, no Gaussian or
        # sqrt(-2) splitting) to an odd power: not a norm.
        assert solve_norm_equation(ZSqrt2(3, 1)) is None

    def test_solvable_five_mod_8(self):
        # 5 = (2+i)(2-i) in Z[i] subset Z[omega]: solvable despite being
        # inert in Z[sqrt2].
        sol = solve_norm_equation(ZSqrt2(5, 0))
        assert sol is not None
        assert (sol.conj() * sol).to_zsqrt2() == ZSqrt2(5, 0)

    def test_two(self):
        sol = solve_norm_equation(ZSqrt2(2, 0))
        assert sol is not None
        assert (sol.conj() * sol).to_zsqrt2() == ZSqrt2(2, 0)


class TestExactSynthesis:
    @pytest.mark.parametrize("budget", [3, 5])
    def test_roundtrip_table(self, budget):
        table = get_table(budget)
        rng = np.random.default_rng(0)
        for i in rng.choice(len(table), 60, replace=False):
            u = table.exact(int(i))
            tokens = exact_synthesize(u)
            assert ExactUnitary.from_gates(tokens).equals_up_to_phase(u)
            # Enumerated sequences are T-optimal; synthesis must match.
            assert t_count_of(tokens) == table.t_counts[i]

    def test_identity(self):
        assert exact_synthesize(ExactUnitary.identity()) == []

    def test_monomial_phases(self):
        for name in ("T", "S", "Z", "X"):
            u = ExactUnitary.from_gate(name)
            tokens = exact_synthesize(u)
            assert ExactUnitary.from_gates(tokens).equals_up_to_phase(u)

    def test_rejects_non_unitary(self):
        from repro.synthesis.gridsynth import ExactSynthesisError

        bad = ExactUnitary(
            ZOmega(0, 0, 0, 2), ZOmega(0, 0, 0, 0),
            ZOmega(0, 0, 0, 0), ZOmega(0, 0, 0, 1), 0,
        )
        with pytest.raises(ExactSynthesisError):
            exact_synthesize(bad)


class TestGridsynthRz:
    @pytest.mark.parametrize("eps", [0.1, 0.01, 0.001])
    def test_meets_threshold(self, eps):
        rng = np.random.default_rng(5)
        for _ in range(3):
            theta = float(rng.uniform(0, 2 * math.pi))
            seq = gridsynth_rz(theta, eps)
            assert seq.error <= eps + 1e-12
            assert trace_distance(rz(theta), seq.matrix()) <= eps + 1e-9

    def test_t_count_scaling(self):
        # T count tracks 3 log2(1/eps) within a generous constant.
        rng = np.random.default_rng(6)
        for eps in (0.1, 0.01, 0.001):
            ts = []
            for _ in range(3):
                theta = float(rng.uniform(0.3, 6.0))
                ts.append(gridsynth_rz(theta, eps).t_count)
            bound = 3 * math.log2(1 / eps)
            assert np.mean(ts) <= bound + 12
            assert np.mean(ts) >= bound - 12

    def test_trivial_angles_are_free(self):
        for j in range(8):
            seq = gridsynth_rz(j * math.pi / 4, 0.01)
            assert seq.t_count <= 1
            assert seq.error < 1e-9

    def test_near_trivial_snaps(self):
        seq = gridsynth_rz(math.pi / 4 + 1e-4, 0.01)
        assert seq.t_count <= 1

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            gridsynth_rz(0.5, 0.0)


class TestGridsynthU3:
    def test_threshold_and_structure(self):
        rng = np.random.default_rng(7)
        u = haar_random_u2(rng)
        seq = gridsynth_u3(u, 0.01)
        assert seq.error <= 0.01
        # Three Rz blocks joined by two H gates: at least 2 H present.
        assert seq.gates.count("H") >= 2

    def test_triple_overhead_vs_single_rz(self):
        # The paper's headline: U3 via gridsynth costs about 3 Rz calls.
        rng = np.random.default_rng(8)
        u = haar_random_u2(rng)
        u3_t = gridsynth_u3(u, 0.01).t_count
        rz_t = gridsynth_rz(1.1, 0.01 / 3).t_count
        assert u3_t >= 2 * rz_t
