"""Tests for the pluggable simulation backends and the sim bugfixes."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.circuit import Gate
from repro.sim import (
    DensityMatrixSimulator,
    NoiseModel,
    canonical_gate_name,
    evaluate_fidelity,
    select_backend,
)
from repro.sim.backends import (
    DensityMatrixBackend,
    MPSBackend,
    StatevectorTrajectoryBackend,
)
from repro.sim.fidelity import choi_of_sequence
from repro.tensornet import CircuitMPS


def _test_circuit(n=3):
    c = Circuit(n).h(0).cx(0, 1).t(1).rz(0.3, 0)
    for q in range(n - 1):
        c.cx(q, q + 1)
    c.h(n - 1).tdg(0).s(1)
    return c


ALL_BACKENDS = [
    DensityMatrixBackend(),
    StatevectorTrajectoryBackend(trajectories=50, seed=3),
    MPSBackend(trajectories=50, seed=3),
]


class TestNoiselessEquivalence:
    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_matches_dense_statevector(self, backend):
        c = _test_circuit()
        psi = c.statevector()
        result = backend.run(c)
        assert result.fidelity(psi) == pytest.approx(1.0, abs=1e-9)
        assert result.n_trajectories == 1

    def test_statevector_readout_agrees(self):
        c = _test_circuit()
        psi = c.statevector()
        sv = StatevectorTrajectoryBackend().run(c).statevector()
        mps = MPSBackend().run(c).statevector()
        assert np.allclose(sv, psi, atol=1e-9)
        assert abs(np.vdot(mps, psi)) == pytest.approx(1.0, abs=1e-9)


class TestNoisyEquivalence:
    def test_trajectories_match_density_matrix(self):
        c = _test_circuit()
        psi = c.statevector()
        noise = NoiseModel.non_pauli_gates(0.02)
        exact = DensityMatrixBackend().run(c, noise).fidelity(psi)
        sv = StatevectorTrajectoryBackend(trajectories=1500, seed=11).run(
            c, noise
        )
        err = sv.fidelity_std_error(psi)
        assert err is not None and err > 0
        assert sv.fidelity(psi) == pytest.approx(exact, abs=max(5 * err, 0.02))

    def test_mps_trajectories_match_density_matrix(self):
        c = _test_circuit()
        psi = c.statevector()
        noise = NoiseModel.non_pauli_gates(0.02)
        exact = DensityMatrixBackend().run(c, noise).fidelity(psi)
        mps = MPSBackend(trajectories=400, seed=11).run(c, noise)
        err = mps.fidelity_std_error(psi)
        assert mps.fidelity(psi) == pytest.approx(exact, abs=max(5 * err, 0.04))

    def test_trajectory_determinism_across_chunking(self):
        c = _test_circuit()
        noise = NoiseModel.t_gates_only(0.1)
        a = StatevectorTrajectoryBackend(
            trajectories=40, seed=9, chunk_size=7
        ).run(c, noise)
        b = StatevectorTrajectoryBackend(
            trajectories=40, seed=9, chunk_size=64, max_workers=1
        ).run(c, noise)
        assert np.array_equal(a.states, b.states)

    def test_seed_changes_trajectories(self):
        c = _test_circuit()
        noise = NoiseModel.non_pauli_gates(0.2)
        a = StatevectorTrajectoryBackend(trajectories=20, seed=1).run(c, noise)
        b = StatevectorTrajectoryBackend(trajectories=20, seed=2).run(c, noise)
        assert not np.allclose(a.states, b.states)

    def test_noisy_bundle_has_no_single_statevector(self):
        c = _test_circuit()
        noise = NoiseModel.non_pauli_gates(0.3)
        result = StatevectorTrajectoryBackend(trajectories=4).run(c, noise)
        with pytest.raises(ValueError):
            result.statevector()


class TestGeneralKrausPath:
    """Channels that are not mixtures of unitaries (amplitude damping)."""

    @staticmethod
    def _damping_kraus(g):
        k0 = np.array([[1, 0], [0, np.sqrt(1 - g)]], dtype=complex)
        k1 = np.array([[0, np.sqrt(g)], [0, 0]], dtype=complex)
        return [k0, k1]

    def test_statevector_general_path(self):
        from repro.sim.backends.statevector import (
            _apply_kraus_mc,
            _as_unitary_mixture,
        )

        kraus = self._damping_kraus(0.4)
        assert _as_unitary_mixture(kraus) is None
        # 500 trajectories of |1>: damping sends ~40% to |0>.
        k = 500
        states = np.zeros((k, 2), dtype=complex)
        states[:, 1] = 1.0
        uniforms = np.random.default_rng(0).random(k)
        out = _apply_kraus_mc(
            states.reshape(k, 2), kraus, None, 0, uniforms
        ).reshape(k, 2)
        norms = np.abs(out) ** 2
        assert np.allclose(norms.sum(axis=1), 1.0)
        frac_zero = float((norms[:, 0] > 0.99).mean())
        assert frac_zero == pytest.approx(0.4, abs=0.07)

    def test_mps_general_path_matches(self):
        from repro.sim.backends.mps_backend import MPSBackend

        kraus = self._damping_kraus(0.4)
        counts = 0
        n_traj = 200
        for t in range(n_traj):
            mps = CircuitMPS(2)
            mps.apply_1q(np.array([[0, 1], [1, 0]], dtype=complex), 0)  # |10>
            u = np.random.default_rng([0, t]).random(1)
            MPSBackend._kraus_event(mps, kraus, None, 0, float(u[0]))
            assert mps.norm() == pytest.approx(1.0, abs=1e-9)
            counts += abs(mps.amplitude([0, 0])) ** 2 > 0.99
        assert counts / n_traj == pytest.approx(0.4, abs=0.1)


class TestCircuitMPS:
    def test_ghz_20_qubits(self):
        n = 20
        c = Circuit(n).h(0)
        for i in range(n - 1):
            c.cx(i, i + 1)
        mps = MPSBackend(max_bond=4).run(c).mps
        assert abs(mps.amplitude([0] * n)) ** 2 == pytest.approx(0.5)
        assert abs(mps.amplitude([1] * n)) ** 2 == pytest.approx(0.5)
        assert mps.truncation_error == pytest.approx(0.0, abs=1e-12)

    def test_long_range_gates_match_dense(self):
        rng = np.random.default_rng(0)
        c = Circuit(5)
        for _ in range(25):
            if rng.random() < 0.5:
                c.append(
                    ["h", "t", "s", "x"][int(rng.integers(4))],
                    int(rng.integers(5)),
                )
            else:
                a, b = rng.choice(5, 2, replace=False)
                c.cx(int(a), int(b))
        c.swap(0, 4).cz(1, 3).rz(0.7, 2)
        psi = c.statevector()
        mps = MPSBackend(max_bond=32).run(c)
        assert mps.fidelity(psi) == pytest.approx(1.0, abs=1e-9)

    def test_truncation_is_tracked_and_state_normalized(self):
        rng = np.random.default_rng(4)
        n = 8
        c = Circuit(n)
        for _ in range(3):
            for q in range(n):
                c.u3(*rng.uniform(0, np.pi, 3), q)
            for q in range(0, n - 1):
                c.cx(q, q + 1)
            for q in range(n - 1, 0, -2):
                c.cx(0, q)
        mps = CircuitMPS(n, max_bond=4).run(c)
        assert mps.truncation_error > 0
        assert mps.norm() == pytest.approx(1.0, abs=1e-9)

    def test_overlap_against_other_mps(self):
        c = _test_circuit(4)
        a = MPSBackend().run(c).mps
        b = MPSBackend().run(c).mps
        assert abs(a.overlap(b)) == pytest.approx(1.0, abs=1e-9)

    def test_routed_run_matches_legacy_swap_chains(self):
        # CircuitMPS.run pre-routes long-range gates with the lookahead
        # router (repro.target) and undoes the permutation; the state —
        # and therefore any fidelity — must match the legacy per-gate
        # there-and-back chains exactly when nothing truncates.
        rng = np.random.default_rng(9)
        n = 6
        c = Circuit(n)
        for _ in range(30):
            if rng.random() < 0.4:
                c.u3(*rng.uniform(0, np.pi, 3), int(rng.integers(n)))
            else:
                a, b = rng.choice(n, 2, replace=False)
                c.cx(int(a), int(b))
        routed = CircuitMPS(n, max_bond=128).run(c)
        legacy = CircuitMPS(n, max_bond=128).run(c, route=False)
        psi = c.statevector()
        f_routed = abs(np.vdot(psi, routed.to_statevector())) ** 2
        f_legacy = abs(np.vdot(psi, legacy.to_statevector())) ** 2
        assert f_routed == pytest.approx(1.0, abs=1e-9)
        assert f_routed == pytest.approx(f_legacy, abs=1e-9)

    def test_adjacent_only_circuit_skips_routing(self):
        # No long-range 2q gate: run() must not touch repro.target.
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2).cx(2, 1)
        mps = CircuitMPS(3).run(c)
        assert abs(np.vdot(c.statevector(), mps.to_statevector())) ** 2 == (
            pytest.approx(1.0, abs=1e-12)
        )


class TestSelectBackend:
    def test_auto_dispatch_rules(self):
        noise = NoiseModel.non_pauli_gates(1e-3)
        assert select_backend(4, noise).name == "density"
        assert select_backend(8, noise).name == "density"
        assert select_backend(10, noise).name == "statevector"
        assert select_backend(16, noise).name == "statevector"
        assert select_backend(30, noise).name == "mps"
        assert select_backend(10).name == "statevector"
        assert select_backend(30).name == "mps"

    def test_noisy_memory_accounts_for_all_trajectories(self):
        # 200 trajectories of 2^20 amplitudes exceed 2 GiB even though
        # a single chunk would fit — dispatch must count the stack.
        noise = NoiseModel.non_pauli_gates(1e-3)
        assert select_backend(20, noise).name == "mps"
        assert select_backend(20, noise, trajectories=20).name == "statevector"

    def test_noiseless_dispatch_uses_single_state_cost(self):
        # Noiseless runs are one deterministic state: 22 qubits fits.
        assert select_backend(22).name == "statevector"

    def test_memory_budget_forces_mps(self):
        sim = select_backend(16, memory_budget_bytes=2**20)
        assert sim.name == "mps"

    def test_explicit_names_and_aliases(self):
        assert select_backend(4, backend="density").name == "density"
        assert select_backend(4, backend="dm").name == "density"
        assert select_backend(4, backend="sv").name == "statevector"
        assert select_backend(4, backend="tensornet").name == "mps"

    def test_explicit_backend_validates_size(self):
        with pytest.raises(ValueError):
            select_backend(20, backend="density")
        with pytest.raises(ValueError):
            select_backend(40, backend="statevector")

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            select_backend(4, backend="quantum-annealer")


class TestEvaluateFidelity:
    def test_noiseless_self_reference_is_one(self):
        ev = evaluate_fidelity(_test_circuit())
        assert ev.fidelity == pytest.approx(1.0, abs=1e-9)
        assert ev.infidelity == pytest.approx(0.0, abs=1e-9)

    def test_noise_reduces_fidelity(self):
        c = _test_circuit()
        noise = NoiseModel.non_pauli_gates(0.05)
        ev = evaluate_fidelity(c, noise=noise)
        assert ev.backend == "density"
        assert 0.0 < ev.fidelity < 1.0

    def test_large_circuit_through_mps(self):
        n = 20
        c = Circuit(n).h(0)
        for i in range(n - 1):
            c.cx(i, i + 1)
        c.t(0).t(n - 1)
        noise = NoiseModel.t_gates_only(0.5)
        ev = evaluate_fidelity(
            c, noise=noise, backend="mps", trajectories=20, seed=5
        )
        assert ev.backend == "mps"
        assert ev.n_trajectories == 20
        assert 0.0 <= ev.fidelity <= 1.0 + 1e-9
        # Two 50%-depolarizing events must lose measurable fidelity.
        assert ev.fidelity < 0.95


class TestGateNameNormalization:
    """Regression: noise must hit T gates in either capitalization."""

    def test_canonical_name(self):
        assert canonical_gate_name("T") == "t"
        assert canonical_gate_name("Tdg") == "tdg"
        assert canonical_gate_name("h") == "h"

    def test_noise_model_matches_uppercase_gates(self):
        m = NoiseModel.t_gates_only(1e-3)
        assert m.noisy_qubits(Gate("t", (0,))) == (0,)
        # Synthesis-layer capitalization must not dodge the noise.
        assert m.applies_to(Gate("t", (0,)))
        m2 = NoiseModel.non_pauli_gates(1e-3)
        assert m2.applies_to(Gate("h", (0,)))
        assert not m2.applies_to(Gate("x", (0,)))

    def test_choi_applies_noise_for_ir_style_names(self):
        # Same sequence, both capitalizations: identical noisy Choi.
        upper = choi_of_sequence(["T", "H", "T"], logical_rate=1e-2)
        lower = choi_of_sequence(["t", "h", "t"], logical_rate=1e-2)
        assert np.allclose(upper, lower)

    def test_choi_ir_style_noisy_gates_filter(self):
        # Passing IR-style (lower-case) names as the noisy set must
        # still apply noise to token-style sequences.
        noisy = choi_of_sequence(
            ["T", "H"], logical_rate=1e-2, noisy_gates=frozenset({"t"})
        )
        quiet = choi_of_sequence(["T", "H"], logical_rate=0.0)
        assert not np.allclose(noisy, quiet)


class TestSetStateValidation:
    """Regression: set_state must raise, not assert."""

    def test_shape_mismatch(self):
        sim = DensityMatrixSimulator(2)
        with pytest.raises(ValueError, match="shape"):
            sim.set_state(np.eye(8, dtype=complex) / 8)

    def test_non_square(self):
        sim = DensityMatrixSimulator(2)
        with pytest.raises(ValueError):
            sim.set_state(np.ones((4, 2), dtype=complex))

    def test_non_unit_trace(self):
        sim = DensityMatrixSimulator(1)
        with pytest.raises(ValueError, match="trace"):
            sim.set_state(np.eye(2, dtype=complex))

    def test_valid_state_accepted(self):
        sim = DensityMatrixSimulator(1)
        rho = np.array([[0.5, 0.0], [0.0, 0.5]], dtype=complex)
        sim.set_state(rho)
        assert np.allclose(sim.rho, rho)


class TestCodeDistanceGuard:
    """Regression: an unmeetable budget raises instead of returning 99+."""

    def test_unmeetable_budget_raises(self):
        from repro.resources import SurfaceCodeModel

        model = SurfaceCodeModel(physical_error_rate=9.9e-3)
        with pytest.raises(ValueError, match="distance"):
            model.code_distance(1e-300, 100, 10**9)

    def test_normal_budget_still_works(self):
        from repro.resources import SurfaceCodeModel

        d = SurfaceCodeModel().code_distance(1e-6, 10, 1000)
        assert d % 2 == 1 and 3 <= d <= 99


class TestScheduleCache:
    def _circuit(self):
        from repro.circuits import Circuit

        c = Circuit(2)
        c.append("h", 0)
        c.append("cx", (0, 1))
        c.append("t", 1)
        return c

    def test_content_keyed_hit(self):
        from repro.sim.backends import ScheduleCache, gate_schedule

        cache = ScheduleCache()
        a = gate_schedule(self._circuit(), True, cache=cache)
        b = gate_schedule(self._circuit(), True, cache=cache)
        assert a is b
        assert cache.stats() == {
            "hits": 1, "misses": 1, "entries": 1, "maxsize": 128,
        }

    def test_layered_flag_separates_entries(self):
        from repro.sim.backends import ScheduleCache, gate_schedule

        cache = ScheduleCache()
        lay = gate_schedule(self._circuit(), True, cache=cache)
        seq = gate_schedule(self._circuit(), False, cache=cache)
        assert lay is not seq
        assert len(seq) == 3  # one gate per layer
        assert len(cache) == 2

    def test_schedule_matches_uncached_semantics(self):
        from repro.circuits import CircuitDAG
        from repro.sim.backends import ScheduleCache, gate_schedule

        c = self._circuit()
        got = gate_schedule(c, True, cache=ScheduleCache())
        want = [
            [(n.id, n.gate) for n in layer]
            for layer in CircuitDAG.from_circuit(c).as_layers()
        ]
        assert [list(layer) for layer in got] == want

    def test_fused_keyed_by_noise_behavior(self):
        from repro.sim import NoiseModel
        from repro.sim.backends import ScheduleCache, fused_gate_schedule

        cache = ScheduleCache()
        c = self._circuit()
        n1 = NoiseModel(rate=0.01, applies_to=lambda g: True)
        n2 = NoiseModel(rate=0.01, applies_to=lambda g: True)
        n3 = NoiseModel(rate=0.02, applies_to=lambda g: True)
        a = fused_gate_schedule(c, n1, layered=True, cache=cache)
        b = fused_gate_schedule(c, n2, layered=True, cache=cache)
        d = fused_gate_schedule(c, n3, layered=True, cache=cache)
        assert a is b  # same behavior, different model object
        assert a is not d  # different rate -> different fusion key

    def test_fused_matches_direct_fusion(self):
        from repro.sim.backends import (
            ScheduleCache,
            fused_gate_schedule,
            gate_schedule,
        )
        from repro.sim.backends.base import fuse_schedule

        c = self._circuit()
        cached = fused_gate_schedule(
            c, None, layered=True, two_qubit=True, cache=ScheduleCache()
        )
        direct = fuse_schedule(
            gate_schedule(c, True), None, two_qubit=True
        )
        flat = [
            (pos, g.name, g.qubits)
            for layer in cached for pos, g in layer
        ]
        flat_direct = [
            (pos, g.name, g.qubits)
            for layer in direct for pos, g in layer
        ]
        assert flat == flat_direct

    def test_lru_eviction_and_clear(self):
        from repro.circuits import Circuit
        from repro.sim.backends import ScheduleCache, gate_schedule

        cache = ScheduleCache(maxsize=2)
        for k in range(4):
            c = Circuit(1)
            c.append("rz", 0, (float(k),))
            gate_schedule(c, True, cache=cache)
        assert len(cache) == 2
        assert cache.stats()["misses"] == 4
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_global_cache_default(self):
        from repro.sim.backends import gate_schedule, schedule_cache

        cache = schedule_cache()
        before = cache.stats()["misses"]
        c = self._circuit()
        c.append("rz", 0, (0.12345,))
        gate_schedule(c, True)
        assert cache.stats()["misses"] == before + 1

    def test_maxsize_validated(self):
        from repro.sim.backends import ScheduleCache

        with pytest.raises(ValueError):
            ScheduleCache(maxsize=0)

    def test_backend_results_unchanged_by_cache(self):
        from repro.sim import NoiseModel
        from repro.sim.backends import schedule_cache
        from repro.sim.backends.statevector import (
            StatevectorTrajectoryBackend,
        )

        c = self._circuit()
        ref = c.statevector()
        noise = NoiseModel.non_pauli_gates(0.02)
        kw = dict(trajectories=8, seed=7)
        first = StatevectorTrajectoryBackend(**kw).run(c, noise)
        schedule_cache().clear()
        cold = StatevectorTrajectoryBackend(**kw).run(c, noise)
        warm = StatevectorTrajectoryBackend(**kw).run(c, noise)
        assert cold.fidelity(ref) == pytest.approx(
            first.fidelity(ref), abs=1e-12
        )
        assert warm.fidelity(ref) == pytest.approx(
            cold.fidelity(ref), abs=1e-12
        )
