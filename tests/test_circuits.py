"""Tests for the circuit IR and resource metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    clifford_count,
    is_trivial_angle,
    rotation_count,
    t_count,
    t_depth,
)
from repro.linalg import trace_distance


class TestConstruction:
    def test_builder_chain(self):
        c = Circuit(2).h(0).cx(0, 1).t(1)
        assert len(c) == 3

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Circuit(2).h(2)

    def test_rejects_duplicate_qubits(self):
        with pytest.raises(ValueError):
            Circuit(2).cx(1, 1)

    def test_rejects_unknown_gate(self):
        with pytest.raises(ValueError):
            Circuit(1).append("foo", 0)

    def test_rejects_wrong_params(self):
        with pytest.raises(ValueError):
            Circuit(1).append("rz", 0, ())
        with pytest.raises(ValueError):
            Circuit(1).append("h", 0, (0.1,))


class TestSemantics:
    def test_bell_state(self):
        psi = Circuit(2).h(0).cx(0, 1).statevector()
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        assert np.allclose(psi, expected)

    def test_unitary_matches_statevector(self):
        c = Circuit(2).h(0).rz(0.7, 0).cx(0, 1).rx(0.3, 1)
        u = c.unitary()
        assert np.allclose(u[:, 0], c.statevector())

    def test_inverse(self):
        c = Circuit(2).h(0).t(0).cx(0, 1).rz(0.9, 1).u3(0.1, 0.2, 0.3, 0)
        total = c.copy().compose(c.inverse())
        assert trace_distance(total.unitary(), np.eye(4)) < 1e-7

    def test_ccx_is_toffoli(self):
        c = Circuit(3).ccx(0, 1, 2)
        u = c.unitary()
        expected = np.eye(8, dtype=complex)
        # Circuit.unitary orders qubit 0 as the most significant axis.
        expected[[6, 7]] = expected[[7, 6]]
        assert trace_distance(u, expected) < 1e-7

    def test_cp_phase(self):
        theta = 0.817
        u = Circuit(2).cp(theta, 0, 1).unitary()
        expected = np.diag([1, 1, 1, np.exp(1j * theta)])
        assert trace_distance(u, expected) < 1e-7

    def test_cry(self):
        theta = 1.234
        u = Circuit(2).cry(theta, 0, 1).unitary()
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        expected = np.eye(4, dtype=complex)
        expected[2:, 2:] = [[c, -s], [s, c]]
        assert trace_distance(u, expected) < 1e-7

    def test_swap(self):
        u = Circuit(2).swap(0, 1).unitary()
        psi_in = np.zeros(4, dtype=complex)
        psi_in[1] = 1.0  # |01>
        assert np.allclose(u @ psi_in, np.eye(4)[2])  # -> |10>

    def test_unitary_guard(self):
        with pytest.raises(ValueError):
            Circuit(13).unitary()


class TestMetrics:
    def test_t_count(self):
        c = Circuit(1).t(0).tdg(0).s(0).t(0)
        assert t_count(c) == 3

    def test_t_depth_parallel(self):
        c = Circuit(2).t(0).t(1)  # parallel: depth 1
        assert t_depth(c) == 1

    def test_t_depth_serial_through_cx(self):
        c = Circuit(2).t(0).cx(0, 1).t(1)
        assert t_depth(c) == 2

    def test_clifford_count_excludes_paulis_and_cx(self):
        c = Circuit(2).h(0).s(0).sdg(1).x(0).z(1).cx(0, 1)
        assert clifford_count(c) == 3

    def test_trivial_angles(self):
        assert is_trivial_angle(0.0)
        assert is_trivial_angle(math.pi / 4)
        assert is_trivial_angle(-math.pi)
        assert is_trivial_angle(2 * math.pi)
        assert not is_trivial_angle(0.3)

    def test_rotation_count(self):
        c = Circuit(1).rz(0.3, 0).rz(math.pi / 2, 0).rx(1.1, 0)
        assert rotation_count(c) == 2

    def test_u3_rotation_counting(self):
        c = Circuit(1)
        c.u3(math.pi / 2, 0.0, math.pi, 0)  # H-like: trivial angles
        c.u3(0.3, 0.1, 0.2, 0)
        assert rotation_count(c) == 1

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20)
    def test_t_depth_leq_t_count(self, seed):
        rng = np.random.default_rng(seed)
        c = Circuit(3)
        for _ in range(30):
            if rng.random() < 0.5:
                c.t(int(rng.integers(3)))
            else:
                a, b = rng.choice(3, 2, replace=False)
                c.cx(int(a), int(b))
        assert t_depth(c) <= t_count(c)
