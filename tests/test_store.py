"""Cross-process synthesis store: banding, segments, crash consistency,
concurrent writers, the warm precompiler, and process-pool determinism."""

import json
import os

import pytest

from repro.circuits import Circuit
from repro.circuits.qasm import to_qasm
from repro.pipeline import (
    DiskSynthesisStore,
    SynthesisCache,
    band_eps,
    bucket_eps,
    compile_batch,
    eps_band,
    key_rz,
    stricter_keys,
)
from repro.pipeline.store import segments as seg
from repro.pipeline.warm import (
    catalog_angles,
    catalog_keys,
    parse_workers_arg,
    warm_rz_catalog,
)
from repro.synthesis.sequences import GateSequence


def _seq(t: int = 1, error: float = 0.001) -> GateSequence:
    return GateSequence(gates=("H",) + ("T",) * t + ("H",), error=error)


class TestEpsBanding:
    def test_decades_sit_on_band_edges(self):
        for eps in (1e-1, 1e-2, 1e-3, 1e-4):
            assert bucket_eps(eps) == pytest.approx(eps, rel=1e-12)

    def test_band_roundtrip_exact(self):
        for band in range(1, 40):
            assert eps_band(band_eps(band)) == band

    def test_bucketing_only_tightens(self):
        # The band floor is <= the request, so synthesizing at the
        # floor always satisfies the caller.
        for eps in (0.007, 0.012, 0.0301, 0.15, 0.9, 2e-4):
            assert bucket_eps(eps) <= eps
            assert bucket_eps(bucket_eps(eps)) == bucket_eps(eps)

    def test_same_band_shares_a_key(self):
        # 0.012 and 0.015 both land in band 8 (floor 0.01) -> the
        # decade edge and both nearby requests share one key.
        assert key_rz(0.5, 0.012) == key_rz(0.5, 0.015)
        assert key_rz(0.5, 0.012) == key_rz(0.5, 0.01)
        # A request one band looser does not.
        assert key_rz(0.5, 0.01) != key_rz(0.5, 0.02)

    def test_rejects_nonpositive_eps(self):
        with pytest.raises(ValueError):
            eps_band(0.0)
        with pytest.raises(ValueError):
            bucket_eps(-1e-3)

    def test_stricter_keys_strictly_tighten(self):
        key = key_rz(0.5, 1e-2)
        probes = stricter_keys(key, 5)
        assert len(probes) == 5
        eps_values = [k[-1] for k in probes]
        assert all(e < key[-1] for e in eps_values)
        assert eps_values == sorted(eps_values, reverse=True)
        assert all(k[:-1] == key[:-1] for k in probes)


class TestFallbackDirection:
    """Regression for the exact-float eps keys: a stricter cached entry
    satisfies a looser request, and never the reverse."""

    def test_stricter_entry_satisfies_looser_request(self, tmp_path):
        store = DiskSynthesisStore(tmp_path)
        strict_key = key_rz(0.5, 0.05)  # band floor 0.0316...
        store.put(strict_key, _seq(error=0.01))
        store.flush()
        store.refresh()
        loose_key = key_rz(0.5, 0.09)  # looser band than 0.05's
        assert loose_key != strict_key
        assert store.get(loose_key) is None
        hit = store.get_fallback(loose_key)
        assert hit is not None
        # The reused word's threshold is at least as strict as the
        # looser request's band floor.
        assert strict_key[-1] <= loose_key[-1]

    def test_looser_entry_never_satisfies_stricter_request(self, tmp_path):
        store = DiskSynthesisStore(tmp_path)
        store.put(key_rz(0.5, 0.05), _seq(error=0.03))
        store.flush()
        store.refresh()
        stricter = key_rz(0.5, 0.01)
        assert store.get(stricter) is None
        assert store.get_fallback(stricter) is None

    def test_nearest_stricter_band_wins(self, tmp_path):
        store = DiskSynthesisStore(tmp_path)
        near = _seq(t=2, error=0.02)
        far = _seq(t=9, error=0.0001)
        store.put(key_rz(0.5, 0.05), near)   # one band below 0.09's
        store.put(key_rz(0.5, 0.001), far)   # several bands below
        store.flush()
        store.refresh()
        hit = store.get_fallback(key_rz(0.5, 0.09))
        assert hit is not None and hit.gates == near.gates


class TestSegments:
    def test_roundtrip(self, tmp_path):
        root = str(tmp_path)
        key = key_rz(0.7, 1e-2)
        entries = [seg.entry_dict(key, _seq(t=3, error=0.004))]
        name = seg.write_segment(root, 5, entries)
        assert seg.shard_of_segment(name) == 5
        back = seg.read_segment(root, name)
        assert back == entries
        restored = seg.entry_sequence(back[0])
        assert restored.gates == ("H", "T", "T", "T", "H")
        assert restored.error == 0.004

    def test_content_addressed_names_are_deterministic(self, tmp_path):
        entries = [seg.entry_dict(key_rz(0.7, 1e-2), _seq())]
        a = seg.write_segment(str(tmp_path), 3, entries)
        b = seg.write_segment(str(tmp_path), 3, entries)
        assert a == b
        assert len(seg.list_segments(str(tmp_path))) == 1

    def test_key_str_roundtrips(self):
        key = key_rz(0.123456789, 0.007)
        assert seg.key_from_str(seg.key_str(key)) == key

    def test_truncated_segment_skipped_with_warning(self, tmp_path):
        root = str(tmp_path)
        name = seg.write_segment(
            root, 0, [seg.entry_dict(key_rz(0.7, 1e-2), _seq())]
        )
        path = os.path.join(root, seg.SEGMENT_DIR, name)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])  # simulated partial copy
        with pytest.warns(UserWarning, match="skipping unreadable segment"):
            assert seg.read_segment(root, name) is None

    def test_wrong_format_segment_skipped(self, tmp_path):
        root = str(tmp_path)
        os.makedirs(os.path.join(root, seg.SEGMENT_DIR))
        path = os.path.join(root, seg.SEGMENT_DIR, "seg-00-deadbeef0000.json")
        with open(path, "w") as fh:
            json.dump({"format": "other/v9", "entries": []}, fh)
        with pytest.warns(UserWarning):
            assert seg.read_segment(root, "seg-00-deadbeef0000.json") is None


class TestDiskStore:
    def test_put_invisible_until_flush_and_refresh(self, tmp_path):
        store = DiskSynthesisStore(tmp_path)
        key = key_rz(0.5, 1e-2)
        store.put(key, _seq())
        # Snapshot semantics: the instance's own pending write is not
        # served, so results never depend on write interleaving.
        assert store.get(key) is None
        assert store.stats().pending == 1
        names = store.flush()
        assert len(names) == 1
        assert store.get(key) is None  # snapshot unchanged by flush
        store.refresh()
        assert store.get(key) is not None
        assert key in store

    def test_second_process_sees_published_entries(self, tmp_path):
        writer = DiskSynthesisStore(tmp_path)
        key = key_rz(1.5, 1e-3)
        writer.put(key, _seq(t=4))
        writer.flush()
        reader = DiskSynthesisStore(tmp_path)
        hit = reader.get(key)
        assert hit is not None and hit.t_count == 4

    def test_concurrent_identical_writers_converge(self, tmp_path):
        a = DiskSynthesisStore(tmp_path)
        b = DiskSynthesisStore(tmp_path)
        key = key_rz(0.5, 1e-2)
        a.put(key, _seq(t=2, error=0.003))
        b.put(key, _seq(t=2, error=0.003))
        names_a = a.flush()
        names_b = b.flush()
        # Content addressing: the same result maps to the same file, so
        # the second publish is a harmless same-bytes replace.
        assert names_a == names_b
        assert len(seg.list_segments(str(tmp_path))) == 1
        index = seg.read_index(str(tmp_path))
        assert index is not None
        assert index["segments"] == seg.list_segments(str(tmp_path))

    def test_concurrent_distinct_writers_union(self, tmp_path):
        a = DiskSynthesisStore(tmp_path)
        b = DiskSynthesisStore(tmp_path)
        ka, kb = key_rz(0.4, 1e-2), key_rz(0.9, 1e-2)
        a.put(ka, _seq(t=1))
        b.put(kb, _seq(t=2))
        a.flush()
        b.flush()
        fresh = DiskSynthesisStore(tmp_path)
        assert fresh.get(ka) is not None
        assert fresh.get(kb) is not None
        assert len(fresh) == 2

    def test_corrupt_segment_degrades_to_miss(self, tmp_path):
        store = DiskSynthesisStore(tmp_path)
        ka, kb = key_rz(0.4, 1e-2), key_rz(0.9, 1e-2)
        store.put(ka, _seq())
        store.flush()
        store.put(kb, _seq())
        store.flush()
        names = seg.list_segments(str(tmp_path))
        victim = os.path.join(str(tmp_path), seg.SEGMENT_DIR, names[0])
        with open(victim, "w") as fh:
            fh.write('{"format": "repro-segstore/v1", "entr')  # truncated
        fresh = DiskSynthesisStore(tmp_path)
        with pytest.warns(UserWarning, match="skipping unreadable segment"):
            found = [k for k in (ka, kb) if fresh.get(k) is not None]
        assert len(found) == 1  # the intact segment still serves
        assert fresh.stats().skipped_segments == 1

    def test_lost_index_is_rebuilt_from_listing(self, tmp_path):
        store = DiskSynthesisStore(tmp_path)
        key = key_rz(0.5, 1e-2)
        store.put(key, _seq())
        store.flush()
        os.remove(os.path.join(str(tmp_path), seg.INDEX_NAME))
        fresh = DiskSynthesisStore(tmp_path)  # index rewritten on open
        assert fresh.get(key) is not None
        assert seg.read_index(str(tmp_path)) is not None

    def test_lazy_shard_loading(self, tmp_path):
        store = DiskSynthesisStore(tmp_path)
        for i in range(12):
            store.put(key_rz(0.1 * (i + 1), 1e-2), _seq())
        store.flush()
        fresh = DiskSynthesisStore(tmp_path)
        assert fresh.stats().loaded_shards == 0
        fresh.get(key_rz(0.1, 1e-2))
        assert fresh.stats().loaded_shards == 1

    def test_invalid_fallback_bands(self, tmp_path):
        with pytest.raises(ValueError):
            DiskSynthesisStore(tmp_path, fallback_bands=-1)


class TestTieredCache:
    def test_l2_hit_promotes_to_l1(self, tmp_path):
        store = DiskSynthesisStore(tmp_path)
        key = key_rz(0.5, 1e-2)
        store.put(key, _seq(t=3))
        store.flush()
        store.refresh()
        cache = SynthesisCache(store=store)

        def boom():
            raise AssertionError("L2 should have served this")

        seq = cache.get_or(key, boom)
        assert seq.t_count == 3
        stats = cache.stats()
        assert stats.store_attached
        assert (stats.l2_hits, stats.l2_misses) == (1, 0)
        assert stats.computes == 0
        # Promoted: the next lookup is a pure L1 hit.
        assert cache.get_or(key, boom).t_count == 3
        assert cache.stats().l2_hits == 1

    def test_fallback_hit_promoted_under_requested_key(self, tmp_path):
        store = DiskSynthesisStore(tmp_path)
        store.put(key_rz(0.5, 0.05), _seq(t=5, error=0.01))
        store.flush()
        store.refresh()
        cache = SynthesisCache(store=store)
        loose = key_rz(0.5, 0.09)
        seq = cache.get_or(loose, lambda: pytest.fail("should fall back"))
        assert seq.t_count == 5
        assert cache.stats().l2_fallback_hits == 1
        assert loose in cache

    def test_l2_miss_computes_and_writes_through(self, tmp_path):
        store = DiskSynthesisStore(tmp_path)
        cache = SynthesisCache(store=store)
        key = key_rz(0.5, 1e-2)
        cache.get_or(key, lambda: _seq(t=2))
        stats = cache.stats()
        assert (stats.l2_hits, stats.l2_misses) == (0, 1)
        assert stats.computes == 1
        assert store.stats().pending == 1
        store.flush()
        other = DiskSynthesisStore(tmp_path)
        assert other.get(key) is not None

    def test_attach_store_once(self, tmp_path):
        cache = SynthesisCache()
        store = DiskSynthesisStore(tmp_path / "a")
        cache.attach_store(store)
        cache.attach_store(store)  # same store: idempotent
        with pytest.raises(ValueError):
            cache.attach_store(DiskSynthesisStore(tmp_path / "b"))

    def test_absorb_counts(self):
        cache = SynthesisCache()
        cache.absorb_counts(hits=3, misses=2, l2_hits=1, l2_misses=1)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (3, 2)
        assert (stats.l2_hits, stats.l2_misses) == (1, 1)

    def test_save_path_unaffected_by_store(self, tmp_path):
        store = DiskSynthesisStore(tmp_path / "store")
        cache = SynthesisCache(store=store)
        key = key_rz(0.5, 1e-2)
        cache.get_or(key, lambda: _seq(t=2))
        path = tmp_path / "cache.json"
        cache.save(path)
        # The JSON persistence format carries exactly the L1 entries,
        # store or no store, and loads into a store-less cache.
        loaded = SynthesisCache.load(path)
        assert loaded.store is None
        assert key in loaded
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert len(payload["entries"]) == 1


def _batch_circuits(n: int = 6) -> list[Circuit]:
    circuits = []
    for i in range(n):
        c = Circuit(2, name=f"case{i}")
        c.h(0)
        c.rz(0.3 + 0.1 * (i % 3), 0)
        c.cx(0, 1)
        c.rz(0.3, 1)
        c.rx(0.5, 0)
        c.h(1)
        circuits.append(c)
    return circuits


class TestProcessPoolIdentity:
    """Property: process-pool and disk-cached results are byte-identical
    to serial compilation."""

    @pytest.mark.parametrize("workflow,eps", [("gridsynth", 0.02),
                                              ("trasyn", 0.15)])
    def test_process_pool_matches_serial(self, workflow, eps, tmp_path):
        circuits = _batch_circuits(6)
        serial = compile_batch(circuits, workflow=workflow, eps=eps,
                               max_workers=1, optimization_level=1)
        pooled = compile_batch(circuits, workflow=workflow, eps=eps,
                               workers=2, cache_dir=str(tmp_path),
                               optimization_level=1)
        assert len(serial) == len(pooled) == 6
        for s, p in zip(serial, pooled):
            assert to_qasm(s.circuit) == to_qasm(p.circuit)
            assert s.total_synthesis_error == p.total_synthesis_error

    def test_disk_cached_rerun_matches_serial(self, tmp_path):
        circuits = _batch_circuits(6)
        serial = compile_batch(circuits, workflow="gridsynth", eps=0.02,
                               max_workers=1, optimization_level=1)
        # First run populates the store; the rerun opens it cold and
        # must serve everything from segments, byte-identically.
        compile_batch(circuits, workflow="gridsynth", eps=0.02,
                      cache_dir=str(tmp_path), optimization_level=1)
        cache = SynthesisCache(store=DiskSynthesisStore(tmp_path))
        rerun = compile_batch(circuits, workflow="gridsynth", eps=0.02,
                              cache=cache, optimization_level=1)
        stats = cache.stats()
        assert stats.l2_misses == 0
        assert stats.l2_hits > 0
        assert stats.computes == 0
        for s, r in zip(serial, rerun):
            assert to_qasm(s.circuit) == to_qasm(r.circuit)

    def test_process_pool_without_store_matches_serial(self, tmp_path):
        circuits = _batch_circuits(4)
        serial = compile_batch(circuits, workflow="gridsynth", eps=0.05,
                               max_workers=1, optimization_level=1)
        pooled = compile_batch(circuits, workflow="gridsynth", eps=0.05,
                               workers=2, optimization_level=1)
        for s, p in zip(serial, pooled):
            assert to_qasm(s.circuit) == to_qasm(p.circuit)

    def test_pool_stats_absorbed_into_parent_cache(self, tmp_path):
        circuits = _batch_circuits(4)
        cache = SynthesisCache()
        compile_batch(circuits, workflow="gridsynth", eps=0.05,
                      cache=cache, workers=2, cache_dir=str(tmp_path),
                      optimization_level=1)
        stats = cache.stats()
        assert stats.l2_misses > 0  # cold store: someone synthesized
        # The published segments are visible to a fresh open.
        assert len(DiskSynthesisStore(tmp_path)) > 0


class TestWarmPrecompiler:
    def test_catalog_drops_trivial_angles(self):
        angles = catalog_angles(8)
        # 8 points on the circle are all pi/4 multiples.
        assert angles == []
        angles = catalog_angles(12)
        assert len(angles) == 8  # 12 minus four pi/4 multiples
        assert all(a > 0 for a in angles)

    def test_catalog_keys_deduplicate(self):
        keys = catalog_keys(12, (0.05, 0.051))  # same band twice
        assert len(keys) == len(catalog_angles(12))

    def test_warm_then_resume(self, tmp_path):
        report = warm_rz_catalog(tmp_path, n_angles=12,
                                 eps_grid=(0.05,), workers=1)
        assert report.computed == 8
        assert report.skipped == 0
        assert report.segments >= 1
        again = warm_rz_catalog(tmp_path, n_angles=12,
                                eps_grid=(0.05,), workers=1)
        assert again.computed == 0
        assert again.skipped == 8

    def test_warmed_store_serves_compiles(self, tmp_path):
        warm_rz_catalog(tmp_path, n_angles=12, eps_grid=(0.05,), workers=1)
        theta = catalog_angles(12)[0]
        c = Circuit(1, name="warm")
        c.rz(theta, 0)
        cache = SynthesisCache(store=DiskSynthesisStore(tmp_path))
        compile_batch([c], workflow="gridsynth", eps=0.05, cache=cache,
                      optimization_level=0)
        stats = cache.stats()
        assert stats.l2_hits == 1
        assert stats.computes == 0

    def test_cli_entry_point(self, tmp_path, capsys):
        from repro.pipeline.warm import main

        rc = main(["--cache-dir", str(tmp_path / "wc"),
                   "--angles", "12", "--eps", "0.05", "--workers", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "warmed 8 of 8" in out
        assert "store now holds 8 entries" in out

    def test_parse_workers_arg(self):
        assert parse_workers_arg("auto") == "process"
        assert parse_workers_arg("4") == 4
        with pytest.raises(SystemExit):
            parse_workers_arg("many")

    def test_rejects_bad_grid(self, tmp_path):
        with pytest.raises(ValueError):
            warm_rz_catalog(tmp_path, n_angles=0)
        with pytest.raises(ValueError):
            warm_rz_catalog(tmp_path, n_angles=12, workers=0)
