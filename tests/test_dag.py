"""CircuitDAG IR: roundtrips, wire edges, layers, longest-path metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    CircuitDAG,
    critical_path,
    depth,
    t_count,
    t_depth,
    two_qubit_depth,
)
from repro.circuits.circuit import Gate
from repro.linalg import trace_distance

_DISCRETE = ["h", "s", "sdg", "t", "tdg", "x", "y", "z"]


def _random_circuit(seed: int, max_qubits: int = 4, max_gates: int = 40):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, max_qubits + 1))
    c = Circuit(n)
    for _ in range(int(rng.integers(0, max_gates))):
        r = rng.random()
        if n >= 2 and r < 0.3:
            a, b = rng.choice(n, size=2, replace=False)
            c.append(str(rng.choice(["cx", "cz", "swap"])), (int(a), int(b)))
        elif r < 0.5:
            c.append(
                str(rng.choice(["rx", "ry", "rz"])),
                int(rng.integers(0, n)),
                (float(rng.normal()),),
            )
        elif r < 0.6:
            c.u3(
                float(rng.normal()), float(rng.normal()), float(rng.normal()),
                int(rng.integers(0, n)),
            )
        else:
            c.append(str(rng.choice(_DISCRETE)), int(rng.integers(0, n)))
    return c


def _legacy_t_depth(circuit: Circuit) -> int:
    depths = [0] * circuit.n_qubits
    for g in circuit.gates:
        d = max(depths[q] for q in g.qubits)
        if g.name in ("t", "tdg"):
            d += 1
        for q in g.qubits:
            depths[q] = d
    return max(depths, default=0)


class TestRoundtrip:
    @given(st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_gate_list_identity(self, seed):
        c = _random_circuit(seed)
        rt = CircuitDAG.from_circuit(c).to_circuit()
        assert rt.gates == c.gates
        assert rt.n_qubits == c.n_qubits

    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_preserves_unitary(self, seed):
        c = _random_circuit(seed, max_gates=20)
        rt = CircuitDAG.from_circuit(c).to_circuit()
        # trace_distance saturates around 1e-8 even for bit-identical
        # unitaries (sqrt(1 - t^2) near t = 1).
        assert trace_distance(c.unitary(), rt.unitary()) < 1e-6

    def test_empty_circuit(self):
        dag = CircuitDAG.from_circuit(Circuit(3))
        assert len(dag) == 0
        assert dag.to_circuit().gates == []
        assert dag.as_layers() == []


class TestWireEdges:
    def test_pred_succ_access(self):
        c = Circuit(2).h(0).cx(0, 1).t(1)
        dag = CircuitDAG.from_circuit(c)
        h, cx, t = dag.node(0), dag.node(1), dag.node(2)
        assert dag.succ(h.id, 0) is cx
        assert dag.pred(cx.id, 0) is h
        assert dag.pred(cx.id, 1) is None
        assert dag.succ(cx.id, 1) is t
        assert dag.succ(cx.id, 0) is None
        assert [n.id for n in dag.predecessors(cx.id)] == [h.id]
        assert [n.id for n in dag.successors(cx.id)] == [t.id]

    def test_wire_iteration(self):
        c = Circuit(2).h(0).t(1).cx(0, 1).s(0)
        dag = CircuitDAG.from_circuit(c)
        assert [n.gate.name for n in dag.wire(0)] == ["h", "cx", "s"]
        assert [n.gate.name for n in dag.wire(1)] == ["t", "cx"]

    def test_remove_splices_wire(self):
        c = Circuit(1).h(0).t(0).s(0)
        dag = CircuitDAG.from_circuit(c)
        dag.remove_node(1)  # drop the T
        assert [g.name for g in dag.to_circuit().gates] == ["h", "s"]
        assert dag.succ(0, 0).gate.name == "s"
        assert dag.pred(2, 0).gate.name == "h"

    def test_substitute_1q(self):
        c = Circuit(2).h(0).rz(0.5, 0).cx(0, 1)
        dag = CircuitDAG.from_circuit(c)
        dag.substitute_1q(1, [Gate("s", (0,)), Gate("t", (0,))])
        assert [g.name for g in dag.to_circuit().gates] == [
            "h", "s", "t", "cx"
        ]
        dag2 = CircuitDAG.from_circuit(c)
        dag2.substitute_1q(1, [])
        assert [g.name for g in dag2.to_circuit().gates] == ["h", "cx"]

    def test_substitute_rejects_2q(self):
        dag = CircuitDAG.from_circuit(Circuit(2).cx(0, 1))
        with pytest.raises(ValueError):
            dag.substitute_1q(0, [])

    def test_set_gate_same_qubits_only(self):
        dag = CircuitDAG.from_circuit(Circuit(2).h(0))
        with pytest.raises(ValueError):
            dag.set_gate(0, Gate("h", (1,)))


class TestLayers:
    def test_layers_are_disjoint_antichains(self):
        c = _random_circuit(7, max_qubits=4, max_gates=30)
        layers = CircuitDAG.from_circuit(c).as_layers()
        assert sum(len(ly) for ly in layers) == len(c.gates)
        for layer in layers:
            seen = set()
            for node in layer:
                assert not (set(node.gate.qubits) & seen)
                seen.update(node.gate.qubits)

    def test_layer_count_equals_depth(self):
        for seed in (1, 2, 3, 11):
            c = _random_circuit(seed)
            layers = CircuitDAG.from_circuit(c).as_layers()
            assert len(layers) == depth(c)

    def test_parallel_gates_share_layer(self):
        c = Circuit(3).h(0).h(1).h(2).cx(0, 1)
        layers = CircuitDAG.from_circuit(c).as_layers()
        assert [len(ly) for ly in layers] == [3, 1]


class TestMetrics:
    @given(st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_t_depth_matches_legacy_counter(self, seed):
        c = _random_circuit(seed)
        assert t_depth(c) == _legacy_t_depth(c)

    def test_depth_examples(self):
        assert depth(Circuit(2)) == 0
        assert depth(Circuit(2).h(0).h(1)) == 1
        assert depth(Circuit(2).h(0).cx(0, 1).t(1)) == 3

    def test_two_qubit_depth(self):
        c = Circuit(3).cx(0, 1).cx(1, 2).h(0).cx(0, 1)
        assert two_qubit_depth(c) == 3
        c2 = Circuit(4).cx(0, 1).cx(2, 3)
        assert two_qubit_depth(c2) == 1

    def test_t_depth_parallel_wires(self):
        c = Circuit(2).t(0).t(1)
        assert t_depth(c) == 1
        assert t_count(c) == 2

    def test_critical_path_is_dependency_chain(self):
        c = Circuit(3).h(0).t(0).cx(0, 1).t(1).cx(1, 2).t(2)
        path = critical_path(c)
        assert len(path) == depth(c)
        # Consecutive path gates share a qubit (executable chain).
        for a, b in zip(path, path[1:]):
            assert set(a.qubits) & set(b.qubits)
        t_path = critical_path(c, weight="t")
        assert sum(1 for g in t_path if g.name in ("t", "tdg")) == t_depth(c)

    def test_critical_path_invalid_weight(self):
        with pytest.raises(ValueError):
            critical_path(Circuit(1).h(0), weight="bogus")

    def test_weightless_critical_path_is_empty(self):
        # No T gates: the T-path is empty, not an arbitrary chain.
        c = Circuit(2).h(0).cx(0, 1).h(1)
        assert critical_path(c, weight="t") == []
        assert t_depth(c) == 0

    def test_metrics_accept_dag(self):
        c = _random_circuit(13)
        dag = CircuitDAG.from_circuit(c)
        assert depth(dag) == depth(c)
        assert t_depth(dag) == t_depth(c)
        assert two_qubit_depth(dag) == two_qubit_depth(c)
