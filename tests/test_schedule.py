"""Tests for the scheduler subsystem, ESP cost model, and eps budgets."""

import dataclasses
import math

import numpy as np
import pytest

from repro.circuits import Circuit, CircuitDAG, depth
from repro.pipeline import (
    EstimateESP,
    PassManager,
    SchedulePass,
    SynthesisCache,
    compile_circuit,
    synthesize_lowered,
)
from repro.schedule import (
    DEFAULT_DURATION_1Q,
    DEFAULT_DURATION_2Q,
    Schedule,
    duration_of,
    idle_marker,
    insert_idle_markers,
    node_slacks,
    schedule_circuit,
    with_idle_noise,
)
from repro.sim import NoiseModel, evaluate_fidelity
from repro.sim.noise import is_idle_marker
from repro.synthesis import (
    allocate_eps_budget,
    eps_schedule_total,
    flat_eps_schedule,
    rotation_criticalities,
)
from repro.target import Target, estimate_esp, gate_error, gate_success
from repro.target.cost import EspEstimate


def ghz(n: int) -> Circuit:
    c = Circuit(n, name=f"ghz_{n}")
    c.h(0)
    for q in range(n - 1):
        c.cx(q, q + 1)
    return c


def calibrated_line(n: int = 4) -> Target:
    return dataclasses.replace(
        Target.line(n),
        gate_errors={"cx": 1e-3, "t": 2e-4, "tdg": 2e-4, "h": 5e-5,
                     "swap": 3e-3, "s": 5e-5, "sdg": 5e-5},
        gate_durations={"cx": 3.0, "swap": 9.0, "t": 4.0, "tdg": 4.0},
        edge_errors={(q, q + 1): 1e-3 * (q + 1) for q in range(n - 1)},
        idle_error_rate=1e-4,
    )


class TestDurations:
    def test_arity_defaults(self):
        from repro.circuits.circuit import Gate

        assert duration_of(Gate("h", (0,))) == DEFAULT_DURATION_1Q
        assert duration_of(Gate("cx", (0, 1))) == DEFAULT_DURATION_2Q
        # SWAP defaults to its 3-CX decomposition time.
        assert duration_of(Gate("swap", (0, 1))) == 3 * DEFAULT_DURATION_2Q

    def test_table_overrides_and_canonical_names(self):
        from repro.circuits.circuit import Gate

        assert duration_of(Gate("t", (0,)), {"t": 7.0}) == 7.0
        # Idle markers carry their duration as the parameter.
        assert duration_of(idle_marker(0, 2.5)) == 2.5


class TestSchedule:
    def test_serial_wire_is_sum_of_durations(self):
        c = Circuit(1)
        c.h(0).t(0).h(0)
        s = schedule_circuit(c)
        assert s.makespan == 3 * DEFAULT_DURATION_1Q
        assert s.idle_time(0) == 0.0
        assert s.utilization == 1.0

    def test_parallel_wires_overlap(self):
        c = Circuit(2)
        c.h(0).h(1)
        s = schedule_circuit(c)
        assert s.makespan == DEFAULT_DURATION_1Q
        assert s.total_idle == 0.0

    def test_asap_respects_dependencies(self):
        c = ghz(3)
        s = schedule_circuit(c)
        spans = sorted(s.spans, key=lambda sp: sp.node_id)
        # cx(0,1) waits for h(0); cx(1,2) waits for cx(0,1).
        assert spans[1].start >= spans[0].end - 1e-12
        assert spans[2].start >= spans[1].end - 1e-12

    def test_alap_same_makespan_later_starts(self):
        c = ghz(4)
        asap = schedule_circuit(c)
        alap = schedule_circuit(c, method="alap")
        assert asap.makespan == pytest.approx(alap.makespan)
        for sp in asap.spans:
            assert alap.span(sp.node_id).start >= sp.start - 1e-12
        # Idle accounting is schedule-discipline invariant.
        assert asap.idle_slack() == pytest.approx(alap.idle_slack())

    def test_makespan_is_critical_path_time(self):
        c = ghz(5)
        s = schedule_circuit(c)
        assert s.critical_path_time == s.makespan
        # h + 4 serial cx on default durations.
        assert s.makespan == DEFAULT_DURATION_1Q + 4 * DEFAULT_DURATION_2Q

    def test_target_durations_change_makespan(self):
        c = ghz(3)
        t = dataclasses.replace(Target.line(3), gate_durations={"cx": 10.0})
        assert schedule_circuit(c, t).makespan == 1.0 + 20.0

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="schedule method"):
            schedule_circuit(ghz(2), method="greedy")

    def test_render_smoke(self):
        text = schedule_circuit(ghz(3)).render(width=20)
        lines = text.splitlines()
        assert len(lines) == 4  # 3 qubit rows + axis
        assert all(line.startswith("q") for line in lines[:3])
        # Empty circuit renders without dividing by zero.
        assert "q0" in schedule_circuit(Circuit(1)).render(width=8)

    def test_summary_smoke(self):
        s = schedule_circuit(ghz(3))
        assert "makespan" in s.summary()


class TestSlacks:
    def test_critical_path_has_zero_slack(self):
        c = ghz(4)
        makespan, slacks = node_slacks(CircuitDAG.from_circuit(c))
        assert makespan > 0
        assert min(slacks.values()) == pytest.approx(0.0)

    def test_slack_detects_off_path_gate(self):
        c = Circuit(2)
        c.h(0).h(0).h(0).t(1)  # wire 0 is critical; t(1) has slack
        _, slacks = node_slacks(CircuitDAG.from_circuit(c))
        t_node = [i for i, s in slacks.items() if s > 0]
        assert len(t_node) == 1
        assert slacks[t_node[0]] == pytest.approx(2 * DEFAULT_DURATION_1Q)


class TestIdleMarkers:
    def test_markers_preserve_state(self):
        c = ghz(4)
        marked = insert_idle_markers(c)
        assert np.allclose(marked.statevector(), c.statevector())

    def test_marker_durations_equal_idle_slack(self):
        c = ghz(4)
        s = schedule_circuit(c)
        marked = insert_idle_markers(c, schedule=s)
        per_qubit = {q: 0.0 for q in range(4)}
        for g in marked.gates:
            if is_idle_marker(g):
                per_qubit[g.qubits[0]] += g.params[0]
        assert per_qubit == pytest.approx(s.idle_slack())

    def test_no_markers_when_no_idle(self):
        c = Circuit(2)
        c.h(0).h(1)
        assert not any(is_idle_marker(g) for g in insert_idle_markers(c).gates)

    def test_plain_i_gate_is_not_a_marker(self):
        from repro.circuits.circuit import Gate

        assert not is_idle_marker(Gate("i", (0,)))
        assert is_idle_marker(idle_marker(0, 1.0))

    def test_alap_schedule_rejected(self):
        c = ghz(3)
        with pytest.raises(ValueError, match="ASAP"):
            insert_idle_markers(
                c, schedule=schedule_circuit(c, method="alap")
            )


class TestCostModel:
    def test_gate_error_lookup_order(self):
        from repro.circuits.circuit import Gate

        t = calibrated_line(4)
        # Edge table wins for 2q gates on a listed edge.
        assert gate_error(t, Gate("cx", (0, 1))) == pytest.approx(1e-3)
        assert gate_error(t, Gate("cx", (2, 3))) == pytest.approx(3e-3)
        # 1q gates use the name table; unknown gates are free.
        assert gate_error(t, Gate("t", (0,))) == pytest.approx(2e-4)
        assert gate_error(t, Gate("x", (0,))) == 0.0
        # 2q success squares the per-qubit survival.
        assert gate_success(t, Gate("cx", (0, 1))) == pytest.approx(
            (1 - 1e-3) ** 2
        )

    def test_swap_never_inherits_cx_rate(self):
        # Regression: without a per-edge entry a swap/cz must keep its
        # *own* gate rate (the simulator injects at 3e-3, so an ESP
        # charged at the 1e-4 cx rate would exceed true fidelity).
        from repro.circuits.circuit import Gate

        t = dataclasses.replace(
            Target.line(3),
            gate_errors={"cx": 1e-4, "swap": 3e-3, "cz": 1e-2},
        )
        assert t.edge_error(0, 1) == 0.0
        assert gate_error(t, Gate("swap", (0, 1))) == pytest.approx(3e-3)
        assert gate_error(t, Gate("cz", (0, 1))) == pytest.approx(1e-2)
        assert gate_error(t, Gate("cx", (0, 1))) == pytest.approx(1e-4)
        assert t.is_calibrated
        # ...and the cost model agrees with what the noise model injects.
        nm = NoiseModel.from_target(t)
        assert nm.rate_for(Gate("swap", (0, 1))) == pytest.approx(3e-3)

    def test_makespan_defined_for_empty_schedule(self):
        # A gate-free circuit's Schedule is falsy (len 0) but real.
        res = compile_circuit(
            Circuit(2), workflow="gridsynth", target=Target.line(2),
        )
        assert res.makespan == 0.0
        assert res.esp == 1.0

    def test_esp_product_matches_hand_computation(self):
        c = Circuit(2)
        c.h(0).cx(0, 1)
        t = dataclasses.replace(
            Target.line(2),
            gate_errors={"h": 1e-2, "cx": 2e-2},
            idle_error_rate=1e-3,
        )
        est = estimate_esp(c, t)
        s = schedule_circuit(c, t)
        expected = (1 - 1e-2) * (1 - 2e-2) ** 2 * math.exp(
            -1e-3 * s.total_idle
        )
        assert isinstance(est, EspEstimate)
        assert est.esp == pytest.approx(expected)
        assert est.n_noisy_gates == 2

    def test_esp_with_markers_equals_without(self):
        c = ghz(4)
        t = calibrated_line(4)
        plain = estimate_esp(c, t)
        marked = estimate_esp(insert_idle_markers(c, t), t)
        assert marked.esp == pytest.approx(plain.esp, rel=1e-9)

    def test_uncalibrated_target_scores_one(self):
        est = estimate_esp(ghz(3), Target.line(3))
        assert est.esp == 1.0


class TestIdleNoise:
    def test_with_idle_noise_passthrough_without_rate(self):
        c = ghz(3)
        base = NoiseModel.non_pauli_gates(1e-3)
        out_c, out_n = with_idle_noise(c, Target.line(3), base)
        assert out_c is c and out_n is base

    def test_idle_rate_for_scales_with_duration(self):
        nm = NoiseModel.with_idle(None, 0.1)
        short, long_ = idle_marker(0, 1.0), idle_marker(0, 5.0)
        assert nm.rate_for(short) == pytest.approx(-math.expm1(-0.1))
        assert nm.rate_for(long_) > nm.rate_for(short)
        assert nm.noisy_qubits(short) == (0,)

    def test_with_idle_preserves_uniform_base_rate(self):
        base = NoiseModel.non_pauli_gates(1e-3)
        nm = NoiseModel.with_idle(base, 0.5)
        from repro.circuits.circuit import Gate

        assert nm.rate_for(Gate("h", (0,))) == pytest.approx(1e-3)
        assert nm.applies_to(idle_marker(0, 1.0))

    def test_from_target_uses_edge_rates(self):
        from repro.circuits.circuit import Gate

        t = calibrated_line(4)
        nm = NoiseModel.from_target(t)
        assert nm.rate_for(Gate("cx", (2, 3))) == pytest.approx(3e-3)
        assert nm.rate_for(Gate("cx", (0, 1))) == pytest.approx(1e-3)
        assert nm.applies_to(Gate("cx", (0, 1)))

    def test_esp_matches_simulated_fidelity_lower_bound(self):
        # The acceptance check at unit scale: ESP = no-error probability,
        # so exact density-matrix fidelity must sit at or above it.
        c = ghz(4)
        t = calibrated_line(4)
        est = estimate_esp(c, t)
        marked, noise = with_idle_noise(c, t, NoiseModel.from_target(t))
        ev = evaluate_fidelity(marked, noise=noise, backend="density")
        assert ev.fidelity >= est.esp - 1e-9
        # ...and the bound is tight: the residue stays small.
        assert ev.fidelity - est.esp <= (1 - est.esp)


class TestEpsBudget:
    def test_criticalities_in_unit_interval(self):
        c = ghz(3)
        c.rz(0.3, 0).rz(0.4, 2)
        crits = rotation_criticalities(c)
        assert len(crits) == 2
        assert all(0 < x <= 1 for x in crits)

    def test_allocation_sums_to_budget(self):
        c = ghz(3)
        c.rz(0.3, 0).rz(0.4, 1).rz(0.5, 2)
        alloc = allocate_eps_budget(c, 0.03)
        assert len(alloc) == 3
        assert eps_schedule_total(alloc) <= 0.03 + 1e-12
        assert eps_schedule_total(alloc) == pytest.approx(0.03)

    def test_critical_rotation_gets_tightest_eps(self):
        # Wire 0 carries a long serial chain -> its rotation is most
        # critical; the slack-rich rotation on wire 1 gets more budget.
        c = Circuit(2)
        for _ in range(6):
            c.h(0)
        c.rz(0.3, 0)
        c.rz(0.4, 1)
        crits = rotation_criticalities(c)
        alloc = allocate_eps_budget(c, 0.02)
        assert crits[0] > crits[1]
        assert alloc[0] < alloc[1]

    def test_trivial_rotations_consume_no_slice(self):
        c = Circuit(1)
        c.rz(math.pi / 2, 0)  # trivial: exact Clifford word
        c.rz(0.3, 0)
        assert len(allocate_eps_budget(c, 0.01)) == 1

    def test_empty_and_invalid(self):
        assert allocate_eps_budget(ghz(2), 0.01) == []
        with pytest.raises(ValueError, match="budget"):
            allocate_eps_budget(ghz(2), 0.0)
        assert flat_eps_schedule(ghz(2), 0.01) == []

    def test_synthesize_lowered_consumes_schedule(self):
        c = Circuit(1)
        c.rz(0.3, 0)
        cache = SynthesisCache()
        res = synthesize_lowered(
            c, "rz", 0.1, cache,
            rng_for=lambda key: np.random.default_rng(0),
            eps_schedule=[1e-3],
        )
        assert res.eps_allocation == (1e-3,)
        assert res.total_synthesis_error <= 1e-3

    def test_eps_schedule_too_short_raises(self):
        c = Circuit(1)
        c.rz(0.3, 0).rz(0.4, 0)
        with pytest.raises(ValueError, match="eps_schedule"):
            synthesize_lowered(
                c, "rz", 0.1, SynthesisCache(),
                rng_for=lambda key: np.random.default_rng(0),
                eps_schedule=[1e-2],
            )


class TestPipelinePasses:
    def test_schedule_pass_attaches_schedule(self):
        p = SchedulePass(Target.line(3))
        out = PassManager([p]).run(ghz(3))
        assert len(out.gates) == len(ghz(3).gates)
        assert isinstance(p.schedule, Schedule)
        assert p.schedule.makespan > 0

    def test_estimate_esp_pass(self):
        t = calibrated_line(4)
        p = EstimateESP(t)
        PassManager([p]).run(ghz(4))
        assert 0 < p.estimate.esp < 1
        with pytest.raises(ValueError, match="target"):
            EstimateESP(None)


class TestCompileObjectives:
    def test_bad_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            compile_circuit(ghz(2), objective="fastest")

    def test_esp_objective_requires_target(self):
        # Without calibration the "search" would be a silent no-op.
        with pytest.raises(ValueError, match="needs a target"):
            compile_circuit(ghz(2), objective="esp")

    def test_esp_objective_never_worse_than_baseline(self):
        t = calibrated_line(4)
        c = ghz(4)
        c.rz(0.3, 1).rz(0.7, 2)
        cache = SynthesisCache()
        base = compile_circuit(
            c, workflow="gridsynth", eps=0.01, cache=cache,
            optimization_level=2, target=t,
        )
        tuned = compile_circuit(
            c, workflow="gridsynth", eps=0.01, cache=cache,
            optimization_level=2, target=t, objective="esp",
        )
        assert base.esp is not None and tuned.esp is not None
        assert tuned.esp >= base.esp - 1e-12
        assert tuned.objective == "esp"
        assert tuned.schedule is not None and tuned.makespan > 0

    def test_depth_objective_without_target(self):
        c = ghz(3)
        c.rz(0.3, 0)
        res = compile_circuit(
            c, workflow="gridsynth", eps=0.05, optimization_level=2,
            objective="depth",
        )
        assert res.schedule is not None
        assert res.makespan == pytest.approx(res.schedule.makespan)
        assert res.esp is None

    def test_count_objective_with_target_reports_schedule_and_esp(self):
        t = calibrated_line(4)
        res = compile_circuit(
            ghz(4), workflow="gridsynth", eps=0.05,
            optimization_level=1, target=t,
        )
        assert res.schedule is not None
        assert 0 < res.esp < 1

    def test_eps_budget_threads_through_compile(self):
        t = calibrated_line(4)
        c = ghz(4)
        c.rz(0.3, 1).rz(0.7, 2)
        res = compile_circuit(
            c, workflow="gridsynth", cache=SynthesisCache(),
            optimization_level=2, target=t, eps_budget=0.02,
        )
        assert res.eps_allocation is not None
        assert res.total_synthesis_error <= 0.02 + 1e-9

    def test_depth_objective_not_worse_than_count_makespan(self):
        t = calibrated_line(4)
        c = ghz(4)
        c.rz(0.3, 1).rz(0.7, 2)
        cache = SynthesisCache()
        count = compile_circuit(
            c, workflow="gridsynth", eps=0.01, cache=cache,
            optimization_level="best", target=t,
        )
        dep = compile_circuit(
            c, workflow="gridsynth", eps=0.01, cache=cache,
            optimization_level="best", target=t, objective="depth",
        )
        assert dep.makespan <= count.makespan + 1e-9


class TestRoutingCostAware:
    def test_cost_aware_identical_on_uncalibrated_targets(self):
        from repro.target import route_circuit

        c = ghz(5)
        c.cx(0, 4).cx(1, 3)
        t = Target.line(5)
        a = route_circuit(c, t, cost_aware=False)
        b = route_circuit(c, t, cost_aware=True)
        assert a.circuit.gates == b.circuit.gates
        assert a.swaps_inserted == b.swaps_inserted

    def test_cost_aware_routes_stay_valid(self):
        from repro.target import (
            on_coupling_edges,
            route_circuit,
            routed_statevector_equivalent,
        )

        c = ghz(4)
        c.cx(0, 3).cx(1, 3)
        t = calibrated_line(4)
        r = route_circuit(c, t, cost_aware=True)
        assert on_coupling_edges(r.circuit, t)
        assert routed_statevector_equivalent(c, r)

    def test_dense_layout_prefers_low_error_region(self):
        from repro.target import dense_layout

        # Two disjoint line segments of a 2x4 grid-like ring: put the
        # calibration gradient on the edges and check the busy pair
        # lands on the lowest-error edge among the best-connected.
        c = Circuit(2)
        c.cx(0, 1).cx(0, 1)
        t = dataclasses.replace(
            Target.ring(6),
            edge_errors={(q, (q + 1) % 6) if q < 5 else (0, 5): 1e-3
                         for q in range(6)},
        )
        # Make edge (3, 4) clearly the best.
        errs = dict(t.edge_errors)
        errs[(3, 4)] = 1e-5
        t = dataclasses.replace(t, edge_errors=errs)
        lay = dense_layout(c, t)
        assert {lay.physical(0), lay.physical(1)} == {3, 4}


class TestIdleMarkerHygiene:
    """Markers are bookkeeping: metrics and passes must not count them."""

    @staticmethod
    def _marked_circuit():
        c = Circuit(3)
        c.h(0).t(0).cx(0, 1).t(1).cx(1, 2).s(2)
        marked = insert_idle_markers(c, Target.line(3))
        assert any(is_idle_marker(g) for g in marked.gates)
        return c, marked

    def test_metrics_ignore_markers(self):
        from repro.circuits import (
            depth,
            gate_counts,
            t_count,
            t_depth,
            two_qubit_depth,
        )

        c, marked = self._marked_circuit()
        assert depth(marked) == depth(c)
        assert t_depth(marked) == t_depth(c)
        assert two_qubit_depth(marked) == two_qubit_depth(c)
        assert t_count(marked) == t_count(c)
        assert gate_counts(marked) == gate_counts(c)

    def test_gate_counts_keeps_plain_identity(self):
        from repro.circuits import gate_counts

        c = Circuit(1)
        c.append("i", 0)  # plain identity: a real gate, no duration
        c.t(0)
        assert gate_counts(c) == {"i": 1, "t": 1}

    def test_strip_idle_markers_roundtrip(self):
        from repro.schedule import strip_idle_markers

        c, marked = self._marked_circuit()
        stripped = strip_idle_markers(marked)
        assert not any(is_idle_marker(g) for g in stripped.gates)
        assert sorted(g.name for g in stripped.gates) == sorted(
            g.name for g in c.gates
        )
        # Markers are identities, so stripping preserves the state.
        np.testing.assert_allclose(
            stripped.statevector(), c.statevector(), atol=1e-12
        )

    def test_optimize_after_scheduling_matches_unmarked(self):
        from repro.optimizers import optimize_circuit

        c, marked = self._marked_circuit()
        opt_marked = optimize_circuit(marked)
        opt_plain = optimize_circuit(c)
        assert not any(is_idle_marker(g) for g in opt_marked.gates)
        assert sorted(g.name for g in opt_marked.gates) == sorted(
            g.name for g in opt_plain.gates
        )
        overlap = abs(
            np.vdot(opt_marked.statevector(), c.statevector())
        )
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_schedule_mark_optimize_metrics_roundtrip(self):
        from repro.circuits import depth, gate_counts
        from repro.optimizers import optimize_circuit

        c, marked = self._marked_circuit()
        recompiled = optimize_circuit(marked)
        assert gate_counts(recompiled) == gate_counts(optimize_circuit(c))
        assert depth(recompiled) == depth(optimize_circuit(c))
