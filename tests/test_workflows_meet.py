"""Focused tests: meet-in-the-middle refinement and workflow internals."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, rotation_count
from repro.enumeration import get_table
from repro.linalg import haar_random_u2, trace_distance
from repro.synthesis.meet import QuaternionIndex, refine_pairs
from repro.experiments.workflows import (
    _SequenceCache,
    best_transpile,
    matched_thresholds,
    synthesize_circuit_gridsynth,
    synthesize_circuit_trasyn,
)


@pytest.fixture(scope="module")
def table6():
    return get_table(6)


class TestRefinePairs:
    def test_improves_or_keeps_amplitude(self, table6):
        rng = np.random.default_rng(0)
        idx = table6.indices_for_t_range(0, 6)
        mats = [table6.mats[idx]] * 2
        indexes = [QuaternionIndex(m) for m in mats]
        target = haar_random_u2(rng)
        start = np.array([0, 0])
        udag = target.conj().T
        amp0 = abs(np.trace(udag @ mats[0][0] @ mats[1][0]))
        choice, amp = refine_pairs(target, mats, start, indexes)
        assert abs(amp) >= amp0 - 1e-12

    def test_two_slot_near_optimal(self, table6):
        # Pair refinement from any start must land close to the true
        # 2-slot optimum (estimated by a sampling baseline).
        rng = np.random.default_rng(1)
        idx = table6.indices_for_t_range(0, 6)
        mats = [table6.mats[idx]] * 2
        indexes = [QuaternionIndex(m) for m in mats]
        target = haar_random_u2(rng)
        _, amp = refine_pairs(target, mats, np.array([0, 0]), indexes,
                              neighbours=8)
        err = math.sqrt(max(0.0, 1 - (abs(amp) / 2) ** 2))
        assert err < 0.05  # T<=12 affords ~0.02-0.03

    def test_amplitude_matches_choice(self, table6):
        rng = np.random.default_rng(2)
        idx = table6.indices_for_t_range(0, 4)
        mats = [table6.mats[idx]] * 3
        indexes = [QuaternionIndex(m) for m in mats]
        target = haar_random_u2(rng)
        choice, amp = refine_pairs(target, mats, np.array([1, 2, 3]), indexes)
        prod = target.conj().T
        for i, m in enumerate(mats):
            prod = prod @ m[choice[i]]
        assert complex(np.trace(prod)) == pytest.approx(amp, abs=1e-9)


class TestWorkflowInternals:
    def test_sequence_cache_reuses(self):
        cache = _SequenceCache()
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or("k", compute) == "value"
        assert cache.get_or("k", compute) == "value"
        assert len(calls) == 1

    def test_best_transpile_picks_minimum(self):
        c = Circuit(2)
        c.rx(0.4, 1).cx(0, 1).rz(0.7, 1).cx(0, 1)
        best = best_transpile(c, "u3")
        # Commutation merges the rx into the rz: one rotation.
        assert rotation_count(best) == 1

    def test_trivial_rotations_cost_no_t(self):
        rng = np.random.default_rng(4)
        c = Circuit(1)
        c.rz(math.pi / 2, 0)  # = S up to phase
        u3c, rzc, eps_t, eps_g = matched_thresholds(c, 0.01)
        tra = synthesize_circuit_trasyn(u3c, eps_t, rng, pre_transpiled=True)
        grid = synthesize_circuit_gridsynth(rzc, eps_g, pre_transpiled=True)
        assert tra.t_count == 0
        assert grid.t_count == 0
        assert tra.n_rotations == 0 and grid.n_rotations == 0

    def test_flow_rejects_wrong_basis(self):
        c = Circuit(1).rx(0.3, 0)
        with pytest.raises(ValueError):
            synthesize_circuit_trasyn(c, 0.01, np.random.default_rng(0),
                                      pre_transpiled=True)
        with pytest.raises(ValueError):
            synthesize_circuit_gridsynth(c, 0.01, pre_transpiled=True)

    @pytest.mark.slow
    def test_synthesized_gates_in_time_order(self):
        # The spliced sequence must realize the rotation when the
        # circuit is *executed*, i.e. reversal from matrix order is
        # correct: check a single-rotation circuit end to end.
        rng = np.random.default_rng(5)
        c = Circuit(1).rz(0.9, 0)
        u3c, _, eps_t, _ = matched_thresholds(c, 0.01)
        tra = synthesize_circuit_trasyn(u3c, eps_t, rng, pre_transpiled=True)
        d = trace_distance(c.unitary(), tra.circuit.unitary())
        assert d <= eps_t + 1e-9

    def test_total_error_bounds_state_infidelity(self):
        rng = np.random.default_rng(6)
        c = Circuit(2).h(0).rz(0.8, 0).cx(0, 1).rx(1.2, 1)
        u3c, _, eps_t, _ = matched_thresholds(c, 0.02)
        tra = synthesize_circuit_trasyn(u3c, eps_t, rng, pre_transpiled=True)
        psi = c.statevector()
        psi_s = tra.circuit.statevector()
        infid = 1 - abs(np.vdot(psi, psi_s)) ** 2
        bound = tra.total_synthesis_error
        assert infid <= (2 * bound) ** 2 + 1e-9

    @pytest.mark.slow
    def test_t_count_scales_with_eps(self):
        rng = np.random.default_rng(7)
        c = Circuit(1).rz(1.2345, 0)
        counts = []
        for eps in (0.05, 0.005):
            u3c, _, eps_t, _ = matched_thresholds(c, eps)
            tra = synthesize_circuit_trasyn(
                u3c, eps_t, rng, cache=_SequenceCache(), pre_transpiled=True
            )
            counts.append(tra.t_count)
        assert counts[1] > counts[0]
