"""Tests for QASM interop, drawing, resources, mixing, and the CLI."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, t_count
from repro.circuits.drawing import draw
from repro.circuits.qasm import QASMError, from_qasm, to_qasm
from repro.enumeration import get_table
from repro.linalg import haar_random_u2, trace_distance
from repro.resources import (
    SurfaceCodeModel,
    compare_estimates,
    estimate_resources,
)
from repro.synthesis.mixing import (
    error_vector,
    mixing_weights,
    top_candidates,
    trasyn_mixed,
)


class TestQASM:
    def _roundtrip(self, c: Circuit) -> Circuit:
        return from_qasm(to_qasm(c))

    def test_roundtrip_preserves_unitary(self):
        c = Circuit(3)
        c.h(0).t(1).cx(0, 1).rz(0.7, 2).u3(0.1, 0.2, 0.3, 0).swap(1, 2)
        c.sdg(2).ry(1.1, 1).cz(0, 2)
        back = self._roundtrip(c)
        assert trace_distance(c.unitary(), back.unitary()) < 1e-7
        assert back.n_qubits == 3

    def test_aliases(self):
        text = """OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        u(0.1,0.2,0.3) q[0];
        p(0.5) q[1];
        id q[0];
        """
        c = from_qasm(text)
        assert [g.name for g in c.gates] == ["u3", "rz", "i"]

    def test_pi_expressions(self):
        c = from_qasm("qreg q[1];\nrz(pi/4) q[0];\nrz(-2*pi) q[0];\n")
        assert c.gates[0].params[0] == pytest.approx(math.pi / 4)

    def test_measure_and_barrier_skipped(self):
        c = from_qasm(
            "qreg q[1];\ncreg c[1];\nbarrier q[0];\nh q[0];\nmeasure q[0] -> c[0];\n"
        )
        assert [g.name for g in c.gates] == ["h"]

    def test_errors(self):
        with pytest.raises(QASMError):
            from_qasm("h q[0];")  # no qreg
        with pytest.raises(QASMError):
            from_qasm("qreg q[1];\nmystery q[0];\n")
        with pytest.raises(QASMError):
            from_qasm("qreg q[1];\nrz(__import__) q[0];\n")

    def test_typo_gate_names_the_gate(self):
        # A typo'd gate name surfaces as "unsupported gate 'cxx'", not a
        # generic parameter/parse message.
        with pytest.raises(QASMError, match="unsupported gate 'cxx'"):
            from_qasm("qreg q[2];\ncxx q[0],q[1];\n")

    def test_param_errors_carry_cause(self):
        # Division by zero and malformed arithmetic both become
        # QASMError with the original exception chained, not swallowed.
        with pytest.raises(QASMError) as info:
            from_qasm("qreg q[1];\nrz(1/0) q[0];\n")
        assert isinstance(info.value.__cause__, ZeroDivisionError)
        with pytest.raises(QASMError) as info:
            from_qasm("qreg q[1];\nrz(1+*2) q[0];\n")
        assert isinstance(info.value.__cause__, SyntaxError)


class TestDrawing:
    def test_draw_contains_gates(self):
        c = Circuit(2).h(0).cx(0, 1).t(1)
        art = draw(c)
        assert "[H]" in art and "[T]" in art
        assert art.count("\n") == 1  # two wires

    def test_draw_parametrized(self):
        art = draw(Circuit(1).rz(0.5, 0))
        assert "RZ(0.50)" in art


class TestResources:
    def test_estimate_fields(self):
        c = Circuit(2).h(0).t(0).cx(0, 1).t(1)
        est = estimate_resources(c)
        assert est.t_count == 2
        assert est.code_distance % 2 == 1
        assert est.physical_qubits > est.logical_qubits
        assert est.execution_seconds > 0
        assert "T=2" in est.summary()

    def test_fewer_t_is_cheaper(self):
        few = Circuit(2).t(0)
        many = Circuit(2)
        for _ in range(50):
            many.t(0)
        ratios = compare_estimates(
            estimate_resources(few), estimate_resources(many)
        )
        assert ratios["t_count"] == 50
        assert ratios["execution_time"] > 5

    def test_distance_grows_with_budget(self):
        m = SurfaceCodeModel()
        d_loose = m.code_distance(1e-2, 10, 1000)
        d_tight = m.code_distance(1e-9, 10, 1000)
        assert d_tight > d_loose

    def test_distance_rejects_bad_inputs(self):
        m = SurfaceCodeModel(physical_error_rate=0.5)
        with pytest.raises(ValueError):
            m.code_distance(1e-3, 1, 1)
        with pytest.raises(ValueError):
            SurfaceCodeModel().code_distance(0.0, 1, 1)


class TestMixing:
    @pytest.fixture(scope="class")
    def table(self):
        return get_table(6)

    def test_error_vector_zero_for_exact(self):
        u = haar_random_u2(np.random.default_rng(0))
        assert np.linalg.norm(error_vector(u, u)) < 1e-9
        # Phase-insensitive:
        assert np.linalg.norm(error_vector(u, 1j * u)) < 1e-9

    def test_error_vector_tracks_rotation(self):
        from repro.linalg import rz

        v = error_vector(np.eye(2), rz(0.02))
        assert abs(v[2]) == pytest.approx(math.sin(0.01), abs=1e-9)
        assert abs(v[0]) < 1e-12 and abs(v[1]) < 1e-12

    def test_mixing_weights_cancel(self):
        vecs = np.array([[1.0, 0, 0], [-1.0, 0, 0]])
        p = mixing_weights(vecs)
        assert p == pytest.approx([0.5, 0.5], abs=1e-6)

    def test_mixing_weights_simplex(self):
        rng = np.random.default_rng(1)
        vecs = rng.normal(size=(6, 3)) * 0.01
        p = mixing_weights(vecs)
        assert p.sum() == pytest.approx(1.0)
        assert (p >= -1e-12).all()

    def test_top_candidates_sorted_and_distinct(self, table):
        u = haar_random_u2(np.random.default_rng(2))
        cands = top_candidates(u, [6], n_candidates=5, table=table,
                               rng=np.random.default_rng(0))
        errs = [c.error for c in cands]
        assert errs == sorted(errs)
        assert len({c.gates for c in cands}) == len(cands)

    def test_mixed_beats_coherent(self, table):
        rng = np.random.default_rng(3)
        improvements = []
        for _ in range(4):
            u = haar_random_u2(rng)
            mix = trasyn_mixed(u, [6], n_candidates=10, table=table, rng=rng)
            if len(mix.sequences) > 1:
                improvements.append(mix.improvement)
                assert mix.mixed_distance <= mix.coherent_distance + 1e-9
        assert improvements, "mixing never found multiple candidates"
        assert max(improvements) > 1.5


class TestCLI:
    def test_synth_rz(self, capsys):
        from repro.cli import main

        assert main(["synth-rz", "--theta", "0.7", "--eps", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "T count" in out

    def test_synth_u3(self, capsys):
        from repro.cli import main

        assert main(["synth-u3", "--theta", "0.5", "--phi", "0.2",
                     "--eps", "0.05"]) == 0
        assert "gates" in capsys.readouterr().out

    def test_catalog(self, capsys):
        from repro.cli import main

        assert main(["catalog", "--budget", "3"]) == 0
        assert "528" in capsys.readouterr().out

    def test_compile_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "c.qasm"
        src.write_text(
            "qreg q[2];\nh q[0];\nrz(0.7) q[0];\ncx q[0],q[1];\n"
        )
        dst = tmp_path / "out.qasm"
        assert main(["compile", str(src), "--eps", "0.05",
                     "--output", str(dst)]) == 0
        compiled = from_qasm(dst.read_text())
        assert t_count(compiled) > 0

    def test_estimate(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "c.qasm"
        src.write_text("qreg q[1];\nt q[0];\nt q[0];\n")
        assert main(["estimate", str(src)]) == 0
        assert "T=2" in capsys.readouterr().out
