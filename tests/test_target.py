"""Tests for the hardware target model: coupling maps, targets, layouts."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.sim import NoiseModel, evaluate_fidelity
from repro.target import (
    CouplingMap,
    Layout,
    Target,
    apply_layout,
    dense_layout,
    parse_target,
    resolve_layout,
    trivial_layout,
)


class TestCouplingMap:
    def test_line_shape(self):
        cmap = CouplingMap.line(5)
        assert cmap.n_qubits == 5
        assert len(cmap.edges) == 4
        assert cmap.distance(0, 4) == 4
        assert cmap.neighbors(2) == (1, 3)
        assert cmap.is_connected()
        assert cmap.diameter() == 4

    def test_ring_shape(self):
        cmap = CouplingMap.ring(6)
        assert len(cmap.edges) == 6
        assert cmap.distance(0, 3) == 3
        assert cmap.distance(0, 5) == 1
        assert cmap.diameter() == 3

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            CouplingMap.ring(2)

    def test_grid_shape(self):
        cmap = CouplingMap.grid(3, 4)
        assert cmap.n_qubits == 12
        # Internal qubits have degree 4, corners 2.
        assert cmap.degree(5) == 4
        assert cmap.degree(0) == 2
        # Manhattan distances on the lattice.
        assert cmap.distance(0, 11) == 5
        assert cmap.has_edge(0, 4) and not cmap.has_edge(0, 5)

    def test_heavy_hex_sparse_and_connected(self):
        cmap = CouplingMap.heavy_hex(3)
        assert cmap.is_connected()
        assert max(cmap.degree(q) for q in range(cmap.n_qubits)) <= 3
        # Bridge qubits (appended after the row qubits) have degree 2.
        assert all(
            cmap.degree(q) == 2 for q in range(3 * 5, cmap.n_qubits)
        )

    def test_all_to_all(self):
        cmap = CouplingMap.all_to_all(5)
        assert len(cmap.edges) == 10
        assert cmap.diameter() == 1

    def test_shortest_path_endpoints(self):
        cmap = CouplingMap.grid(2, 3)
        path = cmap.shortest_path(0, 5)
        assert path[0] == 0 and path[-1] == 5
        assert len(path) == cmap.distance(0, 5) + 1
        assert all(cmap.has_edge(a, b) for a, b in zip(path, path[1:]))

    def test_directed_allows(self):
        cmap = CouplingMap(3, [(0, 1), (1, 2)], directed=True)
        assert cmap.allows(0, 1) and not cmap.allows(1, 0)
        # Undirected queries still see both orientations.
        assert cmap.has_edge(1, 0)
        assert cmap.distance(2, 0) == 2

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            CouplingMap(2, [(0, 2)])
        with pytest.raises(ValueError):
            CouplingMap(2, [(1, 1)])

    def test_disconnected_detected(self):
        cmap = CouplingMap(4, [(0, 1), (2, 3)])
        assert not cmap.is_connected()
        with pytest.raises(ValueError):
            cmap.distance(0, 2)


class TestTarget:
    def test_constructor_names(self):
        assert Target.line(8).name == "line:8"
        assert Target.grid(3, 3).name == "grid:3x3"
        assert Target.heavy_hex(2).n_qubits > 2 * 3

    def test_json_roundtrip(self, tmp_path):
        t = Target.grid(
            2, 3,
            gate_errors={"cx": 1e-2, "t": 1e-3},
            gate_durations={"cx": 300.0},
            edge_errors={(0, 1): 5e-3},
        )
        path = tmp_path / "target.json"
        t.save(str(path))
        back = Target.load(str(path))
        assert back.coupling == t.coupling
        assert back.gate_errors == t.gate_errors
        assert back.gate_durations == t.gate_durations
        assert back.edge_errors == t.edge_errors
        assert back.name == t.name

    def test_from_dict_missing_field(self):
        with pytest.raises(ValueError, match="missing field"):
            Target.from_dict({"edges": []})

    def test_save_is_atomic(self, tmp_path, monkeypatch):
        # A crash mid-write must never corrupt an existing calibration
        # file: the write goes to a tmp file first (regression test for
        # the in-place json.dump this replaced).
        import os as os_mod

        t_old = Target.line(3, gate_errors={"cx": 1e-2})
        t_new = Target.line(3, gate_errors={"cx": 9e-2})
        path = tmp_path / "target.json"
        t_old.save(str(path))

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(
            "repro.target.target.os.replace", exploding_replace
        )
        with pytest.raises(OSError, match="disk full"):
            t_new.save(str(path))
        monkeypatch.undo()
        # The original survives intact and no tmp litter remains.
        assert Target.load(str(path)).gate_errors == {"cx": 1e-2}
        assert os_mod.listdir(tmp_path) == ["target.json"]
        # And the happy path really replaces the contents.
        t_new.save(str(path))
        assert Target.load(str(path)).gate_errors == {"cx": 9e-2}
        assert os_mod.listdir(tmp_path) == ["target.json"]

    def test_parse_target_grammar(self):
        assert parse_target("line:8").n_qubits == 8
        assert parse_target("ring:12").n_qubits == 12
        assert parse_target("grid:3x3").n_qubits == 9
        assert parse_target("all_to_all:5").coupling.diameter() == 1
        assert parse_target("heavy_hex:2x4").n_qubits > 8

    def test_parse_target_json(self, tmp_path):
        path = tmp_path / "t.json"
        Target.line(4).save(str(path))
        assert parse_target(str(path)).n_qubits == 4

    @pytest.mark.parametrize(
        "spec", ["nonsense", "line", "grid:3", "grid:axb", "mesh:4", "line:x"]
    )
    def test_parse_target_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_target(spec)

    @pytest.mark.parametrize(
        "spec",
        ["grid:3x", "grid:x3", "heavy_hex:2x", "line:-3", "ring:-1",
         "grid:0x4", "all_to_all:0", "line:", ":4", "heavy_hex:one"],
    )
    def test_parse_target_malformed_and_negative(self, spec):
        # Every malformed/negative spec must fail with the offending
        # spec quoted, never an IndexError or a silent empty target.
        with pytest.raises(ValueError) as exc:
            parse_target(spec)
        assert spec in str(exc.value) or "target" in str(exc.value)

    def test_parse_target_missing_json(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        with pytest.raises(FileNotFoundError):
            parse_target(missing)

    def test_parse_target_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"edges": []}')
        with pytest.raises(ValueError, match="missing field"):
            parse_target(str(path))

    def test_mixed_case_calibration_roundtrip(self, tmp_path):
        # Regression: vendor-style spellings (CX, Tdg) in calibration
        # JSON must land on the canonical keys circuit gates use.
        t = Target.line(
            3,
            gate_errors={"CX": 1e-2, "Tdg": 1e-3, "H": 5e-4},
            gate_durations={"CX": 300.0, "T": 40.0},
            idle_error_rate=1e-5,
        )
        assert t.gate_errors == {"cx": 1e-2, "tdg": 1e-3, "h": 5e-4}
        assert t.gate_durations == {"cx": 300.0, "t": 40.0}
        path = tmp_path / "cal.json"
        t.save(str(path))
        back = Target.load(str(path))
        assert back.gate_errors == t.gate_errors
        assert back.gate_durations == t.gate_durations
        assert back.idle_error_rate == pytest.approx(1e-5)
        # The derived noise model sees the calibrated rate for IR gates.
        nm = NoiseModel.from_target(back)
        assert nm.rate_for(Circuit(1).tdg(0).gates[0]) == pytest.approx(1e-3)
        assert nm.rate_for(Circuit(2).cx(0, 1).gates[0]) == pytest.approx(1e-2)


class TestLayout:
    def test_trivial_and_swap(self):
        lay = Layout.trivial(4)
        lay.swap_physical(0, 2)
        assert lay.physical(0) == 2 and lay.physical(2) == 0
        assert lay.virtual(2) == 0 and lay.virtual(0) == 2
        assert sorted(lay.as_list()) == [0, 1, 2, 3]

    def test_from_mapping_fills_ancillas(self):
        lay = Layout.from_mapping({0: 3, 1: 1}, 4)
        assert lay.physical(0) == 3 and lay.physical(1) == 1
        # Remaining virtual wires take the free physical qubits in order.
        assert sorted(lay.as_list()) == [0, 1, 2, 3]

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Layout([0, 0, 1])
        with pytest.raises(ValueError):
            Layout.from_mapping({0: 1, 1: 1}, 3)

    def test_dense_layout_places_interactions_adjacent(self):
        # A 3-qubit chain circuit on a 5-qubit line: the dense layout
        # must place the interacting pairs at distance 1.
        c = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        t = Target.line(5)
        lay = dense_layout(c, t)
        assert t.coupling.distance(lay.physical(0), lay.physical(1)) == 1
        assert t.coupling.distance(lay.physical(1), lay.physical(2)) == 1

    def test_dense_layout_prefers_low_error_region(self):
        # Same degree everywhere on a ring; edge errors single out the
        # 4-5 neighborhood as bad, so the busy pair should avoid it.
        errs = {(4, 5): 0.5, (3, 4): 0.5, (5, 0): 0.5}
        t = Target.ring(6, edge_errors=errs)
        c = Circuit(2).cx(0, 1).cx(0, 1)
        lay = dense_layout(c, t)
        pair = {lay.physical(0), lay.physical(1)}
        assert pair != {4, 5}

    def test_apply_layout_relabels(self):
        c = Circuit(2).h(0).cx(0, 1)
        lay = Layout([2, 0, 1])
        placed = apply_layout(c, lay)
        assert placed.n_qubits == 3
        assert placed.gates[0].qubits == (2,)
        assert placed.gates[1].qubits == (2, 0)

    def test_layout_roundtrip_on_heavy_hex(self):
        # apply_layout must be exactly the layout permutation: the
        # placed circuit's state equals P(L) applied to the padded
        # original state, and virtual/physical stay inverse bijections.
        from repro.target import permute_statevector

        t = Target.heavy_hex(2)
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2).t(2)
        lay = dense_layout(c, t)
        for v in range(len(lay)):
            assert lay.virtual(lay.physical(v)) == v
        placed = apply_layout(c, lay)
        psi = c.statevector()
        pad = np.zeros(2 ** (t.n_qubits - c.n_qubits), dtype=complex)
        pad[0] = 1.0
        expected = permute_statevector(np.kron(psi, pad), lay.as_list())
        assert np.allclose(placed.statevector(), expected)

    def test_layout_roundtrip_on_directed_coupling(self):
        # Routing + direction fixing on a one-way line: the routed
        # circuit must equal the original up to the final permutation.
        from repro.target import (
            CouplingMap,
            fix_gate_directions,
            route_circuit,
            routed_statevector_equivalent,
        )

        cmap = CouplingMap(4, [(0, 1), (1, 2), (2, 3)], directed=True)
        t = Target(cmap, name="directed_line:4")
        c = Circuit(4).h(0).cx(1, 0).cx(0, 2).cx(3, 1)
        routed = route_circuit(c, t, layout="dense")
        assert routed_statevector_equivalent(c, routed)
        fixed, n_fixes = fix_gate_directions(routed.circuit, t)
        assert n_fixes >= 1  # cx(1, 0)-style reversals must be repaired
        assert all(
            cmap.allows(*g.qubits)
            for g in fixed.gates
            if g.name == "cx" and len(g.qubits) == 2
        )
        # H conjugation is exact: the state is unchanged.
        assert np.allclose(
            fixed.statevector(), routed.circuit.statevector()
        )

    def test_resolve_layout_errors(self):
        c = Circuit(2).cx(0, 1)
        with pytest.raises(ValueError, match="unknown layout"):
            resolve_layout("magic", c, Target.line(3))
        with pytest.raises(ValueError):
            resolve_layout(Layout.trivial(2), c, Target.line(3))
        with pytest.raises(ValueError):
            trivial_layout(Circuit(5), Target.line(3))


class TestNoiseFromTarget:
    def test_rates_table(self):
        t = Target.line(2, gate_errors={"cx": 1e-2, "T": 1e-3, "h": 0.0})
        nm = NoiseModel.from_target(t)
        assert nm.rate == pytest.approx(1e-2)
        assert nm.rate_for(Circuit(2).cx(0, 1).gates[0]) == pytest.approx(1e-2)
        # Case-normalized lookup; zero-rate gates are noiseless.
        assert nm.rate_for(Circuit(1).t(0).gates[0]) == pytest.approx(1e-3)
        assert nm.noisy_qubits(Circuit(1).h(0).gates[0]) == ()

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            NoiseModel.from_target(Target.line(2))

    def test_density_matches_uniform_when_rates_equal(self):
        # A one-entry table must reproduce the uniform model exactly.
        c = Circuit(2).h(0).cx(0, 1).t(1).cx(0, 1)
        t = Target.line(2, gate_errors={"cx": 0.05})
        hetero = NoiseModel.from_target(t)
        uniform = NoiseModel(
            0.05, lambda g: g.name == "cx"
        )
        f_h = evaluate_fidelity(c, noise=hetero, backend="density").fidelity
        f_u = evaluate_fidelity(c, noise=uniform, backend="density").fidelity
        assert f_h == pytest.approx(f_u, abs=1e-12)
        assert f_h < 1.0

    def test_trajectories_agree_with_density(self):
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2).t(2).cx(1, 2)
        t = Target.line(3, gate_errors={"cx": 0.02, "t": 0.01})
        nm = NoiseModel.from_target(t)
        exact = evaluate_fidelity(c, noise=nm, backend="density").fidelity
        mc = evaluate_fidelity(
            c, noise=nm, backend="statevector", trajectories=3000, seed=5
        )
        assert mc.fidelity == pytest.approx(exact, abs=0.02)

    def test_scale(self):
        t = Target.line(2, gate_errors={"cx": 1e-2})
        nm = NoiseModel.from_target(t, scale=2.0)
        assert nm.rate == pytest.approx(2e-2)


class TestExports:
    def test_top_level_exports(self):
        import repro

        assert repro.Target is Target
        assert repro.CouplingMap is CouplingMap
        t = repro.parse_target("line:3")
        res = repro.route_circuit(Circuit(3).cx(0, 2), t, layout="trivial")
        assert isinstance(res, repro.RoutingResult)
        assert res.swaps_inserted >= 1

    def test_numpy_free_of_surprise(self):
        # Layout lists round-trip through numpy ints (CLI/JSON paths).
        lay = Layout(np.array([1, 0, 2]))
        assert lay.as_list() == (1, 0, 2)
