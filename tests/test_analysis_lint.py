"""Project linter tests: every rule flags its planted violation."""

import json
import os

import pytest

from repro.analysis.atomic_io import atomic_write_json, atomic_write_text
from repro.analysis.lint import (
    RULES,
    iter_python_files,
    lint_paths,
    lint_source,
    main,
)


def rules_of(findings):
    return {f.rule for f in findings}


class TestRngDiscipline:
    def test_flags_legacy_global_rng(self):
        src = "import numpy as np\nnp.random.seed(42)\n"
        findings = lint_source(src, "x.py")
        assert rules_of(findings) == {"rng-discipline"}
        assert "np.random.seed" in findings[0].message

    def test_flags_numpy_spelling(self):
        src = "import numpy\nnumpy.random.random(3)\n"
        assert rules_of(lint_source(src, "x.py")) == {"rng-discipline"}

    def test_allows_default_rng(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "x = rng.random()\n"
            "ss = np.random.SeedSequence(1)\n"
        )
        assert lint_source(src, "x.py") == []


class TestBareAssert:
    def test_flags_assert(self):
        findings = lint_source("def f(x):\n    assert x > 0\n", "x.py")
        assert rules_of(findings) == {"bare-assert"}
        assert findings[0].line == 2

    def test_raise_is_fine(self):
        src = "def f(x):\n    if x <= 0:\n        raise ValueError(x)\n"
        assert lint_source(src, "x.py") == []


class TestAtomicWrite:
    def test_flags_plain_write(self):
        src = (
            "import json\n"
            "def save(path, obj):\n"
            "    with open(path, 'w') as f:\n"
            "        json.dump(obj, f)\n"
        )
        assert rules_of(lint_source(src, "x.py")) == {"atomic-write"}

    def test_replace_in_same_function_ok(self):
        src = (
            "import os\n"
            "def save(path, text):\n"
            "    with open(path + '.tmp', 'w') as f:\n"
            "        f.write(text)\n"
            "    os.replace(path + '.tmp', path)\n"
        )
        assert lint_source(src, "x.py") == []

    def test_replace_in_other_function_not_enough(self):
        src = (
            "import os\n"
            "def save(path, text):\n"
            "    with open(path, 'w') as f:\n"
            "        f.write(text)\n"
            "def unrelated(a, b):\n"
            "    os.replace(a, b)\n"
        )
        assert rules_of(lint_source(src, "x.py")) == {"atomic-write"}

    def test_read_mode_ignored(self):
        src = "def load(path):\n    with open(path) as f:\n        return f.read()\n"
        assert lint_source(src, "x.py") == []


class TestMutableDefault:
    def test_flags_list_default(self):
        findings = lint_source("def f(x, acc=[]):\n    return acc\n", "x.py")
        assert rules_of(findings) == {"mutable-default"}

    def test_flags_dict_call_default(self):
        src = "def f(cfg=dict()):\n    return cfg\n"
        assert rules_of(lint_source(src, "x.py")) == {"mutable-default"}

    def test_none_default_ok(self):
        src = "def f(x, acc=None):\n    return acc or []\n"
        assert lint_source(src, "x.py") == []

    def test_kwonly_default_checked(self):
        src = "def f(*, acc={}):\n    return acc\n"
        assert rules_of(lint_source(src, "x.py")) == {"mutable-default"}


class TestLockDiscipline:
    TWO_MUTATORS = (
        "_CACHE = {}\n"
        "def put(k, v):\n"
        "    _CACHE[k] = v\n"
        "def drop(k):\n"
        "    _CACHE.pop(k, None)\n"
    )

    def test_flags_unlocked_shared_container(self):
        findings = lint_source(self.TWO_MUTATORS, "x.py")
        assert rules_of(findings) == {"lock-discipline"}
        assert "_CACHE" in findings[0].message
        assert "drop" in findings[0].message and "put" in findings[0].message

    def test_lock_in_module_silences(self):
        src = "import threading\n_LOCK = threading.Lock()\n" + self.TWO_MUTATORS
        assert lint_source(src, "x.py") == []

    def test_single_mutator_ok(self):
        src = "_CACHE = {}\ndef put(k, v):\n    _CACHE[k] = v\n"
        assert lint_source(src, "x.py") == []

    def test_local_shadow_not_counted(self):
        src = (
            "_CACHE = {}\n"
            "def put(k, v):\n"
            "    _CACHE[k] = v\n"
            "def local_only(k):\n"
            "    _CACHE = {}\n"
            "    _CACHE[k] = 1\n"
        )
        assert lint_source(src, "x.py") == []


class TestSuppressionAndDriver:
    def test_same_line_disable(self):
        src = "def f(acc=[]):  # repro-lint: disable=mutable-default\n    return acc\n"
        assert lint_source(src, "x.py") == []

    def test_disable_all(self):
        src = "def f(acc=[]):  # repro-lint: disable=all\n    return acc\n"
        assert lint_source(src, "x.py") == []

    def test_disable_other_rule_keeps_finding(self):
        src = "def f(acc=[]):  # repro-lint: disable=bare-assert\n    return acc\n"
        assert rules_of(lint_source(src, "x.py")) == {"mutable-default"}

    def test_syntax_error_reported(self):
        findings = lint_source("def broken(:\n", "x.py")
        assert rules_of(findings) == {"syntax-error"}

    def test_rule_filter(self):
        src = "def f(acc=[]):\n    assert acc\n"
        only = lint_source(src, "x.py", rules={"bare-assert"})
        assert rules_of(only) == {"bare-assert"}

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cachedir = tmp_path / "__pycache__"
        cachedir.mkdir()
        (cachedir / "a.cpython-311.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert len(files) == 1 and files[0].endswith("a.py")

    def test_main_json_output_and_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(acc=[]):\n    return acc\n")
        rc = main([str(bad), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["findings"][0]["rule"] == "mutable-default"

    def test_main_clean_exit_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0

    def test_baseline_roundtrip(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(acc=[]):\n    return acc\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        # Grandfathered: the same finding no longer fails the run.
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        # A new violation still does.
        bad.write_text("def f(acc=[]):\n    return acc\nassert True\n")
        assert main([str(bad), "--baseline", str(baseline)]) == 1

    def test_src_tree_is_clean(self):
        root = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        findings = lint_paths([os.path.normpath(root)])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_catalog_has_five_rules(self):
        assert len(RULES) >= 5


class TestAtomicIo:
    def test_write_text_roundtrip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"
        assert list(tmp_path.iterdir()) == [path]  # no tmp leftovers

    def test_failed_json_write_preserves_previous(self, tmp_path):
        path = tmp_path / "data.json"
        atomic_write_json(path, {"v": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"v": 1}
        assert list(tmp_path.iterdir()) == [path]

    def test_failed_replace_cleans_tmp(self, tmp_path, monkeypatch):
        path = tmp_path / "data.json"
        atomic_write_json(path, {"v": 1})

        def boom(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(path, "garbage")
        monkeypatch.undo()
        assert json.loads(path.read_text()) == {"v": 1}
        assert list(tmp_path.iterdir()) == [path]

    def test_json_formatting_options(self, tmp_path):
        path = tmp_path / "fmt.json"
        atomic_write_json(
            path, {"b": 1, "a": 2},
            indent=2, sort_keys=True, trailing_newline=True,
        )
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')


class TestColumnarDiscipline:
    _PATH = "src/repro/optimizers/foo.py"

    def test_flags_topological_in_hot_code(self):
        src = (
            "def cancel(dag):\n"
            "    return [n for n in dag.topological()]\n"
        )
        findings = lint_source(src, self._PATH)
        assert rules_of(findings) == {"columnar-discipline"}
        assert ".topological()" in findings[0].message

    def test_flags_nodes_iteration(self):
        src = (
            "def scan(dag):\n"
            "    for n in dag.nodes():\n"
            "        pass\n"
        )
        assert rules_of(lint_source(src, self._PATH)) == {
            "columnar-discipline"
        }

    def test_reference_functions_exempt(self):
        src = (
            "def cancel_reference(dag):\n"
            "    return [n for n in dag.topological()]\n"
        )
        assert lint_source(src, self._PATH) == []

    def test_nested_in_reference_exempt(self):
        src = (
            "def cancel_reference(dag):\n"
            "    def inner():\n"
            "        return list(dag.nodes())\n"
            "    return inner()\n"
        )
        assert lint_source(src, self._PATH) == []

    def test_other_packages_exempt(self):
        src = (
            "def walk(dag):\n"
            "    return list(dag.topological())\n"
        )
        assert lint_source(src, "src/repro/circuits/dag.py") == []

    def test_suppression_comment_honored(self):
        src = (
            "def cancel(dag):\n"
            "    return list(dag.topological())"
            "  # repro-lint: disable=columnar-discipline\n"
        )
        assert lint_source(src, self._PATH) == []
