"""Tests for the SK / annealing baselines and the meet-in-middle search."""

import numpy as np
import pytest

from repro.enumeration import get_table
from repro.linalg import haar_random_u2, trace_distance, trace_value
from repro.synthesis.annealing import anneal_unitary
from repro.synthesis.meet import QuaternionIndex, to_quaternions
from repro.synthesis.sequences import (
    GateSequence,
    clifford_count_of,
    matrix_of,
    t_count_of,
)
from repro.synthesis.solovay_kitaev import solovay_kitaev


class TestSequences:
    def test_counts(self):
        gates = ("H", "T", "S", "X", "Tdg", "Sdg")
        assert t_count_of(gates) == 2
        assert clifford_count_of(gates) == 3  # H, S, Sdg (X is Pauli)

    def test_matrix_order(self):
        gates = ("H", "T")
        from repro.linalg import GATES

        assert np.allclose(matrix_of(gates), GATES["H"] @ GATES["T"])

    def test_verify(self):
        seq = GateSequence(("H", "T"), error=0.0)
        assert seq.verify(matrix_of(("H", "T")))
        assert not seq.verify(matrix_of(("T", "H")))

    def test_circuit_order_reverses(self):
        seq = GateSequence(("H", "T"), error=0.0)
        assert seq.circuit_order() == ("T", "H")


class TestQuaternions:
    def test_inner_product_is_half_trace(self):
        rng = np.random.default_rng(0)
        mats = np.stack([haar_random_u2(rng) for _ in range(20)])
        qs = to_quaternions(mats)
        for i in range(0, 20, 3):
            for j in range(1, 20, 5):
                tv = trace_value(mats[i], mats[j])
                assert abs(abs(np.dot(qs[i], qs[j])) - tv) < 1e-9

    def test_nearest_recovers_self(self):
        table = get_table(4)
        index = QuaternionIndex(table.mats[:500])
        targets = table.mats[:10]
        nearest = index.nearest(targets, k=1)
        for i, cand in enumerate(nearest.reshape(-1)):
            assert trace_value(table.mats[i], table.mats[cand]) > 1 - 1e-9


class TestSolovayKitaev:
    def test_error_decreases_with_depth(self):
        rng = np.random.default_rng(2)
        table = get_table(8)
        u = haar_random_u2(rng)
        e0 = solovay_kitaev(u, depth=0, table=table).error
        e2 = solovay_kitaev(u, depth=2, table=table).error
        assert e2 < e0

    def test_sequence_matches_reported_error(self):
        rng = np.random.default_rng(3)
        table = get_table(6)
        u = haar_random_u2(rng)
        seq = solovay_kitaev(u, depth=1, table=table)
        assert trace_distance(u, seq.matrix()) == pytest.approx(
            seq.error, abs=1e-8
        )

    def test_length_grows_with_depth(self):
        rng = np.random.default_rng(4)
        table = get_table(6)
        u = haar_random_u2(rng)
        l1 = solovay_kitaev(u, depth=1, table=table).total_gates
        l3 = solovay_kitaev(u, depth=3, table=table).total_gates
        assert l3 > l1 * 3


class TestAnnealing:
    def test_loose_threshold_succeeds(self):
        rng = np.random.default_rng(5)
        u = haar_random_u2(rng)
        report = anneal_unitary(u, 0.3, rng=rng, time_limit=5.0)
        assert report.succeeded
        assert report.sequence.error <= 0.3
        assert report.sequence.verify(u)

    def test_tight_threshold_times_out(self):
        rng = np.random.default_rng(6)
        u = haar_random_u2(rng)
        report = anneal_unitary(u, 1e-5, rng=rng, time_limit=0.4)
        assert not report.succeeded
        assert report.sequence is None
        assert report.elapsed >= 0.3

    def test_exact_clifford_target(self):
        from repro.linalg import GATES

        rng = np.random.default_rng(7)
        report = anneal_unitary(GATES["H"], 0.05, rng=rng, time_limit=5.0)
        assert report.succeeded
