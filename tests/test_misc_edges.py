"""Edge-case coverage: daggers, caching, angle normalization, drawing."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, draw
from repro.circuits.circuit import Gate
from repro.linalg import rz, trace_distance
from repro.synthesis.gridsynth import gridsynth_rz, rz_distance


class TestGateDagger:
    @pytest.mark.parametrize(
        "name", ["i", "h", "s", "sdg", "t", "tdg", "x", "y", "z",
                 "cx", "cz", "swap"]
    )
    def test_fixed_gates(self, name):
        qubits = (0,) if name not in ("cx", "cz", "swap") else (0, 1)
        g = Gate(name, qubits)
        prod = g.matrix() @ g.dagger().matrix()
        assert np.allclose(prod, np.eye(prod.shape[0]))

    @pytest.mark.parametrize("name", ["rx", "ry", "rz"])
    def test_rotations(self, name):
        g = Gate(name, (0,), (0.731,))
        prod = g.matrix() @ g.dagger().matrix()
        assert np.allclose(prod, np.eye(2))

    def test_u3(self):
        g = Gate("u3", (0,), (0.3, 0.5, 0.7))
        prod = g.matrix() @ g.dagger().matrix()
        # u3 inverse holds up to global phase.
        assert trace_distance(prod, np.eye(2)) < 1e-7


class TestDiskCache:
    def test_table_save_load_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.enumeration import clifford_t

        fresh = clifford_t.build_table(3)
        path = clifford_t._cache_path(3)
        clifford_t._save_table(fresh, path)
        loaded = clifford_t._load_table(path, 3)
        assert loaded is not None
        assert len(loaded) == len(fresh)
        assert np.array_equal(loaded.t_counts, fresh.t_counts)
        for i in (0, 50, 500):
            assert loaded.sequence(i) == fresh.sequence(i)
        # Keys regenerate identically.
        assert loaded.key_to_index == fresh.key_to_index

    def test_load_rejects_wrong_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.enumeration import clifford_t

        fresh = clifford_t.build_table(2)
        path = str(tmp_path / "t.npz")
        clifford_t._save_table(fresh, path)
        assert clifford_t._load_table(path, 5) is None


class TestGridsynthAngles:
    def test_negative_angle(self):
        seq = gridsynth_rz(-1.1, 0.05)
        assert trace_distance(rz(-1.1), seq.matrix()) <= 0.05 + 1e-9

    def test_large_angle_wraps(self):
        theta = 1.3 + 8 * math.pi
        seq = gridsynth_rz(theta, 0.05)
        assert trace_distance(rz(theta), seq.matrix()) <= 0.05 + 1e-7

    def test_rz_distance_symmetry(self):
        assert rz_distance(0.3, 0.8) == pytest.approx(rz_distance(0.8, 0.3))
        assert rz_distance(0.5, 0.5) == 0.0

    def test_two_pi_is_trivial(self):
        seq = gridsynth_rz(2 * math.pi, 0.01)
        assert seq.t_count <= 1


class TestDrawingEdges:
    def test_distant_cx_has_connector(self):
        art = draw(Circuit(3).cx(0, 2))
        lines = art.splitlines()
        assert "●" in lines[0] and "⊕" in lines[2]
        assert "│" in lines[1]

    def test_column_packing(self):
        # Parallel gates share a column; overlapping gates do not.
        narrow = draw(Circuit(2).h(0).h(1))
        wide = draw(Circuit(2).h(0).h(0))
        assert len(narrow.splitlines()[0]) < len(wide.splitlines()[0]) or (
            "[H]" in narrow
        )

    def test_empty_circuit(self):
        art = draw(Circuit(2))
        assert art.count("\n") == 1
