"""End-to-end CLI tests: ``main(argv)`` against small QASM fixtures."""

import json
import re

import pytest

from repro.circuits.qasm import from_qasm
from repro.cli import main

_FIXTURE = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
rz(0.4) q[0];
cx q[0],q[1];
rz(0.7) q[1];
h q[1];
"""


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "fixture.qasm"
    path.write_text(_FIXTURE)
    return path


def _field(output: str, label: str) -> str:
    m = re.search(rf"^{re.escape(label)}\s*:\s*(.+)$", output, re.MULTILINE)
    assert m, f"field {label!r} missing from output:\n{output}"
    return m.group(1).strip()


class TestSynthRz:
    def test_synthesizes_within_eps(self, capsys):
        rc = main(["synth-rz", "--theta", "0.5", "--eps", "0.05"])
        out = capsys.readouterr().out
        assert rc == 0
        assert float(_field(out, "error")) <= 0.05
        assert int(_field(out, "T count")) > 0
        gates = _field(out, "gates").split()
        assert gates and set(gates) <= {
            "H", "S", "Sdg", "T", "Tdg", "X", "Y", "Z", "I"
        }


class TestCompile:
    def test_compile_gridsynth(self, qasm_file, tmp_path, capsys):
        out_path = tmp_path / "compiled.qasm"
        rc = main([
            "compile", str(qasm_file), "--workflow", "gridsynth",
            "--eps", "0.05", "--output", str(out_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert int(_field(out, "rotations synthesized")) == 2
        assert int(_field(out, "T count")) > 0
        assert float(_field(out, "synthesis error bound")) <= 2 * 0.05
        # The written QASM is valid and purely discrete.
        compiled = from_qasm(out_path.read_text())
        assert all(g.name != "rz" for g in compiled.gates)

    def test_compile_trasyn(self, qasm_file, capsys):
        rc = main([
            "compile", str(qasm_file), "--workflow", "trasyn",
            "--eps", "0.15",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert int(_field(out, "rotations synthesized")) >= 1
        assert int(_field(out, "Clifford count")) >= 0

    def test_compile_survives_corrupt_cache_file(self, qasm_file, tmp_path,
                                                 capsys):
        for blob in ("{garbage", '{"version": 1, "entries": '
                     '[{"key": ["rz", "g", 0.4, 0.05], "gates": 5, '
                     '"error": null}]}'):
            cache_path = tmp_path / "bad.json"
            cache_path.write_text(blob)
            rc = main([
                "compile", str(qasm_file), "--workflow", "gridsynth",
                "--eps", "0.05", "--cache-file", str(cache_path),
            ])
            captured = capsys.readouterr()
            assert rc == 0
            assert "ignoring unreadable cache" in captured.err
            # The bad file is replaced by a valid cache afterwards.
            assert json.loads(cache_path.read_text())["entries"]

    def test_compile_cache_file_round_trip(self, qasm_file, tmp_path,
                                           capsys):
        cache_path = tmp_path / "cache.json"
        argv = [
            "compile", str(qasm_file), "--workflow", "gridsynth",
            "--eps", "0.05", "--cache-file", str(cache_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        payload = json.loads(cache_path.read_text())
        assert payload["entries"]
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert _field(first, "T count") == _field(second, "T count")


class TestVerifyCommand:
    def test_structural_ok(self, qasm_file, capsys):
        rc = main(["verify", str(qasm_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.startswith("OK")
        assert "structural" in out

    def test_full_flags_unrouted_circuit(self, qasm_file, capsys):
        rc = main([
            "verify", str(qasm_file), "--target", "grid:3x3",
            "--level", "full",
        ])
        captured = capsys.readouterr()
        # cx(0,1) happens to sit on a grid edge, so this passes...
        assert rc == 0
        # ...but a basis restriction catches the rz rotations.
        rc = main([
            "verify", str(qasm_file), "--level", "full",
            "--basis", "clifford_t",
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "FAIL" in captured.err
        assert "rz" in captured.err

    def test_compiled_output_verifies_fully(self, qasm_file, tmp_path,
                                            capsys):
        out_path = tmp_path / "routed.qasm"
        rc = main([
            "compile", str(qasm_file), "--workflow", "gridsynth",
            "--eps", "0.05", "-O", "3", "--target", "grid:2x3",
            "--validate", "full", "--output", str(out_path),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main([
            "verify", str(out_path), "--target", "grid:2x3",
            "--level", "full", "--basis", "clifford_t",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "basis[clifford_t]" in out and "connectivity" in out

    def test_malformed_qasm_connectivity_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.qasm"
        bad.write_text(
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg q[4];\n"
            "cx q[0],q[3];\n"
        )
        rc = main([
            "verify", str(bad), "--target", "grid:2x2", "--level", "full",
        ])
        err = capsys.readouterr().err
        assert rc == 1
        assert "connectivity" in err


class TestAtomicOutputs:
    def test_compile_output_write_is_atomic(self, qasm_file, tmp_path,
                                            capsys, monkeypatch):
        import os

        out_path = tmp_path / "compiled.qasm"
        out_path.write_text("// precious previous result\n")

        def boom(src, dst):
            raise OSError("no space left on device")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            main([
                "compile", str(qasm_file), "--workflow", "gridsynth",
                "--eps", "0.05", "--output", str(out_path),
            ])
        monkeypatch.undo()
        # The interrupted write left the previous file untouched and
        # cleaned up its temp file.
        assert out_path.read_text() == "// precious previous result\n"
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "compiled.qasm", "fixture.qasm",
        ]


class TestCompileCacheDir:
    def test_compile_attaches_store(self, qasm_file, tmp_path, capsys):
        store_dir = tmp_path / "store"
        argv = ["compile", str(qasm_file), "--workflow", "gridsynth",
                "--eps", "0.05", "--cache-dir", str(store_dir)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        line = _field(out, "disk store")
        assert line.endswith("2 misses")  # cold: both rotations computed
        assert main(argv) == 0  # fresh process, warm segments
        out2 = capsys.readouterr().out
        assert _field(out2, "disk store").startswith("2 exact")


class TestWarmCache:
    def test_warm_cache_command(self, tmp_path, capsys):
        store_dir = tmp_path / "wc"
        rc = main(["warm-cache", "--cache-dir", str(store_dir),
                   "--angles", "12", "--eps", "0.05", "--workers", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "warmed 8 of 8" in out
        assert (store_dir / "index.json").exists()


class TestCompileBatch:
    def _write_fixtures(self, tmp_path, n):
        paths = []
        for i in range(n):
            path = tmp_path / f"circ{i}.qasm"
            path.write_text(_FIXTURE.replace("0.4", f"0.{4 + i}"))
            paths.append(str(path))
        return paths

    def test_batch_parallel_with_cache(self, tmp_path, capsys):
        paths = self._write_fixtures(tmp_path, 3)
        cache_path = tmp_path / "cache.json"
        out_dir = tmp_path / "out"
        rc = main([
            "compile-batch", *paths, "--workflow", "gridsynth",
            "--eps", "0.05", "--jobs", "2",
            "--cache-file", str(cache_path), "--output-dir", str(out_dir),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert int(_field(out, "circuits compiled")) == 3
        assert int(_field(out, "total T count")) > 0
        for path in paths:
            assert path in out
        compiled = list(out_dir.glob("*_compiled.qasm"))
        assert len(compiled) == 3
        for p in compiled:
            from_qasm(p.read_text())  # parses cleanly
        assert cache_path.exists()

        # Second run is fully warm: zero misses reported.
        rc = main([
            "compile-batch", *paths, "--workflow", "gridsynth",
            "--eps", "0.05", "--cache-file", str(cache_path),
        ])
        out2 = capsys.readouterr().out
        assert rc == 0
        hits, misses = _field(out2, "cache hits/misses").split("/")
        assert int(misses) == 0
        assert int(hits) > 0

    def test_batch_process_workers_with_store(self, tmp_path, capsys):
        paths = self._write_fixtures(tmp_path, 3)
        store_dir = tmp_path / "store"
        rc = main([
            "compile-batch", *paths, "--workflow", "gridsynth",
            "--eps", "0.05", "--workers", "2",
            "--cache-dir", str(store_dir),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert int(_field(out, "circuits compiled")) == 3
        exact = _field(out, "disk store").partition(" exact")[0]
        assert int(exact) == 0  # cold store on the first run
        # Workers published their results as segments.
        assert list((store_dir / "segments").glob("seg-*.json"))

        # A second serial run over the same store is served from it.
        rc = main([
            "compile-batch", *paths, "--workflow", "gridsynth",
            "--eps", "0.05", "--cache-dir", str(store_dir),
        ])
        out2 = capsys.readouterr().out
        assert rc == 0
        line = _field(out2, "disk store")
        assert int(line.split(" exact")[0]) > 0
        assert "0 misses" in line

    def test_batch_rejects_bad_workers(self, tmp_path, capsys):
        paths = self._write_fixtures(tmp_path, 2)
        with pytest.raises(SystemExit):
            main(["compile-batch", *paths, "--workers", "lots"])

    def test_batch_serial_matches_parallel(self, tmp_path, capsys):
        paths = self._write_fixtures(tmp_path, 2)
        assert main(["compile-batch", *paths, "--workflow", "gridsynth",
                     "--eps", "0.05", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["compile-batch", *paths, "--workflow", "gridsynth",
                     "--eps", "0.05", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # Timing and hit/miss accounting legitimately differ between the
        # two runs; the compiled-circuit lines must not.
        strip = lambda s: [ln for ln in s.splitlines()
                           if not ln.startswith(("wall time", "cache "))]
        assert strip(serial) == strip(parallel)


class TestSimulate:
    def test_noiseless_fidelity_is_one(self, qasm_file, capsys):
        rc = main(["simulate", str(qasm_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert float(_field(out, "fidelity")) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("backend", ["density", "statevector", "mps"])
    def test_noisy_backends(self, qasm_file, backend, capsys):
        rc = main([
            "simulate", str(qasm_file), "--noise-rate", "0.01",
            "--sim-backend", backend, "--trajectories", "50",
            "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert _field(out, "backend") == backend
        fid = float(_field(out, "fidelity"))
        assert 0.0 <= fid <= 1.0
        assert fid < 1.0 - 1e-6  # noise at 1% must be visible

    def test_auto_dispatches_small_noisy_to_density(self, qasm_file, capsys):
        rc = main(["simulate", str(qasm_file), "--noise-rate", "0.001"])
        out = capsys.readouterr().out
        assert rc == 0
        assert _field(out, "backend") == "density"


class TestOtherCommands:
    def test_catalog(self, capsys):
        rc = main(["catalog", "--budget", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        m = re.search(r"T <= 3: (\d+)", out)
        assert m and int(m.group(1)) == 24 * (3 * 2**3 - 2)

    def test_estimate(self, qasm_file, capsys):
        rc = main(["estimate", str(qasm_file)])
        assert rc == 0
        assert capsys.readouterr().out.strip()

    def test_unknown_command_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc:
            main(["not-a-command"])
        assert exc.value.code != 0


class TestSchedule:
    def test_schedule_plain(self, qasm_file, capsys):
        rc = main(["schedule", str(qasm_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ASAP schedule" in out
        assert "makespan" in out
        assert "q0" in out and "q1" in out

    def test_schedule_routed_with_esp_and_timeline(self, tmp_path, capsys):
        import dataclasses

        from repro.target import Target

        target = dataclasses.replace(
            Target.line(2),
            gate_errors={"cx": 1e-2, "h": 1e-3},
            gate_durations={"cx": 3.0},
            idle_error_rate=1e-4,
        )
        tpath = tmp_path / "cal.json"
        target.save(str(tpath))
        qasm = tmp_path / "c.qasm"
        qasm.write_text(_FIXTURE)
        rc = main([
            "schedule", str(qasm), "--target", str(tpath), "--route",
            "--method", "alap", "--timeline", "--width", "24",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ALAP schedule" in out
        assert "routed onto" in out
        assert "ESP" in out
        assert "one column" in out  # the rendered timeline axis

    def test_compile_objective_esp_reports_prediction(
        self, tmp_path, capsys
    ):
        import dataclasses

        from repro.target import Target

        target = dataclasses.replace(
            Target.line(2),
            gate_errors={"cx": 1e-2, "t": 1e-3, "h": 1e-4},
            idle_error_rate=1e-5,
        )
        tpath = tmp_path / "cal.json"
        target.save(str(tpath))
        qasm = tmp_path / "c.qasm"
        qasm.write_text(_FIXTURE)
        rc = main([
            "compile", str(qasm), "--workflow", "gridsynth",
            "--eps", "0.05", "-O", "2", "--target", str(tpath),
            "--objective", "esp",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert _field(out, "objective") == "esp"
        esp = float(_field(out, "predicted ESP"))
        assert 0.0 < esp < 1.0
        assert float(_field(out, "schedule makespan")) > 0

    def test_compile_eps_budget_reports_allocation(self, tmp_path, capsys):
        qasm = tmp_path / "c.qasm"
        qasm.write_text(_FIXTURE)
        rc = main([
            "compile", str(qasm), "--workflow", "gridsynth",
            "-O", "2", "--eps-budget", "0.04",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "eps budget allocation" in out
        assert float(_field(out, "synthesis error bound")) <= 0.04 + 1e-9
