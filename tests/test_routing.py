"""Routing correctness: edge compliance, unitary equivalence, metrics."""

import math

import numpy as np
import pytest

from repro.bench_circuits import ft_algorithms as ft
from repro.circuits import Circuit, CircuitDAG
from repro.pipeline import PassManager, compile_circuit, preset_pipeline
from repro.target import (
    CouplingMap,
    Layout,
    Target,
    fix_gate_directions,
    naive_route,
    on_coupling_edges,
    permute_statevector,
    route_circuit,
    route_dag,
    routed_statevector_equivalent,
)
from repro.transpiler import transpile

TARGETS = [Target.line(6), Target.ring(6), Target.grid(2, 3)]


def random_circuit(n: int, n_gates: int, rng: np.random.Generator) -> Circuit:
    """A random circuit mixing 1q rotations and long-range 2q gates."""
    c = Circuit(n)
    two_q = ("cx", "cz", "swap")
    for _ in range(n_gates):
        r = rng.random()
        if r < 0.35:
            q = int(rng.integers(n))
            c.rz(float(rng.uniform(0, 2 * math.pi)), q)
        elif r < 0.5:
            c.h(int(rng.integers(n)))
        else:
            a, b = (int(q) for q in rng.choice(n, size=2, replace=False))
            c.append(two_q[int(rng.integers(3))], (a, b))
    return c


def layout_permutation_matrix(l2p, n: int) -> np.ndarray:
    """Dense P(L): virtual basis state -> physical basis state."""
    dim = 2**n
    P = np.zeros((dim, dim))
    for i in range(dim):
        bits = [(i >> (n - 1 - v)) & 1 for v in range(n)]
        j = sum(bits[v] << (n - 1 - l2p[v]) for v in range(n))
        P[j, i] = 1.0
    return P


class TestRouteProperties:
    """Property tests: routed == original up to the output permutation."""

    @pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
    @pytest.mark.parametrize("layout", ["trivial", "dense"])
    @pytest.mark.parametrize("n_qubits", [3, 4, 5, 6])
    def test_routed_statevector_equivalence(self, target, layout, n_qubits):
        rng = np.random.default_rng(
            [n_qubits, sum(ord(ch) for ch in target.name)]
        )
        for _ in range(3):
            c = random_circuit(n_qubits, 30, rng)
            res = route_circuit(c, target, layout=layout)
            assert on_coupling_edges(res.circuit, target)
            assert routed_statevector_equivalent(c, res)
            assert sorted(res.permutation) == list(range(target.n_qubits))

    @pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
    def test_unitary_equivalence_up_to_permutation(self, target):
        # Full-operator check on one random 4-qubit circuit per target:
        # R == P(Lf) (C (x) I) P(L0)^T exactly.
        rng = np.random.default_rng(17)
        c = random_circuit(4, 20, rng)
        res = route_circuit(c, target, layout="dense")
        n = target.n_qubits
        pad = np.eye(2 ** (n - c.n_qubits))
        embedded = np.kron(c.unitary(), pad)
        p0 = layout_permutation_matrix(res.initial_layout.as_list(), n)
        pf = layout_permutation_matrix(res.final_layout.as_list(), n)
        expected = pf @ embedded @ p0.T
        assert np.allclose(res.circuit.unitary(), expected, atol=1e-9)

    def test_naive_route_equivalence(self):
        rng = np.random.default_rng(3)
        c = random_circuit(5, 25, rng)
        res = naive_route(c, Target.line(5))
        assert on_coupling_edges(res.circuit, Target.line(5))
        assert routed_statevector_equivalent(c, res)
        # The naive strategy always restores its layout.
        assert res.final_layout == res.initial_layout


class TestRouterQuality:
    def test_qft4_beats_naive_on_line(self):
        # Acceptance criterion: fewer swaps than naive
        # adjacent-transposition lowering on qft_n4 / line:4.
        bench = ft.qft(4)
        target = Target.line(4)
        sabre = route_circuit(bench, target, layout="trivial")
        naive = naive_route(bench, target)
        assert on_coupling_edges(sabre.circuit, target)
        assert sabre.swaps_inserted < naive.swaps_inserted

    def test_all_to_all_needs_no_swaps(self):
        c = ft.qft(5)
        res = route_circuit(c, Target.all_to_all(5))
        assert res.swaps_inserted == 0
        assert res.metrics.depth_after == res.metrics.depth_before

    def test_metrics_consistency(self):
        c = ft.qft(4)
        res = route_circuit(c, Target.line(4), layout="trivial")
        n_swaps_in_circuit = sum(
            1 for g in res.circuit.gates if g.name == "swap"
        ) - sum(1 for g in c.gates if g.name == "swap")
        assert res.metrics.swaps_inserted == n_swaps_in_circuit
        assert len(res.circuit.gates) == len(c.gates) + res.swaps_inserted

    def test_route_dag_signature(self):
        c = Circuit(3).cx(0, 2)
        dag = CircuitDAG.from_circuit(c)
        routed, final, swaps = route_dag(dag, Target.line(3))
        assert isinstance(routed, CircuitDAG)
        assert isinstance(final, Layout)
        assert swaps >= 1
        assert on_coupling_edges(routed.to_circuit(), Target.line(3))

    def test_rejects_oversized_circuit(self):
        with pytest.raises(ValueError):
            route_circuit(Circuit(5).cx(0, 4), Target.line(3))

    def test_rejects_disconnected_target(self):
        t = Target(CouplingMap(4, [(0, 1), (2, 3)]), name="split")
        with pytest.raises(ValueError):
            route_circuit(Circuit(4).cx(0, 3), t)


class TestFixDirections:
    def test_reverses_against_the_grain(self):
        cmap = CouplingMap(3, [(0, 1), (2, 1)], directed=True)
        t = Target(cmap, name="directed-line")
        c = Circuit(3).cx(0, 1).cx(1, 2)  # second cx points the wrong way
        fixed, n = fix_gate_directions(c, t)
        assert n == 1
        assert all(
            cmap.allows(*g.qubits) for g in fixed.gates if g.name == "cx"
        )
        assert np.allclose(fixed.unitary(), c.unitary(), atol=1e-12)

    def test_undirected_is_identity(self):
        c = Circuit(3).cx(0, 1).cx(2, 1)
        fixed, n = fix_gate_directions(c, Target.line(3))
        assert n == 0
        assert [g.name for g in fixed.gates] == ["cx", "cx"]

    def test_rejects_unrouted(self):
        with pytest.raises(ValueError, match="off the coupling map"):
            fix_gate_directions(Circuit(3).cx(0, 2), Target.line(3))
        with pytest.raises(ValueError, match="off the coupling map"):
            fix_gate_directions(Circuit(3).cz(0, 2), Target.line(3))


class TestPipelineIntegration:
    def test_transpile_grid_acceptance(self):
        # transpile(circ, target=Target.grid(2,3), optimization_level=3)
        # yields only coupling-edge 2q gates and stays equivalent to the
        # original up to the routing permutation and a global phase.
        bench = ft.qft(4)
        target = Target.grid(2, 3)
        lowered = transpile(
            bench, target=target, optimization_level=3
        )
        assert lowered.n_qubits == target.n_qubits
        assert on_coupling_edges(lowered, target)
        res = route_circuit(bench, target, layout="dense")
        anc = np.zeros(2 ** (target.n_qubits - bench.n_qubits), dtype=complex)
        anc[0] = 1.0
        expected = permute_statevector(
            np.kron(bench.statevector(), anc), res.final_layout.as_list()
        )
        overlap = abs(np.vdot(expected, lowered.statevector()))
        assert overlap == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("basis", ["u3", "rz"])
    @pytest.mark.parametrize("level", [0, 2, 4])
    def test_preset_levels_stay_on_edges(self, basis, level):
        rng = np.random.default_rng(11)
        c = random_circuit(4, 25, rng)
        target = Target.ring(4)
        pm = preset_pipeline(basis, level, target=target)
        assert isinstance(pm, PassManager)
        out = pm.run(c)
        assert on_coupling_edges(out, target)

    def test_directed_target_through_preset(self):
        cmap = CouplingMap(4, [(1, 0), (1, 2), (3, 2)], directed=True)
        target = Target(cmap, name="directed-zigzag")
        c = ft.qft(4)
        out = transpile(c, basis="u3", optimization_level=2, target=target)
        for g in out.gates:
            if g.name == "cx":
                assert cmap.allows(*g.qubits)
            elif len(g.qubits) == 2:
                assert cmap.has_edge(*g.qubits)

    def test_compile_circuit_carries_routing(self):
        bench = ft.qft(4)
        target = Target.line(4)
        res = compile_circuit(
            bench, workflow="trasyn", eps=0.05,
            optimization_level=2, target=target,
        )
        assert res.routing is not None
        assert res.routing.swaps_inserted > 0
        assert on_coupling_edges(res.circuit, target)
        assert res.routing.metrics.depth_after >= res.routing.metrics.depth_before

    def test_compile_directed_routing_reflects_fixes(self):
        from repro.circuits import depth as circ_depth

        cmap = CouplingMap(3, [(1, 0), (2, 1)], directed=True)
        target = Target(cmap, name="directed-line")
        res = compile_circuit(
            Circuit(3).cx(0, 1).cx(1, 2), workflow="gridsynth",
            eps=0.05, optimization_level=1, target=target,
        )
        r = res.routing
        assert r.metrics.direction_fixes > 0
        # routing.circuit is the direction-fixed circuit actually
        # compiled, and the depth metric matches it.
        assert all(
            cmap.allows(*g.qubits) for g in r.circuit.gates
            if g.name == "cx"
        )
        assert r.metrics.depth_after == circ_depth(r.circuit)

    def test_compile_without_target_has_no_routing(self):
        res = compile_circuit(
            ft.qft(3), workflow="trasyn", eps=0.05, optimization_level=1
        )
        assert res.routing is None

    def test_best_level_with_target(self):
        bench = ft.qft(3)
        target = Target.ring(3)
        res = compile_circuit(
            bench, workflow="gridsynth", eps=0.05,
            optimization_level="best", target=target,
        )
        assert on_coupling_edges(res.circuit, target)


class TestConnectivityExperiment:
    def test_rq6_rows(self):
        from repro.bench_circuits.suite import BenchmarkCase
        from repro.experiments import run_connectivity_comparison
        from repro.experiments.rq6_connectivity import connectivity_rows
        from repro.experiments.reporting import routing_table

        cases = [BenchmarkCase("qft_n4", "ft_algorithm", ft.qft(4))]
        results = run_connectivity_comparison(
            cases, topologies=("all_to_all", "line")
        )
        assert len(results) == 2
        by_topo = {r.topology: r for r in results}
        assert by_topo["all_to_all"].swaps == 0
        assert by_topo["line"].swaps > 0
        assert by_topo["line"].ratio > 0
        table = routing_table(connectivity_rows(results))
        assert "swaps" in table and "qft_n4" in table

    def test_target_for_rejects_unknown(self):
        from repro.experiments import target_for

        with pytest.raises(ValueError):
            target_for(4, "torus")
        assert target_for(5, "grid").n_qubits >= 5


class TestScorerEquivalence:
    """The vectorized swap scorer must match the closure scorer exactly."""

    SCORER_TARGETS = {
        "line": lambda: Target.line(8),
        "ring": lambda: Target.ring(8),
        "grid": lambda: Target.grid(2, 4),
    }

    @staticmethod
    def _with_errors(target: Target, rng: np.random.Generator) -> Target:
        # Coarsely quantized rates so score ties actually happen and
        # the cost-aware tie-break path is exercised.
        rates = (1e-3, 2e-3, 5e-3)
        errs = {
            e: float(rng.choice(rates)) for e in target.coupling.edges
        }
        return Target(
            coupling=target.coupling, name=target.name, edge_errors=errs
        )

    @pytest.mark.parametrize("topology", sorted(SCORER_TARGETS))
    @pytest.mark.parametrize("layout", ["trivial", "dense"])
    @pytest.mark.parametrize("cost_aware", [False, True])
    def test_routing_byte_identical(self, topology, layout, cost_aware):
        rng = np.random.default_rng(hash((topology, layout, cost_aware)) % 2**32)
        base = self.SCORER_TARGETS[topology]()
        target = self._with_errors(base, rng) if cost_aware else base
        for trial in range(12):
            n = int(rng.integers(3, 9))
            circ = random_circuit(n, 40, rng)
            vec = route_circuit(
                circ, target, layout=layout,
                cost_aware=cost_aware, scorer="vector",
            )
            ref = route_circuit(
                circ, target, layout=layout,
                cost_aware=cost_aware, scorer="reference",
            )
            assert vec.circuit.gates == ref.circuit.gates
            assert vec.final_layout == ref.final_layout
            assert vec.metrics.swaps_inserted == ref.metrics.swaps_inserted

    @pytest.mark.parametrize("cost_aware", [False, True])
    def test_best_swap_picks_identical_edge(self, cost_aware):
        from repro.target.routing import _best_swap, _best_swap_reference

        rng = np.random.default_rng(99)
        base = Target.grid(3, 3)
        target = self._with_errors(base, rng)
        cost = target if cost_aware else None
        cmap = target.coupling
        n = target.n_qubits
        for trial in range(60):
            lay = Layout(rng.permutation(n))
            # Front pairs are wire-disjoint (ready gates never share a
            # qubit), matching the router's invariant.
            wires = list(rng.permutation(n))
            front = [
                (wires[2 * i], wires[2 * i + 1])
                for i in range(int(rng.integers(1, 4)))
            ]
            extended = [
                tuple(int(q) for q in rng.choice(n, size=2, replace=False))
                for _ in range(int(rng.integers(0, 5)))
            ]
            got = _best_swap(
                cmap, lay, front, extended, 0.5, None, cost
            )
            want = _best_swap_reference(
                cmap, lay, front, extended, 0.5, None, cost
            )
            assert got == want

    def test_scorer_argument_validated(self):
        c = Circuit(2)
        c.cx(0, 1)
        with pytest.raises(ValueError, match="scorer"):
            route_circuit(c, Target.line(2), scorer="fancy")


class TestOscillationGuard:
    """Degree-1 corridors must not ping-pong the same swap."""

    def test_sole_candidate_equal_to_last_swap_returns_none(self):
        from repro.target.routing import _best_swap, _best_swap_reference

        cmap = CouplingMap.line(2)
        lay = Layout.trivial(2)
        for scorer in (_best_swap, _best_swap_reference):
            assert (
                scorer(cmap, lay, [(0, 1)], [], 0.5, (0, 1), None) is None
            )

    @pytest.mark.parametrize("n", [4, 6, 10, 16])
    def test_line_worst_case_swap_bound(self, n):
        # Repeated far-pair interactions on an open chain: the known
        # worst case for swap churn.  The bound is linear in the total
        # pair distance; an oscillating router blows through it (or
        # trips its internal swap-budget RuntimeError).
        t = Target.line(n)
        c = Circuit(n)
        for _ in range(3):
            for i in range(n // 2):
                c.append("cx", (i, n - 1 - i))
        res = route_circuit(c, t, layout="trivial")
        total_distance = sum(
            abs(g.qubits[0] - g.qubits[1]) for g in c.gates
        )
        assert res.swaps_inserted <= 2 * total_distance
        assert on_coupling_edges(res.circuit, t)
